(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Section 5), plus ablation studies and bechamel
   micro-benchmarks of the core algorithms.

   Usage:
     dune exec bench/main.exe                 # everything, full windows
     dune exec bench/main.exe -- --quick      # shorter simulation windows
     dune exec bench/main.exe -- fig7 table1  # selected sections only

   Sections: fig7 fig8 fig9 fig10 table1 table2 latency elasticity elastic
             cola placement ablations sched mailbox telemetry log event
             fusion micro

   "Predicted" numbers come from the SpinStreams cost models
   (ss_core.Steady_state / Fission / Fusion); "measured" numbers come from
   the discrete-event simulation of the same topology as a queueing network
   with bounded buffers and blocking-after-service backpressure (ss_sim) —
   the semantics the paper configured Akka to provide. *)

open Ss_prelude
open Ss_topology
open Ss_core
open Ss_workload

(* ------------------------------------------------------------------ *)
(* Configuration *)

let quick = ref false

(* Atomic (temp file + rename) BENCH_*.json writer: CI parses these files,
   so a crashed or interrupted bench must never leave a truncated one. *)
let write_bench_json path json =
  Ss_log.Log_io.atomic_write_file path (json ^ "\n");
  print_string json;
  print_newline ();
  Printf.printf "wrote %s\n" path

(* Mailbox capacity used by the adaptive-window experiment runs. The paper
   does not state Akka's mailbox size; 64 slots keeps the blocking network
   close to the fluid model even when fission sizes operators at rho = 1
   (see the buffer-capacity ablation). *)
let buffer_capacity = ref 64
let testbed_seed = 20180901
let testbed_size = 50

let sim_config ?(seed = 1) () =
  if !quick then
    { Ss_sim.Engine.default_config with Ss_sim.Engine.warmup = 1.5; measure = 6.0; seed }
  else
    { Ss_sim.Engine.default_config with Ss_sim.Engine.warmup = 5.0; measure = 25.0; seed }

(* Simulation windows sized to the topology: slow operators (long slides on
   low-probability paths) need hundreds of simulated seconds before their
   counts are statistically meaningful, while total event volume must stay
   bounded. *)
let adaptive_config ?(seed = 1) (predicted : Steady_state.t) =
  let firings_wanted = if !quick then 100.0 else 400.0 in
  let max_events = if !quick then 5e6 else 4e7 in
  let min_rate = ref infinity and volume = ref 0.0 in
  Array.iter
    (fun m ->
      let d = m.Steady_state.departure_rate in
      if d > 1e-9 then min_rate := Float.min !min_rate d;
      volume := !volume +. m.Steady_state.arrival_rate +. d)
    predicted.Steady_state.metrics;
  let events_per_sec = Float.max !volume 1.0 in
  let measure =
    Float.min
      (Float.max (if !quick then 6.0 else 25.0) (firings_wanted /. !min_rate))
      (max_events /. events_per_sec)
  in
  {
    Ss_sim.Engine.default_config with
    Ss_sim.Engine.warmup = measure /. 5.0;
    measure;
    seed;
    buffer_capacity = !buffer_capacity;
  }

let testbed = lazy (Random_topology.testbed ~seed:testbed_seed testbed_size)

let section_header title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

let pct x = 100.0 *. x

(* Shared fig-7 data: per-topology prediction and measurement on the
   original (non-optimized) testbed. Computed once, reused by fig7 and
   fig8. *)
type topo_run = {
  index : int;
  topology : Topology.t;
  predicted : Steady_state.t;
  measured : Ss_sim.Engine.result;
}

let original_runs =
  lazy
    (List.mapi
       (fun i topology ->
         let predicted = Steady_state.analyze topology in
         {
           index = i + 1;
           topology;
           predicted;
           measured =
             Ss_sim.Engine.run
               ~config:(adaptive_config ~seed:(100 + i) predicted)
               topology;
         })
       (Lazy.force testbed))

(* ------------------------------------------------------------------ *)
(* Figure 7: accuracy of the backpressure model on 50 random topologies *)

let fig7 () =
  section_header
    "Figure 7a — predicted vs measured throughput (50 random topologies)";
  Printf.printf "%-6s %6s %6s %14s %14s %10s\n" "topo" "ops" "edges"
    "predicted t/s" "measured t/s" "rel.err";
  let errors =
    List.map
      (fun r ->
        let p = r.predicted.Steady_state.throughput in
        let m = r.measured.Ss_sim.Engine.throughput in
        let err = Stats.relative_error ~expected:p ~actual:m in
        Printf.printf "%-6d %6d %6d %14.1f %14.1f %9.2f%%\n" r.index
          (Topology.size r.topology)
          (Topology.num_edges r.topology)
          p m (pct err);
        err)
      (Lazy.force original_runs)
  in
  let errors = Array.of_list errors in
  section_header "Figure 7b — relative prediction error per topology";
  Printf.printf
    "mean %.2f%%   median %.2f%%   p95 %.2f%%   max %.2f%%\n"
    (pct (Stats.mean errors))
    (pct (Stats.median errors))
    (pct (Stats.percentile 95.0 errors))
    (pct (Stats.maximum errors));
  Printf.printf "(paper: 'on average, less than 3%%')\n"

(* ------------------------------------------------------------------ *)
(* Figure 8: per-operator departure-rate prediction error *)

let fig8 () =
  section_header
    "Figure 8 — per-operator departure-rate prediction error (all operators)";
  let errors = ref [] in
  List.iter
    (fun r ->
      Array.iteri
        (fun v m ->
          let p = m.Steady_state.departure_rate in
          let meas = r.measured.Ss_sim.Engine.stats.(v).Ss_sim.Engine.departure_rate in
          if p > 0.0 then errors := Stats.relative_error ~expected:p ~actual:meas :: !errors)
        r.predicted.Steady_state.metrics)
    (Lazy.force original_runs);
  let errors = Array.of_list !errors in
  Printf.printf "operators: %d (paper: 678)\n" (Array.length errors);
  Printf.printf "mean %.2f%%   stddev %.2f%%   median %.2f%%   max %.2f%%\n"
    (pct (Stats.mean errors))
    (pct (Stats.stddev errors))
    (pct (Stats.median errors))
    (pct (Stats.maximum errors));
  let above20 = Array.to_list errors |> List.filter (fun e -> e > 0.20) in
  Printf.printf "operators above 20%% error: %d (%.1f%%)\n" (List.length above20)
    (pct (float_of_int (List.length above20) /. float_of_int (Array.length errors)));
  Printf.printf "(paper: mean 6.14%%, stddev 5%%, a few cases up to 24.9%% —\n";
  Printf.printf " operators on very-low-probability paths are not at steady state yet)\n";
  (* Error histogram, 2.5%-wide buckets up to 25%. *)
  Printf.printf "\nhistogram (relative error):\n";
  let buckets = 10 in
  let width = 0.025 in
  let counts = Array.make (buckets + 1) 0 in
  Array.iter
    (fun e ->
      let b = int_of_float (e /. width) in
      let b = if b > buckets then buckets else b in
      counts.(b) <- counts.(b) + 1)
    errors;
  Array.iteri
    (fun b c ->
      let label =
        if b = buckets then Printf.sprintf ">%4.1f%%      " (pct (width *. float_of_int buckets))
        else Printf.sprintf "%4.1f%%-%4.1f%%" (pct (width *. float_of_int b))
            (pct (width *. float_of_int (b + 1)))
      in
      Printf.printf "  %s %5d %s\n" label c (String.make (min c 60) '#'))
    counts

(* ------------------------------------------------------------------ *)
(* Figure 9: bottleneck elimination *)

let optimized_runs =
  lazy
    (List.mapi
       (fun i topology ->
         let plan = Fission.optimize topology in
         let measured =
           Ss_sim.Engine.run
             ~config:(adaptive_config ~seed:(200 + i) plan.Fission.analysis)
             plan.Fission.topology
         in
         (i + 1, topology, plan, measured))
       (Lazy.force testbed))

let fig9 () =
  section_header
    "Figure 9a — operators and additional replicas after bottleneck elimination";
  Printf.printf "%-6s %10s %18s %10s\n" "topo" "operators" "add. replicas" "residual";
  List.iter
    (fun (i, topology, plan, _) ->
      let additional = plan.Fission.total_replicas - Topology.size topology in
      Printf.printf "%-6d %10d %18d %10d\n" i (Topology.size topology) additional
        (List.length plan.Fission.residual_bottlenecks))
    (Lazy.force optimized_runs);
  section_header
    "Figure 9b — model accuracy on the parallelized topologies";
  Printf.printf "%-6s %14s %14s %10s %8s\n" "topo" "predicted t/s"
    "measured t/s" "rel.err" "ideal?";
  let errors = ref [] in
  let ideal_count = ref 0 and residual_count = ref 0 in
  List.iter
    (fun (i, topology, plan, measured) ->
      let p = plan.Fission.analysis.Steady_state.throughput in
      let m = measured.Ss_sim.Engine.throughput in
      let err = Stats.relative_error ~expected:p ~actual:m in
      errors := err :: !errors;
      let source_rate =
        Operator.service_rate (Topology.operator topology (Topology.source topology))
      in
      let ideal = p >= source_rate *. (1.0 -. 1e-6) in
      if ideal then incr ideal_count else incr residual_count;
      Printf.printf "%-6d %14.1f %14.1f %9.2f%% %8s\n" i p m (pct err)
        (if ideal then "yes" else "no"))
    (Lazy.force optimized_runs);
  let errors = Array.of_list !errors in
  Printf.printf "\nmean error %.2f%% (paper: about 3-3.5%% on average)\n"
    (pct (Stats.mean errors));
  Printf.printf
    "%d/%d topologies reach the ideal (source) rate; %d are capped by\n\
     non-replicable or skew-limited operators (paper: 43/50 and 7/50)\n"
    !ideal_count testbed_size !residual_count

(* ------------------------------------------------------------------ *)
(* Figure 10: bounded parallelization (hold-off replication) *)

let fig10 () =
  section_header
    "Figure 10 — throughput under replica budgets (3 topologies, bounds 30/35/40/none)";
  (* The paper picks three random topologies; we take the three whose
     unbounded plans use the most replicas, so the bounds actually bind. *)
  let ranked =
    Lazy.force optimized_runs
    |> List.map (fun (i, topology, plan, _) -> (i, topology, plan.Fission.total_replicas))
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
  in
  (* Two topologies where every bound binds, plus one needing just about 40
     replicas, so the largest bound matches the unbounded plan — the
     paper's third topology. *)
  let heavy = List.filteri (fun i _ -> i < 2) ranked in
  let near_forty =
    ranked
    |> List.filter (fun (_, _, n) -> n <= 42)
    |> fun l -> List.filteri (fun i _ -> i < 1) l
  in
  let chosen = heavy @ near_forty in
  Printf.printf "%-10s %10s %10s %10s %10s %10s %10s\n" "topology" "original"
    "bound=30" "bound=35" "bound=40" "no bound" "replicas";
  List.iteri
    (fun j (i, topology, unbounded_n) ->
      let original = (Steady_state.analyze topology).Steady_state.throughput in
      let bounded n =
        if n < Topology.size topology then nan
        else
          let plan = Fission.optimize ~max_replicas:n topology in
          let config = adaptive_config ~seed:(300 + (10 * j) + n) plan.Fission.analysis in
          (Ss_sim.Engine.run ~config plan.Fission.topology).Ss_sim.Engine.throughput
      in
      let unbounded =
        let plan = Fission.optimize topology in
        let config = adaptive_config ~seed:(300 + (10 * j)) plan.Fission.analysis in
        (Ss_sim.Engine.run ~config plan.Fission.topology).Ss_sim.Engine.throughput
      in
      Printf.printf "#%-9d %10.1f %10.1f %10.1f %10.1f %10.1f %10d\n" i original
        (bounded 30) (bounded 35) (bounded 40) unbounded unbounded_n)
    chosen;
  Printf.printf
    "(measured on the simulator; expected shape: throughput de-scales\n\
     proportionally with the bound, and a bound above the needed replicas\n\
     matches the unbounded result — the paper's third topology)\n"

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2: the fusion case study on the Fig. 11 topology *)

let fig11 service_times_ms =
  let ops =
    Array.of_list
      (List.mapi
         (fun i t ->
           Operator.make ~service_time:(t /. 1e3) (Printf.sprintf "op%d" (i + 1)))
         service_times_ms)
  in
  Topology.create_exn ops
    [
      (0, 1, 0.7); (0, 2, 0.3); (2, 3, 0.5); (2, 4, 0.5);
      (4, 3, 0.35); (4, 5, 0.65); (3, 5, 1.0); (1, 5, 1.0);
    ]

let print_metrics_row label values =
  Printf.printf "%-14s" label;
  List.iter (fun v -> Printf.printf " %8s" v) values;
  print_newline ()

let print_analysis_table analysis =
  let metrics = Array.to_list analysis.Steady_state.metrics in
  print_metrics_row "operator"
    (List.map (fun m -> m.Steady_state.name) metrics);
  print_metrics_row "1/mu (ms)"
    (List.map (fun m -> Printf.sprintf "%.2f" (1e3 /. m.Steady_state.capacity)) metrics);
  print_metrics_row "1/delta (ms)"
    (List.map
       (fun m ->
         if m.Steady_state.departure_rate > 0.0 then
           Printf.sprintf "%.2f" (1e3 /. m.Steady_state.departure_rate)
         else "-")
       metrics);
  print_metrics_row "rho"
    (List.map (fun m -> Printf.sprintf "%.2f" m.Steady_state.utilization) metrics)

let fusion_case_study ~label ~service_times_ms ~paper_fused_ms ~paper_pred
    ~paper_meas =
  section_header label;
  let topology = fig11 service_times_ms in
  let before = Steady_state.analyze topology in
  Printf.printf "original topology:\n";
  print_analysis_table before;
  let measured_before = Ss_sim.Engine.run ~config:(sim_config ()) topology in
  Printf.printf
    "throughput: %.0f t/s predicted, %.0f t/s measured (paper: 1000 / 961)\n\n"
    before.Steady_state.throughput measured_before.Ss_sim.Engine.throughput;
  match Fusion.apply ~name:"F" topology [ 2; 3; 4 ] with
  | Error e -> Printf.printf "fusion failed: %s\n" e
  | Ok outcome ->
      Printf.printf "topology after fusing {op3, op4, op5} -> F:\n";
      print_analysis_table outcome.Fusion.after;
      let measured_after =
        Ss_sim.Engine.run ~config:(sim_config ()) outcome.Fusion.topology
      in
      Printf.printf "fused service time: %.2f ms (paper: %.2f ms)\n"
        (outcome.Fusion.fused_service_time *. 1e3)
        paper_fused_ms;
      Printf.printf
        "throughput after fusion: %.0f t/s predicted, %.0f t/s measured \
         (paper: %d / %d)\n"
        outcome.Fusion.after.Steady_state.throughput
        measured_after.Ss_sim.Engine.throughput paper_pred paper_meas;
      if outcome.Fusion.creates_bottleneck then
        Printf.printf "ALERT: fusion introduces a bottleneck (as the paper's tool reports)\n"

let table1 () =
  fusion_case_study
    ~label:"Table 1 — feasible fusion (no performance impairment)"
    ~service_times_ms:[ 1.0; 1.2; 0.7; 2.0; 1.5; 0.2 ]
    ~paper_fused_ms:2.80 ~paper_pred:1000 ~paper_meas:970

let table2 () =
  fusion_case_study
    ~label:"Table 2 — fusion introducing a new bottleneck"
    ~service_times_ms:[ 1.0; 1.2; 1.5; 2.7; 2.2; 0.2 ]
    ~paper_fused_ms:4.42 ~paper_pred:760 ~paper_meas:753

(* ------------------------------------------------------------------ *)
(* Ablations: design choices not isolated in the paper *)

(* Single-pass analysis (no source-correction restart): departure rates are
   capped locally instead of throttling the source. *)
let naive_throughput topology =
  let order = Topology.topological_order topology in
  let n = Topology.size topology in
  let delta = Array.make n 0.0 in
  Array.iter
    (fun v ->
      let op = Topology.operator topology v in
      let cap = Steady_state.capacity_of op in
      let lambda =
        if v = Topology.source topology then cap
        else
          List.fold_left
            (fun acc (u, p) -> acc +. (delta.(u) *. p))
            0.0 (Topology.preds topology v)
      in
      delta.(v) <- Float.min lambda cap *. Operator.selectivity_factor op)
    order;
  (* Without backpressure modeling the source always runs at full speed. *)
  delta.(Topology.source topology)

let ablation_restart () =
  section_header
    "Ablation — Theorem 3.2 source correction vs single-pass local capping";
  let full_err = ref [] and naive_err = ref [] in
  List.iter
    (fun r ->
      let m = r.measured.Ss_sim.Engine.throughput in
      let full = r.predicted.Steady_state.throughput in
      let naive = naive_throughput r.topology in
      full_err := Stats.relative_error ~expected:m ~actual:full :: !full_err;
      naive_err := Stats.relative_error ~expected:m ~actual:naive :: !naive_err)
    (Lazy.force original_runs);
  Printf.printf
    "mean error vs measurement over the %d-topology testbed:\n" testbed_size;
  Printf.printf "  Algorithm 1 (with restart):    %6.2f%%\n"
    (pct (Stats.mean (Array.of_list !full_err)));
  Printf.printf "  single-pass (no backpressure): %6.2f%%\n"
    (pct (Stats.mean (Array.of_list !naive_err)));
  Printf.printf
    "(the single pass overestimates ingestion whenever a bottleneck exists:\n\
     it caps flows locally but never throttles the source)\n"

let ablation_partitioning () =
  section_header
    "Ablation — key-group placement: greedy LPT vs modulo hashing (64 keys, 4 replicas)";
  Printf.printf "%-8s %12s %12s %16s\n" "alpha" "LPT pmax" "modulo pmax"
    "ideal (=0.25)";
  List.iter
    (fun alpha ->
      let keys = Discrete.zipf ~alpha 64 in
      let lpt = Key_partitioning.pmax_for ~keys ~replicas:4 in
      let modulo =
        let loads = Array.make 4 0.0 in
        Array.iteri
          (fun k p -> loads.(k mod 4) <- loads.(k mod 4) +. p)
          (Discrete.probs keys);
        Array.fold_left Float.max 0.0 loads
      in
      Printf.printf "%-8.2f %12.3f %12.3f %16s\n" alpha lpt modulo "0.250")
    [ 0.0; 0.5; 1.0; 1.5; 2.0 ];
  Printf.printf
    "(pmax bounds the parallelized operator's capacity at mu/pmax: lower is\n\
     better; LPT degrades gracefully under skew, modulo does not)\n"

let ablation_buffers () =
  section_header
    "Ablation — buffer capacity vs throughput under stochastic service times";
  (* Two exponential stages at 80% load: small buffers couple the stages and
     lose throughput that the capacity-free analytical model cannot see. *)
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~dist:(Dist.Exponential 1.25e-3) ~service_time:1.25e-3 "a";
      Operator.make ~dist:(Dist.Exponential 1.25e-3) ~service_time:1.25e-3 "b";
    |]
  in
  let topology = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let predicted = (Steady_state.analyze topology).Steady_state.throughput in
  Printf.printf "analytical model (buffer-size-free): %.0f t/s\n" predicted;
  Printf.printf "%-10s %14s %10s\n" "capacity" "measured t/s" "vs model";
  List.iter
    (fun cap ->
      let config = { (sim_config ()) with Ss_sim.Engine.buffer_capacity = cap } in
      let m = (Ss_sim.Engine.run ~config topology).Ss_sim.Engine.throughput in
      Printf.printf "%-10d %14.1f %9.1f%%\n" cap m (pct (m /. predicted)))
    [ 1; 2; 4; 8; 16; 64; 256 ];
  Printf.printf
    "(deterministic services — the profile-mean abstraction the paper uses —\n\
     are insensitive to capacity; variance makes small buffers lossy)\n"

let ablations () =
  ablation_restart ();
  ablation_partitioning ();
  ablation_buffers ()

(* ------------------------------------------------------------------ *)
(* Latency model validation (extension beyond the paper) *)

let latency () =
  section_header
    "Latency — Kingman/QNA estimates vs Little's-law measurements";
  print_endline
    "Per-operator buffering delay: predicted by the GI/G/1 approximation";
  print_endline
    "(ss_core.Latency), measured as mean queue length / arrival rate in the";
  print_endline
    "simulator. Saturated vertices are excluded (unbounded in the fluid";
  print_endline "model; buffer-bound in the simulator).";
  print_newline ();
  (* Under BAS blocking, every vertex that can reach a saturated operator
     has its buffer filled by backpressure, whatever its own utilization:
     the open-network approximation only applies outside those paths. *)
  let feeds_saturated topology (analysis : Steady_state.t) =
    let n = Topology.size topology in
    let feeds = Array.make n false in
    let order = Topology.topological_order topology in
    for i = n - 1 downto 0 do
      let v = order.(i) in
      if analysis.Steady_state.metrics.(v).Steady_state.utilization >= 0.95 then
        feeds.(v) <- true
      else
        feeds.(v) <-
          List.exists (fun (w, _) -> feeds.(w)) (Topology.succs topology v)
    done;
    feeds
  in
  let abs_errors = ref [] in
  let pred_waits = ref [] and meas_waits = ref [] in
  let compared = ref 0 and excluded = ref 0 in
  List.iter
    (fun r ->
      let estimate = Latency.estimate r.topology r.predicted in
      let feeds = feeds_saturated r.topology r.predicted in
      Array.iteri
        (fun v (l : Latency.vertex_latency) ->
          let s = r.measured.Ss_sim.Engine.stats.(v) in
          if v = Topology.source r.topology then ()
          else if feeds.(v) then incr excluded
          else if s.Ss_sim.Engine.arrival_rate > 0.0 then begin
            incr compared;
            abs_errors :=
              Float.abs (l.Latency.waiting_time -. s.Ss_sim.Engine.mean_waiting_time)
              :: !abs_errors;
            pred_waits := l.Latency.waiting_time :: !pred_waits;
            meas_waits := s.Ss_sim.Engine.mean_waiting_time :: !meas_waits
          end)
        estimate.Latency.per_vertex)
    (Lazy.force original_runs);
  let abs_errors = Array.of_list !abs_errors in
  Printf.printf
    "operators compared: %d (excluded %d on backpressure paths to a saturated vertex)\n"
    !compared !excluded;
  Printf.printf
    "mean predicted wait %.3f ms vs mean measured wait %.3f ms\n"
    (Stats.mean (Array.of_list !pred_waits) *. 1e3)
    (Stats.mean (Array.of_list !meas_waits) *. 1e3);
  Printf.printf
    "absolute error: median %.3f ms, mean %.3f ms, p95 %.3f ms, max %.3f ms\n"
    (Stats.median abs_errors *. 1e3)
    (Stats.mean abs_errors *. 1e3)
    (Stats.percentile 95.0 abs_errors *. 1e3)
    (Stats.maximum abs_errors *. 1e3);
  let below_1ms =
    Array.to_list abs_errors |> List.filter (fun e -> e < 1e-3) |> List.length
  in
  Printf.printf "operators within 1 ms: %d/%d\n" below_1ms
    (Array.length abs_errors);
  print_newline ();
  print_endline
    "(vertices feeding a bottleneck sit behind full buffers whatever their";
  print_endline
    "own utilization -- blocking networks differ fundamentally from open";
  print_endline
    "ones there, which is why the fluid throughput model of the paper is";
  print_endline "the right tool under backpressure, and Kingman only off it)"

(* ------------------------------------------------------------------ *)
(* Baseline comparison: static optimization vs run-time elasticity *)

let elasticity () =
  section_header
    "Baseline — SpinStreams static plan vs threshold elasticity (stable load)";
  print_endline
    "Elastic runs start with one replica everywhere and adapt every 10s,";
  print_endline
    "paying 2s of reconfiguration downtime per resize (Dhalion-style";
  print_endline
    "thresholds); the static plan is deployed optimally from t=0.";
  print_newline ();
  Printf.printf "%-6s %12s %12s %12s %10s %10s\n" "topo" "static t/s"
    "elastic t/s" "converged" "items lost" "loss %";
  let chosen =
    (* Topologies whose plans fully remove the bottlenecks, so both
       strategies aim at the same rate. *)
    Lazy.force optimized_runs
    |> List.filter (fun (_, _, plan, _) ->
           plan.Fission.residual_bottlenecks = [])
    |> (fun l -> List.filteri (fun i _ -> i < 5) l)
  in
  List.iter
    (fun (i, topology, plan, _) ->
      let static_throughput = plan.Fission.analysis.Steady_state.throughput in
      let elastic =
        Ss_elastic.Controller.run ~epoch_length:10.0
          ~reconfiguration_downtime:2.0 ~max_epochs:20 ~seed:(400 + i) topology
      in
      let static_items = static_throughput *. elastic.Ss_elastic.Controller.horizon in
      let lost = static_items -. elastic.Ss_elastic.Controller.items_processed in
      let final_throughput =
        match List.rev elastic.Ss_elastic.Controller.epochs with
        | e :: _ -> e.Ss_elastic.Controller.throughput
        | [] -> 0.0
      in
      Printf.printf "%-6d %12.1f %12.1f %12s %10.0f %9.1f%%\n" i
        static_throughput final_throughput
        (match elastic.Ss_elastic.Controller.converged_at with
        | Some e -> Printf.sprintf "epoch %d" e
        | None -> "no")
        lost
        (pct (lost /. Float.max static_items 1.0)))
    chosen;
  print_newline ();
  print_endline
    "(the paper's positioning, quantified: on a stable workload the";
  print_endline
    "statically pre-optimized deployment loses nothing, while elasticity";
  print_endline
    "spends epochs discovering a configuration and paying migration downtime;";
  print_endline
    "note the runs converging to a local optimum or oscillating -- the";
  print_endline
    "stability problem of reactive per-operator scaling under backpressure";
  print_endline
    "that the paper cites, which the global static analysis avoids)"

(* ------------------------------------------------------------------ *)
(* Live elasticity: the closed loop against the running executor.

   Both arms deploy the same busy-wait pipeline under the same throttled
   offered load and are measured the same way (source emissions per
   wall-clock second):
   - "static": the SpinStreams plan (Algorithm 2 replica degrees) deployed
     from t=0, no controller;
   - "elastic": all degrees start at 1 and the threshold controller resizes
     the running topology between epochs, paying measured drain-and-swap
     downtime.
   Gated: the elastic run must converge to within 15% of the static plan's
   measured throughput, must actually have grown the hot operator, and must
   have measured (charged) a strictly positive reconfiguration downtime.
   Emits BENCH_elastic.json; exits 1 when a gate fails. *)

let elastic_live () =
  section_header
    "Live elasticity — closed loop against the running executor (measured)";
  (* One hot operator at 1.2x the offered load's service budget, so the
     static plan replicates it and the controller must discover the same
     degree online. Load is sized for a single-core host: the gate compares
     configurations under identical conditions, not parallel speedup. *)
  let rate = 200.0 in
  let ops =
    [|
      Operator.source ~rate "src";
      Operator.make ~service_time:0.0003 "pre";
      Operator.make ~service_time:0.006 "hot";
      Operator.make ~service_time:0.0001 "snk";
    |]
  in
  let topo =
    Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]
  in
  let instrument =
    {
      Ss_runtime.Executor.default_instrument with
      telemetry = true;
      telemetry_sample = 2;
    }
  in
  let workers = 3 and reserve = 6 in
  let warmup = if !quick then 0.4 else 1.0 in
  let window = if !quick then 1.5 else 3.0 in
  let measure_live live =
    Unix.sleepf warmup;
    let src = Topology.source (Ss_runtime.Executor.Live.topology live) in
    let c0 = (Ss_runtime.Executor.Live.produced live).(src) in
    let t0 = Unix.gettimeofday () in
    Unix.sleepf window;
    let c1 = (Ss_runtime.Executor.Live.produced live).(src) in
    float_of_int (c1 - c0) /. (Unix.gettimeofday () -. t0)
  in
  (* static arm *)
  let plan = Fission.optimize topo in
  let static_topo = plan.Fission.topology in
  let static_degrees =
    Array.map
      (fun (op : Operator.t) -> op.Operator.replicas)
      (Topology.operators static_topo)
  in
  let static_live =
    Ss_codegen.Plan.live ~workers ~reserve ~instrument static_topo
  in
  let static_rate = measure_live static_live in
  let m_static = Ss_runtime.Executor.Live.stop static_live in
  Printf.printf "static plan (degrees %s): %8.1f tuples/s (%s)\n"
    (String.concat "," (Array.to_list (Array.map string_of_int static_degrees)))
    static_rate
    (Format.asprintf "%a" Ss_runtime.Supervision.pp_outcome
       m_static.Ss_runtime.Executor.outcome);
  (* elastic arm *)
  let live = Ss_codegen.Plan.live ~workers ~reserve ~instrument topo in
  let r =
    Ss_elastic.Controller.run_live
      ~epoch_length:(if !quick then 0.5 else 0.8)
      ~max_epochs:(if !quick then 6 else 10)
      ~settle:2 live
  in
  Format.printf "%a@." Ss_elastic.Controller.pp_live r;
  let elastic_final =
    match List.rev r.Ss_elastic.Controller.epochs with
    | e :: _ -> e.Ss_elastic.Controller.rate
    | [] -> 0.0
  in
  let ratio = elastic_final /. Float.max static_rate 1e-9 in
  let hot_degree = r.Ss_elastic.Controller.final_degrees.(2) in
  Printf.printf
    "elastic final: %8.1f tuples/s (%.2fx static), hot degree %d, total \
     downtime %.2f ms\n"
    elastic_final ratio hot_degree
    (r.Ss_elastic.Controller.total_downtime *. 1000.0);
  let json =
    Printf.sprintf
      {|{"section":"elastic","offered_rate":%.1f,"static_rate":%.1f,"elastic_final_rate":%.1f,"ratio":%.3f,"static_degrees":[%s],"final_degrees":[%s],"hot_degree":%d,"total_downtime_s":%.6f,"epochs":%d,"converged_at":%s}|}
      rate static_rate elastic_final ratio
      (String.concat ","
         (Array.to_list (Array.map string_of_int static_degrees)))
      (String.concat ","
         (Array.to_list
            (Array.map string_of_int r.Ss_elastic.Controller.final_degrees)))
      hot_degree r.Ss_elastic.Controller.total_downtime
      (List.length r.Ss_elastic.Controller.epochs)
      (match r.Ss_elastic.Controller.converged_at with
      | Some i -> string_of_int i
      | None -> "null")
  in
  write_bench_json "BENCH_elastic.json" json;
  let failed = ref false in
  if ratio < 0.85 then begin
    Printf.printf
      "FAIL: elastic converged to %.2fx the static plan's measured \
       throughput (>= 0.85x required)\n"
      ratio;
    failed := true
  end;
  if hot_degree < 2 then begin
    Printf.printf
      "FAIL: the controller never grew the hot operator (degree %d, >= 2 \
       required)\n"
      hot_degree;
    failed := true
  end;
  if r.Ss_elastic.Controller.total_downtime <= 0.0 then begin
    Printf.printf
      "FAIL: no reconfiguration downtime was measured (the loop must have \
       reconfigured at least once)\n";
    failed := true
  end;
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* Baseline comparison: SpinStreams fusion vs COLA-style packing *)

let cola () =
  section_header
    "Baseline — fusion strategies: SpinStreams (throughput-preserving) vs COLA (capacity packing)";
  Printf.printf "%-6s %6s | %9s %12s | %9s %12s %10s %8s\n" "topo" "ops"
    "SS units" "SS traffic" "PE units" "PE traffic" "t/s loss" "max rho";
  let acc_ss_units = ref 0 and acc_cola_units = ref 0 in
  let acc_ss_traffic = ref 0.0 and acc_cola_traffic = ref 0.0 in
  let acc_base_traffic = ref 0.0 in
  let losses = ref [] in
  let max_rhos = ref [] in
  List.iter
    (fun r ->
      let topology = r.topology in
      let base = r.predicted in
      let target = base.Steady_state.throughput in
      (* SpinStreams: automatic throughput-preserving fusion. *)
      let auto = Fusion.auto topology in
      let ss_units = Topology.size auto.Fusion.final in
      let separate = Array.init ss_units Fun.id in
      let ss_traffic =
        Cola_baseline.crossing_rate auto.Fusion.final
          auto.Fusion.final_analysis ~unit_of:separate
      in
      (* COLA: pack to sustain the achievable steady rate. *)
      let cola = Cola_baseline.partition ~target_rate:target topology in
      let base_traffic =
        Cola_baseline.crossing_rate topology base
          ~unit_of:(Array.init (Topology.size topology) Fun.id)
      in
      let loss =
        Stats.relative_error ~expected:target
          ~actual:(Float.min target cola.Cola_baseline.predicted_throughput)
      in
      acc_ss_units := !acc_ss_units + ss_units;
      acc_cola_units := !acc_cola_units + List.length cola.Cola_baseline.units;
      acc_ss_traffic := !acc_ss_traffic +. ss_traffic;
      acc_cola_traffic := !acc_cola_traffic +. cola.Cola_baseline.inter_unit_rate;
      acc_base_traffic := !acc_base_traffic +. base_traffic;
      losses := loss :: !losses;
      let max_rho = target /. cola.Cola_baseline.predicted_throughput in
      max_rhos := max_rho :: !max_rhos;
      Printf.printf "%-6d %6d | %9d %12.1f | %9d %12.1f %8.1f%% %8.2f\n" r.index
        (Topology.size topology) ss_units ss_traffic
        (List.length cola.Cola_baseline.units)
        cola.Cola_baseline.inter_unit_rate (pct loss) max_rho)
    (Lazy.force original_runs);
  Printf.printf "\ntotals: units %d (SpinStreams) vs %d (COLA)\n" !acc_ss_units
    !acc_cola_units;
  Printf.printf "inter-unit traffic %.0f vs %.0f items/s (unfused total %.0f)\n"
    !acc_ss_traffic !acc_cola_traffic !acc_base_traffic;
  Printf.printf "COLA loss vs achievable rate: mean %.1f%%, max %.1f%%\n"
    (pct (Stats.mean (Array.of_list !losses)))
    (pct (Stats.maximum (Array.of_list !losses)));
  Printf.printf "COLA max PE utilization at the target: mean %.2f of 1.0\n"
    (Stats.mean (Array.of_list !max_rhos));
  print_endline
    "(the two philosophies in one table: COLA packs operators to executor";
  print_endline
    "capacity, minimizing communication but driving PEs toward utilization";
  print_endline
    "1.0 with no headroom; SpinStreams fuses only while the steady state is";
  print_endline "untouched and keeps meta-operators under its utilization cap)"

(* ------------------------------------------------------------------ *)
(* Placement strategies on a cluster (the SPS-side step the paper defers) *)

let placement () =
  section_header
    "Placement — strategies for mapping optimized topologies onto a cluster";
  print_endline
    "Each optimized testbed topology is placed on 4-core nodes (enough nodes";
  print_endline
    "for its total load) with a 20us per-item serialization cost on";
  print_endline
    "node-crossing edges. Throughput retention is relative to a co-located";
  print_endline "(overhead-free) deployment.";
  print_newline ();
  let retention = Hashtbl.create 3 in
  let crossing = Hashtbl.create 3 in
  let strategies =
    [
      ("round-robin", fun c t -> Ss_placement.Placement.round_robin c t);
      ("load-aware", fun c t -> Ss_placement.Placement.load_aware c t);
      ("comm-aware", fun c t -> Ss_placement.Placement.communication_aware c t);
    ]
  in
  List.iter
    (fun (name, _) ->
      Hashtbl.replace retention name [];
      Hashtbl.replace crossing name [])
    strategies;
  List.iter
    (fun (_, _, plan, _) ->
      let topology = plan.Fission.topology in
      let base = plan.Fission.analysis.Steady_state.throughput in
      (* Node work at the achieved rates decides the cluster size. *)
      let total_work =
        Array.fold_left ( +. ) 0.0
          (Array.mapi
             (fun v m ->
               m.Steady_state.arrival_rate
               *. (Topology.operator topology v).Operator.service_time)
             plan.Fission.analysis.Steady_state.metrics)
      in
      let nodes = max 2 (int_of_float (Float.ceil (total_work /. 3.0))) in
      let cluster =
        Ss_placement.Cluster.homogeneous ~nodes ~cores:4 ()
      in
      List.iter
        (fun (name, strategy) ->
          let e =
            Ss_placement.Placement.evaluate cluster topology
              (strategy cluster topology)
          in
          let kept = e.Ss_placement.Placement.analysis.Steady_state.throughput /. base in
          Hashtbl.replace retention name (kept :: Hashtbl.find retention name);
          Hashtbl.replace crossing name
            (e.Ss_placement.Placement.inter_node_rate
             :: Hashtbl.find crossing name))
        strategies)
    (Lazy.force optimized_runs);
  Printf.printf "%-14s %18s %18s %16s\n" "strategy" "mean retention"
    "min retention" "mean crossing/s";
  List.iter
    (fun (name, _) ->
      let kept = Array.of_list (Hashtbl.find retention name) in
      let cross = Array.of_list (Hashtbl.find crossing name) in
      Printf.printf "%-14s %17.1f%% %17.1f%% %16.0f\n" name
        (pct (Stats.mean kept))
        (pct (Stats.minimum kept))
        (Stats.mean cross))
    strategies;
  print_newline ();
  print_endline
    "(communication-aware placement keeps saturated operators away from";
  print_endline
    "node boundaries, preserving the throughput the optimizer planned)"

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks of the core algorithms (bechamel) *)

let micro () =
  section_header "Micro-benchmarks — cost of the optimizer itself (bechamel)";
  let open Bechamel in
  let chain n =
    let ops =
      Array.init n (fun i ->
          Operator.make ~service_time:((1.0 +. float_of_int (i mod 7)) /. 1e4)
            (Printf.sprintf "op%d" i))
    in
    Topology.create_exn ops (List.init (n - 1) (fun i -> (i, i + 1, 1.0)))
  in
  let chain100 = chain 100 in
  let chain1000 = chain 1000 in
  let fig11_topology = fig11 [ 1.0; 1.2; 0.7; 2.0; 1.5; 0.2 ] in
  let random_topo = Random_topology.generate (Rng.create 5) in
  let xml = Ss_xml.Topology_xml.to_string random_topo in
  let sim_small () =
    let config =
      { Ss_sim.Engine.default_config with Ss_sim.Engine.warmup = 0.05; measure = 0.2 }
    in
    ignore (Ss_sim.Engine.run ~config fig11_topology)
  in
  let window = Ss_operators.Window.create ~length:1000 ~slide:10 in
  let skyline_fn =
    Ss_operators.Behavior.instantiate
      (Ss_operators.Spatial_ops.skyline ~length:200 ~slide:1 ())
  in
  let rng = Rng.create 3 in
  let tests =
    [
      Test.make ~name:"steady_state/chain100" (Staged.stage (fun () ->
          ignore (Steady_state.analyze chain100)));
      Test.make ~name:"steady_state/chain1000" (Staged.stage (fun () ->
          ignore (Steady_state.analyze chain1000)));
      Test.make ~name:"steady_state/random" (Staged.stage (fun () ->
          ignore (Steady_state.analyze random_topo)));
      Test.make ~name:"fission/random" (Staged.stage (fun () ->
          ignore (Fission.optimize random_topo)));
      Test.make ~name:"fusion_rate/fig11" (Staged.stage (fun () ->
          ignore (Fusion.service_time fig11_topology [ 2; 3; 4 ])));
      Test.make ~name:"fusion_apply/fig11" (Staged.stage (fun () ->
          ignore (Fusion.apply fig11_topology [ 2; 3; 4 ])));
      Test.make ~name:"xml/parse_random" (Staged.stage (fun () ->
          ignore (Ss_xml.Topology_xml.of_string xml)));
      Test.make ~name:"sim/fig11_0.25s" (Staged.stage sim_small);
      Test.make ~name:"window/push" (Staged.stage (fun () ->
          ignore (Ss_operators.Window.push window 1.0)));
      Test.make ~name:"skyline/tuple" (Staged.stage (fun () ->
          ignore
            (skyline_fn
               (Ss_operators.Tuple.make [| Rng.float rng; Rng.float rng |]))));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if !quick then 0.25 else 1.0))
      ~stabilize:true ()
  in
  Printf.printf "%-28s %16s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          match Analyze.OLS.estimates (Analyze.one ols instance raw) with
          | Some [ ns ] ->
              let time =
                if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
                else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
                else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
                else Printf.sprintf "%.0f ns" ns
              in
              Printf.printf "%-28s %16s\n" name time
          | Some _ | None -> Printf.printf "%-28s %16s\n" name "n/a")
        results)
    tests

(* ------------------------------------------------------------------ *)
(* sched: the Chase-Lev lock-free scheduler core against the retained
   mutex-and-condvar baseline (`Locked_pool). Three views:

   - "idle" (the headline gate): a steal-light trickle on the raw
     scheduler API -- a driver task sleeps between spawns so at most one
     task is runnable and the pool is parked the rest of the time. Every
     event then exercises exactly the idle protocol the rewrite targets:
     the locked baseline broadcasts its condvar and herds every sleeping
     worker through the global rescan mutex, the lock-free pool unparks
     exactly one worker. Workers are floored at 8 so the herd is visible
     even on small CI hosts, and the metric is events per CPU-second:
     sleeping threads cost nothing, so CPU time isolates the wakeup work.
     (Driving the same trickle through the full executor pipeline hides
     the difference on a single-core host: the hop chain keeps the one
     CPU busy, so the kernel coalesces the herd wakeups that a parked
     multicore pool would actually pay. The raw-scheduler form measures
     the protocol itself, host-independently.)
   - "serial" (gated): a 1-worker yield storm on the raw scheduler -- the
     per-activation cost of the Chase-Lev deque's fenced push/pop against
     an uncontended mutex Queue, with no parking involved. Budget: the
     lock-free core may not be more than 5% slower.
   - "saturated" (reported): the full-speed 50-operator identity testbed
     swept over worker counts, drains pinned to one message per
     activation (`Fixed 1) so per-activation scheduler cost is not
     amortized away by batching. Not gated: on an oversubscribed host
     multi-worker points measure preemption luck, not the scheduler.

   Locality groups: the gated comparison runs the idle trickle on a
   2-group pool with events spread across both groups (budget: within 5%
   of the ungrouped pool); the saturated testbed grouped by the 2-node
   communication-aware placement is reported alongside.

   All gated numbers come from paired rounds -- the two sides run back to
   back within each round, alternating order, and the score is the median
   of per-pair ratios -- because on a shared host absolute CPU rates
   drift by tens of percent between seconds and any unpaired comparison
   flakes. Emits BENCH_sched.json; exits 1 when a gate fails. *)

let sched () =
  section_header
    "sched -- Chase-Lev lock-free pool vs locked baseline (idle protocol + \
     50-operator testbed)";
  let cores = Stdlib.max 1 (Domain.recommended_domain_count ()) in
  let topo =
    Random_topology.generate_with_sizes (Rng.create testbed_seed) ~vertices:50
      ~edges:55
  in
  let registry _ = Ss_operators.Stateless_ops.identity in
  let actor_count t =
    let src = Topology.source t in
    let count = ref 0 in
    Array.iteri
      (fun v (o : Operator.t) ->
        count :=
          !count
          +
          if v = src || o.Operator.replicas = 1 then 1
          else o.Operator.replicas + 2)
      (Topology.operators t);
    !count
  in
  let run ?placement ~tuples ~scheduler t () =
    Ss_runtime.Executor.run ~scheduler ?placement ~batch:(`Fixed 1)
      ~timeout:300.0
      ~instrument:
        {
          Ss_runtime.Executor.default_instrument with
          sample_occupancy = false;
        }
      ~source:
        (Ss_runtime.Executor.source_of_fn ~count:tuples (fun i ->
             Ss_operators.Tuple.make ~key:i [| float_of_int i |]))
      ~registry t
  in
  (* Work items per CPU second with the trimmed estimator, for reported
     (ungated) absolute rates; see the telemetry section for why wall
     clock is unusable on this host. *)
  let cpu_rate ~units run =
    let rounds = if !quick then 5 else 8 in
    let trim = 1 in
    let cpus =
      Array.init rounds (fun _ ->
          Gc.full_major ();
          let c0 = Sys.time () in
          ignore (run ());
          Float.max (Sys.time () -. c0) 1e-9)
    in
    Array.sort compare cpus;
    let kept = rounds - trim in
    let total = Array.fold_left ( +. ) 0.0 (Array.sub cpus 0 kept) in
    float_of_int (units * kept) /. total
  in
  (* Paired comparison for the gated numbers: returns the median of the
     per-pair rate ratios (A relative to B) plus each side's median
     absolute rate. Order alternates because the second run of a pair
     sees warmer caches and a settled host, a measurable edge. *)
  let paired ~units runA runB =
    let rounds = if !quick then 6 else 8 in
    let cpu run =
      Gc.full_major ();
      let c0 = Sys.time () in
      ignore (run ());
      Float.max (Sys.time () -. c0) 1e-9
    in
    let ca = Array.make rounds 0.0 and cb = Array.make rounds 0.0 in
    for i = 0 to rounds - 1 do
      if i land 1 = 0 then begin
        ca.(i) <- cpu runA;
        cb.(i) <- cpu runB
      end
      else begin
        cb.(i) <- cpu runB;
        ca.(i) <- cpu runA
      end
    done;
    let ratios = Array.init rounds (fun i -> cb.(i) /. ca.(i)) in
    let median a =
      Array.sort compare a;
      (a.((rounds - 1) / 2) +. a.(rounds / 2)) /. 2.0
    in
    let r = median ratios in
    (r, float_of_int units /. median ca, float_of_int units /. median cb)
  in
  Printf.printf "testbed: %d operators as %d actors\n" (Topology.size topo)
    (actor_count topo);
  (* --- Gate 1: steal-light idle-protocol trickle --- *)
  let idle_workers = Stdlib.max 8 cores in
  let idle_events = if !quick then 4_000 else 6_000 in
  let idle_pause = 100e-6 in
  let idle_run ~impl ~grouped () =
    let pool =
      if grouped then
        Ss_sched.Sched.create ~workers:idle_workers
          ~groups:[| (idle_workers + 1) / 2; idle_workers / 2 |] ~impl ()
      else Ss_sched.Sched.create ~workers:idle_workers ~impl ()
    in
    let ng = Array.length (Ss_sched.Sched.groups pool) in
    Ss_sched.Sched.spawn pool (fun () ->
        for i = 1 to idle_events do
          Unix.sleepf idle_pause;
          Ss_sched.Sched.spawn ~group:(i mod ng) pool (fun () -> ())
        done);
    Ss_sched.Sched.run pool
  in
  let idle_ratio, lf_idle, lk_idle =
    paired ~units:idle_events
      (idle_run ~impl:`Lockfree ~grouped:false)
      (idle_run ~impl:`Locked ~grouped:false)
  in
  let per_event r = 1e6 /. r in
  Printf.printf
    "idle protocol (steal-light trickle, %d workers, %d events, %.0fus \
     pause):\n"
    idle_workers idle_events (idle_pause *. 1e6);
  Printf.printf "  chase-lev pool:   %10.0f events/CPU-s (%5.1f us/event)\n"
    lf_idle (per_event lf_idle);
  Printf.printf "  locked pool:      %10.0f events/CPU-s (%5.1f us/event)\n"
    lk_idle (per_event lk_idle);
  Printf.printf "  speedup:          %10.2fx (gate: >= 1.3x)\n" idle_ratio;
  (* --- Gate 2: grouped idle trickle within budget of ungrouped --- *)
  let grouped_ratio, grouped_idle, _ =
    paired ~units:idle_events
      (idle_run ~impl:`Lockfree ~grouped:true)
      (idle_run ~impl:`Lockfree ~grouped:false)
  in
  let grouped_regression_pct = 100.0 *. (1.0 -. grouped_ratio) in
  Printf.printf "  2-group pool:     %10.0f events/CPU-s (regression %.1f%%)\n"
    grouped_idle grouped_regression_pct;
  (* --- Gate 3: serial per-activation overhead, 1-worker yield storm --- *)
  let storm_tasks = 50 in
  let storm_yields = if !quick then 4_000 else 8_000 in
  let storm impl () =
    let pool = Ss_sched.Sched.create ~workers:1 ~impl () in
    for _ = 1 to storm_tasks do
      Ss_sched.Sched.spawn pool (fun () ->
          for _ = 1 to storm_yields do
            Ss_sched.Sched.yield ()
          done)
    done;
    Ss_sched.Sched.run pool
  in
  let storm_units = storm_tasks * storm_yields in
  let serial_ratio, lf_storm, lk_storm =
    paired ~units:storm_units (storm `Lockfree) (storm `Locked)
  in
  Printf.printf
    "serial overhead (1 worker, %d tasks x %d yields):\n" storm_tasks
    storm_yields;
  Printf.printf "  chase-lev pool:   %10.0f yields/CPU-s\n" lf_storm;
  Printf.printf "  locked pool:      %10.0f yields/CPU-s (ratio %.2fx, \
gate: >= 0.95x)\n"
    lk_storm serial_ratio;
  (* --- Reported: saturated testbed sweep --- *)
  let sat_tuples = if !quick then 3_000 else 15_000 in
  let sweep_counts =
    List.sort_uniq compare
      (if !quick then [ 1; 2; cores ] else [ 1; 2; 4; cores ])
  in
  let sweep =
    List.map
      (fun w ->
        let rate_of scheduler =
          cpu_rate ~units:sat_tuples (run ~tuples:sat_tuples ~scheduler topo)
        in
        (w, rate_of (`Pool w), rate_of (`Locked_pool w)))
      sweep_counts
  in
  Printf.printf
    "saturated sweep (%d tuples, batch=1, lock-free vs locked, reported):\n"
    sat_tuples;
  List.iter
    (fun (w, lf, lk) ->
      Printf.printf "  %d workers:  %10.0f vs %10.0f tuples/CPU-s (%.2fx)\n" w
        lf lk (lf /. lk))
    sweep;
  (* Locality groups on the saturated testbed: partition with the 2-node
     communication-aware placement and pin each vertex's actors to the
     matching worker group (reported; the gated grouped number is the
     idle trickle above). *)
  let grouped_groups = 2 in
  let assignment =
    let cluster =
      Ss_placement.Cluster.homogeneous ~nodes:grouped_groups
        ~cores:(Stdlib.max 1 (idle_workers / grouped_groups)) ()
    in
    Ss_placement.Placement.communication_aware cluster topo
  in
  let sat_grouped_ratio, sat_grouped, sat_ungrouped =
    paired ~units:sat_tuples
      (run ~tuples:sat_tuples ~placement:assignment
         ~scheduler:(`Pool idle_workers) topo)
      (run ~tuples:sat_tuples ~scheduler:(`Pool idle_workers) topo)
  in
  Printf.printf
    "locality groups on the saturated testbed (%d groups, %d workers, \
     communication-aware placement, reported):\n"
    grouped_groups idle_workers;
  Printf.printf "  grouped:          %10.0f tuples/CPU-s\n" sat_grouped;
  Printf.printf "  ungrouped:        %10.0f tuples/CPU-s (ratio %.2fx)\n"
    sat_ungrouped sat_grouped_ratio;
  (* Context: the pre-pool comparison (one domain per actor) and the
     fissioned topology the pool exists for; single wall-clock runs. *)
  let wall_rate (m : Ss_runtime.Executor.metrics) =
    m.Ss_runtime.Executor.source_rate
  in
  let m_dom = run ~tuples:sat_tuples ~scheduler:`Domain_per_actor topo () in
  Printf.printf "domain-per-actor (context): %10.0f tuples/s\n"
    (wall_rate m_dom);
  let fissioned = (Fission.optimize topo).Fission.topology in
  let fission_actors = actor_count fissioned in
  let m_fpool = run ~tuples:sat_tuples ~scheduler:(`Pool cores) fissioned () in
  Printf.printf
    "fissioned topology (%d actors) on the pool: %10.0f tuples/s (%s)\n"
    fission_actors (wall_rate m_fpool)
    (Format.asprintf "%a" Ss_runtime.Supervision.pp_outcome
       m_fpool.Ss_runtime.Executor.outcome);
  let json =
    Printf.sprintf
      {|{"section":"sched","cores":%d,"ratio":%.3f,"idle":{"workers":%d,"events":%d,"pause_us":%.0f,"lockfree_rate":%.1f,"locked_rate":%.1f,"ratio":%.3f,"grouped_rate":%.1f,"grouped_ratio":%.3f,"grouped_regression_pct":%.2f},"serial":{"tasks":%d,"yields":%d,"lockfree_rate":%.1f,"locked_rate":%.1f,"ratio":%.3f},"saturated":{"tuples":%d,"sweep":[%s],"grouped":{"groups":%d,"workers":%d,"grouped_rate":%.1f,"ungrouped_rate":%.1f,"ratio":%.3f}},"domains_rate":%.1f,"fission":{"actors":%d,"pool_rate":%.1f}}|}
      cores idle_ratio idle_workers idle_events
      (idle_pause *. 1e6)
      lf_idle lk_idle idle_ratio grouped_idle grouped_ratio
      grouped_regression_pct storm_tasks storm_yields lf_storm lk_storm
      serial_ratio sat_tuples
      (String.concat ","
         (List.map
            (fun (w, lf, lk) ->
              Printf.sprintf
                {|{"workers":%d,"lockfree_rate":%.1f,"locked_rate":%.1f,"ratio":%.3f}|}
                w lf lk (lf /. lk))
            sweep))
      grouped_groups idle_workers sat_grouped sat_ungrouped sat_grouped_ratio
      (wall_rate m_dom) fission_actors (wall_rate m_fpool)
  in
  write_bench_json "BENCH_sched.json" json;
  let failed = ref false in
  if idle_ratio < 1.3 then begin
    Printf.printf
      "FAIL: lock-free pool %.2fx the locked baseline on the idle-protocol \
       gate (>= 1.3x required)\n"
      idle_ratio;
    failed := true
  end;
  if serial_ratio < 0.95 then begin
    Printf.printf
      "FAIL: lock-free pool regresses the serial yield storm by %.1f%% \
       (budget 5%%)\n"
      (100.0 *. (1.0 -. serial_ratio));
    failed := true
  end;
  if grouped_regression_pct > 5.0 then begin
    Printf.printf
      "FAIL: 2-group pool regresses the idle trickle by %.1f%% (budget 5%%)\n"
      grouped_regression_pct;
    failed := true
  end;
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* telemetry: cost of runtime telemetry on the 50-operator identity testbed
   (worst case: the per-tuple work is almost pure dispatch, so the two
   clock reads and three histogram/counter updates per hop are maximally
   visible) and predicted-vs-measured latency on the Fig. 11 pipeline.
   Emits BENCH_telemetry.json and fails (exit 1) when telemetry costs more
   than 10% throughput. *)

let telemetry_bench () =
  section_header
    "telemetry — instrumentation overhead (50-operator testbed) and \
     predicted vs measured latency (Fig. 11)";
  let module H = Ss_telemetry.Histogram in
  let tuples = if !quick then 10_000 else 50_000 in
  let topo =
    Random_topology.generate_with_sizes (Rng.create testbed_seed) ~vertices:50
      ~edges:55
  in
  let registry _ = Ss_operators.Stateless_ops.identity in
  let workers = Stdlib.max 1 (Domain.recommended_domain_count ()) in
  let run ~telemetry =
    Ss_runtime.Executor.run ~scheduler:(`Pool workers) ~timeout:300.0
      ~instrument:
        { Ss_runtime.Executor.default_instrument with
          sample_occupancy = false; telemetry }
      ~source:
        (Ss_runtime.Executor.source_of_fn ~count:tuples (fun i ->
             Ss_operators.Tuple.make ~key:i [| float_of_int i |]))
      ~registry topo
  in
  (* Overhead is computed on process-CPU-time throughput, not wall clock:
     this host throttles the container on a sub-run timescale, so wall-clock
     rates of identical runs swing 2x and even back-to-back off/on pairs do
     not see the same machine. Throttled time burns no CPU, so tuples per
     CPU second is stable, and the overhead ratio measures exactly what the
     guard cares about — extra cycles per tuple. CPU-time noise is
     one-sided (interrupts, GC variance, scheduler crosstalk only ever add
     cycles), so each side drops its slowest rounds and averages the rest —
     a trimmed version of the standard min-time estimator that is stable on
     a noisy virtualized host. *)
  let timed_run ~telemetry =
    (* Pay any outstanding GC debt before the clock starts, so a run is not
       billed for garbage its predecessor left behind. *)
    Gc.full_major ();
    let c0 = Sys.time () in
    let m = run ~telemetry in
    let cpu = Float.max (Sys.time () -. c0) 1e-9 in
    (m, cpu)
  in
  let rounds = if !quick then 15 else 12 in
  let trim = 2 in
  let pairs =
    Array.init rounds (fun _ ->
        let off = timed_run ~telemetry:false in
        let on = timed_run ~telemetry:true in
        (off, on))
  in
  let trimmed_rate side =
    let cpus = Array.map (fun p -> snd (side p)) pairs in
    Array.sort compare cpus;
    let kept = rounds - trim in
    let total = Array.fold_left ( +. ) 0.0 (Array.sub cpus 0 kept) in
    float_of_int (tuples * kept) /. total
  in
  let rate_off = trimmed_rate fst in
  let rate_on = trimmed_rate snd in
  let m_on = fst (snd pairs.(rounds - 1)) in
  let overhead_pct = 100.0 *. (1.0 -. (rate_on /. rate_off)) in
  Printf.printf
    "testbed (%d ops, %d tuples, pool of %d, %d rounds per side, slowest %d \
     dropped):\n"
    (Topology.size topo) tuples workers rounds trim;
  Printf.printf "  telemetry off: %10.0f tuples/CPU-s\n" rate_off;
  Printf.printf "  telemetry on:  %10.0f tuples/CPU-s (overhead %.1f%%)\n"
    rate_on overhead_pct;
  let report =
    match m_on.Ss_runtime.Executor.telemetry with
    | Some r -> r
    | None -> failwith "telemetry run returned no report"
  in
  let merged = H.create () in
  Array.iter
    (fun h -> H.merge_into ~into:merged h)
    report.Ss_telemetry.Telemetry.latency;
  let snap = H.snapshot merged in
  Printf.printf
    "  tuple age over all operators: p50 %.3f ms, p95 %.3f ms, p99 %.3f \
     ms, max %.3f ms (%d samples)\n"
    (snap.H.p50 *. 1e3) (snap.H.p95 *. 1e3) (snap.H.p99 *. 1e3)
    (snap.H.max *. 1e3) snap.H.count;
  (* Fig. 11: the simulator's predicted latency distribution against the
     runtime's measured one, same measurement point (tuple age at behavior
     start), bottom-line data for the observability experiment. The runtime
     twin uses sleeping (not busy-waiting) behaviors, one domain per actor
     and a source paced at its declared service time, so even a single core
     can emulate the dedicated-server queueing network the simulator
     models; mailbox capacity matches the simulator's buffers. *)
  let fig11_topology = fig11 [ 1.0; 1.2; 0.7; 2.0; 1.5; 0.2 ] in
  let sim =
    Ss_sim.Engine.run
      ~config:{ (sim_config ()) with Ss_sim.Engine.track_latency = true }
      fig11_topology
  in
  let sleep_registry v =
    let op = Topology.operator fig11_topology v in
    Ss_operators.Behavior.make ~name:op.Operator.name
      ~input_selectivity:op.Operator.input_selectivity
      ~output_selectivity:op.Operator.output_selectivity
      (fun () ->
        let credit = ref 0.0 in
        fun t ->
          Unix.sleepf op.Operator.service_time;
          credit := !credit +. Operator.selectivity_factor op;
          let k = int_of_float !credit in
          credit := !credit -. float_of_int k;
          List.init k (fun _ -> t))
  in
  let fig_tuples = if !quick then 1_000 else 2_000 in
  let src_service =
    (Topology.operator fig11_topology (Topology.source fig11_topology))
      .Operator.service_time
  in
  let m_fig =
    Ss_runtime.Executor.run ~scheduler:`Domain_per_actor ~timeout:300.0
      ~mailbox_capacity:(sim_config ()).Ss_sim.Engine.buffer_capacity
      ~instrument:
        {
          Ss_runtime.Executor.sample_occupancy = false;
          telemetry = true;
          telemetry_sample = 1;
        }
      ~source:
        (Ss_runtime.Executor.source_of_fn ~count:fig_tuples (fun i ->
             Unix.sleepf src_service;
             Ss_operators.Tuple.make ~key:i [| float_of_int i |]))
      ~registry:sleep_registry fig11_topology
  in
  let fig_report =
    match m_fig.Ss_runtime.Executor.telemetry with
    | Some r -> r
    | None -> failwith "fig11 telemetry run returned no report"
  in
  let sim_lat =
    match sim.Ss_sim.Engine.latency with
    | Some l -> l
    | None -> failwith "simulation returned no latency histograms"
  in
  Printf.printf
    "fig11 latency, predicted (simulator) vs measured (runtime, %d \
     tuples):\n%-10s %12s %12s %12s %12s\n"
    fig_tuples "operator" "pred p50" "meas p50" "pred p95" "meas p95";
  let fig_rows = ref [] in
  Array.iteri
    (fun v h_meas ->
      let h_pred = sim_lat.(v) in
      if not (H.is_empty h_meas) && not (H.is_empty h_pred) then begin
        let p = H.snapshot h_pred and m = H.snapshot h_meas in
        let name = (Topology.operator fig11_topology v).Operator.name in
        Printf.printf "%-10s %9.2f ms %9.2f ms %9.2f ms %9.2f ms\n" name
          (p.H.p50 *. 1e3) (m.H.p50 *. 1e3) (p.H.p95 *. 1e3)
          (m.H.p95 *. 1e3);
        fig_rows :=
          Printf.sprintf
            {|{"operator":"%s","pred_p50_ms":%.3f,"meas_p50_ms":%.3f,"pred_p95_ms":%.3f,"meas_p95_ms":%.3f}|}
            name (p.H.p50 *. 1e3) (m.H.p50 *. 1e3) (p.H.p95 *. 1e3)
            (m.H.p95 *. 1e3)
          :: !fig_rows
      end)
    fig_report.Ss_telemetry.Telemetry.latency;
  let json =
    Printf.sprintf
      {|{"section":"telemetry","tuples":%d,"workers":%d,"rounds":%d,"rate_off":%.1f,"rate_on":%.1f,"overhead_pct":%.2f,"latency_ms":{"p50":%.3f,"p95":%.3f,"p99":%.3f,"max":%.3f,"count":%d},"fig11":[%s]}|}
      tuples workers rounds rate_off rate_on overhead_pct
      (snap.H.p50 *. 1e3) (snap.H.p95 *. 1e3) (snap.H.p99 *. 1e3)
      (snap.H.max *. 1e3) snap.H.count
      (String.concat "," (List.rev !fig_rows))
  in
  write_bench_json "BENCH_telemetry.json" json;
  if overhead_pct > 10.0 then begin
    Printf.printf
      "FAIL: telemetry overhead %.1f%% exceeds the 10%% budget\n" overhead_pct;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* mailbox: the lock-free SPSC ring fast path against the locking mailbox,
   and the occupancy-driven adaptive drain against fixed batch sizes.
   Emits BENCH_mailbox.json and fails (exit 1) when the ring does not beat
   the locking queue by >= 1.5x on the two-domain handoff, or when `Auto
   channel selection regresses the 50-operator testbed by more than 5%
   against `Locking. *)

let mailbox_bench () =
  section_header
    "mailbox — SPSC ring vs locking mailbox, fixed vs adaptive drains";
  let module Mb = Ss_runtime.Mailbox in
  let cores = Stdlib.max 1 (Domain.recommended_domain_count ()) in
  (* Raw channel throughput: one producer domain spinning tuples into the
     channel, the main domain spinning them out — the executor's edge
     traffic with every actor cost removed. Both sides busy-poll, so the
     wall clock is the honest denominator; per-side best-of-rounds is the
     usual min-time estimator. *)
  let handoff create n =
    let mb = create ~capacity:1024 in
    let t0 = Unix.gettimeofday () in
    let producer =
      Domain.spawn (fun () ->
          for i = 1 to n do
            while not (Mb.try_put mb i) do
              Domain.cpu_relax ()
            done
          done)
    in
    let consumed = ref 0 in
    while !consumed < n do
      match Mb.try_take mb with
      | Some _ -> incr consumed
      | None -> Domain.cpu_relax ()
    done;
    Domain.join producer;
    float_of_int n /. Float.max (Unix.gettimeofday () -. t0) 1e-9
  in
  let best rounds f =
    let r = ref 0.0 in
    for _ = 1 to rounds do
      r := Float.max !r (f ())
    done;
    !r
  in
  (* Per-operation cost with no cross-domain traffic: bursts of put/take
     pairs on one domain. This isolates what the fast path removes — the
     mutex round-trip per operation — and is meaningful even when the host
     has a single core and the two-domain numbers are preemption-bound. *)
  let alternate create n =
    let mb = create ~capacity:1024 in
    let burst = 64 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n / burst do
      for i = 1 to burst do
        ignore (Mb.try_put mb i)
      done;
      for _ = 1 to burst do
        ignore (Mb.try_take mb)
      done
    done;
    float_of_int n /. Float.max (Unix.gettimeofday () -. t0) 1e-9
  in
  let n = if !quick then 200_000 else 1_000_000 in
  let rounds = if !quick then 3 else 5 in
  let ring_rate =
    best rounds (fun () -> handoff (fun ~capacity -> Mb.create_spsc ~capacity) n)
  in
  let lock_rate =
    best rounds (fun () -> handoff (fun ~capacity -> Mb.create ~capacity) n)
  in
  let ratio = ring_rate /. lock_rate in
  Printf.printf "two-domain handoff (%d items, best of %d rounds):\n" n rounds;
  Printf.printf "  spsc ring:       %12.0f items/s\n" ring_rate;
  Printf.printf "  locking mailbox: %12.0f items/s\n" lock_rate;
  Printf.printf "  speedup:         %12.2fx\n" ratio;
  let ring_alt =
    best rounds (fun () ->
        alternate (fun ~capacity -> Mb.create_spsc ~capacity) n)
  in
  let lock_alt =
    best rounds (fun () -> alternate (fun ~capacity -> Mb.create ~capacity) n)
  in
  let alt_ratio = ring_alt /. lock_alt in
  Printf.printf "single-domain put/take bursts (%d items):\n" n;
  Printf.printf "  spsc ring:       %12.0f items/s\n" ring_alt;
  Printf.printf "  locking mailbox: %12.0f items/s\n" lock_alt;
  Printf.printf "  speedup:         %12.2fx\n" alt_ratio;
  (* Executor-level comparisons use tuples per CPU second with the trimmed
     estimator (see the telemetry section for why wall clock is unusable on
     this host). *)
  let cpu_rate ~tuples run =
    let rounds = if !quick then 5 else 8 in
    let trim = 1 in
    let cpus =
      Array.init rounds (fun _ ->
          Gc.full_major ();
          let c0 = Sys.time () in
          ignore (run ());
          Float.max (Sys.time () -. c0) 1e-9)
    in
    Array.sort compare cpus;
    let kept = rounds - trim in
    let total = Array.fold_left ( +. ) 0.0 (Array.sub cpus 0 kept) in
    float_of_int (tuples * kept) /. total
  in
  let registry _ = Ss_operators.Stateless_ops.identity in
  let source tuples =
    Ss_runtime.Executor.source_of_fn ~count:tuples (fun i ->
        Ss_operators.Tuple.make ~key:i [| float_of_int i |])
  in
  let run ?channels ?batch ~tuples topo () =
    Ss_runtime.Executor.run ~scheduler:(`Pool cores) ?channels ?batch
      ~timeout:300.0
      ~instrument:
        {
          Ss_runtime.Executor.default_instrument with
          sample_occupancy = false;
        }
      ~source:(source tuples) ~registry topo
  in
  (* A pure 1 -> 1 pipeline: every edge is ring-eligible, so this is the
     executor-level ceiling of the fast path. *)
  let pipeline =
    let ops =
      Array.init 5 (fun i ->
          Operator.make ~service_time:1e-6 (Printf.sprintf "p%d" i))
    in
    Topology.create_exn ops (List.init 4 (fun i -> (i, i + 1, 1.0)))
  in
  let ptuples = if !quick then 10_000 else 40_000 in
  let pipe_auto = cpu_rate ~tuples:ptuples (run ~channels:`Auto ~tuples:ptuples pipeline) in
  let pipe_lock =
    cpu_rate ~tuples:ptuples (run ~channels:`Locking ~tuples:ptuples pipeline)
  in
  Printf.printf "1->1 pipeline, executor pool of %d (%d tuples):\n" cores
    ptuples;
  Printf.printf "  channels auto:    %10.0f tuples/CPU-s\n" pipe_auto;
  Printf.printf "  channels locking: %10.0f tuples/CPU-s\n" pipe_lock;
  (* Fixed-vs-adaptive drain sweep on the same pipeline. *)
  let sweep_points =
    [
      ("fixed1", `Fixed 1);
      ("fixed8", `Fixed 8);
      ("fixed32", `Fixed 32);
      ("adaptive32", `Adaptive 32);
    ]
  in
  let sweep =
    List.map
      (fun (name, batch) ->
        (name, cpu_rate ~tuples:ptuples (run ~batch ~tuples:ptuples pipeline)))
      sweep_points
  in
  Printf.printf "drain-policy sweep (1->1 pipeline):\n";
  List.iter
    (fun (name, r) -> Printf.printf "  %-12s %10.0f tuples/CPU-s\n" name r)
    sweep;
  (* The 50-operator testbed of the sched section: fan-in edges keep the
     locking mailbox, so this checks the mixed case for regressions. *)
  let testbed_topo =
    Random_topology.generate_with_sizes (Rng.create testbed_seed) ~vertices:50
      ~edges:55
  in
  let ttuples = if !quick then 5_000 else 30_000 in
  let tb_auto =
    cpu_rate ~tuples:ttuples (run ~channels:`Auto ~tuples:ttuples testbed_topo)
  in
  let tb_lock =
    cpu_rate ~tuples:ttuples
      (run ~channels:`Locking ~tuples:ttuples testbed_topo)
  in
  let regression_pct = 100.0 *. (1.0 -. (tb_auto /. tb_lock)) in
  Printf.printf "50-operator testbed (%d tuples):\n" ttuples;
  Printf.printf "  channels auto:    %10.0f tuples/CPU-s\n" tb_auto;
  Printf.printf "  channels locking: %10.0f tuples/CPU-s (auto regression %.1f%%)\n"
    tb_lock regression_pct;
  (* Fig. 11 tuples per CPU second under the default (auto) channels — the
     paper topology's bottom line, recorded so later changes can be held to
     it. *)
  let fig11_topology = fig11 [ 1.0; 1.2; 0.7; 2.0; 1.5; 0.2 ] in
  let ftuples = if !quick then 10_000 else 40_000 in
  let fig11_rate =
    cpu_rate ~tuples:ftuples (run ~tuples:ftuples fig11_topology)
  in
  Printf.printf "fig11 topology: %10.0f tuples/CPU-s\n" fig11_rate;
  let json =
    Printf.sprintf
      {|{"section":"mailbox","cores":%d,"handoff":{"items":%d,"ring_rate":%.1f,"locking_rate":%.1f,"ratio":%.3f},"alternate":{"items":%d,"ring_rate":%.1f,"locking_rate":%.1f,"ratio":%.3f},"pipeline":{"tuples":%d,"auto_rate":%.1f,"locking_rate":%.1f},"sweep":[%s],"testbed":{"tuples":%d,"auto_rate":%.1f,"locking_rate":%.1f,"regression_pct":%.2f},"fig11":{"tuples":%d,"rate":%.1f}}|}
      cores n ring_rate lock_rate ratio n ring_alt lock_alt alt_ratio ptuples
      pipe_auto pipe_lock
      (String.concat ","
         (List.map
            (fun (name, r) ->
              Printf.sprintf {|{"batch":"%s","rate":%.1f}|} name r)
            sweep))
      ttuples tb_auto tb_lock regression_pct ftuples fig11_rate
  in
  write_bench_json "BENCH_mailbox.json" json;
  let failed = ref false in
  (* The 1.5x gate applies to the two-domain handoff when the host can
     actually run producer and consumer in parallel; on a single core that
     measurement is preemption-bound, so the per-operation burst ratio
     carries the gate instead. *)
  let gate_name, gate_ratio =
    if cores < 2 then ("single-domain burst", alt_ratio)
    else ("two-domain handoff", ratio)
  in
  if gate_ratio < 1.5 then begin
    Printf.printf "FAIL: ring speedup %.2fx (%s) below the 1.5x gate\n"
      gate_ratio gate_name;
    failed := true
  end;
  if regression_pct > 5.0 then begin
    Printf.printf
      "FAIL: auto channels regress the testbed by %.1f%% (budget 5%%)\n"
      regression_pct;
    failed := true
  end;
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* log: the durable sharded ingest path (lib/log). Measures ingest MB/s
   under each fsync policy, read-path replay throughput, torn-tail
   recovery time on reopen, and replay of an uncommitted consumer-group
   suffix. Emits BENCH_log.json and fails (exit 1) when group commit
   ([Every 256]) does not amortize fsyncs to at least 5x the per-record
   ([Every 1]) ingest rate. *)

let log_bench () =
  let module L = Ss_log.Log in
  Printf.printf "\n=== log: durable sharded ingest (lib/log) ===\n\n";
  let records = if !quick then 5_000 else 50_000 in
  (* Per-record fsync pays one fsync per append; fewer records keep the
     wall time bounded without changing the measured rate. *)
  let sync_records = if !quick then 300 else 2_000 in
  let payload_bytes = 128 in
  let payload = Bytes.make payload_bytes 'x' in
  let rec rm_rf path =
    match Unix.lstat path with
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
    | _ -> Unix.unlink path
  in
  let scratch = ref [] in
  let fresh_dir tag =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ss_bench_log_%s_%d" tag (Unix.getpid ()))
    in
    rm_rf d;
    scratch := d :: !scratch;
    d
  in
  let ingest ~fsync ~n tag =
    let dir = fresh_dir tag in
    let log = L.create ~config:{ L.default_config with L.fsync } dir in
    let t0 = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      ignore (L.append log ~key:i payload)
    done;
    L.sync log;
    let dt = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
    let mb_s = float_of_int (L.size_bytes log) /. dt /. 1e6 in
    L.close log;
    (mb_s, dir)
  in
  let mb_every1, _ = ingest ~fsync:(L.Every 1) ~n:sync_records "every1" in
  Printf.printf "ingest fsync=every:1     %8.1f MB/s  (%d records)\n" mb_every1
    sync_records;
  let mb_every256, batched_dir =
    ingest ~fsync:(L.Every 256) ~n:records "every256"
  in
  Printf.printf "ingest fsync=every:256   %8.1f MB/s  (%d records)\n"
    mb_every256 records;
  let mb_interval, _ = ingest ~fsync:(L.Interval 0.01) ~n:records "interval" in
  Printf.printf "ingest fsync=interval:10 %8.1f MB/s  (%d records)\n"
    mb_interval records;
  let mb_never, never_dir = ingest ~fsync:L.Never ~n:records "never" in
  Printf.printf "ingest fsync=never       %8.1f MB/s  (%d records)\n" mb_never
    records;
  let batched_ratio = mb_every256 /. Float.max mb_every1 1e-9 in
  Printf.printf "group commit amortization: %.1fx per-record fsync\n\n"
    batched_ratio;
  (* Replay: reopen the batched log and stream every partition back. *)
  let replay_log = L.create batched_dir in
  let t0 = Unix.gettimeofday () in
  let replayed = ref 0 in
  for p = 0 to L.partitions replay_log - 1 do
    let cursor = ref 0 in
    let rec drain () =
      match L.read replay_log ~partition:p ~from:!cursor ~max_records:1024 () with
      | [] -> ()
      | batch ->
          replayed := !replayed + List.length batch;
          cursor := fst (List.nth batch (List.length batch - 1)) + 1;
          drain ()
    in
    drain ()
  done;
  let replay_dt = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
  let replay_mb_s = float_of_int (L.size_bytes replay_log) /. replay_dt /. 1e6 in
  let replay_rate = float_of_int !replayed /. replay_dt in
  Printf.printf "replay: %d records in %.3fs  (%.1f MB/s, %.0f records/s)\n"
    !replayed replay_dt replay_mb_s replay_rate;
  (* Recovery-replay: commit a mid-stream position for a consumer group
     and measure redelivery of the uncommitted suffix — the work a
     restarted pipeline performs before it is caught up. *)
  let suffix = ref 0 in
  let t0 = Unix.gettimeofday () in
  for p = 0 to L.partitions replay_log - 1 do
    let fin = L.end_offset replay_log ~partition:p in
    L.commit replay_log ~group:"bench" ~partition:p (fin / 2);
    let cursor = ref (L.committed replay_log ~group:"bench" ~partition:p) in
    let rec drain () =
      match L.read replay_log ~partition:p ~from:!cursor ~max_records:1024 () with
      | [] -> ()
      | batch ->
          suffix := !suffix + List.length batch;
          cursor := fst (List.nth batch (List.length batch - 1)) + 1;
          drain ()
    in
    drain ()
  done;
  let suffix_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  L.close replay_log;
  Printf.printf "recovery replay: %d uncommitted records in %.2fms\n" !suffix
    suffix_ms;
  (* Torn tail: chop bytes off one partition's final segment (a crash
     mid-append) and time the reopen that detects and truncates it. *)
  let p0 = Filename.concat never_dir "p0" in
  let segs =
    Sys.readdir p0 |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".seg")
    |> List.sort compare
  in
  let last_seg = Filename.concat p0 (List.nth segs (List.length segs - 1)) in
  let fd = Unix.openfile last_seg [ Unix.O_WRONLY ] 0o644 in
  let len = (Unix.fstat fd).Unix.st_size in
  Unix.ftruncate fd (len - 3);
  Unix.close fd;
  let t0 = Unix.gettimeofday () in
  let recovered = L.create never_dir in
  let reopen_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let torn = L.torn_tails_recovered recovered in
  L.close recovered;
  Printf.printf "torn-tail recovery: reopen %.2fms, %d tail(s) truncated\n"
    reopen_ms torn;
  List.iter rm_rf !scratch;
  let json =
    Printf.sprintf
      {|{"section":"log","records":%d,"payload_bytes":%d,"ingest_mb_s":{"every1":%.2f,"every256":%.2f,"interval_10ms":%.2f,"never":%.2f},"batched_vs_per_record":%.2f,"replay":{"records":%d,"mb_s":%.2f,"records_s":%.1f},"recovery":{"suffix_records":%d,"suffix_replay_ms":%.2f,"torn_tails":%d,"reopen_ms":%.2f}}|}
      records payload_bytes mb_every1 mb_every256 mb_interval mb_never
      batched_ratio !replayed replay_mb_s replay_rate !suffix suffix_ms torn
      reopen_ms
  in
  write_bench_json "BENCH_log.json" json;
  let failed = ref false in
  if batched_ratio < 5.0 then begin
    Printf.printf
      "FAIL: group commit only %.1fx per-record fsync (>= 5x required)\n"
      batched_ratio;
    failed := true
  end;
  if torn < 1 then begin
    Printf.printf "FAIL: torn tail was not detected on reopen\n";
    failed := true
  end;
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* event: event-time watermarks under disordered input.

   One pipeline (source -> keyed 1s tumbling count window -> sink), one
   bursty disordered stream (about 12.8% of tuples arrive behind the
   running max timestamp, positional delays up to 64 tuples = 64ms of
   event time), a bounded-out-of-orderness watermark that covers the
   disorder (100ms > 64ms). Three claims, each gated:

   - overhead: in-band watermarks are cheap. Paired rounds (same stream,
     event time off vs on), median of per-pair CPU ratios; the event-time
     run must sustain >= 0.8x the processing-time rate.
   - zero on-time loss: with the bound covering the disorder no tuple is
     late, and the Count aggregate conserves mass — the sum of fired
     window counts equals the number of tuples emitted (the end-of-stream
     infinity watermark flushes the tail windows).
   - prediction: the watermark-driven firing selectivity
     keys / (rate * slide) predicts the window's measured output rate
     (fired tuples per second of event time) within 15% — the Fig. 11
     methodology applied to the event-time tier.

   Emits BENCH_event.json; exits 1 when a gate fails. *)

let event_bench () =
  section_header
    "event -- watermark propagation under disordered input (measured)";
  let rate = 1000.0 and keys = 64 and n = if !quick then 20_000 else 60_000 in
  let slide = 1.0 in
  let burst = 32 and period = 256 in
  let disorder = Stream_gen.Bursty { burst; period } in
  let bound = 0.1 in
  let spec = { Stream_gen.default_spec with Stream_gen.rate } in
  let stream =
    let rng = Rng.create 7 in
    Stream_gen.reorder rng disorder (Stream_gen.tuples ~spec rng n)
  in
  let disorder_fraction = Stream_gen.disorder_fraction stream in
  Printf.printf "stream: %d tuples at %.0f t/s event time, %.1f%% disordered\n"
    n rate (pct disorder_fraction);
  (* Sink behavior summing the integer Count aggregates it receives; the
     sink is one actor, and the executor's join publishes the final value. *)
  let sunk = Atomic.make 0 in
  let sink_behavior =
    Ss_operators.Behavior.make ~name:"count_sink" (fun () t ->
        (match t.Ss_operators.Tuple.values with
        | [| v |] -> ignore (Atomic.fetch_and_add sunk (int_of_float v))
        | _ -> ());
        [])
  in
  let window_behavior =
    Ss_event.Event_window.behavior ~agg:Ss_event.Event_window.Count
      ~length:slide ~slide ()
  in
  let registry = function
    | 1 -> window_behavior
    | 2 -> sink_behavior
    | _ -> Ss_operators.Stateless_ops.identity
  in
  let ops =
    [|
      Operator.source ~rate "src";
      Ss_event.Event_model.window_operator ~name:"ewin" ~keys ~rate ~slide
        ~service_time:5e-6 ();
      Operator.make ~service_time:1e-6 "snk";
    |]
  in
  let topo = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let event_time =
    Ss_event.Event_time.config (Ss_event.Watermark.Bounded bound)
  in
  let run ?event_time () =
    Ss_runtime.Executor.run ?event_time ~timeout:120.0
      ~instrument:
        {
          Ss_runtime.Executor.default_instrument with
          sample_occupancy = false;
        }
      ~source:(Ss_runtime.Executor.source_of_list stream)
      ~registry topo
  in
  (* Correctness run: late count and mass conservation are deterministic. *)
  Atomic.set sunk 0;
  let m = run ~event_time () in
  let late = Array.fold_left ( + ) 0 m.Ss_runtime.Executor.late in
  let on_time_loss = n - Atomic.get sunk in
  let fired = m.Ss_runtime.Executor.produced.(1) in
  let span = float_of_int n /. rate in
  let measured_out = float_of_int fired /. span in
  let predicted_out =
    Ss_event.Event_model.predicted_output_rate ~keys ~rate ~slide ()
  in
  let prediction_error =
    Stats.relative_error ~expected:predicted_out ~actual:measured_out
  in
  Printf.printf
    "event-time run: %d late, %d window firings (sum of counts %d of %d \
     emitted)\n"
    late fired (Atomic.get sunk) n;
  Printf.printf
    "window output rate: %.1f fired/s of event time (predicted %.1f, error \
     %.2f%%)\n"
    measured_out predicted_out (pct prediction_error);
  (* Overhead: paired rounds, median of per-pair CPU-time ratios (absolute
     rates drift on a shared host; pairs cancel the drift). *)
  let rounds = if !quick then 5 else 7 in
  let cpu run =
    Gc.full_major ();
    let c0 = Sys.time () in
    ignore (run ());
    Float.max (Sys.time () -. c0) 1e-9
  in
  let c_off = Array.make rounds 0.0 and c_on = Array.make rounds 0.0 in
  for i = 0 to rounds - 1 do
    if i land 1 = 0 then begin
      c_off.(i) <- cpu (fun () -> run ());
      c_on.(i) <- cpu (fun () -> run ~event_time ())
    end
    else begin
      c_on.(i) <- cpu (fun () -> run ~event_time ());
      c_off.(i) <- cpu (fun () -> run ())
    end
  done;
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    (a.((rounds - 1) / 2) +. a.(rounds / 2)) /. 2.0
  in
  let ratios = Array.init rounds (fun i -> c_off.(i) /. c_on.(i)) in
  let ratio = median ratios in
  let rate_processing = float_of_int n /. median c_off in
  let rate_event = float_of_int n /. median c_on in
  Printf.printf
    "throughput: %.0f t/CPU-s processing time, %.0f t/CPU-s event time \
     (%.2fx, gate >= 0.8x)\n"
    rate_processing rate_event ratio;
  let json =
    Printf.sprintf
      {|{"section":"event","tuples":%d,"event_rate":%.1f,"keys":%d,"slide_s":%.3f,"watermark_bound_s":%.3f,"disorder_fraction":%.4f,"rate_processing":%.1f,"rate_event":%.1f,"ratio":%.3f,"late":%d,"on_time_loss":%d,"fired":%d,"predicted_out":%.2f,"measured_out":%.2f,"prediction_error":%.4f}|}
      n rate keys slide bound disorder_fraction rate_processing rate_event
      ratio late on_time_loss fired predicted_out measured_out
      prediction_error
  in
  write_bench_json "BENCH_event.json" json;
  let failed = ref false in
  if ratio < 0.8 then begin
    Printf.printf
      "FAIL: event-time run sustains only %.2fx the processing-time rate \
       (>= 0.8x required)\n"
      ratio;
    failed := true
  end;
  if late <> 0 then begin
    Printf.printf
      "FAIL: %d tuples counted late although the watermark bound covers \
       the disorder\n"
      late;
    failed := true
  end;
  if on_time_loss <> 0 then begin
    Printf.printf
      "FAIL: %d on-time tuples lost (window counts do not conserve mass)\n"
      on_time_loss;
    failed := true
  end;
  if prediction_error > 0.15 then begin
    Printf.printf
      "FAIL: firing-selectivity prediction off by %.1f%% (<= 15%% required)\n"
      (pct prediction_error);
    failed := true
  end;
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* fusion -- compiled closed-loop fused chains vs the interpreted
   meta-operator (Algorithm 4 walk) vs no fusion at all, on a fusable
   linear chain of catalog identity operators. The gated number is the
   compiled-vs-interpreted CPU-rate ratio from paired alternating rounds
   (median of per-pair ratios, like the sched bench): the closed loop must
   be at least 2x the interpreted walk. Counts are asserted identical
   across all three executions before anything is timed. Emits
   BENCH_fusion.json; exits 1 when the gate fails. *)

let fusion_bench () =
  section_header
    "fusion -- compiled closed-loop fused chain vs interpreted meta-operator";
  let members = 24 in
  let tuples = if !quick then 40_000 else 200_000 in
  let n = members + 1 in
  let ops =
    Array.init n (fun v ->
        if v = 0 then Operator.source ~rate:1e6 "src"
        else Operator.make ~service_time:1e-8 (Printf.sprintf "identity#%d" v))
  in
  let edges = List.init members (fun i -> (i, i + 1, 1.0)) in
  let topo = Topology.create_exn ops edges in
  let chain = List.init members (fun i -> i + 1) in
  let registry _ = Ss_operators.Stateless_ops.identity in
  (* Big fixed drains and a deep source mailbox keep the source->meta
     handoff (identical on both sides of the gate) from diluting the
     per-member ratio under measurement. *)
  let run ?fused ?fusion () =
    Ss_runtime.Executor.run ?fused ?fusion ~scheduler:(`Pool 2)
      ~mailbox_capacity:1024 ~batch:(`Fixed 256)
      ~instrument:
        {
          Ss_runtime.Executor.default_instrument with
          telemetry = false;
          sample_occupancy = false;
        }
      ~source:
        (Ss_runtime.Executor.source_of_fn ~count:tuples (fun i ->
             Ss_operators.Tuple.make ~key:i [| float_of_int i |]))
      ~registry topo
  in
  let run_compiled () = run ~fused:[ chain ] ~fusion:`Compiled () in
  let run_interpreted () = run ~fused:[ chain ] ~fusion:`Interpreted () in
  let run_unfused () = run () in
  (* Count parity first: the optimization must be unobservable. *)
  let counts m = m.Ss_runtime.Executor.consumed in
  let c_compiled = counts (run_compiled ()) in
  let c_interpreted = counts (run_interpreted ()) in
  let c_unfused = counts (run_unfused ()) in
  if c_compiled <> c_interpreted || c_compiled <> c_unfused then begin
    Printf.printf
      "FAIL: per-vertex counts differ across fusion modes (compiled %s, \
       interpreted %s, unfused %s)\n"
      (String.concat ","
         (Array.to_list (Array.map string_of_int c_compiled)))
      (String.concat ","
         (Array.to_list (Array.map string_of_int c_interpreted)))
      (String.concat "," (Array.to_list (Array.map string_of_int c_unfused)));
    exit 1
  end;
  (* Paired alternating CPU-time rounds; the score is the median of the
     per-pair ratios, same estimator as the sched gates (absolute rates on
     this host drift too much for unpaired comparisons). *)
  let paired ~units runA runB =
    let rounds = if !quick then 6 else 8 in
    let cpu run =
      Gc.full_major ();
      let c0 = Sys.time () in
      ignore (run ());
      Float.max (Sys.time () -. c0) 1e-9
    in
    let ca = Array.make rounds 0.0 and cb = Array.make rounds 0.0 in
    for i = 0 to rounds - 1 do
      if i land 1 = 0 then begin
        ca.(i) <- cpu runA;
        cb.(i) <- cpu runB
      end
      else begin
        cb.(i) <- cpu runB;
        ca.(i) <- cpu runA
      end
    done;
    let ratios = Array.init rounds (fun i -> cb.(i) /. ca.(i)) in
    let median a =
      Array.sort compare a;
      (a.((rounds - 1) / 2) +. a.(rounds / 2)) /. 2.0
    in
    let r = median ratios in
    (r, float_of_int units /. median ca, float_of_int units /. median cb)
  in
  let speedup, compiled_rate, interpreted_rate =
    paired ~units:tuples run_compiled run_interpreted
  in
  let fused_gain, _, unfused_rate =
    paired ~units:tuples run_interpreted run_unfused
  in
  Printf.printf "chain: %d identity members, %d tuples\n" members tuples;
  Printf.printf "compiled closed loop:     %11.1f tuples/cpu-s\n" compiled_rate;
  Printf.printf "interpreted meta-op walk: %11.1f tuples/cpu-s\n"
    interpreted_rate;
  Printf.printf "unfused (%2d actors):      %11.1f tuples/cpu-s\n" (members + 1)
    unfused_rate;
  Printf.printf "compiled vs interpreted:  %.2fx (gate: >= 2x)\n" speedup;
  Printf.printf "interpreted vs unfused:   %.2fx\n" fused_gain;

  (* -- stateful chain: inline fold + inline window members ----------- *)
  (* 16 members: a keyed counter (Inline_fold) and a global sliding-window
     sum (Inline_window) buried among identities. The inline hooks keep
     the chain compiled; the gate is looser than the all-stateless one
     because the state-structure traffic (hash probes, window queue)
     survives compilation. *)
  let s_members = 16 in
  let s_tuples = if !quick then 40_000 else 200_000 in
  let s_keys = Ss_prelude.Discrete.uniform 64 in
  let s_n = s_members + 1 in
  let s_ops =
    Array.init s_n (fun v ->
        if v = 0 then Operator.source ~rate:1e6 "src"
        else if v = 6 then
          Operator.make
            ~kind:(Operator.Partitioned_stateful s_keys)
            ~service_time:1e-8 "count_by_key"
        else if v = 11 then
          Operator.make ~kind:Operator.Stateful ~input_selectivity:8.0
            ~service_time:1e-8 "window_sum"
        else Operator.make ~service_time:1e-8 (Printf.sprintf "identity#%d" v))
  in
  let s_edges = List.init s_members (fun i -> (i, i + 1, 1.0)) in
  let s_topo = Topology.create_exn s_ops s_edges in
  let s_chain = List.init s_members (fun i -> i + 1) in
  let s_registry v =
    if v = 6 then Ss_operators.Join_ops.count_by_key ()
    else if v = 11 then
      Ss_operators.Window_ops.sum
        ~spec:
          { Ss_operators.Window_ops.length = 32; slide = 8; index = 0;
            per_key = false }
        ()
    else Ss_operators.Stateless_ops.identity
  in
  let s_run fusion () =
    Ss_runtime.Executor.run ~fused:[ s_chain ] ~fusion ~scheduler:(`Pool 2)
      ~mailbox_capacity:1024 ~batch:(`Fixed 256)
      ~instrument:
        {
          Ss_runtime.Executor.default_instrument with
          telemetry = false;
          sample_occupancy = false;
        }
      ~source:
        (Ss_runtime.Executor.source_of_fn ~count:s_tuples (fun i ->
             Ss_operators.Tuple.make ~key:(i mod 64) [| float_of_int i |]))
      ~registry:s_registry s_topo
  in
  let sc = counts (s_run `Compiled ()) and si = counts (s_run `Interpreted ()) in
  if sc <> si then begin
    Printf.printf "FAIL: stateful-chain counts differ across fusion modes\n";
    exit 1
  end;
  let s_speedup, s_compiled_rate, s_interpreted_rate =
    paired ~units:s_tuples (s_run `Compiled) (s_run `Interpreted)
  in
  Printf.printf
    "stateful chain: %d members (keyed counter + window sum), %d tuples\n"
    s_members s_tuples;
  Printf.printf "  compiled:    %11.1f tuples/cpu-s\n" s_compiled_rate;
  Printf.printf "  interpreted: %11.1f tuples/cpu-s\n" s_interpreted_rate;
  Printf.printf "  compiled vs interpreted: %.2fx (gate: >= 1.5x)\n" s_speedup;

  (* -- fission replicas hosting the staged loop --------------------- *)
  (* A linear 12-identity group whose front is replicated: both modes
     deploy emitter + 2 workers + collector; the gate isolates the staged
     loop inside the workers (the plumbing is identical on both sides). *)
  let r_members = 12 in
  let r_tuples = if !quick then 40_000 else 200_000 in
  let r_n = r_members + 2 in
  let r_ops =
    Array.init r_n (fun v ->
        if v = 0 then Operator.source ~rate:1e6 "src"
        else if v = 1 then
          Operator.with_replicas (Operator.make ~service_time:1e-8 "front") 2
        else if v = r_n - 1 then Operator.make ~service_time:1e-8 "snk"
        else Operator.make ~service_time:1e-8 (Printf.sprintf "identity#%d" v))
  in
  let r_edges = List.init (r_n - 1) (fun i -> (i, i + 1, 1.0)) in
  let r_topo = Topology.create_exn r_ops r_edges in
  let r_group = List.init r_members (fun i -> i + 1) in
  let r_run fusion () =
    Ss_runtime.Executor.run ~fused:[ r_group ] ~fusion ~scheduler:(`Pool 4)
      ~mailbox_capacity:1024 ~batch:(`Fixed 256)
      ~instrument:
        {
          Ss_runtime.Executor.default_instrument with
          telemetry = false;
          sample_occupancy = false;
        }
      ~source:
        (Ss_runtime.Executor.source_of_fn ~count:r_tuples (fun i ->
             Ss_operators.Tuple.make ~key:i [| float_of_int i |]))
      ~registry:(fun _ -> Ss_operators.Stateless_ops.identity)
      r_topo
  in
  let rc = counts (r_run `Compiled ()) and ri = counts (r_run `Interpreted ()) in
  if rc <> ri then begin
    Printf.printf "FAIL: replica counts differ across fusion modes\n";
    exit 1
  end;
  let r_speedup, r_compiled_rate, r_interpreted_rate =
    paired ~units:r_tuples (r_run `Compiled) (r_run `Interpreted)
  in
  Printf.printf "fission replicas: %d members, 2 replicas, %d tuples\n"
    r_members r_tuples;
  Printf.printf "  compiled workers:    %11.1f tuples/cpu-s\n" r_compiled_rate;
  Printf.printf "  interpreted workers: %11.1f tuples/cpu-s\n"
    r_interpreted_rate;
  Printf.printf "  compiled vs interpreted: %.2fx (gate: >= 1.3x)\n" r_speedup;

  (* -- telemetry overhead on the compiled chain --------------------- *)
  (* Telemetry no longer forces interpretation; measure what the in-loop
     counters and 1-in-k stamps cost the compiled chain at the default
     sampling stride. *)
  let run_compiled_telemetry () =
    Ss_runtime.Executor.run ~fused:[ chain ] ~fusion:`Compiled
      ~scheduler:(`Pool 2) ~mailbox_capacity:1024 ~batch:(`Fixed 256)
      ~instrument:
        {
          Ss_runtime.Executor.default_instrument with
          telemetry = true;
          sample_occupancy = false;
        }
      ~source:
        (Ss_runtime.Executor.source_of_fn ~count:tuples (fun i ->
             Ss_operators.Tuple.make ~key:i [| float_of_int i |]))
      ~registry topo
  in
  let overhead_ratio, telemetry_rate, _ =
    paired ~units:tuples run_compiled_telemetry run_compiled
  in
  (* paired ratios are cpu(runB)/cpu(runA) = cpu(no-tel)/cpu(telemetry):
     below 1 when telemetry costs time, so the overhead is 1/r - 1. *)
  let telemetry_overhead_pct = ((1.0 /. overhead_ratio) -. 1.0) *. 100.0 in
  Printf.printf
    "telemetry on the compiled chain: %11.1f tuples/cpu-s (%.1f%% overhead)\n"
    telemetry_rate telemetry_overhead_pct;

  let json =
    Printf.sprintf
      {|{"section":"fusion","tuples":%d,"members":%d,"compiled_rate":%.1f,"interpreted_rate":%.1f,"unfused_rate":%.1f,"compiled_vs_interpreted":%.3f,"interpreted_vs_unfused":%.3f,"stateful_members":%d,"stateful_compiled_rate":%.1f,"stateful_interpreted_rate":%.1f,"stateful_vs_interpreted":%.3f,"replica_members":%d,"replica_compiled_rate":%.1f,"replica_interpreted_rate":%.1f,"replica_vs_interpreted":%.3f,"telemetry_compiled_rate":%.1f,"telemetry_overhead_pct":%.1f}|}
      tuples members compiled_rate interpreted_rate unfused_rate speedup
      fused_gain s_members s_compiled_rate s_interpreted_rate s_speedup
      r_members r_compiled_rate r_interpreted_rate r_speedup telemetry_rate
      telemetry_overhead_pct
  in
  write_bench_json "BENCH_fusion.json" json;
  let failed = ref false in
  if speedup < 2.0 then begin
    Printf.printf
      "FAIL: compiled closed loop only %.2fx the interpreted meta-operator \
       (>= 2x required)\n"
      speedup;
    failed := true
  end;
  if s_speedup < 1.5 then begin
    Printf.printf
      "FAIL: compiled stateful chain only %.2fx the interpreted walk \
       (>= 1.5x required)\n"
      s_speedup;
    failed := true
  end;
  if r_speedup < 1.3 then begin
    Printf.printf
      "FAIL: compiled replica workers only %.2fx the interpreted ones \
       (>= 1.3x required)\n"
      r_speedup;
    failed := true
  end;
  (* Budget is 10% on this identity chain (measured ~6%); the hard gate is
     deliberately looser so host noise cannot trip it — 25% is still far
     below the ~170% a regression to forced interpretation would show. *)
  if telemetry_overhead_pct > 25.0 then begin
    Printf.printf
      "FAIL: telemetry costs the compiled chain %.1f%% (budget 10%%, gate \
       25%%)\n"
      telemetry_overhead_pct;
    failed := true
  end;
  if !failed then exit 1

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("table1", table1);
    ("table2", table2);
    ("latency", latency);
    ("elasticity", elasticity);
    ("elastic", elastic_live);
    ("cola", cola);
    ("placement", placement);
    ("ablations", ablations);
    ("sched", sched);
    ("mailbox", mailbox_bench);
    ("telemetry", telemetry_bench);
    ("log", log_bench);
    ("event", event_bench);
    ("fusion", fusion_bench);
    ("micro", micro);
  ]

let () =
  let requested =
    Array.to_list Sys.argv |> List.tl
    |> List.filter (fun a ->
           if a = "--quick" then begin
             quick := true;
             false
           end
           else true)
  in
  let to_run =
    if requested = [] then List.map fst sections
    else begin
      List.iter
        (fun name ->
          if not (List.mem_assoc name sections) then begin
            Printf.eprintf "unknown section %S (available: %s)\n" name
              (String.concat ", " (List.map fst sections));
            exit 1
          end)
        requested;
      requested
    end
  in
  List.iter (fun name -> (List.assoc name sections) ()) to_run
