#!/bin/sh
# One-screen summary of every gated benchmark ratio, runnable locally and
# in CI after any subset of `bench` sections.
#
# Usage: bench-trajectory.sh [DIR]
#
# Reads whatever BENCH_*.json files are present under DIR (default: cwd)
# and prints each file's gated ratios next to their gates, plus a PASS /
# FAIL / MISSING verdict per ratio. Missing files are reported but are
# not an error (sections run selectively); a present file failing its
# gate exits 1, so the script doubles as an offline re-check of the
# gates the bench binary already enforces.
set -eu

dir="${1:-.}"

python3 - "$dir" <<'EOF'
import json, os, sys

# (file, key, gate, direction): direction ">=" means the measured value
# must be at least the gate, "<=" at most. Gates mirror bench/main.ml.
GATES = [
    ("BENCH_sched.json",     "ratio",                   1.3,  ">="),
    ("BENCH_elastic.json",   "ratio",                   0.85, ">="),
    ("BENCH_telemetry.json", "overhead_pct",            10.0, "<="),
    ("BENCH_event.json",     "prediction_error",        0.15, "<="),
    ("BENCH_fusion.json",    "compiled_vs_interpreted", 2.0,  ">="),
    ("BENCH_fusion.json",    "stateful_vs_interpreted", 1.5,  ">="),
    ("BENCH_fusion.json",    "replica_vs_interpreted",  1.3,  ">="),
    ("BENCH_fusion.json",    "telemetry_overhead_pct",  25.0, "<="),
]

d = sys.argv[1]
docs, bad = {}, 0
print(f"{'file':24} {'metric':26} {'value':>10} {'gate':>10}  verdict")
print("-" * 84)
for name, key, gate, op in GATES:
    path = os.path.join(d, name)
    if name not in docs:
        try:
            with open(path) as f:
                docs[name] = json.load(f)
        except OSError:
            docs[name] = None
        except ValueError as e:
            print(f"{name:24} invalid JSON: {e}")
            docs[name] = None
            bad += 1
            continue
    doc = docs[name]
    if doc is None:
        print(f"{name:24} {key:26} {'-':>10} {op}{gate:>8}  MISSING")
        continue
    if key not in doc:
        print(f"{name:24} {key:26} {'-':>10} {op}{gate:>8}  NO KEY")
        bad += 1
        continue
    v = doc[key]
    ok = v >= gate if op == ">=" else v <= gate
    print(f"{name:24} {key:26} {v:>10.3f} {op}{gate:>8}  "
          f"{'PASS' if ok else 'FAIL'}")
    if not ok:
        bad += 1

sys.exit(1 if bad else 0)
EOF
