#!/bin/sh
# Kill-mid-run crash-recovery end-to-end test, runnable locally and in CI.
#
# Phase 1 ingests a synthetic workload into a partitioned log and starts
# executing the topology from it, then the script kill -9s the process
# mid-run — no flush, no cleanup, exactly the crash the log's durability
# story is about. Phase 2 restarts the same pipeline against the same
# log directory (--tuples 0: replay only) and must drain the uncommitted
# suffix to the end of every partition.
#
# Pass criteria:
#   - the phase-1 process was genuinely killed mid-execution
#   - phase 2 exits 0 and reports committed == end for every partition
#   - the partition ends sum to the ingested tuple count (zero loss)
set -eu
cd "$(dirname "$0")/.."

TOPOLOGY=examples/topologies/fig11_table1.xml
TUPLES=8000
PARTITIONS=3
GRACE=3

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
LOGDIR="$WORK/ingest-log"

dune build bin/spinstreams.exe
BIN=_build/default/bin/spinstreams.exe

echo "phase 1: ingest $TUPLES tuples and execute, kill -9 after ${GRACE}s"
"$BIN" ingest "$TOPOLOGY" --dir "$LOGDIR" --tuples "$TUPLES" \
  --partitions "$PARTITIONS" --commit-every 64 --execute \
  > "$WORK/run1.out" 2>&1 &
PID=$!
sleep "$GRACE"
if ! kill -9 "$PID" 2> /dev/null; then
  echo "crash-recovery: run finished before the kill landed;" \
    "raise TUPLES so the crash interrupts execution" >&2
  cat "$WORK/run1.out" >&2
  exit 1
fi
wait "$PID" 2> /dev/null || true
echo "killed pid $PID mid-execution"

echo "phase 2: restart and replay the uncommitted suffix"
"$BIN" ingest "$TOPOLOGY" --dir "$LOGDIR" --tuples 0 --execute \
  --json-out "$WORK/summary.json" | tee "$WORK/run2.out"

python3 - "$WORK/summary.json" "$TUPLES" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
expected = int(sys.argv[2])

bad = 0
total = 0
for p in doc["partitions"]:
    total += p["end"]
    if p["committed"] != p["end"]:
        print(f"crash-recovery: p{p['partition']}: committed "
              f"{p['committed']} != end {p['end']}")
        bad += 1
if total != expected:
    print(f"crash-recovery: partition ends sum to {total}, "
          f"expected {expected} (records lost in the crash)")
    bad += 1

if bad:
    sys.exit(1)
print(f"crash-recovery: ok — {total} records across "
      f"{len(doc['partitions'])} partitions, fully committed after restart")
EOF
