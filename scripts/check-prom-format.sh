#!/bin/sh
# Prometheus text exposition-format lint, runnable locally and in CI.
#
# Usage: check-prom-format.sh METRICS_FILE
#
# The exporter escapes label values (backslash, double quote, newline), so
# a hostile operator name must never produce a sample line that a
# Prometheus scraper would reject. This script enforces the line grammar
# the scraper relies on:
#   - every non-empty line is a comment (`# HELP`/`# TYPE`) or a sample
#   - a sample line is `name value` or `name{labels} value` with the value
#     parseable as a float (Inf/NaN allowed)
#   - quotes inside a label set balance (an unescaped quote from a raw
#     operator name would split a label value across tokens)
#   - a line that opens a label set closes it on the same line (a raw
#     newline in a label value would split one sample across two lines)
#   - every histogram family exports its `le="+Inf"` bucket
set -eu

if [ "$#" -ne 1 ] || [ ! -f "$1" ]; then
  echo "usage: $0 METRICS_FILE" >&2
  exit 2
fi

awk '
function fail(msg) { printf "prom-format: line %d: %s: %s\n", NR, msg, $0; bad = 1 }
/^$/ { next }
/^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* / { next }
/^#/ { fail("malformed comment"); next }
{
  # quotes must balance: count unescaped double quotes
  line = $0; quotes = 0; esc = 0
  for (i = 1; i <= length(line); i++) {
    c = substr(line, i, 1)
    if (esc) { esc = 0; continue }
    if (c == "\\") { esc = 1; continue }
    if (c == "\"") quotes++
  }
  if (quotes % 2 != 0) fail("odd number of unescaped quotes")

  # a label set that opens must close on the same line
  has_open = index(line, "{") > 0; has_close = index(line, "}") > 0
  if (has_open != has_close) fail("unterminated label set")

  # last whitespace-separated token is the sample value
  if (NF < 2) { fail("no sample value"); next }
  v = $NF
  if (v !~ /^[+-]?([0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|Inf|NaN)$/)
    fail("sample value is not a number")

  # metric name starts the line
  if (line !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*([{ ])/) fail("bad metric name")

  if (index(line, "_bucket{") > 0) {
    family = substr(line, 1, index(line, "_bucket{") - 1)
    seen_bucket[family] = 1
    if (index(line, "le=\"+Inf\"") > 0) seen_inf[family] = 1
  }
}
END {
  for (f in seen_bucket)
    if (!(f in seen_inf)) { printf "prom-format: histogram %s has no le=\"+Inf\" bucket\n", f; bad = 1 }
  exit bad
}' "$1" || { echo "prom-format: $1 FAILED" >&2; exit 1; }

echo "prom-format: $1 OK"
