#!/bin/sh
# BENCH_*.json validity gate, runnable locally and in CI.
#
# Usage: check-bench-json.sh [DIR]
#
# Every bench section persists its result file atomically (temp file +
# rename), so a file that exists must be complete: one line of valid
# JSON carrying the keys the gates and downstream tooling read. This
# script parses each BENCH_*.json present in DIR (default: cwd) and
# checks the per-file required keys; a missing file is not an error
# (sections run selectively in CI), a malformed or key-incomplete one
# is.
set -eu

dir="${1:-.}"

python3 - "$dir" <<'EOF'
import glob, json, os, sys

REQUIRED = {
    "BENCH_elastic.json": ["section", "offered_rate", "static_rate",
                           "elastic_final_rate", "ratio", "epochs"],
    "BENCH_sched.json": ["section", "cores", "ratio", "idle", "serial"],
    "BENCH_telemetry.json": ["section", "rate_off", "rate_on",
                             "overhead_pct", "latency_ms"],
    "BENCH_mailbox.json": ["section", "handoff", "pipeline", "testbed"],
    "BENCH_log.json": ["section", "ingest_mb_s", "batched_vs_per_record",
                       "replay", "recovery"],
    "BENCH_event.json": ["section", "rate_processing", "rate_event", "ratio",
                         "late", "on_time_loss", "disorder_fraction",
                         "predicted_out", "measured_out", "prediction_error"],
    "BENCH_fusion.json": ["section", "tuples", "members", "compiled_rate",
                          "interpreted_rate", "unfused_rate",
                          "compiled_vs_interpreted",
                          "interpreted_vs_unfused",
                          "stateful_members", "stateful_compiled_rate",
                          "stateful_interpreted_rate",
                          "stateful_vs_interpreted",
                          "replica_members", "replica_compiled_rate",
                          "replica_interpreted_rate",
                          "replica_vs_interpreted",
                          "telemetry_compiled_rate",
                          "telemetry_overhead_pct"],
}

d = sys.argv[1]
files = sorted(glob.glob(os.path.join(d, "BENCH_*.json")))
if not files:
    print(f"check-bench-json: no BENCH_*.json files under {d}")
    sys.exit(0)

bad = 0
for path in files:
    name = os.path.basename(path)
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check-bench-json: {name}: invalid JSON: {e}")
        bad += 1
        continue
    missing = [k for k in REQUIRED.get(name, []) if k not in doc]
    if missing:
        print(f"check-bench-json: {name}: missing keys: {', '.join(missing)}")
        bad += 1
    else:
        print(f"check-bench-json: {name}: ok")

sys.exit(1 if bad else 0)
EOF
