#!/bin/sh
# Codegen-compile smoke: the emitted closed loops must build and must
# reproduce the interpreted executor's counts, end to end.
#
# Generates the Fig. 11 pipeline twice into a scratch project inside the
# dune workspace -- once with --fusion closed-loop (source-level fused
# chains) and once with --fusion interpreted -- builds both, runs both,
# and diffs their per-vertex counts. Count parity between the two
# generated programs is the whole contract of the compiled tier.
set -eu
cd "$(dirname "$0")/.."

dir="smoke_codegen_tmp"
trap 'rm -rf "$dir" /tmp/codegen-smoke.closed.$$ /tmp/codegen-smoke.interp.$$' EXIT
rm -rf "$dir"
mkdir -p "$dir/closed" "$dir/interp"

dune exec bin/spinstreams.exe -- codegen examples/topologies/fig11_table1.xml \
  --fused 2,3,4 --tuples 800 --fusion closed-loop \
  --output "$dir/closed" --name pipeline
dune exec bin/spinstreams.exe -- codegen examples/topologies/fig11_table1.xml \
  --fused 2,3,4 --tuples 800 --fusion interpreted \
  --output "$dir/interp" --name pipeline

grep -q "chain_0" "$dir/closed/pipeline.ml" || {
  echo "codegen smoke: closed-loop emission is missing chain_0" >&2
  exit 1
}
grep -q "chain_0" "$dir/interp/pipeline.ml" && {
  echo "codegen smoke: interpreted emission unexpectedly contains a chain" >&2
  exit 1
}

dune build "$dir/closed/pipeline.exe" "$dir/interp/pipeline.exe"

dune exec "$dir/closed/pipeline.exe" | grep '^vertex' > /tmp/codegen-smoke.closed.$$
dune exec "$dir/interp/pipeline.exe" | grep '^vertex' > /tmp/codegen-smoke.interp.$$

diff /tmp/codegen-smoke.closed.$$ /tmp/codegen-smoke.interp.$$ || {
  echo "codegen smoke: closed-loop counts diverge from interpreted" >&2
  exit 1
}
echo "codegen smoke: closed-loop counts match interpreted:"
cat /tmp/codegen-smoke.closed.$$
