#!/bin/sh
# Formatting gate, runnable locally and in CI.
#
# When an ocamlformat setup is present (a .ocamlformat file and the binary
# on PATH) this defers to `dune build @fmt`. The development container does
# not ship ocamlformat, so the fallback enforces the conventions the tree
# actually follows and that any formatter would preserve: no tab
# characters, no trailing whitespace, every tracked source file terminated
# by a newline.
set -eu
cd "$(dirname "$0")/.."

if [ -f .ocamlformat ] && command -v ocamlformat >/dev/null 2>&1; then
  exec dune build @fmt
fi

tab=$(printf '\t')
status=0
for f in $(git ls-files '*.ml' '*.mli' '*.md' '*.sh' '*dune*' '*.yml'); do
  if grep -qn "$tab" "$f"; then
    echo "format: tab character in $f" >&2
    grep -n "$tab" "$f" | head -3 >&2
    status=1
  fi
  if grep -qn "[ $tab]\$" "$f"; then
    echo "format: trailing whitespace in $f" >&2
    grep -n "[ $tab]\$" "$f" | head -3 >&2
    status=1
  fi
  if [ -s "$f" ] && [ -n "$(tail -c 1 "$f")" ]; then
    echo "format: missing final newline in $f" >&2
    status=1
  fi
done
exit $status
