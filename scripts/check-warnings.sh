#!/bin/sh
# Warnings-as-errors gate for the scheduler core, runnable locally and in
# CI.
#
# lib/sched compiles with `-warn-error +a` in its dune stanza (minus the
# project-wide exclusions), so a clean rebuild of the library is the
# check: any new warning in the lock-free scheduler fails the build. The
# rest of the tree keeps dune's default promotion (warnings fatal only in
# dev profile for selected classes), which `dune build` upholds.
set -eu
cd "$(dirname "$0")/.."

# Force a recompile of lib/sched so previously cached objects cannot mask
# a warning introduced by an incremental edit.
rm -rf _build/default/lib/sched
dune build lib/sched 2> /tmp/check-warnings.$$ || {
  cat /tmp/check-warnings.$$ >&2
  rm -f /tmp/check-warnings.$$
  echo "warnings: lib/sched failed to build with -warn-error +a" >&2
  exit 1
}
if [ -s /tmp/check-warnings.$$ ]; then
  cat /tmp/check-warnings.$$ >&2
  rm -f /tmp/check-warnings.$$
  echo "warnings: lib/sched build emitted diagnostics" >&2
  exit 1
fi
rm -f /tmp/check-warnings.$$
echo "warnings: lib/sched clean under -warn-error +a"
