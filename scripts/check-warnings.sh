#!/bin/sh
# Warnings-as-errors gate for the scheduler core, the event-time tier, the
# actor runtime (including the compiled fused-chain tier) and the code
# generator, runnable locally and in CI.
#
# lib/sched, lib/eventtime, lib/runtime and lib/codegen compile with
# `-warn-error +a` in their dune stanzas (minus the project-wide
# exclusions), so a clean rebuild of each library is the check: any new
# warning in the lock-free scheduler, the watermark machinery, the fused
# closed loops or the generator templates fails the build. The rest of the tree keeps dune's
# default promotion (warnings fatal only in dev profile for selected
# classes), which `dune build` upholds.
set -eu
cd "$(dirname "$0")/.."

check_lib() {
  lib="$1"
  # Force a recompile so previously cached objects cannot mask a warning
  # introduced by an incremental edit.
  rm -rf "_build/default/$lib"
  dune build "$lib" 2> /tmp/check-warnings.$$ || {
    cat /tmp/check-warnings.$$ >&2
    rm -f /tmp/check-warnings.$$
    echo "warnings: $lib failed to build with -warn-error +a" >&2
    exit 1
  }
  if [ -s /tmp/check-warnings.$$ ]; then
    cat /tmp/check-warnings.$$ >&2
    rm -f /tmp/check-warnings.$$
    echo "warnings: $lib build emitted diagnostics" >&2
    exit 1
  fi
  rm -f /tmp/check-warnings.$$
  echo "warnings: $lib clean under -warn-error +a"
}

check_lib lib/sched
check_lib lib/eventtime
check_lib lib/runtime
check_lib lib/codegen
