(* Quickstart: build a topology, predict its steady-state throughput,
   remove the bottleneck by fission, and check the prediction on the
   discrete-event simulator.

   Run with: dune exec examples/quickstart.exe *)

open Ss_topology
open Ss_core

let () =
  (* A four-stage pipeline: the source emits 2000 tuples/s but the parse
     stage sustains only 800/s, so backpressure throttles everything. *)
  let b = Builder.create () in
  let source = Builder.add b (Operator.source ~rate:2000.0 "source") in
  let parse = Builder.add b (Operator.make ~service_time:1.25e-3 "parse") in
  let classify = Builder.add b (Operator.make ~service_time:0.4e-3 "classify") in
  let store = Builder.add b (Operator.make ~service_time:0.3e-3 "store") in
  Builder.chain b [ source; parse; classify; store ];
  let topology = Builder.finish_exn b in

  (* Step 1: steady-state analysis (the paper's Algorithm 1). *)
  let analysis = Steady_state.analyze topology in
  Format.printf "--- initial topology ---@.%a@.@." Steady_state.pp analysis;

  (* Step 2: bottleneck elimination by fission (Algorithm 2). *)
  let plan = Fission.optimize topology in
  Format.printf "--- after bottleneck elimination ---@.%a@.@." Fission.pp plan;

  (* Step 3: validate the prediction by simulating both versions. *)
  let config =
    { Ss_sim.Engine.default_config with Ss_sim.Engine.warmup = 2.0; measure = 10.0 }
  in
  let before = Ss_sim.Engine.run ~config topology in
  let after = Ss_sim.Engine.run ~config plan.Fission.topology in
  Format.printf "--- simulation (predicted vs measured) ---@.";
  Format.printf "initial:   predicted %7.1f, measured %7.1f tuples/s@."
    analysis.Steady_state.throughput before.Ss_sim.Engine.throughput;
  Format.printf "optimized: predicted %7.1f, measured %7.1f tuples/s@."
    plan.Fission.analysis.Steady_state.throughput after.Ss_sim.Engine.throughput
