examples/iot_gateways.mli:
