examples/fusion_case_study.mli:
