examples/quickstart.ml: Builder Fission Format Operator Ss_core Ss_sim Ss_topology Steady_state
