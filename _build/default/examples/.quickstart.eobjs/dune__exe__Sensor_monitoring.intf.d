examples/sensor_monitoring.mli:
