examples/quickstart.mli:
