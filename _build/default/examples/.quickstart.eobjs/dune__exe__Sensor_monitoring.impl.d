examples/sensor_monitoring.ml: Discrete Fission Format Fusion List Operator Ss_core Ss_prelude Ss_sim Ss_topology Steady_state String Topology
