examples/iot_gateways.ml: Array Discrete Dist Fission Float Format Latency List Multi_source Operator Rng Ss_core Ss_operators Ss_placement Ss_prelude Ss_topology Steady_state Topology
