examples/fusion_case_study.ml: Array Format Fusion List Operator Printf Ss_core Ss_operators Ss_prelude Ss_runtime Ss_sim Ss_topology Ss_workload Steady_state Topology
