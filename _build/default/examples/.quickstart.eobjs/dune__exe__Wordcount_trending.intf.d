examples/wordcount_trending.mli:
