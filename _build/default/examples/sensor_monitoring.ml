(* Environmental monitoring: telemetry from a fleet of sensors flows into
   per-metric analytics branches — windowed statistics plus a spatial
   skyline identifying the sensors with the best (coolest, driest)
   readings. Demonstrates probabilistic branches, partitioned-stateful
   fission under key skew, hold-off replication, and operator fusion of an
   underutilized tail.

   Run with: dune exec examples/sensor_monitoring.exe *)

open Ss_prelude
open Ss_topology
open Ss_core

let sensors = Discrete.zipf ~alpha:1.4 48
(* A few chatty sensors dominate the stream, as in real deployments. *)

let () =
  (* Telemetry topology: a fan-out of analytics branches.

         source --0.6--> per_sensor_mean (partitioned, skewed keys)
                --0.3--> skyline (stateful spatial query)
                --0.1--> calibrate --> anomaly_wma
     per_sensor_mean and skyline both feed the alert sink. *)
  let ops =
    [|
      Operator.source ~rate:900.0 "telemetry";
      Operator.make
        ~kind:(Operator.Partitioned_stateful sensors)
        ~input_selectivity:10.0 ~service_time:5.0e-3 "per_sensor_mean";
      Operator.make ~kind:Operator.Stateful ~input_selectivity:50.0
        ~output_selectivity:4.0 ~service_time:2.4e-3 "skyline";
      Operator.make ~service_time:0.5e-3 "calibrate";
      Operator.make ~kind:Operator.Stateful ~input_selectivity:10.0
        ~service_time:2.4e-3 "anomaly_wma";
      Operator.make ~service_time:0.4e-3 "alert_sink";
    |]
  in
  let topology =
    Topology.create_exn ops
      [
        (0, 1, 0.6);
        (0, 2, 0.3);
        (0, 3, 0.1);
        (1, 5, 1.0);
        (2, 5, 1.0);
        (3, 4, 1.0);
        (4, 5, 1.0);
      ]
  in
  let analysis = Steady_state.analyze topology in
  Format.printf "--- initial analysis ---@.%a@.@." Steady_state.pp analysis;

  (* Fission: the skewed per-sensor aggregation is the bottleneck. The key
     distribution limits how evenly replicas can share the load. *)
  let unbounded = Fission.optimize topology in
  Format.printf "--- unbounded fission ---@.%a@.@." Fission.pp unbounded;

  (* Hold-off replication: cap the resources (paper §3.2 / Fig. 10). *)
  let bounded = Fission.optimize ~max_replicas:7 topology in
  Format.printf "--- fission bounded to 7 replicas ---@.%a@.@." Fission.pp bounded;

  (* The calibration tail is underutilized: ask for fusion candidates and
     fuse the best-ranked one that contains the calibrate stage. *)
  let candidates = Fusion.candidates topology in
  (match
     List.find_opt (fun (vs, _) -> List.mem 3 vs && List.mem 4 vs) candidates
   with
  | None -> Format.printf "no fusion candidate over the calibration tail@."
  | Some (vs, util) -> (
      Format.printf "fusing %s (mean rho %.3f)@."
        (String.concat ","
           (List.map
              (fun v -> (Topology.operator topology v).Operator.name)
              vs))
        util;
      match Fusion.apply topology vs with
      | Error e -> Format.printf "fusion rejected: %s@." e
      | Ok outcome ->
          Format.printf
            "fused service time %.2f ms; predicted throughput %.1f -> %.1f \
             tuples/s%s@.@."
            (outcome.Fusion.fused_service_time *. 1e3)
            outcome.Fusion.before.Steady_state.throughput
            outcome.Fusion.after.Steady_state.throughput
            (if outcome.Fusion.creates_bottleneck then "  (ALERT: bottleneck)"
             else "")));

  (* Cross-check the three versions on the simulator. *)
  let config =
    { Ss_sim.Engine.default_config with Ss_sim.Engine.warmup = 2.0; measure = 8.0 }
  in
  let check label topo predicted =
    let r = Ss_sim.Engine.run ~config topo in
    Format.printf "%-24s predicted %7.1f   measured %7.1f tuples/s@." label
      predicted r.Ss_sim.Engine.throughput
  in
  Format.printf "--- simulator cross-check ---@.";
  check "original" topology analysis.Steady_state.throughput;
  check "fission (unbounded)" unbounded.Fission.topology
    unbounded.Fission.analysis.Steady_state.throughput;
  check "fission (bound 8)" bounded.Fission.topology
    bounded.Fission.analysis.Steady_state.throughput
