(* The paper's fusion case study (Section 5.4, Fig. 11 and Tables 1-2),
   end to end: predict the effect of fusing operators 3, 4 and 5, compare
   with the discrete-event "measurement", and run the fused plan on the
   actor runtime.

   Run with: dune exec examples/fusion_case_study.exe *)

open Ss_topology
open Ss_core

let fig11 service_times_ms =
  let ops =
    Array.of_list
      (List.mapi
         (fun i t ->
           Operator.make ~service_time:(t /. 1e3) (Printf.sprintf "op%d" (i + 1)))
         service_times_ms)
  in
  Topology.create_exn ops
    [
      (0, 1, 0.7); (0, 2, 0.3); (2, 3, 0.5); (2, 4, 0.5);
      (4, 3, 0.35); (4, 5, 0.65); (3, 5, 1.0); (1, 5, 1.0);
    ]

let sim_config =
  { Ss_sim.Engine.default_config with Ss_sim.Engine.warmup = 3.0; measure = 12.0 }

let study label service_times_ms =
  Format.printf "=== %s ===@." label;
  let topology = fig11 service_times_ms in
  let before = Steady_state.analyze topology in
  Format.printf "--- original topology ---@.%a@.@." Steady_state.pp before;
  match Fusion.apply ~name:"F" topology [ 2; 3; 4 ] with
  | Error e -> Format.printf "fusion failed: %s@." e
  | Ok outcome ->
      Format.printf "fused operator F: service time %.2f ms@."
        (outcome.Fusion.fused_service_time *. 1e3);
      Format.printf "--- topology after fusion ---@.%a@.@." Steady_state.pp
        outcome.Fusion.after;
      if outcome.Fusion.creates_bottleneck then
        Format.printf
          "ALERT: the fusion introduces a bottleneck (predicted degradation \
           %.0f%%)@."
          (100.0 *. (1.0 -. outcome.Fusion.throughput_ratio));
      (* "Measurements": simulate both versions under BAS blocking. *)
      let measured_before = Ss_sim.Engine.run ~config:sim_config topology in
      let measured_after =
        Ss_sim.Engine.run ~config:sim_config outcome.Fusion.topology
      in
      Format.printf "@.%-22s %12s %12s@." "" "predicted" "measured";
      Format.printf "%-22s %12.0f %12.0f@." "original (tuples/s)"
        before.Steady_state.throughput measured_before.Ss_sim.Engine.throughput;
      Format.printf "%-22s %12.0f %12.0f@.@." "after fusion"
        outcome.Fusion.after.Steady_state.throughput
        measured_after.Ss_sim.Engine.throughput

let () =
  (* Table 1: fusion is harmless. *)
  study "Table 1 service times" [ 1.0; 1.2; 0.7; 2.0; 1.5; 0.2 ];
  (* Table 2: the same sub-graph now saturates. *)
  study "Table 2 service times" [ 1.0; 1.2; 1.5; 2.7; 2.2; 0.2 ];

  (* Finally, execute the (harmless) fused plan on the actor runtime: the
     meta-operator applies op3/op4/op5 sequentially inside one actor
     (paper Algorithm 4). The runtime processes real tuples; identity
     behaviors stand in for the user functions. *)
  let topology = fig11 [ 1.0; 1.2; 0.7; 2.0; 1.5; 0.2 ] in
  let stream =
    Ss_workload.Stream_gen.tuples (Ss_prelude.Rng.create 11) 20_000
  in
  let metrics =
    Ss_runtime.Executor.run ~fused:[ [ 2; 3; 4 ] ]
      ~source:(Ss_runtime.Executor.source_of_list stream)
      ~registry:(fun _ -> Ss_operators.Stateless_ops.identity)
      topology
  in
  Format.printf "--- actor runtime, fused {op3,op4,op5} (20k tuples) ---@.";
  Array.iteri
    (fun v consumed ->
      Format.printf "  %-6s consumed %6d  produced %6d@."
        (Topology.operator topology v).Operator.name consumed
        metrics.Ss_runtime.Executor.produced.(v))
    metrics.Ss_runtime.Executor.consumed;
  Format.printf "done in %.2fs@." metrics.Ss_runtime.Executor.elapsed
