(* Fraud detection over a stream of card transactions — the kind of
   real-time analytics pipeline the paper's introduction motivates.

   Pipeline: transactions are filtered to significant amounts, enriched
   with an account risk score, counted per account (partitioned-stateful),
   and the accounts with the most high-value activity are reported by a
   top-k operator.

   The example runs the full SpinStreams loop: profile the real operators,
   build the annotated topology, analyze it, remove the bottleneck, verify
   on the simulator — and finally execute the optimized plan on the actor
   runtime with real tuples.

   Run with: dune exec examples/fraud_detection.exe *)

open Ss_prelude
open Ss_topology
open Ss_core
open Ss_operators

let accounts = 64
let account_keys = Discrete.zipf ~alpha:1.1 accounts

(* Executable behaviors (real tuple-processing code). *)
let filter_large = Stateless_ops.threshold_filter ~index:0 ~threshold:0.4
let risk_enrich =
  Stateless_ops.enrich ~table:(fun account -> float_of_int (account mod 7) /. 7.0)
let count_per_account = Join_ops.count_by_key ()
let top_accounts = Spatial_ops.top_k ~length:500 ~slide:100 ~k:5 ()

let () =
  let rng = Rng.create 2024 in

  (* 1. Profile the operators on a sample of the stream (paper §4.1: the
     tool's inputs are profiling measures). *)
  let spec = { Ss_workload.Stream_gen.default_spec with Ss_workload.Stream_gen.keys = account_keys } in
  let profile b = Ss_workload.Profiler.run ~samples:20_000 ~spec rng b in
  let p_filter = profile filter_large in
  let p_enrich = profile risk_enrich in
  let p_count = profile count_per_account in
  let p_top = profile top_accounts in
  Format.printf "--- profiles ---@.";
  List.iter
    (Format.printf "  %a@." Ss_workload.Profiler.pp)
    [ p_filter; p_enrich; p_count; p_top ];

  (* 2. Build the annotated topology. The measured service times are scaled
     up to model the paper's heavier real-world operators (profiling on this
     machine yields sub-microsecond costs for these small functions). *)
  let heavier factor p =
    { p with Ss_workload.Profiler.mean_service_time =
               p.Ss_workload.Profiler.mean_service_time +. factor }
  in
  let to_op ?keys name behavior p =
    Ss_workload.Profiler.to_operator ~name ?keys behavior p
  in
  let ops =
    [|
      Operator.source ~rate:1500.0 "transactions";
      to_op "filter_large" filter_large (heavier 0.2e-3 p_filter);
      to_op "risk_enrich" risk_enrich (heavier 0.3e-3 p_enrich);
      to_op ~keys:account_keys "count_per_account" count_per_account
        (heavier 1.8e-3 p_count);
      to_op "top_accounts" top_accounts (heavier 0.5e-3 p_top);
    |]
  in
  let topology =
    Topology.create_exn ops
      [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 4, 1.0) ]
  in

  (* 3. Analyze and optimize. *)
  let analysis = Steady_state.analyze topology in
  Format.printf "@.--- steady-state analysis ---@.%a@.@." Steady_state.pp analysis;
  let plan = Fission.optimize topology in
  Format.printf "--- fission plan ---@.%a@.@." Fission.pp plan;

  (* 4. Verify the optimized plan on the simulator. *)
  let config =
    { Ss_sim.Engine.default_config with Ss_sim.Engine.warmup = 2.0; measure = 8.0 }
  in
  let sim = Ss_sim.Engine.run ~config plan.Fission.topology in
  Format.printf "--- simulator check ---@.";
  Format.printf "predicted %7.1f, measured %7.1f tuples/s@.@."
    plan.Fission.analysis.Steady_state.throughput sim.Ss_sim.Engine.throughput;

  (* 5. Execute the optimized plan on the actor runtime with real tuples.
     Value 0 is the transaction amount; the key is the account. *)
  let stream =
    Ss_workload.Stream_gen.tuples ~spec (Rng.create 7) 30_000
  in
  let behaviors =
    [ (1, filter_large); (2, risk_enrich); (3, count_per_account); (4, top_accounts) ]
  in
  let metrics =
    Ss_runtime.Executor.run
      ~source:(Ss_runtime.Executor.source_of_list stream)
      ~registry:(fun v -> List.assoc v behaviors)
      plan.Fission.topology
  in
  Format.printf "--- runtime execution (30k transactions) ---@.";
  Format.printf "wall-clock: %.2fs, source rate %.0f tuples/s@."
    metrics.Ss_runtime.Executor.elapsed metrics.Ss_runtime.Executor.source_rate;
  Array.iteri
    (fun v consumed ->
      Format.printf "  %-18s consumed %6d  produced %6d@."
        (Topology.operator topology v).Operator.name consumed
        metrics.Ss_runtime.Executor.produced.(v))
    metrics.Ss_runtime.Executor.consumed
