(* Trending topics over a text stream: the classic word-count pipeline with
   a top-k "trending" tail, plus the SpinStreams code-generation step.

   Words are hashed to partitioning keys at the source; counting is
   partitioned-stateful (replicable by key), deduplication keeps repeated
   alerts quiet, and top-k reports the current trending set.

   Run with: dune exec examples/wordcount_trending.exe *)

open Ss_prelude
open Ss_topology
open Ss_operators

let vocabulary =
  [|
    "stream"; "operator"; "fission"; "fusion"; "backpressure"; "actor";
    "topology"; "throughput"; "bottleneck"; "replica"; "window"; "tuple";
    "skyline"; "latency"; "queue"; "buffer";
  |]

(* Zipf-distributed words: a few terms dominate, as in real text. *)
let word_keys = Discrete.zipf ~alpha:1.2 (Array.length vocabulary)

let () =
  let rng = Rng.create 99 in

  (* Executable behaviors. *)
  let count = Join_ops.count_by_key () in
  let spike_filter = Stateless_ops.threshold_filter ~index:0 ~threshold:20.0 in
  let dedup = Join_ops.dedup ~memory:8 () in
  let trending = Spatial_ops.top_k ~length:64 ~slide:16 ~k:5 () in

  (* Topology annotated with plausible profiled costs. *)
  let ops =
    [|
      Operator.source ~rate:2500.0 "words";
      Behavior.to_operator ~keys:word_keys ~service_time:0.9e-3 count;
      Behavior.to_operator ~service_time:0.05e-3 spike_filter;
      Behavior.to_operator ~keys:word_keys ~service_time:0.1e-3 dedup;
      Behavior.to_operator ~service_time:0.8e-3 trending;
    |]
  in
  let topology =
    Topology.create_exn ops
      [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 4, 1.0) ]
  in

  (* Analyze and optimize through the Session facade (the tool workflow). *)
  let session = Ss_tool.Session.import topology in
  let analysis = Ss_tool.Session.analyze session () in
  Format.printf "--- analysis ---@.%a@.@." Ss_core.Steady_state.pp analysis;
  let version, plan = Ss_tool.Session.eliminate_bottlenecks session () in
  Format.printf "--- optimization (version %S) ---@.%a@.@." version
    Ss_core.Fission.pp plan;

  (* Execute the optimized plan on real words. *)
  let stream =
    List.init 40_000 (fun i ->
        let w = Discrete.sample rng word_keys in
        ignore vocabulary.(w);
        Tuple.make ~ts:(float_of_int i /. 2500.0) ~key:w [| 1.0 |])
  in
  let behaviors = [ (1, count); (2, spike_filter); (3, dedup); (4, trending) ] in
  let metrics =
    Ss_runtime.Executor.run
      ~source:(Ss_runtime.Executor.source_of_list stream)
      ~registry:(fun v -> List.assoc v behaviors)
      plan.Ss_core.Fission.topology
  in
  Format.printf "--- runtime execution (40k words) ---@.";
  Array.iteri
    (fun v consumed ->
      Format.printf "  %-26s consumed %6d  produced %6d@."
        (Topology.operator topology v).Operator.name consumed
        metrics.Ss_runtime.Executor.produced.(v))
    metrics.Ss_runtime.Executor.consumed;

  (* Code generation: the program a user would ship (SS2Akka step). *)
  let code = Ss_tool.Session.generate_code session ~version ~tuples:10_000 () in
  let preview =
    String.concat "\n"
      (List.filteri (fun i _ -> i < 12) (String.split_on_char '\n' code))
  in
  Format.printf "@.--- generated program (first lines) ---@.%s@.  ...@." preview;
  Format.printf "(%d lines total; see `spinstreams codegen --help`)@."
    (List.length (String.split_on_char '\n' code))
