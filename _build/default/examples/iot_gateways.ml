(* Multi-gateway IoT analytics: two ingestion gateways feed one analytics
   tail. Demonstrates three extensions built on top of the paper:
   - multi-source unification (fictitious root, proportional throttling);
   - event-time tumbling windows with watermarks and allowed lateness;
   - placement of the optimized topology onto a small edge cluster.

   Run with: dune exec examples/iot_gateways.exe *)

open Ss_prelude
open Ss_topology
open Ss_core

let () =
  (* 1. Two gateways (uplinks at 600/s and 300/s) feed a shared pipeline:
     validate -> per-device mean (event time) -> alert sink. The raw graph
     has two sources, so the paper's rooted-DAG models reject it; the
     fictitious-root construction makes it analyzable. *)
  let devices = Discrete.zipf ~alpha:0.8 256 in
  let ops =
    [|
      Operator.source ~rate:600.0 "gateway_a";
      Operator.source ~rate:300.0 "gateway_b";
      Operator.make ~service_time:0.4e-3 "validate";
      Operator.make
        ~kind:(Operator.Partitioned_stateful devices)
        ~service_time:2.2e-3 "per_device_mean";
      Operator.make ~service_time:0.1e-3 "alert_sink";
    |]
  in
  let edges = [ (0, 2, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 4, 1.0) ] in
  let topology, _remap =
    match Multi_source.unify ops edges with
    | Ok r -> r
    | Error e -> failwith e
  in
  let analysis = Steady_state.analyze topology in
  Format.printf "--- unified multi-source topology ---@.%a@.@." Steady_state.pp
    analysis;
  Format.printf "per-gateway ingestion under backpressure:@.";
  List.iter
    (fun (v, rate) ->
      Format.printf "  %-12s %7.1f msgs/s@."
        (Topology.operator topology v).Operator.name rate)
    (Multi_source.throughput_per_source topology analysis);

  (* 2. The keyed aggregation is the bottleneck: fission fixes it. *)
  let plan = Fission.optimize topology in
  Format.printf "@.--- after fission ---@.%a@.@." Fission.pp plan;

  (* 3. Latency estimate of the optimized plan. *)
  let latency =
    Latency.estimate plan.Fission.topology
      (Steady_state.analyze plan.Fission.topology)
  in
  Format.printf "--- latency estimate ---@.%a@.@." Latency.pp latency;

  (* 4. Place the plan on two 4-core edge nodes; network crossings cost the
     sender 50us per message. *)
  let cluster =
    Ss_placement.Cluster.homogeneous ~send_overhead:50e-6 ~link_latency:1e-3
      ~nodes:2 ~cores:4 ()
  in
  let assignment =
    Ss_placement.Placement.communication_aware cluster plan.Fission.topology
  in
  let evaluation =
    Ss_placement.Placement.evaluate cluster plan.Fission.topology assignment
  in
  Format.printf "--- placement on 2x4-core edge nodes ---@.";
  Array.iteri
    (fun v node ->
      Format.printf "  %-18s -> node%d@."
        (Topology.operator plan.Fission.topology v).Operator.name node)
    assignment;
  Format.printf "%a@.@." Ss_placement.Placement.pp_evaluation evaluation;

  (* 5. Event-time semantics on real tuples: a tumbling per-device mean with
     a 0.5s allowed lateness absorbs the gateways' disorder; hopelessly late
     readings are counted. *)
  let behavior =
    Ss_operators.Time_ops.mean ~per_key:true ~allowed_lateness:0.5
      ~kind:(Ss_operators.Time_window.Tumbling 1.0) ()
  in
  let fn = Ss_operators.Behavior.instantiate behavior in
  let rng = Rng.create 31 in
  let out_of_order_stream =
    List.init 5000 (fun i ->
        let ts = (float_of_int i /. 900.0) +. Dist.sample rng (Dist.Uniform (-0.3, 0.0)) in
        Ss_operators.Tuple.make ~ts:(Float.max 0.0 ts)
          ~key:(Discrete.sample rng devices)
          [| 20.0 +. Dist.sample rng (Dist.Normal (0.0, 2.0)) |])
  in
  let fired =
    List.fold_left (fun acc t -> acc + List.length (fn t)) 0 out_of_order_stream
  in
  Format.printf "--- event-time aggregation over 5000 disordered readings ---@.";
  Format.printf "windows fired: %d (tumbling 1s, per device, 0.5s lateness)@."
    fired
