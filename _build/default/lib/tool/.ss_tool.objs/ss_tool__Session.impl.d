lib/tool/session.ml: Buffer Fission Format Fusion Latency List Multi_source Operator Printf Result Ss_codegen Ss_core Ss_sim Ss_topology Ss_xml Steady_state String Topology
