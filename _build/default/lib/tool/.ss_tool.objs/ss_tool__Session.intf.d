lib/tool/session.mli: Ss_core Ss_sim Ss_topology
