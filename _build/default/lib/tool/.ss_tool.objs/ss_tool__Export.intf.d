lib/tool/export.mli: Session Ss_core Ss_sim Ss_topology
