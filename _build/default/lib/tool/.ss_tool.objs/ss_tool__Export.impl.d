lib/tool/export.ml: Array Buffer Char Float Latency List Operator Printf Session Ss_core Ss_prelude Ss_sim Ss_topology Steady_state String Topology
