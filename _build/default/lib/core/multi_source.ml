open Ss_topology

let root_name = "__root__"

let ( let* ) = Result.bind

let unify operators edges =
  let n = Array.length operators in
  let* () = if n = 0 then Error "empty topology" else Ok () in
  let* () =
    if Array.exists (fun (o : Operator.t) -> o.Operator.name = root_name) operators
    then Error (Printf.sprintf "operator name %s is reserved" root_name)
    else Ok ()
  in
  let has_input = Array.make n false in
  List.iter
    (fun (_, v, _) -> if v >= 0 && v < n then has_input.(v) <- true)
    edges;
  let sources =
    List.filter (fun v -> not has_input.(v)) (List.init n Fun.id)
  in
  let* () = if sources = [] then Error "no source vertex (cyclic graph?)" else Ok () in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        let op = operators.(s) in
        if op.Operator.replicas <> 1 then
          Error (Printf.sprintf "source %S is replicated" op.Operator.name)
        else if op.Operator.input_selectivity <> 1.0 then
          Error
            (Printf.sprintf "source %S has a non-unit input selectivity"
               op.Operator.name)
        else Ok ())
      (Ok ()) sources
  in
  (* The root emits at the aggregate of the sources' consumption rates and
     splits in proportion, so each real source is fed exactly at its own
     service rate (utilization 1) and emits at its nominal output rate. *)
  let rate s = Operator.service_rate operators.(s) in
  let total_rate = List.fold_left (fun acc s -> acc +. rate s) 0.0 sources in
  let root = Operator.make ~service_time:(1.0 /. total_rate) root_name in
  let remap = Array.init n (fun i -> i + 1) in
  let new_ops = Array.append [| root |] operators in
  let new_edges =
    List.map (fun (u, v, p) -> (remap.(u), remap.(v), p)) edges
    @ List.map (fun s -> (0, remap.(s), rate s /. total_rate)) sources
  in
  match Topology.create new_ops new_edges with
  | Ok t -> Ok (t, remap)
  | Error e -> Error (Topology.error_to_string e)

let sources_of topology =
  List.map fst (Topology.succs topology (Topology.source topology))

let throughput_per_source topology (analysis : Steady_state.t) =
  List.map
    (fun s ->
      (s, analysis.Steady_state.metrics.(s).Steady_state.departure_rate))
    (sources_of topology)
