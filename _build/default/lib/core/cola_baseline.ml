open Ss_topology

type t = {
  units : int list list;
  unit_of : int array;
  predicted_throughput : float;
  inter_unit_rate : float;
  splits : int;
}

(* Normalized flows per source emission, unthrottled: the source emits one
   item; arrivals and departures follow the edge probabilities and the
   selectivity factors. *)
let normalized_flows topology =
  let n = Topology.size topology in
  let arrivals = Array.make n 0.0 in
  let departures = Array.make n 0.0 in
  let src = Topology.source topology in
  Array.iter
    (fun v ->
      let op = Topology.operator topology v in
      if v = src then begin
        arrivals.(v) <- 1.0;
        departures.(v) <- 1.0
      end
      else begin
        arrivals.(v) <-
          List.fold_left
            (fun acc (u, p) -> acc +. (departures.(u) *. p))
            0.0
            (Topology.preds topology v);
        departures.(v) <- arrivals.(v) *. Operator.selectivity_factor op
      end)
    (Topology.topological_order topology);
  (arrivals, departures)

let partition ?target_rate topology =
  let n = Topology.size topology in
  let src = Topology.source topology in
  let nominal =
    Operator.service_rate (Topology.operator topology src)
    *. Operator.selectivity_factor (Topology.operator topology src)
  in
  let target = Option.value target_rate ~default:nominal in
  let arrivals, departures = normalized_flows topology in
  (* Work one PE performs per source emission. The source contributes none:
     its service time is emission pacing, not executor work, and COLA maps
     operators, taking the ingress as given. *)
  let vertex_work v =
    if v = src then 0.0
    else arrivals.(v) *. (Topology.operator topology v).Operator.service_time
  in
  let work members = List.fold_left (fun acc v -> acc +. vertex_work v) 0.0 members in
  let position =
    let pos = Array.make n 0 in
    Array.iteri (fun i v -> pos.(v) <- i) (Topology.topological_order topology);
    pos
  in
  let budget = 1.0 /. target in
  (* Crossing data rate created by separating [prefix] from [suffix]
     (normalized per emission); the topological cut means no suffix-to-prefix
     edges exist. *)
  let cut_cost prefix suffix =
    List.fold_left
      (fun acc u ->
        List.fold_left
          (fun acc (v, p) ->
            if List.mem v suffix then acc +. (departures.(u) *. p) else acc)
          acc (Topology.succs topology u))
      0.0 prefix
  in
  let split members =
    let sorted =
      List.sort (fun a b -> compare position.(a) position.(b)) members
    in
    let len = List.length sorted in
    let best = ref None in
    for k = 1 to len - 1 do
      let prefix = List.filteri (fun i _ -> i < k) sorted in
      let suffix = List.filteri (fun i _ -> i >= k) sorted in
      let cost = cut_cost prefix suffix in
      let imbalance = Float.abs (work prefix -. work suffix) in
      let better =
        match !best with
        | None -> true
        | Some (c, i, _, _) -> cost < c -. 1e-12 || (cost <= c +. 1e-12 && imbalance < i)
      in
      if better then best := Some (cost, imbalance, prefix, suffix)
    done;
    match !best with
    | Some (_, _, prefix, suffix) -> (prefix, suffix)
    | None -> invalid_arg "Cola_baseline.split: singleton PE"
  in
  let rec refine units splits =
    match
      List.find_opt
        (fun members -> List.length members > 1 && work members > budget)
        units
    with
    | None -> (units, splits)
    | Some overloaded ->
        let prefix, suffix = split overloaded in
        let units =
          prefix :: suffix :: List.filter (fun m -> m != overloaded) units
        in
        refine units (splits + 1)
  in
  let units, splits = refine [ List.init n Fun.id ] 0 in
  (* Stable presentation: units ordered by their first vertex. *)
  let units =
    units
    |> List.map (List.sort compare)
    |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
  in
  let unit_of = Array.make n 0 in
  List.iteri (fun i members -> List.iter (fun v -> unit_of.(v) <- i) members) units;
  let max_work =
    List.fold_left (fun acc members -> Float.max acc (work members)) 0.0 units
  in
  let predicted_throughput = Float.min nominal (1.0 /. max_work) in
  let crossing_normalized =
    List.fold_left
      (fun acc (u, v, p) ->
        if unit_of.(u) <> unit_of.(v) then acc +. (departures.(u) *. p) else acc)
      0.0 (Topology.edges topology)
  in
  {
    units;
    unit_of;
    predicted_throughput;
    inter_unit_rate = predicted_throughput *. crossing_normalized;
    splits;
  }

let crossing_rate topology (analysis : Steady_state.t) ~unit_of =
  List.fold_left
    (fun acc (u, v, p) ->
      if unit_of.(u) <> unit_of.(v) then
        acc
        +. (analysis.Steady_state.metrics.(u).Steady_state.departure_rate *. p)
      else acc)
    0.0 (Topology.edges topology)

let pp ppf t =
  Format.fprintf ppf "@[<v>COLA partition (%d units, %d splits):@,"
    (List.length t.units) t.splits;
  List.iteri
    (fun i members ->
      Format.fprintf ppf "  PE%d: {%s}@," i
        (String.concat ", " (List.map string_of_int members)))
    t.units;
  Format.fprintf ppf
    "predicted throughput %.1f items/s, inter-unit traffic %.1f items/s@]"
    t.predicted_throughput t.inter_unit_rate
