(** Steady-state throughput analysis under backpressure — the paper's
    Algorithm 1, extended with replicas and input/output selectivity (§3.4).

    The topology is interpreted as a queueing network with finite buffers and
    Blocking-After-Service semantics. The analysis labels every operator with
    its steady-state arrival rate, utilization factor and departure rate; a
    bottleneck (utilization > 1 is a transient condition in blocking
    networks) throttles the source by backpressure, which the algorithm
    models by scaling the source's emission rate by [1 / rho] and restarting
    the traversal (Theorem 3.2). On the returned report every utilization is
    <= 1 (Invariant 3.1). *)

type vertex_metrics = {
  name : string;  (** Operator name, copied from the topology. *)
  arrival_rate : float;  (** lambda: items reaching the operator per second. *)
  utilization : float;
      (** rho: fraction of capacity in use, in [\[0, 1\]] (up to rounding). *)
  departure_rate : float;
      (** delta: results leaving the operator per second, accounting for
          selectivity. *)
  capacity : float;
      (** Maximum sustainable arrival rate: [n * mu] for stateless replicas,
          [mu / pmax] for partitioned-stateful ones, [mu] otherwise. *)
  is_bottleneck : bool;
      (** True when this vertex is saturated ([rho = 1]) in the final steady
          state — a binding constraint on throughput. The source is flagged
          when nothing throttles it. *)
}

type t = {
  metrics : vertex_metrics array;
  throughput : float;
      (** Items ingested by the topology per second: the steady-state
          departure rate of the source (paper §5.2). *)
  sink_rate : float;  (** Sum of sink departure rates. *)
  source_scaling : float;
      (** Fraction of the source's nominal rate that survives backpressure
          (1 when no bottleneck exists). *)
  restarts : int;  (** Number of source corrections performed. *)
}

val capacity_of : Ss_topology.Operator.t -> float
(** Maximum arrival rate the operator sustains with its current replica
    count, considering key skew for partitioned-stateful operators. *)

val analyze : Ss_topology.Topology.t -> t
(** Runs the corrected-restart traversal. Terminates after at most
    [size t] corrections. *)

val bottlenecks : t -> int list
(** Vertices flagged as saturating, in increasing id order. *)

val pp : Format.formatter -> t -> unit
(** Table in the style of the paper's Tables 1–2 (mu^-1, delta^-1, rho per
    operator, predicted throughput). *)
