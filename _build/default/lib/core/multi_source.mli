(** Multi-source topologies — one of the paper's future-work directions
    (§7), built on the device §3.1 already sketches: "the single source
    assumption can be circumvented by adding a fictitious source operator in
    the topology linked to the real sources".

    The fictitious root emits at the sum of the real sources' nominal rates
    and routes to each real source with probability proportional to its
    rate, so every source receives exactly its own emission rate and runs at
    utilization 1. When a downstream bottleneck asserts backpressure, the
    correction of Theorem 3.2 throttles the fictitious root — i.e., all
    sources are slowed {e proportionally}. The paper observes that with
    multiple sources the steady state is otherwise under-determined
    (infinitely many ways to split the slowdown); proportional throttling is
    the canonical resolution this module fixes. *)

val root_name : string
(** Name of the injected vertex: ["__root__"]. *)

val unify :
  Ss_topology.Operator.t array ->
  (int * int * float) list ->
  (Ss_topology.Topology.t * int array, string) result
(** [unify operators edges] accepts an operator graph with {e one or more}
    sources (vertices without inputs) and returns a rooted topology with the
    fictitious source prepended as vertex 0 (every original vertex [i]
    becomes [i + 1]; the returned array maps old ids to new ones). Graphs
    with a single source gain the root all the same, keeping the semantics
    uniform. All other topology invariants (acyclicity, probabilities,
    names) are enforced as usual. Fails if any source operator is
    replicated, has an input selectivity other than 1, or if the graph is
    invalid. *)

val sources_of : Ss_topology.Topology.t -> int list
(** The original source vertices of a unified topology: the successors of
    the root. *)

val throughput_per_source :
  Ss_topology.Topology.t -> Steady_state.t -> (int * float) list
(** Per-source steady-state ingestion rates of a unified topology under the
    proportional-throttling semantics: [(source vertex, departure rate)]
    pairs read from the analysis. *)
