(** Key-group assignment for the fission of partitioned-stateful operators
    (the [KeyPartitioning] call of the paper's Algorithm 2).

    Given the frequency distribution of the partitioning-key groups and the
    utilization factor of a bottleneck operator, the heuristic chooses a
    number of replicas and an assignment of key groups to replicas whose most
    loaded replica receives a fraction of the input as close as possible to
    [1 / ceil rho]. *)

open Ss_prelude

type assignment = {
  replicas : int;  (** Number of replicas actually used. *)
  max_fraction : float;
      (** Input fraction of the most loaded replica ([pmax]); at least
          [1 / replicas]. *)
  groups : int array;
      (** [groups.(k)] is the replica (in [0 .. replicas-1]) owning key
          group [k]. *)
}

val groups_for : keys:Discrete.t -> replicas:int -> int array
(** Greedy key-group placement on exactly [min replicas (support keys)]
    replicas: [groups.(k)] is the replica owning key group [k]. This is the
    assignment {!pmax_for} reports the maximum load of; the simulator and
    runtime route with it so that measured and predicted skew agree. *)

val pmax_for : keys:Discrete.t -> replicas:int -> float
(** Input fraction of the most loaded replica when the key groups are placed
    on exactly [min replicas (Discrete.support keys)] replicas by the greedy
    heuristic. Requires [replicas >= 1]. *)

val assign : keys:Discrete.t -> rho:float -> assignment
(** [assign ~keys ~rho] with [rho > 1]. Longest-processing-time greedy
    placement into [ceil rho] bins, followed by a repacking pass that
    releases replicas that are not needed to keep the maximum load (mimics
    the paper's example where a 50%-frequency key caps the useful degree).
    The key-group order of ties is deterministic. *)

val load_per_replica : assignment -> keys:Discrete.t -> float array
(** Input fraction routed to each replica under the assignment. *)
