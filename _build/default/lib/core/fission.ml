open Ss_prelude
open Ss_topology

type replication = {
  vertex : int;
  name : string;
  before : int;
  after : int;
  max_fraction : float option;
}

type t = {
  topology : Topology.t;
  analysis : Steady_state.t;
  replications : replication list;
  residual_bottlenecks : int list;
  total_replicas : int;
}

let epsilon = 1e-9

(* Core of Algorithm 2: decide a replica count per vertex. Returns the
   replica vector, the per-vertex pmax chosen by key partitioning, and the
   set of vertices whose bottleneck could not be removed. *)
let plan_replicas topology =
  let n = Topology.size topology in
  let order = Topology.topological_order topology in
  let src = Topology.source topology in
  let replicas =
    Array.init n (fun v -> (Topology.operator topology v).Operator.replicas)
  in
  let pmax = Array.make n 1.0 in
  let residual = Array.make n false in
  let delta = Array.make n 0.0 in
  let capacity v =
    let op = Topology.operator topology v in
    let mu = Operator.service_rate op in
    match op.Operator.kind with
    | Operator.Stateless -> float_of_int replicas.(v) *. mu
    | Operator.Partitioned_stateful _ -> mu /. pmax.(v)
    | Operator.Stateful -> mu
  in
  let rec pass alpha restarts =
    assert (restarts <= 2 * n);
    let src_op = Topology.operator topology src in
    delta.(src) <-
      alpha *. Operator.service_rate src_op *. Operator.selectivity_factor src_op;
    let result = ref None in
    let i = ref 1 in
    while !result = None && !i < n do
      let v = order.(!i) in
      let op = Topology.operator topology v in
      let lambda =
        List.fold_left
          (fun acc (u, p) -> acc +. (delta.(u) *. p))
          0.0
          (Topology.preds topology v)
      in
      let rho = lambda /. capacity v in
      if rho > 1.0 +. epsilon then begin
        match op.Operator.kind with
        | Operator.Stateless ->
            (* Definition 1: the optimal degree is the ceiling of the
               sequential utilization factor. *)
            let rho_seq = lambda /. Operator.service_rate op in
            replicas.(v) <- int_of_float (Float.ceil (rho_seq -. epsilon));
            delta.(v) <- lambda *. Operator.selectivity_factor op;
            incr i
        | Operator.Partitioned_stateful keys ->
            let mu = Operator.service_rate op in
            let rho_seq = lambda /. mu in
            let assignment = Key_partitioning.assign ~keys ~rho:rho_seq in
            replicas.(v) <- assignment.Key_partitioning.replicas;
            pmax.(v) <- assignment.Key_partitioning.max_fraction;
            (* The optimal degree ceil(rho) can leave the most loaded
               replica marginally saturated for purely integer reasons
               (loads are multiples of the key-group frequencies). When no
               single key group dominates, a slightly larger degree fixes
               this; when one does, no degree can (the paper's skew
               example) and the bottleneck is only mitigated. *)
            let n_opt = int_of_float (Float.ceil (rho_seq -. epsilon)) in
            let n = ref (max assignment.Key_partitioning.replicas n_opt) in
            let limit = min (Discrete.support keys) (4 * n_opt) in
            while
              lambda *. pmax.(v) /. mu > 1.0 +. epsilon && !n < limit
            do
              incr n;
              let p = Key_partitioning.pmax_for ~keys ~replicas:!n in
              if p < pmax.(v) then begin
                pmax.(v) <- p;
                replicas.(v) <- !n
              end
            done;
            let rho' = lambda *. pmax.(v) /. mu in
            if rho' > 1.0 +. epsilon then begin
              (* Key skew keeps the most loaded replica saturated: mitigate
                 but throttle the source for the rest. *)
              residual.(v) <- true;
              result := Some (alpha /. rho', restarts + 1)
            end
            else begin
              delta.(v) <- lambda *. Operator.selectivity_factor op;
              incr i
            end
        | Operator.Stateful ->
            residual.(v) <- true;
            result := Some (alpha /. rho, restarts + 1)
      end
      else begin
        delta.(v) <-
          Float.min lambda (capacity v) *. Operator.selectivity_factor op;
        incr i
      end
    done;
    match !result with
    | Some (alpha', restarts') -> pass alpha' restarts'
    | None -> ()
  in
  pass 1.0 0;
  (replicas, pmax, residual)

(* Hold-off replication (§3.2): scale every degree by Nmax / N, then adjust
   by single units so the bound is met exactly without dropping below one
   replica. *)
let apply_bound topology replicas max_replicas =
  let n = Array.length replicas in
  let total () = Array.fold_left ( + ) 0 replicas in
  if max_replicas < n then
    invalid_arg "Fission.optimize: max_replicas below one replica per operator";
  if total () > max_replicas then begin
    let r = float_of_int max_replicas /. float_of_int (total ()) in
    Array.iteri
      (fun v count ->
        let op = Topology.operator topology v in
        if Operator.can_replicate op && count > 1 then
          replicas.(v) <-
            max 1 (int_of_float (Float.round (float_of_int count *. r))))
      replicas;
    (* Rounding anomalies: trim the largest degrees one unit at a time. *)
    while total () > max_replicas do
      let largest = ref (-1) in
      Array.iteri
        (fun v count ->
          if count > 1 && (!largest < 0 || count > replicas.(!largest)) then
            largest := v)
        replicas;
      assert (!largest >= 0);
      replicas.(!largest) <- replicas.(!largest) - 1
    done
  end

let optimize ?max_replicas topology =
  let replicas, pmax, residual = plan_replicas topology in
  Option.iter (apply_bound topology replicas) max_replicas;
  let optimized =
    Topology.map_operators topology (fun v op ->
        if replicas.(v) <> op.Operator.replicas then
          Operator.with_replicas op replicas.(v)
        else op)
  in
  let analysis = Steady_state.analyze optimized in
  let replications =
    List.filter_map
      (fun v ->
        let before = (Topology.operator topology v).Operator.replicas in
        if replicas.(v) <> before then
          let op = Topology.operator topology v in
          Some
            {
              vertex = v;
              name = op.Operator.name;
              before;
              after = replicas.(v);
              max_fraction =
                (match op.Operator.kind with
                | Operator.Partitioned_stateful _ -> Some pmax.(v)
                | Operator.Stateless | Operator.Stateful -> None);
            }
        else None)
      (List.init (Topology.size topology) Fun.id)
  in
  let residual_bottlenecks =
    List.filter
      (fun v -> residual.(v))
      (List.init (Topology.size topology) Fun.id)
  in
  {
    topology = optimized;
    analysis;
    replications;
    residual_bottlenecks;
    total_replicas = Array.fold_left ( + ) 0 replicas;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>fission plan (%d total replicas):@," t.total_replicas;
  (match t.replications with
  | [] -> Format.fprintf ppf "  no operator replicated@,"
  | rs ->
      List.iter
        (fun r ->
          Format.fprintf ppf "  %s (vertex %d): %d -> %d%s@," r.name r.vertex
            r.before r.after
            (match r.max_fraction with
            | Some p -> Printf.sprintf " (pmax=%.3f)" p
            | None -> ""))
        rs);
  (match t.residual_bottlenecks with
  | [] -> ()
  | vs ->
      Format.fprintf ppf "  residual bottlenecks: %s@,"
        (String.concat ", " (List.map string_of_int vs)));
  Format.fprintf ppf "%a@]" Steady_state.pp t.analysis
