(** A COLA-style fusion baseline (Khandekar et al., Middleware 2009), the
    closest related system the paper compares against in §6.

    COLA groups operators into Processing Elements (PEs) to minimize
    inter-PE communication, subject to each PE's aggregate load fitting the
    capacity of its executor; it proceeds top-down from a single PE holding
    the whole topology, recursively splitting overloaded PEs. This module
    implements that strategy under this repository's cost model so the two
    fusion philosophies can be compared quantitatively:
    - {e COLA}: minimize communication subject to capacity;
    - {e SpinStreams} ({!Fusion.auto}): fuse only while the predicted
      throughput is untouched.

    Simplifications (documented deviations from full COLA): PEs are split
    along the topological order of their members (pipeline cuts), choosing
    the cut that minimizes the crossing data rate with load balance as the
    tie-breaker; the load model is this repository's fluid model (a PE
    executing sequentially sustains a source rate of [1 / sum of per-item
    work of its members]). *)

type t = {
  units : int list list;  (** The PEs: a partition of the vertex set. *)
  unit_of : int array;  (** Vertex to PE index. *)
  predicted_throughput : float;
      (** Source rate sustainable with each PE on one sequential executor:
          [min (nominal, 1 / max PE work per source item)]. *)
  inter_unit_rate : float;
      (** Items crossing PE boundaries per second at that throughput — the
          communication cost COLA minimizes. *)
  splits : int;  (** Number of recursive splits performed. *)
}

val partition : ?target_rate:float -> Ss_topology.Topology.t -> t
(** [partition topology] runs the top-down strategy until every PE sustains
    [target_rate] (default: the source's nominal emission rate) or is a
    singleton. *)

val crossing_rate :
  Ss_topology.Topology.t -> Steady_state.t -> unit_of:int array -> float
(** Data rate over edges whose endpoints live in different units, at the
    given steady state — the comparison metric, also applicable to a
    SpinStreams-fused topology where every vertex is its own unit. *)

val pp : Format.formatter -> t -> unit
