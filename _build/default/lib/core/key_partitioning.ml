open Ss_prelude

type assignment = {
  replicas : int;
  max_fraction : float;
  groups : int array;
}

(* Longest-processing-time greedy: heaviest key group to the currently
   least loaded replica. Deterministic tie-break on key index. *)
let lpt ~keys ~bins =
  let num_keys = Discrete.support keys in
  let order = Array.init num_keys Fun.id in
  Array.sort
    (fun a b ->
      match compare (Discrete.prob keys b) (Discrete.prob keys a) with
      | 0 -> compare a b
      | c -> c)
    order;
  let loads = Array.make bins 0.0 in
  let groups = Array.make num_keys 0 in
  Array.iter
    (fun k ->
      let target = ref 0 in
      for r = 1 to bins - 1 do
        if loads.(r) < loads.(!target) then target := r
      done;
      groups.(k) <- !target;
      loads.(!target) <- loads.(!target) +. Discrete.prob keys k)
    order;
  (loads, groups)

let groups_for ~keys ~replicas =
  if replicas < 1 then invalid_arg "Key_partitioning.groups_for: replicas < 1";
  let bins = min replicas (Discrete.support keys) in
  let _, groups = lpt ~keys ~bins in
  groups

let pmax_for ~keys ~replicas =
  if replicas < 1 then invalid_arg "Key_partitioning.pmax_for: replicas < 1";
  let bins = min replicas (Discrete.support keys) in
  let loads, _ = lpt ~keys ~bins in
  Array.fold_left Float.max 0.0 loads

let assign ~keys ~rho =
  if rho <= 1.0 then invalid_arg "Key_partitioning.assign: rho must be > 1";
  let num_keys = Discrete.support keys in
  let n_opt = int_of_float (Float.ceil rho) in
  let bins = min n_opt num_keys in
  let loads, groups = lpt ~keys ~bins in
  let pmax = Array.fold_left Float.max 0.0 loads in
  (* Repack: merge replicas while no bin exceeds pmax, releasing replicas
     that do not contribute to sustainable throughput. First-fit decreasing
     over the replica loads. *)
  let load_order = Array.init bins Fun.id in
  Array.sort
    (fun a b ->
      match compare loads.(b) loads.(a) with 0 -> compare a b | c -> c)
    load_order;
  let merged_of = Array.make bins (-1) in
  let merged_loads = Array.make bins 0.0 in
  let used = ref 0 in
  Array.iter
    (fun r ->
      let placed = ref false in
      let slot = ref 0 in
      while (not !placed) && !slot < !used do
        if merged_loads.(!slot) +. loads.(r) <= pmax +. 1e-12 then begin
          merged_of.(r) <- !slot;
          merged_loads.(!slot) <- merged_loads.(!slot) +. loads.(r);
          placed := true
        end
        else incr slot
      done;
      if not !placed then begin
        merged_of.(r) <- !used;
        merged_loads.(!used) <- loads.(r);
        incr used
      end)
    load_order;
  let groups = Array.map (fun r -> merged_of.(r)) groups in
  { replicas = !used; max_fraction = pmax; groups }

let load_per_replica t ~keys =
  let loads = Array.make t.replicas 0.0 in
  Array.iteri
    (fun k r -> loads.(r) <- loads.(r) +. Discrete.prob keys k)
    t.groups;
  loads
