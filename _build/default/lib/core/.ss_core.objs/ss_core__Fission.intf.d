lib/core/fission.mli: Format Ss_topology Steady_state
