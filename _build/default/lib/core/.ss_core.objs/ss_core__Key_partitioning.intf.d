lib/core/key_partitioning.mli: Discrete Ss_prelude
