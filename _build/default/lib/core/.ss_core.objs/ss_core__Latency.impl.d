lib/core/latency.ml: Array Dist Float Format List Operator Printf Ss_prelude Ss_topology Steady_state String Topology
