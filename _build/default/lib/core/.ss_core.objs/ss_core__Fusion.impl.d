lib/core/fusion.ml: Array Fun Hashtbl List Operator Option Printf Result Ss_topology Steady_state String Topology
