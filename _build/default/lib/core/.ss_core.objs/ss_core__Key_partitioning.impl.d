lib/core/key_partitioning.ml: Array Discrete Float Fun Ss_prelude
