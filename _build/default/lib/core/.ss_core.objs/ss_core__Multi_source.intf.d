lib/core/multi_source.mli: Ss_topology Steady_state
