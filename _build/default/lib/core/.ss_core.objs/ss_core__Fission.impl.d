lib/core/fission.ml: Array Discrete Float Format Fun Key_partitioning List Operator Option Printf Ss_prelude Ss_topology Steady_state String Topology
