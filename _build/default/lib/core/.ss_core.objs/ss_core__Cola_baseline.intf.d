lib/core/cola_baseline.mli: Format Ss_topology Steady_state
