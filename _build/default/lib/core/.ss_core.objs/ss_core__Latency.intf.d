lib/core/latency.mli: Format Ss_topology Steady_state
