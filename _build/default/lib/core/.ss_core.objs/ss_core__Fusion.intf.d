lib/core/fusion.mli: Ss_topology Steady_state
