lib/core/steady_state.ml: Array Float Format Key_partitioning List Operator Printf Ss_topology Topology
