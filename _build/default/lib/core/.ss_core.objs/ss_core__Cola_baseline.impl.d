lib/core/cola_baseline.ml: Array Float Format Fun List Operator Option Ss_topology Steady_state String Topology
