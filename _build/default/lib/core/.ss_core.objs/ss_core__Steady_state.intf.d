lib/core/steady_state.mli: Format Ss_topology
