lib/core/multi_source.ml: Array Fun List Operator Printf Result Ss_topology Steady_state Topology
