open Ss_prelude
open Ss_topology

type vertex_latency = {
  waiting_time : float;
  service_time : float;
  utilization : float;
  arrival_scv : float;
  visit_ratio : float;
}

type t = {
  per_vertex : vertex_latency array;
  end_to_end : float;
  saturated : int list;
}

let epsilon = 1e-6

let service_scv (op : Operator.t) =
  let mean = Dist.mean op.Operator.service_dist in
  let variance = Dist.variance op.Operator.service_dist in
  if mean <= 0.0 then 0.0 else variance /. (mean *. mean)

(* Kingman's GI/G/n approximation of the mean waiting time. *)
let kingman ~arrival_scv ~service_scv ~utilization ~service_time ~servers =
  if utilization >= 1.0 -. epsilon then infinity
  else
    (arrival_scv +. service_scv) /. 2.0
    *. (utilization /. (1.0 -. utilization))
    *. service_time /. float_of_int servers

let estimate topology (analysis : Steady_state.t) =
  let n = Topology.size topology in
  let src = Topology.source topology in
  let order = Topology.topological_order topology in
  let departure_scv = Array.make n 1.0 in
  let arrival_scv = Array.make n 1.0 in
  let waiting = Array.make n 0.0 in
  Array.iter
    (fun v ->
      let op = Topology.operator topology v in
      let m = analysis.Steady_state.metrics.(v) in
      let rho = m.Steady_state.utilization in
      let cs2 = service_scv op in
      let ca2 =
        if v = src then cs2 (* the source's output process is its service *)
        else begin
          (* Merge the incoming flows: rate-weighted average of the SCVs of
             the split streams (Whitt's QNA, merge step). *)
          let total_rate = ref 0.0 and acc = ref 0.0 in
          List.iter
            (fun (u, p) ->
              let rate =
                analysis.Steady_state.metrics.(u).Steady_state.departure_rate
                *. p
              in
              (* Splitting a stream with probability p (QNA split step). *)
              let split_scv = 1.0 +. (p *. (departure_scv.(u) -. 1.0)) in
              total_rate := !total_rate +. rate;
              acc := !acc +. (rate *. split_scv))
            (Topology.preds topology v);
          if !total_rate > 0.0 then !acc /. !total_rate else 1.0
        end
      in
      arrival_scv.(v) <- ca2;
      if v <> src then begin
        let base =
          kingman ~arrival_scv:ca2 ~service_scv:cs2 ~utilization:rho
            ~service_time:op.Operator.service_time
            ~servers:op.Operator.replicas
        in
        (* Batch-arrival correction: an upstream operator with output
           selectivity B emits its B results back to back (one firing), so
           an item in such a batch additionally waits for the (B-1)/2
           batch-mates served before it on average (GI^[X]/G/1). *)
        let batch_extra =
          let total_rate = ref 0.0 and acc = ref 0.0 in
          List.iter
            (fun (u, p) ->
              let rate =
                analysis.Steady_state.metrics.(u).Steady_state.departure_rate
                *. p
              in
              let b =
                Float.max 1.0
                  (Topology.operator topology u).Operator.output_selectivity
              in
              total_rate := !total_rate +. rate;
              acc := !acc +. (rate *. (b -. 1.0) /. 2.0))
            (Topology.preds topology v);
          if !total_rate > 0.0 then
            !acc /. !total_rate *. op.Operator.service_time
            /. float_of_int op.Operator.replicas
          else 0.0
        in
        waiting.(v) <-
          (if Float.is_finite base then base +. batch_extra else base)
      end;
      (* Marshall's approximation of the departure process SCV. *)
      departure_scv.(v) <- (rho *. rho *. cs2) +. ((1.0 -. (rho *. rho)) *. ca2))
    order;
  let src_rate = analysis.Steady_state.throughput in
  let per_vertex =
    Array.init n (fun v ->
        let op = Topology.operator topology v in
        let m = analysis.Steady_state.metrics.(v) in
        {
          waiting_time = waiting.(v);
          service_time = op.Operator.service_time;
          utilization = m.Steady_state.utilization;
          arrival_scv = arrival_scv.(v);
          visit_ratio =
            (if v = src then 1.0
             else if src_rate > 0.0 then
               m.Steady_state.arrival_rate /. src_rate
             else 0.0);
        })
  in
  let saturated = ref [] in
  let end_to_end = ref 0.0 in
  for v = n - 1 downto 0 do
    if v <> src then begin
      let l = per_vertex.(v) in
      if Float.is_finite l.waiting_time then
        end_to_end :=
          !end_to_end +. (l.visit_ratio *. (l.waiting_time +. l.service_time))
      else saturated := v :: !saturated
    end
  done;
  { per_vertex; end_to_end = !end_to_end; saturated = !saturated }

let pp ppf t =
  Format.fprintf ppf "@[<v>%-4s %10s %10s %10s %8s@," "id" "wait (ms)"
    "serve (ms)" "visits" "ca^2";
  Array.iteri
    (fun v l ->
      let wait =
        if Float.is_finite l.waiting_time then
          Printf.sprintf "%10.3f" (l.waiting_time *. 1e3)
        else Printf.sprintf "%10s" "saturated"
      in
      Format.fprintf ppf "%-4d %s %10.3f %10.3f %8.2f@," v wait
        (l.service_time *. 1e3) l.visit_ratio l.arrival_scv)
    t.per_vertex;
  Format.fprintf ppf "expected end-to-end latency: %.3f ms%s@]"
    (t.end_to_end *. 1e3)
    (if t.saturated = [] then ""
     else
       Printf.sprintf " (excluding saturated vertices %s)"
         (String.concat ", " (List.map string_of_int t.saturated)))
