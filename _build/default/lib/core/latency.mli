(** Analytical latency estimation — a companion to the throughput-only cost
    models of the paper (whose stated motivation, §1, includes "reducing
    processing latency").

    Each operator is approximated as a GI/G/1 station using Kingman's
    heavy-traffic formula for the mean waiting time,

    {v W ≈ (ca² + cs²) / 2 · ρ / (1 - ρ) · E[S], v}

    where [cs²] is the squared coefficient of variation of the service time
    (known from the operator's distribution) and [ca²] of the inter-arrival
    time, which is propagated through the network in the style of Whitt's
    Queueing Network Analyzer:
    - departures: [cd² = ρ²·cs² + (1 - ρ²)·ca²] (Marshall's approximation);
    - a probabilistic split with probability [p]: [1 + p·(cd² - 1)];
    - a merge of flows: the rate-weighted average of the incoming SCVs.

    The end-to-end latency is the expected sojourn of one source emission:
    [Σ_v r_v · (W_v + E[S_v])] with [r_v] the expected visits per source
    item (arrival rate over source departure rate, which also accounts for
    selectivities).

    Scope: meaningful for utilizations strictly below 1; saturated vertices
    (bottlenecks under backpressure) have unbounded queueing delay in the
    fluid model, reported as [infinity] for the vertex and excluded from the
    end-to-end sum (their buffers are full; the actual in-buffer delay is
    [capacity / throughput], which depends on the deployment's buffer
    size — the simulator reports it). *)

type vertex_latency = {
  waiting_time : float;
      (** Mean buffering delay in seconds; [infinity] when saturated. *)
  service_time : float;  (** Mean service time, for convenience. *)
  utilization : float;  (** Copied from the analysis. *)
  arrival_scv : float;
      (** Propagated squared coefficient of variation of inter-arrivals. *)
  visit_ratio : float;  (** Expected visits per source emission. *)
}

type t = {
  per_vertex : vertex_latency array;
  end_to_end : float;
      (** Expected sojourn (seconds) of a source emission across the
          topology, excluding saturated vertices. *)
  saturated : int list;
      (** Vertices whose waiting time is unbounded in the fluid model. *)
}

val estimate : Ss_topology.Topology.t -> Steady_state.t -> t
(** [estimate topology analysis] requires [analysis] to be the steady state
    of [topology]. *)

val pp : Format.formatter -> t -> unit
