(** Bottleneck elimination by operator fission — the paper's Algorithm 2 and
    the hold-off replication heuristic of §3.2.

    The traversal mirrors {!Steady_state.analyze}; when a bottleneck is
    found:
    - a {e stateless} operator is replicated with the optimal degree
      [ceil rho] (Definition 1), which removes the bottleneck;
    - a {e partitioned-stateful} operator is replicated by assigning key
      groups to replicas ({!Key_partitioning}); if the key skew leaves the
      most loaded replica saturated, the residual bottleneck throttles the
      source (Theorem 3.2) and the traversal restarts;
    - a {e stateful} operator cannot be replicated: the source is throttled
      and the traversal restarts. *)

type replication = {
  vertex : int;
  name : string;
  before : int;  (** Replicas before optimization (normally 1). *)
  after : int;
  max_fraction : float option;
      (** For partitioned-stateful operators, the input fraction of the most
          loaded replica chosen by the key-partitioning heuristic. *)
}

type t = {
  topology : Ss_topology.Topology.t;
      (** Input topology with updated replica counts. *)
  analysis : Steady_state.t;  (** Steady state of the optimized topology. *)
  replications : replication list;  (** Operators whose degree changed. *)
  residual_bottlenecks : int list;
      (** Saturated vertices that fission could not unblock (stateful
          operators, or skew-limited partitioned ones). *)
  total_replicas : int;
      (** Sum of the replica counts over all operators (the paper's [N]). *)
}

val optimize : ?max_replicas:int -> Ss_topology.Topology.t -> t
(** [optimize t] runs Algorithm 2. With [?max_replicas] (the paper's
    [Nmax]), replication degrees are scaled down by [Nmax / N] when the
    unbounded result uses more than [Nmax] total replicas, with unit-level
    adjustments so the bound is respected exactly (never dropping an
    operator below one replica); the analysis is then recomputed on the
    bounded topology.
    @raise Invalid_argument if [max_replicas] is smaller than the number of
    operators. *)

val pp : Format.formatter -> t -> unit
