open Ss_topology

type vertex_metrics = {
  name : string;
  arrival_rate : float;
  utilization : float;
  departure_rate : float;
  capacity : float;
  is_bottleneck : bool;
}

type t = {
  metrics : vertex_metrics array;
  throughput : float;
  sink_rate : float;
  source_scaling : float;
  restarts : int;
}

let epsilon = 1e-9

let capacity_of (op : Operator.t) =
  let mu = Operator.service_rate op in
  match op.Operator.kind with
  | Operator.Stateless -> float_of_int op.Operator.replicas *. mu
  | Operator.Stateful -> mu
  | Operator.Partitioned_stateful keys ->
      if op.Operator.replicas <= 1 then mu
      else
        let pmax =
          Key_partitioning.pmax_for ~keys ~replicas:op.Operator.replicas
        in
        mu /. pmax

let analyze topology =
  let n = Topology.size topology in
  let order = Topology.topological_order topology in
  let src = Topology.source topology in
  let src_op = Topology.operator topology src in
  let lambda = Array.make n 0.0 in
  let rho = Array.make n 0.0 in
  let delta = Array.make n 0.0 in
  let caps =
    Array.init n (fun v -> capacity_of (Topology.operator topology v))
  in
  (* [alpha] is the fraction of the source's nominal emission rate surviving
     backpressure; every rate in the network is linear in it, so Theorem 3.2
     corrections compose multiplicatively. *)
  let rec pass alpha restarts =
    assert (restarts <= 2 * n);
    lambda.(src) <- alpha *. caps.(src);
    rho.(src) <- alpha;
    delta.(src) <- alpha *. caps.(src) *. Operator.selectivity_factor src_op;
    let result = ref None in
    let i = ref 1 in
    while !result = None && !i < n do
      let v = order.(!i) in
      let op = Topology.operator topology v in
      let arriving =
        List.fold_left
          (fun acc (u, p) -> acc +. (delta.(u) *. p))
          0.0
          (Topology.preds topology v)
      in
      lambda.(v) <- arriving;
      rho.(v) <- arriving /. caps.(v);
      if rho.(v) > 1.0 +. epsilon then
        (* Bottleneck: throttle the source and restart (Theorem 3.2). *)
        result := Some (alpha /. rho.(v), restarts + 1)
      else begin
        delta.(v) <-
          Float.min arriving caps.(v) *. Operator.selectivity_factor op;
        incr i
      end
    done;
    match !result with
    | Some (alpha', restarts') -> pass alpha' restarts'
    | None -> (alpha, restarts)
  in
  let alpha, restarts = pass 1.0 0 in
  let metrics =
    Array.init n (fun v ->
        {
          name = (Topology.operator topology v).Operator.name;
          arrival_rate = lambda.(v);
          utilization = Float.min rho.(v) 1.0;
          departure_rate = delta.(v);
          capacity = caps.(v);
          (* Only the binding constraints: operators saturated in the final
             steady state. *)
          is_bottleneck = rho.(v) >= 1.0 -. 1e-6;
        })
  in
  (* The source counts as a bottleneck only if nothing throttled it. *)
  metrics.(src) <-
    { (metrics.(src)) with is_bottleneck = alpha >= 1.0 -. 1e-6 };
  let sink_rate =
    List.fold_left
      (fun acc v -> acc +. delta.(v))
      0.0 (Topology.sinks topology)
  in
  {
    metrics;
    throughput = delta.(src);
    sink_rate;
    source_scaling = alpha;
    restarts;
  }

let bottlenecks t =
  let acc = ref [] in
  Array.iteri
    (fun v m -> if m.is_bottleneck then acc := v :: !acc)
    t.metrics;
  List.rev !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>%-4s %-22s %10s %10s %8s %s@,"
    "id" "operator" "1/mu (ms)" "1/delta" "rho" "";
  Array.iteri
    (fun v m ->
      let inv_delta =
        if m.departure_rate > 0.0 then
          Printf.sprintf "%10.3f" (1e3 /. m.departure_rate)
        else Printf.sprintf "%10s" "inf"
      in
      Format.fprintf ppf "%-4d %-22s %10.3f %s %8.3f %s@," v m.name
        (1e3 /. m.capacity) inv_delta m.utilization
        (if m.is_bottleneck then "bottleneck" else ""))
    t.metrics;
  Format.fprintf ppf "throughput: %.1f items/s (source scaling %.3f, %d restarts)@]"
    t.throughput t.source_scaling t.restarts
