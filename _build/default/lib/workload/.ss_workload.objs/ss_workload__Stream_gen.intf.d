lib/workload/stream_gen.mli: Discrete Dist Rng Seq Ss_operators Ss_prelude
