lib/workload/profiler.ml: Behavior Float Format List Ss_operators Ss_topology Stream_gen Unix
