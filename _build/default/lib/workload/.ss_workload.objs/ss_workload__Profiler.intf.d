lib/workload/profiler.mli: Format Ss_operators Ss_prelude Ss_topology Stream_gen
