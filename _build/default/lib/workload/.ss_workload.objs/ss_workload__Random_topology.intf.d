lib/workload/random_topology.mli: Ss_prelude Ss_topology
