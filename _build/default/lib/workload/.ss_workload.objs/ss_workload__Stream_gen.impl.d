lib/workload/stream_gen.ml: Array Discrete Dist List Rng Seq Ss_operators Ss_prelude
