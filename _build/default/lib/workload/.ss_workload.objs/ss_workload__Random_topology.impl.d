lib/workload/random_topology.ml: Array Discrete Float Hashtbl List Operator Printf Rng Ss_prelude Ss_topology String Topology
