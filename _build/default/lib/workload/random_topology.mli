(** Random topology generation — the paper's Algorithm 5 (§5.1).

    Topologies are sparse rooted DAGs: [V] vertices (uniform in
    [\[min_vertices, max_vertices\]]), an expected [E = (V-1) * beta] edges
    with the connecting factor [beta] uniform in [\[1, 1.2\]], plus the
    edges needed to keep vertex 0 the unique source. Vertices are then
    assigned operators from the catalog (binary join operators only on
    vertices with at least two input edges), window parameters are drawn
    from the evaluation's sets (length 1000/5000/10000, slide 1/10/50),
    partitioned-stateful operators receive a random Zipf key-group
    distribution, and multi-out-edge vertices receive Zipf-distributed
    routing probabilities with a random exponent [alpha > 1]. *)

type params = {
  min_vertices : int;  (** Default 2. *)
  max_vertices : int;  (** Default 20. *)
  beta_min : float;  (** Default 1.0. *)
  beta_max : float;  (** Default 1.2. *)
  edge_alpha_min : float;  (** Zipf exponent range for edges; default 1.0. *)
  edge_alpha_max : float;  (** Default 2.5. *)
  key_groups_min : int;  (** Default 256. *)
  key_groups_max : int;  (** Default 4096. *)
  key_alpha_min : float;
      (** Zipf exponent range for partitioning-key frequencies — milder
          than edge skew, since heavily skewed keys defeat fission
          entirely; default 0.05. *)
  key_alpha_max : float;  (** Default 0.5. *)
  source_headroom : float;
      (** The source's service rate is set to [(1 + headroom)] times the
          fastest operator's service rate, so bottlenecks exist and
          backpressure is exercised (the paper uses 33%). Default 0.33. *)
}

val default_params : params

val generate : ?params:params -> Ss_prelude.Rng.t -> Ss_topology.Topology.t
(** Generate one random topology. Operator names are
    ["<catalog-name>#<vertex>"] (the suffix keeps names unique); vertex 0 is
    the source, named ["source"]. *)

val generate_with_sizes :
  ?params:params ->
  Ss_prelude.Rng.t ->
  vertices:int ->
  edges:int ->
  Ss_topology.Topology.t
(** Algorithm 5 with explicit vertex and edge budgets.
    @raise Invalid_argument when [edges > V(V-1)/2] ("too many edges") or
    [edges < V - 1] ("too few edges"), as in the paper's pseudocode. *)

val testbed : ?params:params -> seed:int -> int -> Ss_topology.Topology.t list
(** [testbed ~seed n] generates the [n]-topology benchmark suite (the paper
    uses 50) deterministically from one seed. *)

val behavior_name : Ss_topology.Operator.t -> string
(** Strip the ["#vertex"] suffix to recover the catalog name. *)
