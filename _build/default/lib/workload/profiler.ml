type profile = {
  behavior : string;
  samples : int;
  mean_service_time : float;
  outputs_per_input : float;
}

let run ?(samples = 10_000) ?spec rng behavior =
  if samples < 1 then invalid_arg "Profiler.run: samples must be >= 1";
  let fn = Ss_operators.Behavior.instantiate behavior in
  let inputs = Stream_gen.tuples ?spec rng samples in
  let outputs = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter (fun t -> outputs := !outputs + List.length (fn t)) inputs;
  let elapsed = Unix.gettimeofday () -. t0 in
  {
    behavior = behavior.Ss_operators.Behavior.name;
    samples;
    mean_service_time = Float.max (elapsed /. float_of_int samples) 1e-9;
    outputs_per_input = float_of_int !outputs /. float_of_int samples;
  }

let to_operator ?name ?keys behavior profile =
  let open Ss_operators in
  (* The measured output rate is per input tuple; the descriptor splits it
     into the declared input selectivity and a per-firing output count. *)
  let input_selectivity = behavior.Behavior.input_selectivity in
  let output_selectivity = profile.outputs_per_input *. input_selectivity in
  let base = Behavior.to_operator ?keys ~service_time:profile.mean_service_time
      { behavior with
        Behavior.output_selectivity =
          (if output_selectivity > 0.0 then output_selectivity else 0.0);
      }
  in
  match name with
  | None -> base
  | Some name -> { base with Ss_topology.Operator.name }

let pp ppf p =
  Format.fprintf ppf
    "@[<h>%s: %.1f us/tuple, %.3f outputs/input (%d samples)@]" p.behavior
    (p.mean_service_time *. 1e6)
    p.outputs_per_input p.samples
