open Ss_prelude
open Ss_topology

type params = {
  min_vertices : int;
  max_vertices : int;
  beta_min : float;
  beta_max : float;
  edge_alpha_min : float;
  edge_alpha_max : float;
  key_groups_min : int;
  key_groups_max : int;
  key_alpha_min : float;
  key_alpha_max : float;
  source_headroom : float;
}

let default_params =
  {
    min_vertices = 2;
    max_vertices = 20;
    beta_min = 1.0;
    beta_max = 1.2;
    edge_alpha_min = 1.0;
    edge_alpha_max = 2.5;
    key_groups_min = 256;
    key_groups_max = 4096;
    key_alpha_min = 0.05;
    key_alpha_max = 0.5;
    source_headroom = 0.33;
  }

(* Operator templates grounding random vertices in the catalog's families.
   Service-time ranges (in milliseconds, sampled log-uniformly) reflect the
   paper's profiled spread: hundreds of microseconds for cheap maps up to a
   few hundred milliseconds for spatial queries over large windows. *)
type kind_tag = K_stateless | K_partitioned | K_stateful

type template = {
  base_name : string;
  tag : kind_tag;
  time_ms : float * float;
  windowed : bool;  (* draws (length, slide) from the evaluation's sets *)
  outputs_per_firing : float * float;  (* range for output selectivity *)
  binary : bool;  (* requires in-degree >= 2 *)
  per_key_prob : float;
      (* probability that a stateful windowed aggregate is generated in its
         keyed form (partitioned-stateful, hence replicable); aggregations
         are usually keyed in real deployments, spatial queries and joins
         are not *)
}

let templates =
  [
    { base_name = "identity"; tag = K_stateless; time_ms = (0.2, 0.8);
      windowed = false; outputs_per_firing = (1.0, 1.0); binary = false; per_key_prob = 0.0 };
    { base_name = "scale"; tag = K_stateless; time_ms = (0.2, 1.0);
      windowed = false; outputs_per_firing = (1.0, 1.0); binary = false; per_key_prob = 0.0 };
    { base_name = "offset"; tag = K_stateless; time_ms = (0.2, 1.0);
      windowed = false; outputs_per_firing = (1.0, 1.0); binary = false; per_key_prob = 0.0 };
    { base_name = "compute"; tag = K_stateless; time_ms = (1.0, 10.0);
      windowed = false; outputs_per_firing = (1.0, 1.0); binary = false; per_key_prob = 0.0 };
    { base_name = "filter"; tag = K_stateless; time_ms = (0.2, 0.8);
      windowed = false; outputs_per_firing = (0.5, 1.0); binary = false; per_key_prob = 0.0 };
    { base_name = "sample"; tag = K_stateless; time_ms = (0.2, 0.6);
      windowed = false; outputs_per_firing = (0.25, 0.25); binary = false; per_key_prob = 0.0 };
    { base_name = "split"; tag = K_stateless; time_ms = (0.3, 1.2);
      windowed = false; outputs_per_firing = (2.0, 2.0); binary = false; per_key_prob = 0.0 };
    { base_name = "project"; tag = K_stateless; time_ms = (0.2, 0.6);
      windowed = false; outputs_per_firing = (1.0, 1.0); binary = false; per_key_prob = 0.0 };
    { base_name = "rekey"; tag = K_stateless; time_ms = (0.2, 0.8);
      windowed = false; outputs_per_firing = (1.0, 1.0); binary = false; per_key_prob = 0.0 };
    { base_name = "enrich"; tag = K_stateless; time_ms = (0.3, 1.5);
      windowed = false; outputs_per_firing = (1.0, 1.0); binary = false; per_key_prob = 0.0 };
    { base_name = "sum"; tag = K_stateful; time_ms = (0.5, 5.0);
      windowed = true; outputs_per_firing = (1.0, 1.0); binary = false; per_key_prob = 0.95 };
    { base_name = "max"; tag = K_stateful; time_ms = (0.5, 5.0);
      windowed = true; outputs_per_firing = (1.0, 1.0); binary = false; per_key_prob = 0.95 };
    { base_name = "min"; tag = K_stateful; time_ms = (0.5, 5.0);
      windowed = true; outputs_per_firing = (1.0, 1.0); binary = false; per_key_prob = 0.95 };
    { base_name = "wma"; tag = K_stateful; time_ms = (1.0, 8.0);
      windowed = true; outputs_per_firing = (1.0, 1.0); binary = false; per_key_prob = 0.95 };
    { base_name = "quantile"; tag = K_stateful; time_ms = (2.0, 20.0);
      windowed = true; outputs_per_firing = (1.0, 1.0); binary = false; per_key_prob = 0.95 };
    { base_name = "mean_bykey"; tag = K_partitioned; time_ms = (0.5, 5.0);
      windowed = true; outputs_per_firing = (1.0, 1.0); binary = false; per_key_prob = 0.0 };
    { base_name = "skyline"; tag = K_stateful; time_ms = (5.0, 50.0);
      windowed = true; outputs_per_firing = (1.0, 10.0); binary = false; per_key_prob = 0.85 };
    { base_name = "topk"; tag = K_stateful; time_ms = (2.0, 30.0);
      windowed = true; outputs_per_firing = (5.0, 10.0); binary = false; per_key_prob = 0.85 };
    { base_name = "bandjoin"; tag = K_stateful; time_ms = (5.0, 40.0);
      windowed = false; outputs_per_firing = (0.5, 5.0); binary = true; per_key_prob = 0.0 };
    { base_name = "count_bykey"; tag = K_partitioned; time_ms = (0.2, 2.0);
      windowed = false; outputs_per_firing = (1.0, 1.0); binary = false; per_key_prob = 0.0 };
  ]

let unary_templates = List.filter (fun t -> not t.binary) templates

let log_uniform rng (lo, hi) =
  if lo = hi then lo
  else exp (Rng.float_in_range rng (log lo) (log hi))

let window_lengths = [| 1000; 5000; 10000 |]
let window_slides = [| 1; 10; 50 |]

(* Instantiate a template into an operator descriptor for vertex [v]. *)
let make_operator params rng template v =
  let service_time = log_uniform rng template.time_ms /. 1e3 in
  let length, slide, input_selectivity =
    if template.windowed then begin
      let length = Rng.pick rng window_lengths in
      let slide = Rng.pick rng window_slides in
      (length, slide, float_of_int slide)
    end
    else (0, 0, 1.0)
  in
  let output_selectivity = log_uniform rng template.outputs_per_firing in
  let random_keys () =
    let groups =
      Rng.int_in_range rng params.key_groups_min params.key_groups_max
    in
    let alpha =
      Rng.float_in_range rng params.key_alpha_min params.key_alpha_max
    in
    Operator.Partitioned_stateful (Discrete.zipf ~alpha groups)
  in
  (* Windowed aggregates are usually keyed in real applications: draw their
     keyed (partitioned-stateful, replicable) form with [per_key_prob]. *)
  let keyed =
    template.per_key_prob > 0.0 && Rng.float rng < template.per_key_prob
  in
  let kind =
    match template.tag with
    | K_stateless -> Operator.Stateless
    | K_stateful -> if keyed then random_keys () else Operator.Stateful
    | K_partitioned -> random_keys ()
  in
  let base =
    if keyed then template.base_name ^ "_bykey" else template.base_name
  in
  let name =
    if template.windowed then
      Printf.sprintf "%s_w%d_s%d#%d" base length slide v
    else Printf.sprintf "%s#%d" base v
  in
  Operator.make ~kind ~input_selectivity ~output_selectivity ~service_time name

let behavior_name (op : Operator.t) =
  match String.index_opt op.Operator.name '#' with
  | Some i -> String.sub op.Operator.name 0 i
  | None -> op.Operator.name

let generate_with_sizes ?(params = default_params) rng ~vertices ~edges =
  let v = vertices and e = edges in
  if e > v * (v - 1) / 2 then invalid_arg "Random_topology: too many edges";
  if e < v - 1 then invalid_arg "Random_topology: too few edges";
  (* Phase 1: V-1 edges respecting the topological numbering. *)
  let edge_set = Hashtbl.create 32 in
  let add_edge u w =
    if u <> w && not (Hashtbl.mem edge_set (u, w)) then begin
      Hashtbl.replace edge_set (u, w) ();
      true
    end
    else false
  in
  for i = 0 to v - 2 do
    ignore (add_edge i (Rng.int_in_range rng (i + 1) (v - 1)))
  done;
  (* Phase 2: top up to E random forward edges. *)
  while Hashtbl.length edge_set < e do
    let u = Rng.int rng v and w = Rng.int rng v in
    if u < w then ignore (add_edge u w)
  done;
  (* Phase 3: vertices without inputs hang off the source. *)
  let has_input = Array.make v false in
  Hashtbl.iter (fun (_, w) () -> has_input.(w) <- true) edge_set;
  for i = 1 to v - 1 do
    if not has_input.(i) then ignore (add_edge 0 i)
  done;
  (* Phase 4: operator assignment; binary operators need in-degree >= 2. *)
  let in_degree = Array.make v 0 in
  Hashtbl.iter (fun (_, w) () -> in_degree.(w) <- in_degree.(w) + 1) edge_set;
  let ops = Array.make v (Operator.make ~service_time:1.0 "placeholder") in
  for i = 1 to v - 1 do
    let eligible =
      if in_degree.(i) >= 2 then templates else unary_templates
    in
    let template = List.nth eligible (Rng.int rng (List.length eligible)) in
    ops.(i) <- make_operator params rng template i
  done;
  (* The source is 33% (by default) faster than the fastest operator. *)
  let fastest_rate =
    Array.fold_left
      (fun acc (op : Operator.t) -> Float.max acc (Operator.service_rate op))
      0.0
      (Array.sub ops 1 (v - 1))
  in
  let source_rate = (1.0 +. params.source_headroom) *. fastest_rate in
  ops.(0) <- Operator.source ~rate:source_rate "source";
  (* Routing probabilities: Zipf over each vertex's out-edges, shuffled. *)
  let out_edges = Array.make v [] in
  Hashtbl.iter (fun (u, w) () -> out_edges.(u) <- w :: out_edges.(u)) edge_set;
  let edge_list = ref [] in
  Array.iteri
    (fun u dests ->
      match dests with
      | [] -> ()
      | [ w ] -> edge_list := (u, w, 1.0) :: !edge_list
      | dests ->
          let d = List.length dests in
          let alpha =
            Rng.float_in_range rng params.edge_alpha_min params.edge_alpha_max
          in
          let probs = Discrete.probs (Discrete.zipf ~alpha d) in
          Rng.shuffle rng probs;
          List.iteri
            (fun i w -> edge_list := (u, w, probs.(i)) :: !edge_list)
            (List.sort compare dests))
    out_edges;
  Topology.create_exn ops !edge_list

let generate ?(params = default_params) rng =
  let v = Rng.int_in_range rng params.min_vertices params.max_vertices in
  let beta = Rng.float_in_range rng params.beta_min params.beta_max in
  let e_target =
    int_of_float (Float.round (float_of_int (v - 1) *. beta))
  in
  let e = min (max e_target (v - 1)) (v * (v - 1) / 2) in
  generate_with_sizes ~params rng ~vertices:v ~edges:e

let testbed ?params ~seed n =
  let rng = Rng.create seed in
  List.init n (fun _ -> generate ?params (Rng.split rng))
