open Ss_prelude

type spec = {
  arity : int;
  keys : Discrete.t;
  tags : int;
  value_dist : Dist.t;
  rate : float;
}

let default_spec =
  {
    arity = 2;
    keys = Discrete.uniform 64;
    tags = 1;
    value_dist = Dist.Uniform (0.0, 1.0);
    rate = 1000.0;
  }

let draw spec rng i =
  let ts = float_of_int i /. spec.rate in
  let key = Discrete.sample rng spec.keys in
  let tag = if spec.tags <= 1 then 0 else Rng.int rng spec.tags in
  let values =
    Array.init spec.arity (fun _ -> Dist.sample rng spec.value_dist)
  in
  Ss_operators.Tuple.make ~ts ~key ~tag values

let tuples ?(spec = default_spec) rng n = List.init n (draw spec rng)

let sequence ?(spec = default_spec) rng =
  let rec from i () = Seq.Cons (draw spec rng i, from (i + 1)) in
  from 0
