(** Synthetic tuple-stream generation for profiling, the runtime examples
    and the tests. *)

open Ss_prelude

type spec = {
  arity : int;  (** Values per tuple (default 2). *)
  keys : Discrete.t;  (** Key-group frequency law (default uniform 64). *)
  tags : int;  (** Number of sub-streams; tags drawn uniformly (default 1). *)
  value_dist : Dist.t;  (** Per-value law (default uniform [\[0,1)]). *)
  rate : float;
      (** Nominal emission rate in tuples/second, used to advance the
          timestamps (default 1000). *)
}

val default_spec : spec

val tuples : ?spec:spec -> Rng.t -> int -> Ss_operators.Tuple.t list
(** [tuples rng n] draws [n] tuples with increasing timestamps. *)

val sequence : ?spec:spec -> Rng.t -> Ss_operators.Tuple.t Seq.t
(** Unbounded lazy stream (each element is drawn on demand). *)
