(** Profile-based measurement of operator costs (paper §4.1: SpinStreams'
    inputs are profiling measures — mean service times, selectivities and
    routing frequencies — collected by instrumenting a trial run; the paper
    cites DiSL and Mammut, here the operators are profiled directly). *)

type profile = {
  behavior : string;  (** Behavior name. *)
  samples : int;  (** Tuples fed. *)
  mean_service_time : float;  (** Wall-clock seconds per input tuple. *)
  outputs_per_input : float;  (** Measured output selectivity factor. *)
}

val run :
  ?samples:int ->
  ?spec:Stream_gen.spec ->
  Ss_prelude.Rng.t ->
  Ss_operators.Behavior.t ->
  profile
(** Feed [samples] synthetic tuples (default 10_000) through a fresh
    instance, timing the calls with the process clock. *)

val to_operator :
  ?name:string ->
  ?keys:Ss_prelude.Discrete.t ->
  Ss_operators.Behavior.t ->
  profile ->
  Ss_topology.Operator.t
(** Build an optimizer descriptor from a measured profile, keeping the
    behavior's declared input selectivity and state kind but using the
    measured service time and the measured per-input output rate.
    [keys] is required for partitioned-stateful behaviors. *)

val pp : Format.formatter -> profile -> unit
