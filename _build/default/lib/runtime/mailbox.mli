(** Bounded blocking mailboxes: the runtime's equivalent of Akka's
    [BoundedMailbox] with a blocking producer (paper §5.1).

    [put] blocks while the mailbox is full — this is the
    Blocking-After-Service backpressure the cost model assumes. [take]
    blocks while it is empty. Both are thread-safe; waiters are woken in an
    unspecified but starvation-free order. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val put : 'a t -> 'a -> unit
(** Enqueue, blocking while full. *)

val take : 'a t -> 'a
(** Dequeue, blocking while empty. *)

val try_put : 'a t -> 'a -> bool
(** Non-blocking enqueue; false when full. *)

val try_take : 'a t -> 'a option
(** Non-blocking dequeue; [None] when empty. *)

val length : 'a t -> int
(** Instantaneous occupancy (racy by nature; for monitoring only). *)
