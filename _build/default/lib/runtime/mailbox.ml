type 'a t = {
  capacity : int;
  queue : 'a Queue.t;
  mutex : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Mailbox.create: capacity must be >= 1";
  {
    capacity;
    queue = Queue.create ();
    mutex = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
  }

let capacity t = t.capacity

let put t x =
  Mutex.lock t.mutex;
  while Queue.length t.queue >= t.capacity do
    Condition.wait t.not_full t.mutex
  done;
  Queue.push x t.queue;
  Condition.signal t.not_empty;
  Mutex.unlock t.mutex

let take t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue do
    Condition.wait t.not_empty t.mutex
  done;
  let x = Queue.pop t.queue in
  Condition.signal t.not_full;
  Mutex.unlock t.mutex;
  x

let try_put t x =
  Mutex.lock t.mutex;
  let ok = Queue.length t.queue < t.capacity in
  if ok then begin
    Queue.push x t.queue;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.mutex;
  ok

let try_take t =
  Mutex.lock t.mutex;
  let x = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  if x <> None then Condition.signal t.not_full;
  Mutex.unlock t.mutex;
  x

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n
