lib/runtime/executor.mli: Ss_operators Ss_topology
