lib/runtime/mailbox.ml: Condition Mutex Queue
