lib/runtime/mailbox.mli:
