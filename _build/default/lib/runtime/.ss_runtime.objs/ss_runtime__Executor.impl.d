lib/runtime/executor.ml: Array Atomic Behavior Discrete Domain Float Hashtbl List Mailbox Operator Printf Rng Ss_core Ss_operators Ss_prelude Ss_topology Topology Tuple Unix
