type node = { node_name : string; cores : int }

type t = {
  node_list : node array;
  overhead : float;
  latency : float;
}

let create ?(send_overhead = 20e-6) ?(link_latency = 200e-6) nodes =
  if nodes = [] then invalid_arg "Cluster.create: no nodes";
  List.iter
    (fun n ->
      if n.cores < 1 then
        invalid_arg (Printf.sprintf "Cluster.create: node %S has no cores" n.node_name))
    nodes;
  if send_overhead < 0.0 || link_latency < 0.0 then
    invalid_arg "Cluster.create: negative network cost";
  { node_list = Array.of_list nodes; overhead = send_overhead; latency = link_latency }

let nodes t = Array.copy t.node_list
let size t = Array.length t.node_list
let send_overhead t = t.overhead
let link_latency t = t.latency

let total_cores t =
  Array.fold_left (fun acc n -> acc + n.cores) 0 t.node_list

let capacity t i = float_of_int t.node_list.(i).cores

let homogeneous ?send_overhead ?link_latency ~nodes ~cores () =
  create ?send_overhead ?link_latency
    (List.init nodes (fun i -> { node_name = Printf.sprintf "node%d" i; cores }))
