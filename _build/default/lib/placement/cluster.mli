(** Execution clusters for operator placement.

    The paper separates concerns: SpinStreams restructures the topology, and
    "placement decisions ... are responsibility of the SPS once the
    optimized topology has been built" (§6). This module supplies the
    cluster model that the {!Placement} strategies target: homogeneous
    multi-core nodes connected by a uniform network.

    The network cost model has two components:
    - [send_overhead]: CPU seconds the {e sending} operator spends per item
      crossing node boundaries (serialization + kernel); it inflates the
      sender's service time and therefore affects throughput;
    - [link_latency]: one-way propagation seconds per crossing; it affects
      end-to-end latency only. *)

type node = {
  node_name : string;
  cores : int;  (** Sequential executors available on the node. *)
}

type t

val create :
  ?send_overhead:float ->
  ?link_latency:float ->
  node list ->
  t
(** Defaults: [send_overhead = 20e-6] (20 µs per remote item),
    [link_latency = 200e-6]. @raise Invalid_argument on an empty node list
    or a node without cores. *)

val nodes : t -> node array
val size : t -> int
val send_overhead : t -> float
val link_latency : t -> float
val total_cores : t -> int
val capacity : t -> int -> float
(** Work capacity of a node in executor-seconds per second = its cores. *)

val homogeneous : ?send_overhead:float -> ?link_latency:float ->
  nodes:int -> cores:int -> unit -> t
(** [homogeneous ~nodes ~cores ()] builds [nodes] identical nodes named
    ["node0" ...]. *)
