(** Operator placement strategies and their evaluation under the
    SpinStreams cost model.

    A placement maps every vertex (with all its replicas) to a cluster node.
    Crossing an edge between nodes costs the sender CPU time per item
    ({!Cluster.send_overhead}), which this module folds into the sending
    operator's service time before re-running the steady-state analysis —
    so a communication-oblivious placement can visibly lose throughput.

    Strategies:
    - {!round_robin}: vertices dealt to nodes in id order (the naive
      default of many SPSs);
    - {!load_aware}: first-fit decreasing by the operator's steady-state
      work ([lambda * T]), balancing executor load;
    - {!communication_aware}: starts from {!load_aware} and greedily moves
      single vertices while this reduces the inter-node data rate without
      overloading any node — the static analog of placement optimizers
      such as the one of Cardellini et al. the paper cites. *)

type assignment = int array
(** [assignment.(v)] is the node index hosting vertex [v] (all replicas). *)

type evaluation = {
  placed : Ss_topology.Topology.t;
      (** Topology with network overhead folded into sender service times. *)
  analysis : Ss_core.Steady_state.t;  (** Steady state of [placed]. *)
  node_load : float array;
      (** Executor-seconds per second used on each node at the achieved
          rates (compare against {!Cluster.capacity}). *)
  inter_node_rate : float;  (** Items crossing node boundaries per second. *)
  added_latency : float;
      (** Expected extra end-to-end propagation delay per source item:
          link latency times the expected number of crossings. *)
}

val round_robin : Cluster.t -> Ss_topology.Topology.t -> assignment
val load_aware : Cluster.t -> Ss_topology.Topology.t -> assignment

val communication_aware :
  ?max_moves:int -> Cluster.t -> Ss_topology.Topology.t -> assignment
(** [max_moves] bounds the local search (default 1000). *)

val evaluate :
  Cluster.t -> Ss_topology.Topology.t -> assignment -> evaluation
(** @raise Invalid_argument if the assignment length differs from the
    topology size or references an unknown node. *)

val pp_evaluation : Format.formatter -> evaluation -> unit
