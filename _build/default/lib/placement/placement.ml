open Ss_topology
open Ss_core

type assignment = int array

type evaluation = {
  placed : Topology.t;
  analysis : Steady_state.t;
  node_load : float array;
  inter_node_rate : float;
  added_latency : float;
}

(* Executor-seconds per second each vertex consumes at the given steady
   state (independent of its replica count: every item costs one service
   time on some replica). *)
let vertex_work topology (analysis : Steady_state.t) v =
  analysis.Steady_state.metrics.(v).Steady_state.arrival_rate
  *. (Topology.operator topology v).Operator.service_time

let edge_rates topology (analysis : Steady_state.t) =
  List.map
    (fun (u, v, p) ->
      ( u,
        v,
        analysis.Steady_state.metrics.(u).Steady_state.departure_rate *. p ))
    (Topology.edges topology)

let round_robin cluster topology =
  Array.init (Topology.size topology) (fun v -> v mod Cluster.size cluster)

let load_aware cluster topology =
  let analysis = Steady_state.analyze topology in
  let n = Topology.size topology in
  let order = List.init n Fun.id in
  let order =
    List.sort
      (fun a b ->
        compare (vertex_work topology analysis b) (vertex_work topology analysis a))
      order
  in
  let loads = Array.make (Cluster.size cluster) 0.0 in
  let assignment = Array.make n 0 in
  List.iter
    (fun v ->
      let work = vertex_work topology analysis v in
      (* First fit into a node with spare capacity; least loaded overall as
         the fallback when nothing fits. *)
      let target = ref (-1) in
      for m = 0 to Cluster.size cluster - 1 do
        if !target < 0 && loads.(m) +. work <= Cluster.capacity cluster m +. 1e-12
        then target := m
      done;
      let target =
        if !target >= 0 then !target
        else begin
          let least = ref 0 in
          for m = 1 to Cluster.size cluster - 1 do
            if loads.(m) < loads.(!least) then least := m
          done;
          !least
        end
      in
      assignment.(v) <- target;
      loads.(target) <- loads.(target) +. work)
    order;
  assignment

let communication_aware ?(max_moves = 1000) cluster topology =
  let analysis = Steady_state.analyze topology in
  let assignment = load_aware cluster topology in
  let n = Topology.size topology in
  let loads = Array.make (Cluster.size cluster) 0.0 in
  Array.iteri
    (fun v m -> loads.(m) <- loads.(m) +. vertex_work topology analysis v)
    assignment;
  let rates = edge_rates topology analysis in
  (* Crossing data-rate change if vertex [v] moved to node [m]. *)
  let move_gain v m =
    List.fold_left
      (fun acc (a, b, rate) ->
        if a = v || b = v then begin
          let other = if a = v then assignment.(b) else assignment.(a) in
          let before = if assignment.(v) <> other then rate else 0.0 in
          let after = if m <> other then rate else 0.0 in
          acc +. (before -. after)
        end
        else acc)
      0.0 rates
  in
  let moves = ref 0 in
  let improved = ref true in
  while !improved && !moves < max_moves do
    improved := false;
    let best = ref None in
    for v = 0 to n - 1 do
      let work = vertex_work topology analysis v in
      for m = 0 to Cluster.size cluster - 1 do
        if m <> assignment.(v) then begin
          let fits = loads.(m) +. work <= Cluster.capacity cluster m +. 1e-12 in
          let gain = move_gain v m in
          if fits && gain > 1e-9 then
            match !best with
            | Some (_, _, g) when g >= gain -> ()
            | _ -> best := Some (v, m, gain)
        end
      done
    done;
    match !best with
    | Some (v, m, _) ->
        loads.(assignment.(v)) <-
          loads.(assignment.(v)) -. vertex_work topology analysis v;
        loads.(m) <- loads.(m) +. vertex_work topology analysis v;
        assignment.(v) <- m;
        incr moves;
        improved := true
    | None -> ()
  done;
  assignment

let evaluate cluster topology assignment =
  let n = Topology.size topology in
  if Array.length assignment <> n then
    invalid_arg "Placement.evaluate: assignment size mismatch";
  Array.iter
    (fun m ->
      if m < 0 || m >= Cluster.size cluster then
        invalid_arg "Placement.evaluate: unknown node in assignment")
    assignment;
  (* Fold the per-item sending overhead of crossing edges into the sending
     operators' service times. *)
  let overhead = Cluster.send_overhead cluster in
  let placed =
    Topology.map_operators topology (fun v op ->
        let crossing_prob =
          List.fold_left
            (fun acc (w, p) ->
              if assignment.(w) <> assignment.(v) then acc +. p else acc)
            0.0 (Topology.succs topology v)
        in
        if crossing_prob = 0.0 then op
        else
          let extra =
            overhead *. crossing_prob *. Operator.selectivity_factor op
          in
          Operator.with_service_time op (op.Operator.service_time +. extra))
  in
  let analysis = Steady_state.analyze placed in
  let node_load = Array.make (Cluster.size cluster) 0.0 in
  Array.iteri
    (fun v m -> node_load.(m) <- node_load.(m) +. vertex_work placed analysis v)
    assignment;
  let inter_node_rate =
    List.fold_left
      (fun acc (u, v, rate) ->
        if assignment.(u) <> assignment.(v) then acc +. rate else acc)
      0.0
      (edge_rates placed analysis)
  in
  let added_latency =
    if analysis.Steady_state.throughput > 0.0 then
      Cluster.link_latency cluster *. inter_node_rate
      /. analysis.Steady_state.throughput
    else 0.0
  in
  { placed; analysis; node_load; inter_node_rate; added_latency }

let pp_evaluation ppf e =
  Format.fprintf ppf
    "@[<v>placement: throughput %.1f items/s, inter-node %.1f items/s, +%.3f \
     ms latency@,node load:"
    e.analysis.Steady_state.throughput e.inter_node_rate
    (e.added_latency *. 1e3);
  Array.iteri (fun i l -> Format.fprintf ppf " n%d=%.2f" i l) e.node_load;
  Format.fprintf ppf "@]"
