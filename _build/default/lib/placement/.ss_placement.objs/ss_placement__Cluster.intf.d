lib/placement/cluster.mli:
