lib/placement/placement.ml: Array Cluster Format Fun List Operator Ss_core Ss_topology Steady_state Topology
