lib/placement/placement.mli: Cluster Format Ss_core Ss_topology
