lib/placement/cluster.ml: Array List Printf
