(** Streaming application topologies: rooted acyclic operator graphs with
    probabilistic edges.

    Invariants established by {!create} and preserved by every transformation
    (paper §3.1 assumptions):
    - at least one vertex, and exactly one {e source} (vertex with no
      incoming edge);
    - the graph is acyclic and every vertex is reachable from the source;
    - no self-loops or duplicate edges;
    - the out-edge probabilities of every non-sink vertex sum to 1. *)

type t

type error =
  | Empty_topology
  | Duplicate_operator_name of string
  | Invalid_vertex of int
  | Self_loop of int
  | Duplicate_edge of int * int
  | Invalid_probability of int * int * float
  | Unnormalized_probabilities of int * float
      (** Vertex whose out-edge probabilities do not sum to 1. *)
  | No_source
  | Multiple_sources of int list
  | Cyclic of int list  (** Vertices involved in a cycle. *)
  | Unreachable of int list

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val create :
  Operator.t array -> (int * int * float) list -> (t, error) result
(** [create operators edges] validates and builds a topology. Vertex [i] is
    described by [operators.(i)]; each edge is [(src, dst, probability)].
    Out-edge probabilities of each vertex must sum to 1 (within 1e-6; they
    are renormalized exactly). *)

val create_exn : Operator.t array -> (int * int * float) list -> t
(** @raise Invalid_argument with the rendered error on invalid input. *)

(** {1 Accessors} *)

val size : t -> int
(** Number of vertices. *)

val num_edges : t -> int
val operator : t -> int -> Operator.t
val operators : t -> Operator.t array
(** Fresh copy of the vertex descriptors, indexed by vertex id. *)

val succs : t -> int -> (int * float) list
(** Outgoing [(dst, probability)] pairs, in increasing [dst] order. *)

val preds : t -> int -> (int * float) list
(** Incoming [(src, probability)] pairs, in increasing [src] order. *)

val edges : t -> (int * int * float) list
(** All edges in lexicographic order. *)

val edge_probability : t -> src:int -> dst:int -> float option
val source : t -> int
(** The unique vertex with no incoming edges. *)

val sinks : t -> int list
(** Vertices with no outgoing edges, in increasing order. *)

val is_sink : t -> int -> bool
val find_by_name : t -> string -> int option
val out_degree : t -> int -> int
val in_degree : t -> int -> int

(** {1 Order and paths} *)

val topological_order : t -> int array
(** A topological order starting at the source (deterministic: smallest
    vertex id first among ready vertices). *)

val paths_to : t -> int -> (int list * float) list
(** All simple paths from the source to the given vertex, as
    [(vertices, probability)] with the path probability being the product of
    its edge probabilities. Exponential in the worst case; topologies are
    small by assumption (paper §3.3). *)

val visit_ratio : t -> float array
(** [visit_ratio t] maps each vertex to the expected number of visits per
    item emitted by the source, ignoring selectivity: [1.0] for the source,
    and [v(j) = sum over in-edges (i,j) of v(i) * p(i,j)] otherwise. In a
    DAG this equals the sum of path probabilities of {!paths_to}. *)

(** {1 Transformations} *)

val with_operator : t -> int -> Operator.t -> t
(** Replace the descriptor of one vertex (name must stay unique). *)

val map_operators : t -> (int -> Operator.t -> Operator.t) -> t
(** Rebuild with transformed descriptors; the graph structure is unchanged. *)

val contract : t -> keep_name:string -> int list -> (t * int, string) result
(** [contract t ~keep_name vertices] replaces the sub-graph induced by
    [vertices] with a single fresh vertex named [keep_name] (paper §3.3).
    Requirements checked here: the set is non-empty, contains no duplicate,
    does not contain the source, and has a {e single front-end} (exactly one
    member vertex receives edges from outside the set). Incoming edges from
    the same external vertex are merged (probabilities summed); outgoing
    probabilities are the expected exit flows of the sub-graph, renormalized,
    with the flow imbalance folded into the replacement operator's output
    selectivity. The replacement's service time is the expected per-item
    work of the sub-graph and its kind is [Stateful] (meta-operators are
    never replicated, paper §4.2). Returns the new topology and the id of
    the replacement vertex. Acyclicity of the result is re-validated. *)

val front_end_of : t -> int list -> (int, string) result
(** The unique member of [vertices] receiving edges from outside the set.
    [Error] if the set is empty, has several entry points, none, or contains
    the source. *)

(** {1 Rendering} *)

val pp : Format.formatter -> t -> unit
val to_dot : t -> string
(** Graphviz rendering with service times and replica counts. *)
