(** Operator descriptors: the vertices of a streaming topology.

    An operator is characterized by its profiled mean service time, its state
    kind (which determines whether fission applies, paper §3.2), and its
    input/output selectivity (paper §3.4). Descriptors carry no business
    logic; executable operators live in [Ss_operators] and are linked to
    descriptors by name through a registry. *)

open Ss_prelude

(** State classification driving the bottleneck-elimination algorithm. *)
type kind =
  | Stateless
      (** No state: fission with shuffle routing always applies. *)
  | Partitioned_stateful of Discrete.t
      (** State partitioned by key; the distribution gives the relative
          frequency of each key group. Fission assigns key groups to
          replicas. *)
  | Stateful
      (** Monolithic state: the operator cannot be replicated. *)

type t = {
  name : string;  (** Unique within a topology. *)
  service_time : float;
      (** Mean seconds of work per consumed item, strictly positive. *)
  service_dist : Dist.t;
      (** Full service-time distribution used by the simulator; its mean is
          kept consistent with [service_time]. *)
  kind : kind;
  input_selectivity : float;
      (** Items consumed per result produced (e.g. a sliding window of slide
          [s] has input selectivity [s]); strictly positive, default 1. *)
  output_selectivity : float;
      (** Results produced per item consumed (e.g. a flatmap); non-negative,
          default 1. *)
  replicas : int;  (** Fission degree; 1 means sequential. *)
}

val make :
  ?kind:kind ->
  ?dist:Dist.t ->
  ?input_selectivity:float ->
  ?output_selectivity:float ->
  ?replicas:int ->
  service_time:float ->
  string ->
  t
(** [make ~service_time name] builds a descriptor with stateless kind, unit
    selectivities and a deterministic service distribution by default.
    @raise Invalid_argument on non-positive service time or selectivities,
    or [replicas < 1]. *)

val source : rate:float -> string -> t
(** [source ~rate name] is a stateless operator emitting [rate] items per
    second ([service_time = 1. /. rate]). By convention the single source of
    a topology generates the input stream. *)

val service_rate : t -> float
(** [1. /. service_time] for a single replica. *)

val effective_service_rate : t -> float
(** Aggregate service rate across the operator's replicas, assuming an even
    split of the input flow: [replicas * service_rate]. *)

val selectivity_factor : t -> float
(** Results per consumed item: [output_selectivity /. input_selectivity]. *)

val can_replicate : t -> bool
(** False only for [Stateful]. *)

val with_replicas : t -> int -> t
(** @raise Invalid_argument if the count is < 1, or if the operator is
    [Stateful] and the count is > 1. *)

val with_service_time : t -> float -> t
(** Rescales both [service_time] and [service_dist] to the new mean. *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
(** Structural equality, comparing key distributions by probability vector. *)
