lib/topology/operator.ml: Discrete Dist Float Format Ss_prelude String
