lib/topology/builder.mli: Operator Topology
