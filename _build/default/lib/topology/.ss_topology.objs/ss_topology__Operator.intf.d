lib/topology/operator.mli: Discrete Dist Format Ss_prelude
