lib/topology/topology.mli: Format Operator
