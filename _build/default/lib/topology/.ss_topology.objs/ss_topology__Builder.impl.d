lib/topology/builder.ml: Array List Operator Topology
