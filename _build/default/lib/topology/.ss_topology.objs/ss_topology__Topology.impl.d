lib/topology/topology.ml: Array Buffer Float Format Fun Hashtbl List Operator Option Printf Queue Result String
