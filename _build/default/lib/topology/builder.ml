type vertex = int

type t = {
  mutable ops : Operator.t list;  (* reversed *)
  mutable count : int;
  mutable edges : (int * int * float) list;  (* reversed *)
}

let create () = { ops = []; count = 0; edges = [] }

let add t op =
  t.ops <- op :: t.ops;
  let v = t.count in
  t.count <- t.count + 1;
  v

let edge ?(prob = 1.0) t u v = t.edges <- (u, v, prob) :: t.edges

let chain t vs =
  let rec go = function
    | u :: (v :: _ as rest) ->
        edge t u v;
        go rest
    | [ _ ] | [] -> ()
  in
  go vs

let vertex_id v = v

let finish t =
  Topology.create (Array.of_list (List.rev t.ops)) (List.rev t.edges)

let finish_exn t =
  match finish t with
  | Ok topology -> topology
  | Error e -> invalid_arg ("Builder.finish: " ^ Topology.error_to_string e)
