(** Imperative builder for assembling topologies in examples and tests. *)

type t
type vertex

val create : unit -> t

val add : t -> Operator.t -> vertex
(** Register an operator; vertices are numbered in insertion order. *)

val edge : ?prob:float -> t -> vertex -> vertex -> unit
(** Connect two vertices; [prob] defaults to 1. *)

val chain : t -> vertex list -> unit
(** Connect consecutive vertices with probability-1 edges. *)

val vertex_id : vertex -> int
(** The id the vertex will have in the finished topology. *)

val finish : t -> (Topology.t, Topology.error) result
val finish_exn : t -> Topology.t
