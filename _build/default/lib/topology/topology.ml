type t = {
  ops : Operator.t array;
  succs : (int * float) list array;
  preds : (int * float) list array;
  source : int;
  topo : int array;
}

type error =
  | Empty_topology
  | Duplicate_operator_name of string
  | Invalid_vertex of int
  | Self_loop of int
  | Duplicate_edge of int * int
  | Invalid_probability of int * int * float
  | Unnormalized_probabilities of int * float
  | No_source
  | Multiple_sources of int list
  | Cyclic of int list
  | Unreachable of int list

let pp_int_list ppf l =
  Format.fprintf ppf "[%s]" (String.concat "; " (List.map string_of_int l))

let pp_error ppf = function
  | Empty_topology -> Format.fprintf ppf "topology has no operator"
  | Duplicate_operator_name n ->
      Format.fprintf ppf "duplicate operator name %S" n
  | Invalid_vertex v -> Format.fprintf ppf "edge references unknown vertex %d" v
  | Self_loop v -> Format.fprintf ppf "self-loop on vertex %d" v
  | Duplicate_edge (u, v) -> Format.fprintf ppf "duplicate edge %d -> %d" u v
  | Invalid_probability (u, v, p) ->
      Format.fprintf ppf "edge %d -> %d has invalid probability %g" u v p
  | Unnormalized_probabilities (v, total) ->
      Format.fprintf ppf
        "out-edge probabilities of vertex %d sum to %g instead of 1" v total
  | No_source -> Format.fprintf ppf "no source vertex (every vertex has inputs)"
  | Multiple_sources vs ->
      Format.fprintf ppf "multiple sources %a (a single root is required)"
        pp_int_list vs
  | Cyclic vs -> Format.fprintf ppf "cycle involving vertices %a" pp_int_list vs
  | Unreachable vs ->
      Format.fprintf ppf "vertices %a unreachable from the source" pp_int_list
        vs

let error_to_string e = Format.asprintf "%a" pp_error e

let ( let* ) = Result.bind

let check_names ops =
  let tbl = Hashtbl.create 16 in
  let rec go i =
    if i = Array.length ops then Ok ()
    else
      let name = ops.(i).Operator.name in
      if Hashtbl.mem tbl name then Error (Duplicate_operator_name name)
      else begin
        Hashtbl.add tbl name ();
        go (i + 1)
      end
  in
  go 0

let check_edges n edges =
  let seen = Hashtbl.create 16 in
  let rec go = function
    | [] -> Ok ()
    | (u, v, p) :: rest ->
        if u < 0 || u >= n then Error (Invalid_vertex u)
        else if v < 0 || v >= n then Error (Invalid_vertex v)
        else if u = v then Error (Self_loop u)
        else if Hashtbl.mem seen (u, v) then Error (Duplicate_edge (u, v))
        else if p <= 0.0 || p > 1.0 +. 1e-9 || Float.is_nan p then
          Error (Invalid_probability (u, v, p))
        else begin
          Hashtbl.add seen (u, v) ();
          go rest
        end
  in
  go edges

(* Kahn's algorithm; on failure reports the vertices left in the cycle. *)
let topological_sort n succs preds =
  let in_deg = Array.map List.length preds in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) in_deg;
  let order = Array.make n (-1) in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!filled) <- v;
    incr filled;
    List.iter
      (fun (w, _) ->
        in_deg.(w) <- in_deg.(w) - 1;
        if in_deg.(w) = 0 then Queue.add w queue)
      succs.(v)
  done;
  if !filled = n then Ok order
  else
    let leftover =
      List.filter (fun v -> in_deg.(v) > 0) (List.init n Fun.id)
    in
    Error (Cyclic leftover)

let create ops edges =
  let n = Array.length ops in
  let* () = if n = 0 then Error Empty_topology else Ok () in
  let* () = check_names ops in
  let* () = check_edges n edges in
  let succs = Array.make n [] and preds = Array.make n [] in
  List.iter
    (fun (u, v, p) ->
      succs.(u) <- (v, p) :: succs.(u);
      preds.(v) <- (u, p) :: preds.(v))
    edges;
  (* Renormalize each non-sink vertex's out-probabilities exactly. *)
  let* () =
    let rec go v =
      if v = n then Ok ()
      else
        match succs.(v) with
        | [] -> go (v + 1)
        | out ->
            let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 out in
            if Float.abs (total -. 1.0) > 1e-6 then
              Error (Unnormalized_probabilities (v, total))
            else begin
              succs.(v) <- List.map (fun (w, p) -> (w, p /. total)) out;
              go (v + 1)
            end
    in
    go 0
  in
  (* Rebuild preds from the renormalized succs so both views agree. *)
  Array.fill preds 0 n [];
  Array.iteri
    (fun u out -> List.iter (fun (v, p) -> preds.(v) <- (u, p) :: preds.(v)) out)
    succs;
  let sort_adj a =
    Array.map_inplace (List.sort (fun (x, _) (y, _) -> compare x y)) a
  in
  sort_adj succs;
  sort_adj preds;
  let sources =
    List.filter (fun v -> preds.(v) = []) (List.init n Fun.id)
  in
  let* source =
    match sources with
    | [ s ] -> Ok s
    | [] -> Error No_source
    | _ :: _ :: _ -> Error (Multiple_sources sources)
  in
  let* topo = topological_sort n succs preds in
  (* Reachability from the source (every vertex has in-degree > 0 except the
     source, but disconnected sub-DAGs are still possible only via the
     multiple-sources check; unreachable vertices require an in-edge, hence a
     cycle or another source, both already excluded — keep the check anyway
     as a defensive invariant). *)
  let reachable = Array.make n false in
  reachable.(source) <- true;
  Array.iter
    (fun v ->
      if reachable.(v) then
        List.iter (fun (w, _) -> reachable.(w) <- true) succs.(v))
    topo;
  let* () =
    match List.filter (fun v -> not reachable.(v)) (List.init n Fun.id) with
    | [] -> Ok ()
    | vs -> Error (Unreachable vs)
  in
  Ok { ops = Array.copy ops; succs; preds; source; topo }

let create_exn ops edges =
  match create ops edges with
  | Ok t -> t
  | Error e -> invalid_arg ("Topology.create: " ^ error_to_string e)

let size t = Array.length t.ops
let num_edges t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.succs
let operator t v = t.ops.(v)
let operators t = Array.copy t.ops
let succs t v = t.succs.(v)
let preds t v = t.preds.(v)

let edges t =
  let acc = ref [] in
  for u = size t - 1 downto 0 do
    List.iter (fun (v, p) -> acc := (u, v, p) :: !acc) (List.rev t.succs.(u))
  done;
  !acc

let edge_probability t ~src ~dst = List.assoc_opt dst t.succs.(src)
let source t = t.source

let sinks t =
  List.filter (fun v -> t.succs.(v) = []) (List.init (size t) Fun.id)

let is_sink t v = t.succs.(v) = []

let find_by_name t name =
  let n = size t in
  let rec go i =
    if i = n then None
    else if String.equal t.ops.(i).Operator.name name then Some i
    else go (i + 1)
  in
  go 0

let out_degree t v = List.length t.succs.(v)
let in_degree t v = List.length t.preds.(v)
let topological_order t = Array.copy t.topo

let paths_to t target =
  let rec go v prob rev_path acc =
    let rev_path = v :: rev_path in
    if v = target then (List.rev rev_path, prob) :: acc
    else
      List.fold_left
        (fun acc (w, p) -> go w (prob *. p) rev_path acc)
        acc t.succs.(v)
  in
  List.rev (go t.source 1.0 [] [])

let visit_ratio t =
  let ratio = Array.make (size t) 0.0 in
  ratio.(t.source) <- 1.0;
  Array.iter
    (fun v ->
      List.iter (fun (w, p) -> ratio.(w) <- ratio.(w) +. (ratio.(v) *. p)) t.succs.(v))
    t.topo;
  ratio

let with_operator t v op =
  let ops = Array.copy t.ops in
  ops.(v) <- op;
  Array.iteri
    (fun i o ->
      if i <> v && String.equal o.Operator.name op.Operator.name then
        invalid_arg "Topology.with_operator: duplicate operator name")
    t.ops;
  { t with ops }

let map_operators t f =
  let ops = Array.mapi f t.ops in
  match create ops (edges t) with
  | Ok t' -> t'
  | Error e -> invalid_arg ("Topology.map_operators: " ^ error_to_string e)

let front_end_of t vertices =
  match vertices with
  | [] -> Error "empty sub-graph"
  | _ ->
      let n = size t in
      let bad = List.find_opt (fun v -> v < 0 || v >= n) vertices in
      let dup =
        let sorted = List.sort compare vertices in
        let rec has_dup = function
          | a :: (b :: _ as rest) -> if a = b then true else has_dup rest
          | [ _ ] | [] -> false
        in
        has_dup sorted
      in
      if bad <> None then Error "sub-graph references an unknown vertex"
      else if dup then Error "sub-graph contains a duplicated vertex"
      else if List.mem t.source vertices then
        Error "sub-graph must not contain the source"
      else
        let in_set = Array.make n false in
        List.iter (fun v -> in_set.(v) <- true) vertices;
        let entry_points =
          List.filter
            (fun v ->
              List.exists (fun (u, _) -> not in_set.(u)) t.preds.(v))
            vertices
        in
        (match entry_points with
        | [ fe ] -> Ok fe
        | [] -> Error "sub-graph has no entry point from the rest of the graph"
        | _ ->
            Error
              (Printf.sprintf
                 "sub-graph has %d entry points; fusion requires a single \
                  front-end"
                 (List.length entry_points)))

let contract t ~keep_name vertices =
  let* front = front_end_of t vertices in
  let n = size t in
  let in_set = Array.make n false in
  List.iter (fun v -> in_set.(v) <- true) vertices;
  (* Expected per-item flow through the sub-graph, starting with one item at
     the front-end. Processed in global topological order, which restricts to
     a valid order of the sub-graph. *)
  let flow_in = Array.make n 0.0 in
  flow_in.(front) <- 1.0;
  let exit_flow = Hashtbl.create 8 in
  let work = ref 0.0 in
  Array.iter
    (fun v ->
      if in_set.(v) && flow_in.(v) > 0.0 then begin
        let op = t.ops.(v) in
        work := !work +. (flow_in.(v) *. op.Operator.service_time);
        let out_items = flow_in.(v) *. Operator.selectivity_factor op in
        List.iter
          (fun (w, p) ->
            let contribution = out_items *. p in
            if in_set.(w) then flow_in.(w) <- flow_in.(w) +. contribution
            else
              let prev =
                Option.value ~default:0.0 (Hashtbl.find_opt exit_flow w)
              in
              Hashtbl.replace exit_flow w (prev +. contribution))
          t.succs.(v)
      end)
    t.topo;
  let total_exit = Hashtbl.fold (fun _ f acc -> acc +. f) exit_flow 0.0 in
  let replacement =
    Operator.make ~kind:Operator.Stateful
      ~output_selectivity:total_exit ~service_time:!work keep_name
  in
  (* New vertex numbering: external vertices keep their relative order; the
     replacement takes the slot of the front-end. *)
  let remap = Array.make n (-1) in
  let new_ops = ref [] in
  let next = ref 0 in
  let replacement_id = ref (-1) in
  for v = 0 to n - 1 do
    if in_set.(v) then begin
      if v = front then begin
        replacement_id := !next;
        new_ops := replacement :: !new_ops;
        incr next
      end
    end
    else begin
      remap.(v) <- !next;
      new_ops := t.ops.(v) :: !new_ops;
      incr next
    end
  done;
  List.iter (fun v -> remap.(v) <- !replacement_id) vertices;
  let new_ops = Array.of_list (List.rev !new_ops) in
  let new_edges = Hashtbl.create 16 in
  let add_edge u v p =
    if u <> v then begin
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt new_edges (u, v)) in
      Hashtbl.replace new_edges (u, v) (prev +. p)
    end
  in
  (* External edges, with endpoints inside the set redirected. Edges internal
     to the set disappear; edges out of the set are replaced below by the
     aggregated exit flows. *)
  List.iter
    (fun (u, v, p) ->
      match (in_set.(u), in_set.(v)) with
      | false, false -> add_edge remap.(u) remap.(v) p
      | false, true -> add_edge remap.(u) !replacement_id p
      | true, _ -> ())
    (edges t);
  if total_exit > 0.0 then
    Hashtbl.iter
      (fun w f -> add_edge !replacement_id remap.(w) (f /. total_exit))
      exit_flow;
  let edge_list =
    Hashtbl.fold (fun (u, v) p acc -> (u, v, p) :: acc) new_edges []
  in
  match create new_ops edge_list with
  | Ok t' -> Ok (t', !replacement_id)
  | Error e -> Error ("fusion would produce an invalid topology: " ^ error_to_string e)

let pp ppf t =
  Format.fprintf ppf "@[<v>topology (%d operators, %d edges)@," (size t)
    (num_edges t);
  Array.iteri
    (fun v op ->
      Format.fprintf ppf "  %d: %a" v Operator.pp op;
      (match t.succs.(v) with
      | [] -> Format.fprintf ppf "  [sink]"
      | out ->
          Format.fprintf ppf "  ->";
          List.iter (fun (w, p) -> Format.fprintf ppf " %d@@%.3f" w p) out);
      Format.fprintf ppf "@,")
    t.ops;
  Format.fprintf ppf "@]"

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph topology {\n  rankdir=LR;\n";
  Array.iteri
    (fun v op ->
      let shape =
        match op.Operator.kind with
        | Operator.Stateless -> "ellipse"
        | Operator.Partitioned_stateful _ -> "box"
        | Operator.Stateful -> "doubleoctagon"
      in
      let replicas =
        if op.Operator.replicas > 1 then
          Printf.sprintf " x%d" op.Operator.replicas
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\nT=%.3gms%s\", shape=%s];\n" v
           op.Operator.name
           (op.Operator.service_time *. 1e3)
           replicas shape))
    t.ops;
  Array.iteri
    (fun u out ->
      List.iter
        (fun (v, p) ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"%.3f\"];\n" u v p))
        out)
    t.succs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
