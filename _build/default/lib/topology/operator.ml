open Ss_prelude

type kind = Stateless | Partitioned_stateful of Discrete.t | Stateful

type t = {
  name : string;
  service_time : float;
  service_dist : Dist.t;
  kind : kind;
  input_selectivity : float;
  output_selectivity : float;
  replicas : int;
}

let make ?(kind = Stateless) ?dist ?(input_selectivity = 1.0)
    ?(output_selectivity = 1.0) ?(replicas = 1) ~service_time name =
  if service_time <= 0.0 then
    invalid_arg "Operator.make: service_time must be positive";
  if input_selectivity <= 0.0 then
    invalid_arg "Operator.make: input_selectivity must be positive";
  if output_selectivity < 0.0 then
    invalid_arg "Operator.make: output_selectivity must be non-negative";
  if replicas < 1 then invalid_arg "Operator.make: replicas must be >= 1";
  (match kind with
  | Stateful when replicas > 1 ->
      invalid_arg "Operator.make: a stateful operator cannot be replicated"
  | _ -> ());
  let service_dist =
    match dist with
    | Some d ->
        if Float.abs (Dist.mean d -. service_time) > 1e-9 *. service_time then
          invalid_arg
            "Operator.make: service_dist mean inconsistent with service_time";
        d
    | None -> Dist.Deterministic service_time
  in
  {
    name;
    service_time;
    service_dist;
    kind;
    input_selectivity;
    output_selectivity;
    replicas;
  }

let source ~rate name =
  if rate <= 0.0 then invalid_arg "Operator.source: rate must be positive";
  make ~service_time:(1.0 /. rate) name

let service_rate t = 1.0 /. t.service_time
let effective_service_rate t = float_of_int t.replicas *. service_rate t
let selectivity_factor t = t.output_selectivity /. t.input_selectivity
let can_replicate t = match t.kind with Stateful -> false | _ -> true

let with_replicas t n =
  if n < 1 then invalid_arg "Operator.with_replicas: count must be >= 1";
  if (not (can_replicate t)) && n > 1 then
    invalid_arg "Operator.with_replicas: stateful operator";
  { t with replicas = n }

let with_service_time t mean =
  if mean <= 0.0 then
    invalid_arg "Operator.with_service_time: mean must be positive";
  let factor = mean /. t.service_time in
  { t with service_time = mean; service_dist = Dist.scale factor t.service_dist }

let kind_to_string = function
  | Stateless -> "stateless"
  | Partitioned_stateful _ -> "partitioned-stateful"
  | Stateful -> "stateful"

let pp ppf t =
  Format.fprintf ppf "@[<h>%s (%s, T=%.4gms" t.name (kind_to_string t.kind)
    (t.service_time *. 1e3);
  if t.input_selectivity <> 1.0 then
    Format.fprintf ppf ", sel_in=%g" t.input_selectivity;
  if t.output_selectivity <> 1.0 then
    Format.fprintf ppf ", sel_out=%g" t.output_selectivity;
  if t.replicas <> 1 then Format.fprintf ppf ", x%d" t.replicas;
  Format.fprintf ppf ")@]"

let kind_equal a b =
  match (a, b) with
  | Stateless, Stateless | Stateful, Stateful -> true
  | Partitioned_stateful da, Partitioned_stateful db ->
      Discrete.probs da = Discrete.probs db
  | (Stateless | Partitioned_stateful _ | Stateful), _ -> false

let equal a b =
  String.equal a.name b.name
  && a.service_time = b.service_time
  && a.service_dist = b.service_dist
  && kind_equal a.kind b.kind
  && a.input_selectivity = b.input_selectivity
  && a.output_selectivity = b.output_selectivity
  && a.replicas = b.replicas
