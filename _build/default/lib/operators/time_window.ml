type kind = Tumbling of float | Sliding of float * float

type 'a fired = {
  window_end : float;
  window_start : float;
  contents : 'a list;
}

type 'a t = {
  length : float;
  slide : float;
  lateness : float;
  (* window end -> reversed contents *)
  buckets : (float, 'a list) Hashtbl.t;
  mutable wm : float;
  mutable late : int;
}

let create ?(allowed_lateness = 0.0) kind =
  let length, slide =
    match kind with
    | Tumbling l -> (l, l)
    | Sliding (l, s) -> (l, s)
  in
  if length <= 0.0 then invalid_arg "Time_window.create: length must be positive";
  if slide <= 0.0 then invalid_arg "Time_window.create: slide must be positive";
  if slide > length then
    invalid_arg "Time_window.create: slide must not exceed length";
  if allowed_lateness < 0.0 then
    invalid_arg "Time_window.create: negative lateness";
  {
    length;
    slide;
    lateness = allowed_lateness;
    buckets = Hashtbl.create 16;
    wm = neg_infinity;
    late = 0;
  }

let watermark t = t.wm
let late_count t = t.late
let pending_windows t = Hashtbl.length t.buckets

(* Ends of the windows containing timestamp [ts]: multiples of slide in
   (ts, ts + length]. *)
let window_ends t ts =
  let first_k = Float.floor (ts /. t.slide) +. 1.0 in
  let rec collect k acc =
    let e = k *. t.slide in
    if e > ts +. t.length +. 1e-12 then List.rev acc
    else collect (k +. 1.0) (e :: acc)
  in
  collect first_k []

let push t ~ts x =
  t.wm <- Float.max t.wm (ts -. t.lateness);
  let ends = List.filter (fun e -> e > t.wm) (window_ends t ts) in
  if ends = [] then t.late <- t.late + 1
  else
    List.iter
      (fun e ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt t.buckets e) in
        Hashtbl.replace t.buckets e (x :: prev))
      ends;
  (* Fire every buffered window whose end the watermark has passed. *)
  let ready =
    Hashtbl.fold (fun e _ acc -> if e <= t.wm then e :: acc else acc) t.buckets []
    |> List.sort compare
  in
  List.map
    (fun e ->
      let contents = List.rev (Hashtbl.find t.buckets e) in
      Hashtbl.remove t.buckets e;
      { window_end = e; window_start = e -. t.length; contents })
    ready
