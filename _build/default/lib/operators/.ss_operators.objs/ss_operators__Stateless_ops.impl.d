lib/operators/stateless_ops.ml: Array Behavior Float List Printf Tuple
