lib/operators/join_ops.mli: Behavior
