lib/operators/spatial_ops.ml: Behavior Hashtbl List Printf Tuple Window
