lib/operators/tuple.ml: Array Format
