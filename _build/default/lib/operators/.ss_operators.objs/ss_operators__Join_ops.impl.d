lib/operators/join_ops.ml: Behavior Float Hashtbl List Option Printf Queue Tuple Window
