lib/operators/time_ops.mli: Behavior Time_window
