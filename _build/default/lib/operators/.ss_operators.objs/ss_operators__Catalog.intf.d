lib/operators/catalog.mli: Behavior
