lib/operators/window.mli:
