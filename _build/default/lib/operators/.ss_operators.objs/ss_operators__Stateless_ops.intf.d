lib/operators/stateless_ops.mli: Behavior
