lib/operators/time_ops.ml: Behavior Hashtbl List Printf Time_window Tuple
