lib/operators/time_window.ml: Float Hashtbl List Option
