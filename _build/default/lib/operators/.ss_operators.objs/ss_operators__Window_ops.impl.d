lib/operators/window_ops.ml: Array Behavior Float Hashtbl List Printf Tuple Window
