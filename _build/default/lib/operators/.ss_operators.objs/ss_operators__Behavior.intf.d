lib/operators/behavior.mli: Ss_prelude Ss_topology Tuple
