lib/operators/catalog.ml: Behavior Join_ops List Spatial_ops Stateless_ops String Window_ops
