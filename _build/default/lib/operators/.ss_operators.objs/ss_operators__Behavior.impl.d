lib/operators/behavior.ml: Ss_topology Tuple
