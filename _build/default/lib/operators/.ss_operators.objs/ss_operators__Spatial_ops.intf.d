lib/operators/spatial_ops.mli: Behavior
