lib/operators/time_window.mli:
