lib/operators/window.ml: List Queue
