lib/operators/window_ops.mli: Behavior
