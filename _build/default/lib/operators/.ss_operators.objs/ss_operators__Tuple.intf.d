lib/operators/tuple.mli: Format
