(** Spatial queries over count-based windows: skyline and top-k (paper
    evaluation, citing Upsortable-style top-k operators). *)

val skyline : ?length:int -> ?slide:int -> ?per_key:bool -> unit -> Behavior.t
(** Two-dimensional skyline (minimization) over the window of points
    [(value 0, value 1)]: when the window fires, emits the tuples not
    dominated by any other window member. A point dominates another when
    both its coordinates are less than or equal and at least one is strictly
    smaller. Stateful; input selectivity [slide]; defaults: length 500,
    slide 50. *)

val top_k :
  ?length:int -> ?slide:int -> ?index:int -> ?per_key:bool -> k:int -> unit ->
  Behavior.t
(** Emits the [k] window members with the largest [index]-th value each time
    the window fires, largest first (fewer while the window holds fewer than
    [k] members). Stateful; input selectivity [slide]; output selectivity
    [k]. Stateful by default; [~per_key:true] keeps one window per
    partitioning key (partitioned-stateful). Defaults: length 1000,
    slide 100, index 0.
    @raise Invalid_argument if [k < 1]. *)

val is_dominated : (float * float) -> (float * float) list -> bool
(** [is_dominated p points]: exposed for property tests. *)
