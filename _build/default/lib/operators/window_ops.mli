(** Count-based sliding-window aggregations (the evaluation's "stateful
    operators based on count-based windows": weighted moving average, sum,
    max, min and quantiles).

    Every constructor takes the window [length] and [slide]; the resulting
    behavior has input selectivity [slide]. With [~per_key:true] the window
    is maintained per partitioning key and the behavior is classified
    partitioned-stateful (replicable by key assignment); otherwise a single
    global window makes it stateful. The aggregate is computed over the
    [index]-th value and emitted as a single-value tuple carrying the
    triggering tuple's key and timestamp. *)

type spec = { length : int; slide : int; index : int; per_key : bool }

val default_spec : spec
(** 1000-tuple windows sliding every 10 tuples over value 0, global. *)

val sum : ?spec:spec -> unit -> Behavior.t
val max_agg : ?spec:spec -> unit -> Behavior.t
val min_agg : ?spec:spec -> unit -> Behavior.t
val mean : ?spec:spec -> unit -> Behavior.t

val weighted_moving_average : ?spec:spec -> unit -> Behavior.t
(** Linearly decaying weights: the newest element weighs [length], the
    oldest 1. *)

val quantile : ?spec:spec -> q:float -> unit -> Behavior.t
(** Exact order-statistic quantile, [q] in [\[0, 1\]] (sort per firing, as a
    realistic medium-cost aggregate). @raise Invalid_argument on a [q]
    outside the unit interval. *)

val fold : ?spec:spec -> name:string -> (float list -> float) -> Behavior.t
(** General aggregate over the windowed values, for custom operators. *)
