(* The default parameterizations below aim at the service-time spread the
   paper reports: "some hundreds of microseconds in the fastest case, up to
   a few hundreds of milliseconds in the worst" once windows are sized with
   the evaluation's parameters (1000 / 5000 / 10000 tuples, slides 1 / 10 /
   50). *)

let window_spec length slide =
  { Window_ops.default_spec with Window_ops.length; slide }

let all () =
  [
    (* stateless: tuple-by-tuple transformations *)
    Stateless_ops.identity;
    Stateless_ops.scale ~factor:1.5;
    Stateless_ops.offset ~delta:0.5;
    Stateless_ops.compute ~iterations:200;
    Stateless_ops.threshold_filter ~index:0 ~threshold:0.25;
    Stateless_ops.sampler ~keep_one_in:4;
    Stateless_ops.flat_split ~parts:2;
    Stateless_ops.project ~keep:2;
    Stateless_ops.rekey ~buckets:64;
    Stateless_ops.enrich ~table:(fun key -> float_of_int (key land 0xff));
    (* windowed aggregations *)
    Window_ops.sum ~spec:(window_spec 1000 10) ();
    Window_ops.max_agg ~spec:(window_spec 1000 1) ();
    Window_ops.min_agg ~spec:(window_spec 5000 10) ();
    Window_ops.weighted_moving_average ~spec:(window_spec 1000 10) ();
    Window_ops.quantile ~spec:(window_spec 5000 50) ~q:0.95 ();
    Window_ops.mean
      ~spec:{ (window_spec 1000 10) with Window_ops.per_key = true }
      ();
    (* spatial queries *)
    Spatial_ops.skyline ~length:500 ~slide:50 ();
    Spatial_ops.top_k ~length:1000 ~slide:50 ~k:10 ();
    (* joins and keyed state *)
    Join_ops.band_join ~length:200 ~band:0.05 ();
    Join_ops.count_by_key ();
  ]

let find name =
  List.find_opt (fun b -> String.equal b.Behavior.name name) (all ())

let find_exn name =
  match find name with Some b -> b | None -> raise Not_found

let names () = List.map (fun b -> b.Behavior.name) (all ())

let by_kind kind =
  List.filter (fun b -> b.Behavior.state_kind = kind) (all ())

let stateless () = by_kind Behavior.Stateless_op
let partitioned () = by_kind Behavior.Partitioned_op
let stateful () = by_kind Behavior.Stateful_op

let joins () =
  List.filter
    (fun b ->
      (* Band join is the only binary operator in the catalog. *)
      String.length b.Behavior.name >= 8
      && String.sub b.Behavior.name 0 8 = "bandjoin")
    (all ())
