(** Event-time windowed aggregations over {!Time_window}.

    Counterparts of {!Window_ops} with event-time semantics: results carry
    the window's end as their timestamp. Unlike count-based windows, the
    input selectivity of an event-time operator depends on the stream rate
    (items per [slide] seconds), so descriptors built from these behaviors
    should take their selectivity from profiling
    ({!Ss_workload.Profiler.to_operator} does). *)

val fold :
  ?allowed_lateness:float ->
  ?per_key:bool ->
  ?index:int ->
  kind:Time_window.kind ->
  name:string ->
  (float list -> float) ->
  Behavior.t
(** General event-time aggregate over the [index]-th value (default 0).
    With [per_key] (default false) one window set is kept per partitioning
    key and the behavior is partitioned-stateful. Results carry the
    triggering tuple's key and the window end as timestamp. *)

val sum :
  ?allowed_lateness:float -> ?per_key:bool -> ?index:int ->
  kind:Time_window.kind -> unit -> Behavior.t

val mean :
  ?allowed_lateness:float -> ?per_key:bool -> ?index:int ->
  kind:Time_window.kind -> unit -> Behavior.t

val count :
  ?allowed_lateness:float -> ?per_key:bool ->
  kind:Time_window.kind -> unit -> Behavior.t
(** Elements per window. *)
