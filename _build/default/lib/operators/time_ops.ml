let kind_name = function
  | Time_window.Tumbling l -> Printf.sprintf "tumble%g" l
  | Time_window.Sliding (l, s) -> Printf.sprintf "slide%g_%g" l s

let fold ?allowed_lateness ?(per_key = false) ?(index = 0) ~kind ~name
    aggregate =
  let state_kind =
    if per_key then Behavior.Partitioned_op else Behavior.Stateful_op
  in
  let fresh () =
    let global = Time_window.create ?allowed_lateness kind in
    let per_key_windows = Hashtbl.create 64 in
    let window_for key =
      if not per_key then global
      else
        match Hashtbl.find_opt per_key_windows key with
        | Some w -> w
        | None ->
            let w = Time_window.create ?allowed_lateness kind in
            Hashtbl.add per_key_windows key w;
            w
    in
    fun (t : Tuple.t) ->
      let fired =
        Time_window.push (window_for t.Tuple.key) ~ts:t.Tuple.ts
          (Tuple.value t index)
      in
      List.map
        (fun f ->
          Tuple.make ~ts:f.Time_window.window_end ~key:t.Tuple.key
            ~tag:t.Tuple.tag
            [| aggregate f.Time_window.contents |])
        fired
  in
  Behavior.make ~state_kind
    ~name:
      (Printf.sprintf "%s_%s%s" name (kind_name kind)
         (if per_key then "_bykey" else ""))
    fresh

let sum ?allowed_lateness ?per_key ?index ~kind () =
  fold ?allowed_lateness ?per_key ?index ~kind ~name:"tsum"
    (List.fold_left ( +. ) 0.0)

let mean ?allowed_lateness ?per_key ?index ~kind () =
  fold ?allowed_lateness ?per_key ?index ~kind ~name:"tmean" (fun vs ->
      List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs))

let count ?allowed_lateness ?per_key ~kind () =
  fold ?allowed_lateness ?per_key ~kind ~name:"tcount" (fun vs ->
      float_of_int (List.length vs))
