(** Binary and keyed stateful operators: band join over count-based windows
    (as in the paper's evaluation), keyed counting and deduplication. *)

val band_join :
  ?length:int -> ?index:int -> band:float -> unit -> Behavior.t
(** Symmetric band join of the two sub-streams distinguished by tuple [tag]
    (0 and 1): each arriving tuple is inserted into its side's count-based
    window (of [length] tuples, default 200) and probed against the opposite
    window; every pair whose [index]-th values differ by at most [band]
    emits a joined tuple [(v_left, v_right)] carrying the probing tuple's
    key and timestamp. Stateful (the band predicate is not key-partitionable
    in general). @raise Invalid_argument if [band < 0]. *)

val count_by_key : unit -> Behavior.t
(** Running count per partitioning key: each input emits one tuple whose
    value is the updated count of its key. Partitioned-stateful. *)

val dedup : ?memory:int -> unit -> Behavior.t
(** Drop tuples whose key was already seen among the last [memory] distinct
    keys (default 1024). Partitioned-stateful; output selectivity is
    workload-dependent (declared 1). *)
