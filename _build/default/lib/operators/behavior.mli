(** Executable operator behaviors.

    A behavior couples a tuple-transforming function with the metadata the
    optimizer needs (state classification and nominal selectivities). The
    function may own internal state; {!fresh} allocates an independent state
    instance, which is what makes fission of partitioned-stateful operators
    possible in the runtime (each replica gets its own instance and the
    emitter routes keys consistently). *)

type fn = Tuple.t -> Tuple.t list
(** One input tuple to zero, one or many output tuples. *)

(** State classification mirroring {!Ss_topology.Operator.kind}, but without
    a key distribution: the distribution is a property of the workload, not
    of the operator code. *)
type state_kind = Stateless_op | Partitioned_op | Stateful_op

type t = {
  name : string;
  state_kind : state_kind;
  input_selectivity : float;
      (** Nominal items consumed per result at steady state. *)
  output_selectivity : float;
      (** Nominal results produced per item consumed. *)
  fresh : unit -> fn;  (** Allocate a new, independent state instance. *)
}

val make :
  ?state_kind:state_kind ->
  ?input_selectivity:float ->
  ?output_selectivity:float ->
  name:string ->
  (unit -> fn) ->
  t
(** Defaults: stateless with unit selectivities.
    @raise Invalid_argument on non-positive input selectivity or negative
    output selectivity. *)

val instantiate : t -> fn
(** Shorthand for [t.fresh ()]. *)

val selectivity_factor : t -> float
(** [output_selectivity /. input_selectivity]. *)

val to_operator :
  ?dist:Ss_prelude.Dist.t ->
  ?keys:Ss_prelude.Discrete.t ->
  service_time:float ->
  t ->
  Ss_topology.Operator.t
(** Descriptor for the optimizer: combines the behavior's classification and
    selectivities with a profiled [service_time]. Partitioned-stateful
    behaviors require [keys] (the workload's key-group distribution);
    @raise Invalid_argument if it is missing, or supplied for a
    non-partitioned behavior. *)
