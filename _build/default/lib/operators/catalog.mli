(** The catalog of real-world operators used by the evaluation (paper §5.1:
    "we developed 20 different real-world operators").

    The catalog fixes one default parameterization per operator family so
    that random-topology generation, profiling and code generation can refer
    to operators by name. Custom parameterizations remain available through
    the per-family modules ({!Stateless_ops}, {!Window_ops}, {!Spatial_ops},
    {!Join_ops}). *)

val all : unit -> Behavior.t list
(** The 20 default operators, in a stable order. *)

val find : string -> Behavior.t option
(** Look an operator up by its name. *)

val find_exn : string -> Behavior.t
(** @raise Not_found when the name is unknown. *)

val names : unit -> string list

val stateless : unit -> Behavior.t list
(** Catalog subset usable for fission without key constraints. *)

val partitioned : unit -> Behavior.t list
val stateful : unit -> Behavior.t list

val joins : unit -> Behavior.t list
(** Operators requiring more than one input edge (assignable only to
    vertices with in-degree >= 2, paper Algorithm 5). *)
