type spec = { length : int; slide : int; index : int; per_key : bool }

let default_spec = { length = 1000; slide = 10; index = 0; per_key = false }

(* Shared skeleton: push into the (global or per-key) window; on firing,
   aggregate the windowed values into a single-value tuple. *)
let fold ?(spec = default_spec) ~name aggregate =
  let state_kind =
    if spec.per_key then Behavior.Partitioned_op else Behavior.Stateful_op
  in
  let fresh () =
    let global = Window.create ~length:spec.length ~slide:spec.slide in
    let per_key = Hashtbl.create 64 in
    let window_for key =
      if not spec.per_key then global
      else
        match Hashtbl.find_opt per_key key with
        | Some w -> w
        | None ->
            let w = Window.create ~length:spec.length ~slide:spec.slide in
            Hashtbl.add per_key key w;
            w
    in
    fun (t : Tuple.t) ->
      match Window.push (window_for t.Tuple.key) (Tuple.value t spec.index) with
      | None -> []
      | Some values ->
          [
            Tuple.make ~ts:t.Tuple.ts ~key:t.Tuple.key ~tag:t.Tuple.tag
              [| aggregate values |];
          ]
  in
  Behavior.make ~state_kind
    ~input_selectivity:(float_of_int spec.slide)
    ~name:
      (Printf.sprintf "%s_w%d_s%d%s" name spec.length spec.slide
         (if spec.per_key then "_bykey" else ""))
    fresh

let sum ?spec () = fold ?spec ~name:"sum" (List.fold_left ( +. ) 0.0)

let max_agg ?spec () =
  fold ?spec ~name:"max" (fun vs -> List.fold_left Float.max neg_infinity vs)

let min_agg ?spec () =
  fold ?spec ~name:"min" (fun vs -> List.fold_left Float.min infinity vs)

let mean ?spec () =
  fold ?spec ~name:"mean" (fun vs ->
      List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs))

let weighted_moving_average ?spec () =
  fold ?spec ~name:"wma" (fun vs ->
      (* Oldest first: weight i+1 for the i-th element. *)
      let num, den =
        List.fold_left
          (fun (num, den, i) v -> (num +. (v *. float_of_int i), den +. float_of_int i, i + 1))
          (0.0, 0.0, 1) vs
        |> fun (num, den, _) -> (num, den)
      in
      num /. den)

let quantile ?spec ~q () =
  if q < 0.0 || q > 1.0 then invalid_arg "Window_ops.quantile: q out of range";
  fold ?spec
    ~name:(Printf.sprintf "quantile_%g" q)
    (fun vs ->
      let a = Array.of_list vs in
      Array.sort compare a;
      let n = Array.length a in
      let rank = q *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      if lo = hi then a.(lo)
      else
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo))))
