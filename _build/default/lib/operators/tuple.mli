(** Stream items: records of numeric attributes with a partitioning key.

    All executable operators in this library transform tuples; the paper
    calls them "records of attributes". *)

type t = {
  ts : float;  (** Event timestamp in seconds. *)
  key : int;  (** Partitioning key (non-negative). *)
  tag : int;
      (** Logical sub-stream tag; binary operators (joins) use it to tell
          their inputs apart. *)
  values : float array;  (** Numeric payload. *)
}

val make : ?ts:float -> ?key:int -> ?tag:int -> float array -> t
val value : t -> int -> float
(** [value t i] is [t.values.(i)], or 0 when the index is out of range —
    operators stay total on short tuples. *)

val with_values : t -> float array -> t
val with_key : t -> int -> t
val arity : t -> int
val equal : t -> t -> bool
val compare_by : int -> t -> t -> int
(** Order by the given value index (missing values read as 0). *)

val pp : Format.formatter -> t -> unit
