let is_dominated (px, py) points =
  List.exists
    (fun (qx, qy) -> qx <= px && qy <= py && (qx < px || qy < py))
    points

(* One window globally, or one per partitioning key. *)
let window_table ~per_key ~length ~slide =
  let global = Window.create ~length ~slide in
  let per_key_windows = Hashtbl.create 64 in
  fun key ->
    if not per_key then global
    else
      match Hashtbl.find_opt per_key_windows key with
      | Some w -> w
      | None ->
          let w = Window.create ~length ~slide in
          Hashtbl.add per_key_windows key w;
          w

let skyline ?(length = 500) ?(slide = 50) ?(per_key = false) () =
  Behavior.make
    ~state_kind:(if per_key then Behavior.Partitioned_op else Behavior.Stateful_op)
    ~input_selectivity:(float_of_int slide)
    ~name:
      (Printf.sprintf "skyline_w%d_s%d%s" length slide
         (if per_key then "_bykey" else ""))
    (fun () ->
      let window_for = window_table ~per_key ~length ~slide in
      fun (t : Tuple.t) ->
        match Window.push (window_for t.Tuple.key) t with
        | None -> []
        | Some members ->
            let point m = (Tuple.value m 0, Tuple.value m 1) in
            let points = List.map point members in
            List.filter
              (fun m ->
                let p = point m in
                not (is_dominated p (List.filter (fun q -> q <> p) points)))
              members)

let top_k ?(length = 1000) ?(slide = 100) ?(index = 0) ?(per_key = false) ~k () =
  if k < 1 then invalid_arg "Spatial_ops.top_k: k < 1";
  Behavior.make
    ~state_kind:(if per_key then Behavior.Partitioned_op else Behavior.Stateful_op)
    ~input_selectivity:(float_of_int slide)
    ~output_selectivity:(float_of_int k)
    ~name:
      (Printf.sprintf "top%d_w%d_s%d%s" k length slide
         (if per_key then "_bykey" else ""))
    (fun () ->
      let window_for = window_table ~per_key ~length ~slide in
      fun (t : Tuple.t) ->
        match Window.push (window_for t.Tuple.key) t with
        | None -> []
        | Some members ->
            let sorted =
              List.stable_sort
                (fun a b -> compare (Tuple.value b index) (Tuple.value a index))
                members
            in
            List.filteri (fun i _ -> i < k) sorted)
