(** Stateless tuple-at-a-time operators: maps, filters, routing and
    enrichment (the evaluation's "filters and maps, which apply
    transformations on a tuple-by-tuple basis"). *)

val identity : Behavior.t
(** Pass-through. *)

val scale : factor:float -> Behavior.t
(** Multiply every value by [factor]. *)

val offset : delta:float -> Behavior.t
(** Add [delta] to every value. *)

val compute : iterations:int -> Behavior.t
(** CPU-heavy map: [iterations] rounds of transcendental arithmetic folded
    into the first value. Its service time scales linearly with
    [iterations], which is how examples and the profiler build operators of
    controlled cost. *)

val threshold_filter : index:int -> threshold:float -> Behavior.t
(** Keep tuples whose [index]-th value is at least [threshold]. The nominal
    output selectivity is workload-dependent; it is declared as 1 and should
    be refined by profiling. *)

val sampler : keep_one_in:int -> Behavior.t
(** Deterministically keep every [keep_one_in]-th tuple (output selectivity
    [1 / keep_one_in]). @raise Invalid_argument if [keep_one_in < 1]. *)

val flat_split : parts:int -> Behavior.t
(** Split each tuple into [parts] tuples, partitioning its values
    round-robin (output selectivity [parts]).
    @raise Invalid_argument if [parts < 1]. *)

val project : keep:int -> Behavior.t
(** Keep the first [keep] values. *)

val rekey : buckets:int -> Behavior.t
(** Recompute the partitioning key as a hash of the values into [buckets]
    groups. @raise Invalid_argument if [buckets < 1]. *)

val enrich : table:(int -> float) -> Behavior.t
(** Append [table key] to the values — a read-only dimension-table join,
    stateless with respect to the stream. *)
