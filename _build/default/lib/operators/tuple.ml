type t = { ts : float; key : int; tag : int; values : float array }

let make ?(ts = 0.0) ?(key = 0) ?(tag = 0) values = { ts; key; tag; values }

let value t i =
  if i >= 0 && i < Array.length t.values then t.values.(i) else 0.0

let with_values t values = { t with values }
let with_key t key = { t with key }
let arity t = Array.length t.values

let equal a b =
  a.ts = b.ts && a.key = b.key && a.tag = b.tag && a.values = b.values

let compare_by i a b = compare (value a i) (value b i)

let pp ppf t =
  Format.fprintf ppf "@[<h>{ts=%.4f key=%d tag=%d [" t.ts t.key t.tag;
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%g" v)
    t.values;
  Format.fprintf ppf "]}@]"
