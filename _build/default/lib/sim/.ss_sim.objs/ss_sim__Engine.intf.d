lib/sim/engine.mli: Ss_topology
