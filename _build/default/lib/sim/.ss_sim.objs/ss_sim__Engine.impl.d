lib/sim/engine.ml: Array Discrete Dist Float Heap List Operator Queue Rng Ss_core Ss_prelude Ss_topology Topology
