(** Finite discrete probability distributions.

    Used for edge routing probabilities and partitioning-key frequencies
    (the paper draws both from Zipf laws with random skew). *)

type t
(** A distribution over indices [0 .. support - 1]. *)

val of_weights : float array -> t
(** Normalizes non-negative weights; at least one must be positive. *)

val uniform : int -> t
(** [uniform n] over [n >= 1] outcomes. *)

val zipf : alpha:float -> int -> t
(** [zipf ~alpha n]: probability of rank [k] (0-based) proportional to
    [1 / (k+1)^alpha]. Requires [n >= 1]; [alpha] may be any float
    (0 gives uniform). *)

val support : t -> int

val prob : t -> int -> float
(** Probability of outcome [i]. *)

val probs : t -> float array
(** Copy of the probability vector (sums to 1). *)

val sample : Rng.t -> t -> int
(** Draw an outcome by binary search on the cumulative vector, O(log n). *)

val max_prob : t -> float
(** Largest single-outcome probability (skew indicator). *)

val entropy : t -> float
(** Shannon entropy in bits. *)

val pp : Format.formatter -> t -> unit
