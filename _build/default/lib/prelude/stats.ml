let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. float_of_int n

let stddev xs = sqrt (variance xs)

let minimum xs =
  if Array.length xs = 0 then invalid_arg "Stats.minimum: empty array";
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  if Array.length xs = 0 then invalid_arg "Stats.maximum: empty array";
  Array.fold_left Float.max xs.(0) xs

let percentile p xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile 50.0 xs

let relative_error ~expected ~actual =
  if expected = 0.0 then if actual = 0.0 then 0.0 else infinity
  else Float.abs (actual -. expected) /. Float.abs expected

module Acc = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n
  let stddev t = sqrt (variance t)
end
