(** Imperative binary min-heap, ordered by a user-supplied comparison.

    Used as the event queue of the discrete-event simulator and for the
    bounded top-k operator. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap; the smallest element (per [cmp]) is at the top. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order; does not mutate the heap. *)
