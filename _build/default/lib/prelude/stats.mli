(** Descriptive statistics over float samples. *)

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. *)

val variance : float array -> float
(** Population variance; 0 when fewer than two samples. *)

val stddev : float array -> float

val minimum : float array -> float
(** Requires a non-empty array. *)

val maximum : float array -> float
(** Requires a non-empty array. *)

val percentile : float -> float array -> float
(** [percentile p xs] with [p] in [\[0, 100\]], linear interpolation between
    order statistics. Requires a non-empty array. Does not mutate [xs]. *)

val median : float array -> float

val relative_error : expected:float -> actual:float -> float
(** [|actual - expected| / |expected|]; when [expected = 0], returns 0 if
    [actual] is also 0 and [infinity] otherwise. *)

(** Streaming accumulator (Welford) for mean/variance without storing
    samples. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end
