lib/prelude/stats.mli:
