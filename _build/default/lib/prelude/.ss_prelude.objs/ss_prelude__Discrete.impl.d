lib/prelude/discrete.ml: Array Float Format Rng
