lib/prelude/rng.mli:
