lib/prelude/discrete.mli: Format Rng
