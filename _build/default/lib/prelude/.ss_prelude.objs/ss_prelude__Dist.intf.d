lib/prelude/dist.mli: Format Rng
