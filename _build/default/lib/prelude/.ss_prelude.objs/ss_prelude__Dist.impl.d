lib/prelude/dist.ml: Float Format Printf Result Rng String
