lib/prelude/heap.mli:
