type t =
  | Deterministic of float
  | Uniform of float * float
  | Exponential of float
  | Normal of float * float
  | Erlang of int * float

let mean = function
  | Deterministic x -> x
  | Uniform (lo, hi) -> (lo +. hi) /. 2.0
  | Exponential m -> m
  | Normal (m, _) -> m
  | Erlang (_, m) -> m

let variance = function
  | Deterministic _ -> 0.0
  | Uniform (lo, hi) ->
      let d = hi -. lo in
      d *. d /. 12.0
  | Exponential m -> m *. m
  | Normal (_, s) -> s *. s
  | Erlang (k, m) ->
      let lambda_stage = float_of_int k /. m in
      float_of_int k /. (lambda_stage *. lambda_stage)

let sample_exponential rng mean =
  let u = Rng.float rng in
  (* u is in [0,1); 1-u is in (0,1] so log never sees zero. *)
  -.mean *. log (1.0 -. u)

(* Box–Muller transform; one value per call keeps the generator stateless. *)
let sample_standard_normal rng =
  let u1 = 1.0 -. Rng.float rng in
  let u2 = Rng.float rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let sample rng t =
  let raw =
    match t with
    | Deterministic x -> x
    | Uniform (lo, hi) -> Rng.float_in_range rng lo hi
    | Exponential m -> sample_exponential rng m
    | Normal (m, s) -> m +. (s *. sample_standard_normal rng)
    | Erlang (k, m) ->
        let stage_mean = m /. float_of_int k in
        let rec go i acc =
          if i = 0 then acc else go (i - 1) (acc +. sample_exponential rng stage_mean)
        in
        go k 0.0
  in
  Float.max 0.0 raw

let scale f = function
  | Deterministic x -> Deterministic (f *. x)
  | Uniform (lo, hi) -> Uniform (f *. lo, f *. hi)
  | Exponential m -> Exponential (f *. m)
  | Normal (m, s) -> Normal (f *. m, f *. s)
  | Erlang (k, m) -> Erlang (k, f *. m)

let pp ppf = function
  | Deterministic x -> Format.fprintf ppf "det:%g" x
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform:%g:%g" lo hi
  | Exponential m -> Format.fprintf ppf "exp:%g" m
  | Normal (m, s) -> Format.fprintf ppf "normal:%g:%g" m s
  | Erlang (k, m) -> Format.fprintf ppf "erlang:%d:%g" k m

(* Unlike [pp] (display-oriented), [to_string] must round-trip floats
   exactly through [of_string]. *)
let to_string = function
  | Deterministic x -> Printf.sprintf "det:%.17g" x
  | Uniform (lo, hi) -> Printf.sprintf "uniform:%.17g:%.17g" lo hi
  | Exponential m -> Printf.sprintf "exp:%.17g" m
  | Normal (m, s) -> Printf.sprintf "normal:%.17g:%.17g" m s
  | Erlang (k, m) -> Printf.sprintf "erlang:%d:%.17g" k m

let of_string s =
  let float_field name v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "invalid %s %S in distribution" name v)
  in
  match String.split_on_char ':' (String.trim s) with
  | [ x ] -> Result.map (fun f -> Deterministic f) (float_field "value" x)
  | [ "det"; x ] -> Result.map (fun f -> Deterministic f) (float_field "value" x)
  | [ "exp"; m ] -> Result.map (fun f -> Exponential f) (float_field "mean" m)
  | [ "uniform"; lo; hi ] -> (
      match (float_field "lo" lo, float_field "hi" hi) with
      | Ok lo, Ok hi when lo <= hi -> Ok (Uniform (lo, hi))
      | Ok lo, Ok hi ->
          Error (Printf.sprintf "uniform bounds out of order: %g > %g" lo hi)
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  | [ "normal"; m; s ] -> (
      match (float_field "mean" m, float_field "stddev" s) with
      | Ok m, Ok s -> Ok (Normal (m, s))
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  | [ "erlang"; k; m ] -> (
      match (int_of_string_opt k, float_field "mean" m) with
      | Some k, Ok m when k > 0 -> Ok (Erlang (k, m))
      | Some _, Ok _ -> Error "erlang stage count must be positive"
      | None, _ -> Error (Printf.sprintf "invalid stage count %S" k)
      | _, Error e -> Error e)
  | _ -> Error (Printf.sprintf "unknown distribution syntax %S" s)
