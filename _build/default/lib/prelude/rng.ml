type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Finalizer from the splitmix64 reference implementation. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let float t =
  (* Use the top 53 bits for a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let rec loop () =
    let v = Int64.to_int (Int64.logand (int64 t) mask) in
    (* Rejection sampling to avoid modulo bias. *)
    let r = v mod bound in
    if v - r + (bound - 1) < 0 then loop () else r
  in
  loop ()

let int_in_range t lo hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float_in_range t lo hi = lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
