(** Deterministic pseudo-random number generator (splitmix64).

    Every randomized component of the library (topology generation, service
    processes in the simulator, key distributions) takes an explicit [Rng.t]
    so experiments are reproducible from a single integer seed. *)

type t

val create : int -> t
(** [create seed] returns a generator initialized from [seed]. Two generators
    created from the same seed produce identical streams. *)

val copy : t -> t
(** Independent copy sharing the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]; the two
    subsequently produce decorrelated streams. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in_range : t -> int -> int -> int
(** [int_in_range t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float_in_range : t -> float -> float -> float
(** [float_in_range t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. Requires a non-empty array. *)
