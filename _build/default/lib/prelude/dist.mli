(** Continuous probability distributions for service times and
    inter-arrival times.

    All times are expressed in seconds. Sampling never returns a negative
    value: distributions with support below zero are truncated at zero. *)

type t =
  | Deterministic of float  (** Constant value. *)
  | Uniform of float * float  (** [Uniform (lo, hi)], requires [lo <= hi]. *)
  | Exponential of float  (** [Exponential mean]. *)
  | Normal of float * float
      (** [Normal (mean, stddev)], truncated at zero when sampling. *)
  | Erlang of int * float
      (** [Erlang (k, mean)]: sum of [k] exponential stages with total
          mean [mean]. Lower variance than [Exponential mean]. *)

val mean : t -> float
(** Analytical mean (of the untruncated distribution). *)

val variance : t -> float
(** Analytical variance (of the untruncated distribution). *)

val sample : Rng.t -> t -> float
(** Draw one value; clamped to be non-negative. *)

val scale : float -> t -> t
(** [scale f d] multiplies the distribution by the constant [f > 0]. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Parse the textual forms used in topology XML files:
    ["det:0.5"], ["uniform:0.1:0.3"], ["exp:0.5"], ["normal:0.5:0.1"],
    ["erlang:4:0.5"]. A bare float is read as [Deterministic]. *)

val to_string : t -> string
(** Inverse of {!of_string}. *)
