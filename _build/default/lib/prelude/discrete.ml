type t = {
  probs : float array;
  cumulative : float array;  (* cumulative.(i) = sum probs.(0..i) *)
}

let of_weights weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Discrete.of_weights: empty support";
  Array.iter
    (fun w ->
      if w < 0.0 || Float.is_nan w then
        invalid_arg "Discrete.of_weights: negative or NaN weight")
    weights;
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Discrete.of_weights: all weights are zero";
  let probs = Array.map (fun w -> w /. total) weights in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cumulative.(i) <- !acc)
    probs;
  cumulative.(n - 1) <- 1.0;
  { probs; cumulative }

let uniform n =
  if n < 1 then invalid_arg "Discrete.uniform: empty support";
  of_weights (Array.make n 1.0)

let zipf ~alpha n =
  if n < 1 then invalid_arg "Discrete.zipf: empty support";
  of_weights (Array.init n (fun k -> (float_of_int (k + 1)) ** -.alpha))

let support t = Array.length t.probs
let prob t i = t.probs.(i)
let probs t = Array.copy t.probs

let sample rng t =
  let u = Rng.float rng in
  let n = Array.length t.cumulative in
  (* Smallest index whose cumulative value exceeds u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cumulative.(mid) > u then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)

let max_prob t = Array.fold_left Float.max 0.0 t.probs

let entropy t =
  Array.fold_left
    (fun acc p -> if p > 0.0 then acc -. (p *. (log p /. log 2.0)) else acc)
    0.0 t.probs

let pp ppf t =
  Format.fprintf ppf "@[<h>[";
  Array.iteri
    (fun i p ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%.4f" p)
    t.probs;
  Format.fprintf ppf "]@]"
