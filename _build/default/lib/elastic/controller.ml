open Ss_topology

type policy = {
  target_utilization : float;
  scale_up_threshold : float;
  scale_down_threshold : float;
  max_replicas_per_operator : int;
}

let default_policy =
  {
    target_utilization = 0.7;
    scale_up_threshold = 0.9;
    scale_down_threshold = 0.3;
    max_replicas_per_operator = 64;
  }

type change = { vertex : int; before : int; after : int }

type epoch = {
  index : int;
  configuration : Topology.t;
  throughput : float;
  effective_throughput : float;
  changes : change list;
}

type run = {
  epochs : epoch list;
  converged_at : int option;
  final : Topology.t;
  items_processed : float;
  horizon : float;
}

(* Proportional resizing toward the target utilization (the rule used by
   threshold-based elastic scalers). *)
let decide policy topology (measured : Ss_sim.Engine.result) =
  let src = Topology.source topology in
  List.filter_map
    (fun v ->
      let op = Topology.operator topology v in
      if v = src || not (Operator.can_replicate op) then None
      else
        let utilization = measured.Ss_sim.Engine.stats.(v).Ss_sim.Engine.busy_fraction in
        let n = op.Operator.replicas in
        let resized =
          int_of_float
            (Float.ceil (float_of_int n *. utilization /. policy.target_utilization))
        in
        let n' =
          if utilization > policy.scale_up_threshold then
            min policy.max_replicas_per_operator (max (n + 1) resized)
          else if utilization < policy.scale_down_threshold && n > 1 then
            max 1 resized
          else n
        in
        if n' <> n then Some { vertex = v; before = n; after = n' } else None)
    (List.init (Topology.size topology) Fun.id)

let apply_changes topology changes =
  Topology.map_operators topology (fun v op ->
      match List.find_opt (fun c -> c.vertex = v) changes with
      | Some c -> Operator.with_replicas op c.after
      | None -> op)

let run ?(policy = default_policy) ?(epoch_length = 10.0)
    ?(reconfiguration_downtime = 2.0) ?(max_epochs = 20) ?(seed = 42) topology =
  if epoch_length <= reconfiguration_downtime then
    invalid_arg "Controller.run: epoch must outlast the reconfiguration downtime";
  let rec go index configuration pending_downtime acc =
    if index >= max_epochs then List.rev acc
    else begin
      let config =
        {
          Ss_sim.Engine.default_config with
          Ss_sim.Engine.warmup = epoch_length /. 5.0;
          measure = epoch_length;
          seed = seed + index;
        }
      in
      let measured = Ss_sim.Engine.run ~config configuration in
      let throughput = measured.Ss_sim.Engine.throughput in
      let effective_throughput =
        throughput *. (epoch_length -. pending_downtime) /. epoch_length
      in
      let changes = decide policy configuration measured in
      let epoch =
        { index; configuration; throughput; effective_throughput; changes }
      in
      let next_configuration =
        if changes = [] then configuration
        else apply_changes configuration changes
      in
      let next_downtime =
        if changes = [] then 0.0 else reconfiguration_downtime
      in
      go (index + 1) next_configuration next_downtime (epoch :: acc)
    end
  in
  let epochs = go 0 topology 0.0 [] in
  let converged_at =
    (* First epoch from which every later epoch (itself included) is
       change-free. *)
    let rec scan best = function
      | [] -> best
      | e :: rest ->
          if e.changes = [] then
            scan (match best with None -> Some e.index | some -> some) rest
          else scan None rest
    in
    scan None epochs
  in
  let final =
    match List.rev epochs with
    | last :: _ ->
        if last.changes = [] then last.configuration
        else apply_changes last.configuration last.changes
    | [] -> topology
  in
  {
    epochs;
    converged_at;
    final;
    items_processed =
      List.fold_left
        (fun acc e -> acc +. (e.effective_throughput *. epoch_length))
        0.0 epochs;
    horizon = float_of_int (List.length epochs) *. epoch_length;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>elastic run (%d epochs, horizon %.0fs):@,"
    (List.length t.epochs) t.horizon;
  List.iter
    (fun e ->
      Format.fprintf ppf
        "  epoch %2d: %8.1f t/s (effective %8.1f)%s@," e.index e.throughput
        e.effective_throughput
        (if e.changes = [] then ""
         else
           " resize "
           ^ String.concat ", "
               (List.map
                  (fun c -> Printf.sprintf "v%d:%d->%d" c.vertex c.before c.after)
                  e.changes)))
    t.epochs;
  (match t.converged_at with
  | Some i -> Format.fprintf ppf "converged at epoch %d@," i
  | None -> Format.fprintf ppf "did not converge within the horizon@,");
  Format.fprintf ppf "items processed: %.0f@]" t.items_processed
