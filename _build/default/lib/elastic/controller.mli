(** A dynamic-adaptation baseline: threshold-based elasticity in the style
    of Dhalion/elastic-scaling systems (paper §1 and §6).

    The paper argues that run-time elasticity, while indispensable for
    variable workloads, pays a real price on a {e stable} workload — repeated
    reconfigurations with state-migration downtime before converging to the
    configuration SpinStreams computes statically. This module makes that
    argument measurable: a reactive controller observes per-operator
    utilization over fixed epochs (simulated on {!Ss_sim.Engine}) and
    resizes replica counts between epochs, paying a configurable downtime
    for every reconfiguration.

    Policy (per epoch, per replicable non-source operator): when the busiest
    replica's utilization exceeds [scale_up_threshold], the degree becomes
    [ceil (n * utilization / target_utilization)]; when it falls below
    [scale_down_threshold] and [n > 1], the degree shrinks by the same
    proportional rule. Stateful operators are never resized. *)

type policy = {
  target_utilization : float;  (** Default 0.7. *)
  scale_up_threshold : float;  (** Default 0.9. *)
  scale_down_threshold : float;  (** Default 0.3. *)
  max_replicas_per_operator : int;  (** Default 64. *)
}

val default_policy : policy

type change = { vertex : int; before : int; after : int }

type epoch = {
  index : int;  (** 0-based. *)
  configuration : Ss_topology.Topology.t;
      (** Topology (replica counts) in force during this epoch. *)
  throughput : float;  (** Measured during the epoch. *)
  effective_throughput : float;
      (** Throughput after charging the reconfiguration downtime that
          preceded the epoch. *)
  changes : change list;
      (** Resizing decisions taken {e at the end} of this epoch. *)
}

type run = {
  epochs : epoch list;
  converged_at : int option;
      (** First epoch from which no further change happens. *)
  final : Ss_topology.Topology.t;
  items_processed : float;
      (** Sum over epochs of effective throughput x epoch length. *)
  horizon : float;  (** Total wall-clock modeled: epochs x epoch length. *)
}

val run :
  ?policy:policy ->
  ?epoch_length:float ->
  ?reconfiguration_downtime:float ->
  ?max_epochs:int ->
  ?seed:int ->
  Ss_topology.Topology.t ->
  run
(** [run topology] starts from the given replica counts (typically all 1)
    and adapts for [max_epochs] (default 20) epochs of [epoch_length]
    (default 10) simulated seconds, charging [reconfiguration_downtime]
    (default 2) seconds of stalled processing after every epoch whose
    controller produced at least one change. *)

val pp : Format.formatter -> run -> unit
