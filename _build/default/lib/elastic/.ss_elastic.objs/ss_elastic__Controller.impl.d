lib/elastic/controller.ml: Array Float Format Fun List Operator Printf Ss_sim Ss_topology String Topology
