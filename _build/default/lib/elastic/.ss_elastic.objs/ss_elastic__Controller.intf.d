lib/elastic/controller.mli: Format Ss_topology
