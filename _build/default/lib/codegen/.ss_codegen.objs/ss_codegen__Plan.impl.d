lib/codegen/plan.ml: Behavior Catalog Codegen List Operator Ss_operators Ss_prelude Ss_runtime Ss_topology Ss_workload Topology Unix
