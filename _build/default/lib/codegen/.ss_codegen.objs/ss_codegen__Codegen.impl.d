lib/codegen/codegen.ml: Array Buffer Discrete Dist Filename Fun List Operator Printf Ss_operators Ss_prelude Ss_topology String Sys Topology
