lib/codegen/plan.mli: Ss_operators Ss_runtime Ss_topology Ss_workload
