lib/codegen/codegen.mli: Ss_topology
