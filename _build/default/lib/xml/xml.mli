(** Minimal XML document model and parser — enough for the SpinStreams
    topology formalism (elements, attributes, text, comments, XML
    declarations and the five predefined entities). Namespaces, CDATA and
    DTDs are out of scope. *)

type t =
  | Element of string * (string * string) list * t list
      (** [(tag, attributes, children)]. *)
  | Text of string

val parse : string -> (t, string) result
(** Parse a document; the single root element is returned. Whitespace-only
    text nodes are dropped. Errors carry a line/column position. *)

val parse_exn : string -> t
(** @raise Failure with the parse error. *)

val to_string : ?indent:int -> t -> string
(** Render with 2-space indentation per level by default; attribute values
    and text are escaped. *)

(** {1 Accessors} *)

val tag : t -> string option
val attr : string -> t -> string option
val attr_exn : string -> t -> (string, string) result
(** [Error] explains which attribute is missing from which element. *)

val children : t -> t list
val find_all : string -> t -> t list
(** Direct children with the given tag. *)

val text_content : t -> string
(** Concatenated text of the node's direct text children. *)

val escape : string -> string
