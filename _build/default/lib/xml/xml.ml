type t =
  | Element of string * (string * string) list * t list
  | Text of string

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over a string with line/column tracking. *)

type cursor = { src : string; mutable pos : int; mutable line : int; mutable col : int }

exception Parse_error of string

let fail c msg =
  raise (Parse_error (Printf.sprintf "line %d, column %d: %s" c.line c.col msg))

let eof c = c.pos >= String.length c.src
let peek c = if eof c then '\000' else c.src.[c.pos]

let advance c =
  if not (eof c) then begin
    if c.src.[c.pos] = '\n' then begin
      c.line <- c.line + 1;
      c.col <- 1
    end
    else c.col <- c.col + 1;
    c.pos <- c.pos + 1
  end

let looking_at c s =
  let n = String.length s in
  c.pos + n <= String.length c.src && String.sub c.src c.pos n = s

let skip c n = for _ = 1 to n do advance c done

let skip_whitespace c =
  while (not (eof c)) && (match peek c with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
    advance c
  done

let is_name_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-' || ch = '.' || ch = ':'

let read_name c =
  let start = c.pos in
  while (not (eof c)) && is_name_char (peek c) do advance c done;
  if c.pos = start then fail c "expected a name";
  String.sub c.src start (c.pos - start)

let decode_entity c =
  (* Called just after '&'. *)
  let start = c.pos in
  while (not (eof c)) && peek c <> ';' && c.pos - start < 8 do advance c done;
  if peek c <> ';' then fail c "unterminated entity";
  let name = String.sub c.src start (c.pos - start) in
  advance c;
  match name with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
      if String.length name > 1 && name.[0] = '#' then
        let code =
          if name.[1] = 'x' then
            int_of_string_opt ("0x" ^ String.sub name 2 (String.length name - 2))
          else int_of_string_opt (String.sub name 1 (String.length name - 1))
        in
        match code with
        | Some code when code >= 0 && code < 128 -> String.make 1 (Char.chr code)
        | _ -> fail c (Printf.sprintf "unsupported character reference &%s;" name)
      else fail c (Printf.sprintf "unknown entity &%s;" name)

let read_attribute_value c =
  let quote = peek c in
  if quote <> '"' && quote <> '\'' then fail c "expected a quoted attribute value";
  advance c;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof c then fail c "unterminated attribute value"
    else if peek c = quote then advance c
    else if peek c = '&' then begin
      advance c;
      Buffer.add_string buf (decode_entity c);
      go ()
    end
    else begin
      Buffer.add_char buf (peek c);
      advance c;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let skip_comment c =
  (* Called on "<!--". *)
  skip c 4;
  let rec go () =
    if eof c then fail c "unterminated comment"
    else if looking_at c "-->" then skip c 3
    else begin
      advance c;
      go ()
    end
  in
  go ()

let skip_prolog c =
  skip_whitespace c;
  while looking_at c "<?" || looking_at c "<!--" do
    if looking_at c "<?" then begin
      while (not (eof c)) && not (looking_at c "?>") do advance c done;
      if eof c then fail c "unterminated XML declaration";
      skip c 2
    end
    else skip_comment c;
    skip_whitespace c
  done

let rec parse_element c =
  if peek c <> '<' then fail c "expected '<'";
  advance c;
  let name = read_name c in
  let rec read_attrs acc =
    skip_whitespace c;
    if looking_at c "/>" then begin
      skip c 2;
      (List.rev acc, [])
    end
    else if peek c = '>' then begin
      advance c;
      (List.rev acc, parse_children c name)
    end
    else begin
      let attr_name = read_name c in
      skip_whitespace c;
      if peek c <> '=' then fail c "expected '=' after attribute name";
      advance c;
      skip_whitespace c;
      let value = read_attribute_value c in
      if List.mem_assoc attr_name acc then
        fail c (Printf.sprintf "duplicate attribute %S" attr_name);
      read_attrs ((attr_name, value) :: acc)
    end
  in
  let attrs, children = read_attrs [] in
  Element (name, attrs, children)

and parse_children c parent =
  let children = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    let s = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if s <> "" then children := Text s :: !children
  in
  let rec go () =
    if eof c then fail c (Printf.sprintf "unterminated element <%s>" parent)
    else if looking_at c "<!--" then begin
      flush_text ();
      skip_comment c;
      go ()
    end
    else if looking_at c "</" then begin
      flush_text ();
      skip c 2;
      let closing = read_name c in
      skip_whitespace c;
      if peek c <> '>' then fail c "expected '>' in closing tag";
      advance c;
      if closing <> parent then
        fail c (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing parent)
    end
    else if peek c = '<' then begin
      flush_text ();
      children := parse_element c :: !children;
      go ()
    end
    else if peek c = '&' then begin
      advance c;
      Buffer.add_string buf (decode_entity c);
      go ()
    end
    else begin
      Buffer.add_char buf (peek c);
      advance c;
      go ()
    end
  in
  go ();
  List.rev !children

let parse src =
  let c = { src; pos = 0; line = 1; col = 1 } in
  try
    skip_prolog c;
    if eof c then Error "empty document"
    else begin
      let root = parse_element c in
      skip_whitespace c;
      while looking_at c "<!--" do
        skip_comment c;
        skip_whitespace c
      done;
      if not (eof c) then fail c "content after the root element";
      Ok root
    end
  with Parse_error msg -> Error msg

let parse_exn src =
  match parse src with Ok t -> t | Error e -> failwith ("Xml.parse: " ^ e)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let pad depth = Buffer.add_string buf (String.make (depth * indent) ' ') in
  let rec render depth = function
    | Text s ->
        pad depth;
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '\n'
    | Element (name, attrs, children) ->
        pad depth;
        Buffer.add_char buf '<';
        Buffer.add_string buf name;
        List.iter
          (fun (k, v) ->
            Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape v)))
          attrs;
        if children = [] then Buffer.add_string buf "/>\n"
        else if List.for_all (function Text _ -> true | Element _ -> false) children
        then begin
          (* Text-only content is rendered inline so no indentation
             whitespace is injected into it. *)
          Buffer.add_char buf '>';
          List.iter
            (function Text s -> Buffer.add_string buf (escape s) | Element _ -> ())
            children;
          Buffer.add_string buf (Printf.sprintf "</%s>\n" name)
        end
        else begin
          Buffer.add_string buf ">\n";
          List.iter (render (depth + 1)) children;
          pad depth;
          Buffer.add_string buf (Printf.sprintf "</%s>\n" name)
        end
  in
  render 0 t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors *)

let tag = function Element (name, _, _) -> Some name | Text _ -> None
let attr name = function
  | Element (_, attrs, _) -> List.assoc_opt name attrs
  | Text _ -> None

let attr_exn name node =
  match attr name node with
  | Some v -> Ok v
  | None ->
      Error
        (Printf.sprintf "missing attribute %S on <%s>" name
           (Option.value ~default:"#text" (tag node)))

let children = function Element (_, _, cs) -> cs | Text _ -> []

let find_all name node =
  List.filter (fun c -> tag c = Some name) (children node)

let text_content node =
  children node
  |> List.filter_map (function Text s -> Some s | Element _ -> None)
  |> String.concat ""
