open Ss_prelude
open Ss_topology

let ( let* ) = Result.bind

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = collect f rest in
      Ok (y :: ys)

let float_attr node name ~default =
  match Xml.attr name node with
  | None -> Ok default
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "attribute %s=%S is not a number" name v))

let int_attr node name ~default =
  match Xml.attr name node with
  | None -> Ok default
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "attribute %s=%S is not an integer" name v))

let parse_keys spec =
  match String.split_on_char ':' (String.trim spec) with
  | [ "zipf"; alpha; groups ] -> (
      match (float_of_string_opt alpha, int_of_string_opt groups) with
      | Some alpha, Some groups when groups >= 1 ->
          Ok (Discrete.zipf ~alpha groups)
      | _ -> Error (Printf.sprintf "malformed zipf key spec %S" spec))
  | _ -> (
      let parts = String.split_on_char ';' spec in
      let* weights =
        collect
          (fun p ->
            match float_of_string_opt (String.trim p) with
            | Some w -> Ok w
            | None -> Error (Printf.sprintf "malformed key weight %S" p))
          parts
      in
      try Ok (Discrete.of_weights (Array.of_list weights))
      with Invalid_argument m -> Error m)

let parse_operator node =
  let* name = Xml.attr_exn "name" node in
  let* id = Xml.attr_exn "id" node in
  let* id =
    match int_of_string_opt id with
    | Some i when i >= 0 -> Ok i
    | _ -> Error (Printf.sprintf "operator %S: invalid id %S" name id)
  in
  let context e = Printf.sprintf "operator %S: %s" name e in
  let* dist =
    let* spec = Result.map_error context (Xml.attr_exn "service_time" node) in
    Result.map_error context (Dist.of_string spec)
  in
  let* input_selectivity =
    Result.map_error context (float_attr node "input_selectivity" ~default:1.0)
  in
  let* output_selectivity =
    Result.map_error context (float_attr node "output_selectivity" ~default:1.0)
  in
  let* replicas = Result.map_error context (int_attr node "replicas" ~default:1) in
  let* kind =
    match Option.value ~default:"stateless" (Xml.attr "type" node) with
    | "stateless" -> Ok Operator.Stateless
    | "stateful" -> Ok Operator.Stateful
    | "partitioned" | "partitioned-stateful" ->
        let* spec = Result.map_error context (Xml.attr_exn "keys" node) in
        let* keys = Result.map_error context (parse_keys spec) in
        Ok (Operator.Partitioned_stateful keys)
    | other -> Error (context (Printf.sprintf "unknown operator type %S" other))
  in
  try
    Ok
      ( id,
        Operator.make ~kind ~dist ~input_selectivity ~output_selectivity
          ~replicas ~service_time:(Dist.mean dist) name )
  with Invalid_argument m -> Error (context m)

let parse_edge node =
  let* from_ = Xml.attr_exn "from" node in
  let* to_ = Xml.attr_exn "to" node in
  let* prob = float_attr node "probability" ~default:1.0 in
  match (int_of_string_opt from_, int_of_string_opt to_) with
  | Some u, Some v -> Ok (u, v, prob)
  | _ -> Error (Printf.sprintf "malformed edge %S -> %S" from_ to_)

let parse_raw src =
  let* root = Xml.parse src in
  let* () =
    match Xml.tag root with
    | Some "topology" -> Ok ()
    | Some other -> Error (Printf.sprintf "expected <topology>, found <%s>" other)
    | None -> Error "expected <topology>"
  in
  let* operators = collect parse_operator (Xml.find_all "operator" root) in
  let* edges = collect parse_edge (Xml.find_all "edge" root) in
  let* () = if operators = [] then Error "no <operator> elements" else Ok () in
  let n = List.length operators in
  let slots = Array.make n None in
  let* () =
    List.fold_left
      (fun acc (id, op) ->
        let* () = acc in
        if id >= n then
          Error
            (Printf.sprintf "operator ids must be dense 0..%d; found %d" (n - 1) id)
        else
          match slots.(id) with
          | Some _ -> Error (Printf.sprintf "duplicate operator id %d" id)
          | None ->
              slots.(id) <- Some op;
              Ok ())
      (Ok ()) operators
  in
  Ok (Array.map Option.get slots, edges)

let of_string src =
  let* ops, edges = parse_raw src in
  Result.map_error Topology.error_to_string (Topology.create ops edges)

let class_of_name name =
  match String.index_opt name '#' with
  | Some i -> String.sub name 0 i
  | None -> name

let to_string topology =
  let operator_node v (op : Operator.t) =
    let base =
      [
        ("id", string_of_int v);
        ("name", op.Operator.name);
        ("class", class_of_name op.Operator.name);
        ( "type",
          match op.Operator.kind with
          | Operator.Stateless -> "stateless"
          | Operator.Stateful -> "stateful"
          | Operator.Partitioned_stateful _ -> "partitioned" );
        ("service_time", Dist.to_string op.Operator.service_dist);
      ]
    in
    let optional =
      List.concat
        [
          (if op.Operator.input_selectivity <> 1.0 then
             [ ("input_selectivity", Printf.sprintf "%.17g" op.Operator.input_selectivity) ]
           else []);
          (if op.Operator.output_selectivity <> 1.0 then
             [ ("output_selectivity", Printf.sprintf "%.17g" op.Operator.output_selectivity) ]
           else []);
          (if op.Operator.replicas <> 1 then
             [ ("replicas", string_of_int op.Operator.replicas) ]
           else []);
          (match op.Operator.kind with
          | Operator.Partitioned_stateful keys ->
              [
                ( "keys",
                  Discrete.probs keys |> Array.to_list
                  |> List.map (Printf.sprintf "%.17g")
                  |> String.concat ";" );
              ]
          | Operator.Stateless | Operator.Stateful -> []);
        ]
    in
    Xml.Element ("operator", base @ optional, [])
  in
  let edge_node (u, v, p) =
    Xml.Element
      ( "edge",
        [
          ("from", string_of_int u);
          ("to", string_of_int v);
          ("probability", Printf.sprintf "%.17g" p);
        ],
        [] )
  in
  let nodes =
    List.init (Topology.size topology) (fun v ->
        operator_node v (Topology.operator topology v))
    @ List.map edge_node (Topology.edges topology)
  in
  Xml.to_string (Xml.Element ("topology", [], nodes))
