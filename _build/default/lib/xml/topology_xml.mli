(** The SpinStreams XML topology formalism (paper §4.1): operators with
    their profiling measures, and probabilistic edges.

    Document shape:
    {v
    <topology>
      <operator id="0" name="source" class="source" type="stateless"
                service_time="det:0.001"/>
      <operator id="1" name="agg" class="sum_w1000_s10" type="partitioned"
                service_time="exp:0.004" input_selectivity="10"
                output_selectivity="1" replicas="2"
                keys="zipf:1.2:64"/>
      <edge from="0" to="1" probability="1.0"/>
    </topology>
    v}

    [service_time] uses the {!Ss_prelude.Dist.of_string} syntax (the mean
    becomes the descriptor's service time). [type] is [stateless],
    [stateful] or [partitioned]; partitioned operators carry [keys], either
    ["zipf:<alpha>:<groups>"] or an explicit [";"]-separated weight list.
    [class] names the executable behavior (defaults to [name]);
    [input_selectivity], [output_selectivity] and [replicas] default to 1. *)

val parse_raw :
  string ->
  (Ss_topology.Operator.t array * (int * int * float) list, string) result
(** Parse the document into the operator table and edge list {e without}
    building the topology — the entry point for consumers with relaxed
    structural requirements, such as multi-source unification
    ({!Ss_core.Multi_source.unify}). Attribute-level validation (ids,
    distributions, kinds, selectivities) still applies. *)

val of_string : string -> (Ss_topology.Topology.t, string) result
(** Parse and validate a topology document. All {!Ss_topology.Topology}
    invariants are enforced; id gaps, duplicate ids and malformed attributes
    are reported with context. *)

val to_string : Ss_topology.Topology.t -> string
(** Render a topology; [of_string] of the result reconstructs an identical
    topology (service distributions included). The [class] attribute is
    emitted as the operator name with any ["#vertex"] suffix removed (the
    convention of {!Ss_workload.Random_topology.behavior_name}); on input it
    is informational and ignored. *)
