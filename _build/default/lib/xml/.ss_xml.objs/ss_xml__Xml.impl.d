lib/xml/xml.ml: Buffer Char List Option Printf String
