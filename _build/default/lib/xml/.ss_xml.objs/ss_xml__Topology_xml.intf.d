lib/xml/topology_xml.mli: Ss_topology
