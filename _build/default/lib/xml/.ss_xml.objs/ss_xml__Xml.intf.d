lib/xml/xml.mli:
