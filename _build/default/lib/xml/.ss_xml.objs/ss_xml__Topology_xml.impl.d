lib/xml/topology_xml.ml: Array Discrete Dist List Operator Option Printf Result Ss_prelude Ss_topology String Topology Xml
