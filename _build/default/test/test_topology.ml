(* Tests for the topology graph model: validation, orders, paths and
   contraction. *)

open Ss_topology

let op ?kind ?input_selectivity ?output_selectivity name ms =
  Operator.make ?kind ?input_selectivity ?output_selectivity
    ~service_time:(ms /. 1e3) name

let check_error expected result =
  match result with
  | Ok _ -> Alcotest.failf "expected error %s" expected
  | Error e ->
      Alcotest.(check string) "error constructor" expected
        (match e with
        | Topology.Empty_topology -> "Empty_topology"
        | Topology.Duplicate_operator_name _ -> "Duplicate_operator_name"
        | Topology.Invalid_vertex _ -> "Invalid_vertex"
        | Topology.Self_loop _ -> "Self_loop"
        | Topology.Duplicate_edge _ -> "Duplicate_edge"
        | Topology.Invalid_probability _ -> "Invalid_probability"
        | Topology.Unnormalized_probabilities _ -> "Unnormalized_probabilities"
        | Topology.No_source -> "No_source"
        | Topology.Multiple_sources _ -> "Multiple_sources"
        | Topology.Cyclic _ -> "Cyclic"
        | Topology.Unreachable _ -> "Unreachable")

(* ------------------------------------------------------------------ *)
(* Operator invariants *)

let test_operator_validation () =
  Alcotest.check_raises "zero service time"
    (Invalid_argument "Operator.make: service_time must be positive") (fun () ->
      ignore (Operator.make ~service_time:0.0 "x"));
  Alcotest.check_raises "stateful replicated"
    (Invalid_argument "Operator.make: a stateful operator cannot be replicated")
    (fun () ->
      ignore
        (Operator.make ~kind:Operator.Stateful ~replicas:2 ~service_time:1.0 "x"));
  Alcotest.check_raises "bad selectivity"
    (Invalid_argument "Operator.make: input_selectivity must be positive")
    (fun () ->
      ignore (Operator.make ~input_selectivity:0.0 ~service_time:1.0 "x"))

let test_operator_rates () =
  let o = op "x" 2.0 in
  Alcotest.(check (float 1e-9)) "rate" 500.0 (Operator.service_rate o);
  let o3 = Operator.with_replicas o 3 in
  Alcotest.(check (float 1e-9)) "effective rate" 1500.0
    (Operator.effective_service_rate o3);
  Alcotest.(check bool) "stateless can replicate" true (Operator.can_replicate o)

let test_operator_with_service_time_rescales_dist () =
  let o =
    Operator.make ~dist:(Ss_prelude.Dist.Exponential 1e-3) ~service_time:1e-3 "x"
  in
  let o' = Operator.with_service_time o 2e-3 in
  Alcotest.(check (float 1e-12)) "dist mean follows" 2e-3
    (Ss_prelude.Dist.mean o'.Operator.service_dist)

let test_operator_dist_mismatch_rejected () =
  Alcotest.check_raises "inconsistent dist"
    (Invalid_argument
       "Operator.make: service_dist mean inconsistent with service_time")
    (fun () ->
      ignore
        (Operator.make ~dist:(Ss_prelude.Dist.Exponential 2e-3) ~service_time:1e-3
           "x"))

(* ------------------------------------------------------------------ *)
(* Validation *)

let test_valid_chain () =
  let t = Fixtures.pipeline [ 1.0; 0.5; 0.2 ] in
  Alcotest.(check int) "size" 3 (Topology.size t);
  Alcotest.(check int) "edges" 2 (Topology.num_edges t);
  Alcotest.(check int) "source" 0 (Topology.source t);
  Alcotest.(check (list int)) "sinks" [ 2 ] (Topology.sinks t)

let test_rejects_empty () = check_error "Empty_topology" (Topology.create [||] [])

let test_rejects_duplicate_names () =
  check_error "Duplicate_operator_name"
    (Topology.create [| op "a" 1.0; op "a" 1.0 |] [ (0, 1, 1.0) ])

let test_rejects_unknown_vertex () =
  check_error "Invalid_vertex"
    (Topology.create [| op "a" 1.0; op "b" 1.0 |] [ (0, 2, 1.0) ])

let test_rejects_self_loop () =
  check_error "Self_loop"
    (Topology.create [| op "a" 1.0; op "b" 1.0 |] [ (0, 1, 1.0); (1, 1, 1.0) ])

let test_rejects_duplicate_edge () =
  check_error "Duplicate_edge"
    (Topology.create [| op "a" 1.0; op "b" 1.0 |] [ (0, 1, 0.5); (0, 1, 0.5) ])

let test_rejects_bad_probability () =
  check_error "Invalid_probability"
    (Topology.create [| op "a" 1.0; op "b" 1.0 |] [ (0, 1, 0.0) ]);
  check_error "Invalid_probability"
    (Topology.create [| op "a" 1.0; op "b" 1.0 |] [ (0, 1, 1.5) ])

let test_rejects_unnormalized () =
  check_error "Unnormalized_probabilities"
    (Topology.create
       [| op "a" 1.0; op "b" 1.0; op "c" 1.0 |]
       [ (0, 1, 0.5); (0, 2, 0.2); (1, 2, 1.0) ])

let test_rejects_cycle () =
  check_error "Cyclic"
    (Topology.create
       [| op "s" 1.0; op "a" 1.0; op "b" 1.0 |]
       [ (0, 1, 1.0); (1, 2, 1.0); (2, 1, 1.0) ]);
  (* A pure 2-cycle with a detached source-looking vertex. *)
  check_error "Cyclic"
    (Topology.create
       [| op "s" 1.0; op "a" 1.0; op "b" 1.0 |]
       [ (1, 2, 1.0); (2, 1, 1.0) ])

let test_rejects_multiple_sources () =
  check_error "Multiple_sources"
    (Topology.create
       [| op "s1" 1.0; op "s2" 1.0; op "c" 1.0 |]
       [ (0, 2, 1.0); (1, 2, 1.0) ])

let test_probability_renormalized_exactly () =
  (* Inputs within tolerance are snapped to an exact unit sum. *)
  let t =
    Topology.create_exn
      [| op "s" 1.0; op "a" 1.0; op "b" 1.0 |]
      [ (0, 1, 0.3000001); (0, 2, 0.7) ]
  in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 (Topology.succs t 0) in
  Alcotest.(check (float 1e-12)) "sums to exactly 1" 1.0 total

(* ------------------------------------------------------------------ *)
(* Accessors, order, paths *)

let test_adjacency_views_agree () =
  let t = Fixtures.table1 () in
  List.iter
    (fun (u, v, p) ->
      Alcotest.(check (option (float 1e-12)))
        (Printf.sprintf "edge %d->%d" u v)
        (Some p)
        (Topology.edge_probability t ~src:u ~dst:v);
      Alcotest.(check bool) "pred view" true
        (List.mem_assoc u (Topology.preds t v)))
    (Topology.edges t);
  Alcotest.(check int) "edge count" 8 (Topology.num_edges t)

let test_topological_order_is_valid () =
  let t = Fixtures.table1 () in
  let order = Topology.topological_order t in
  let position = Array.make (Topology.size t) 0 in
  Array.iteri (fun i v -> position.(v) <- i) order;
  List.iter
    (fun (u, v, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "%d before %d" u v)
        true
        (position.(u) < position.(v)))
    (Topology.edges t);
  Alcotest.(check int) "starts at source" (Topology.source t) order.(0)

let test_paths_to_sink () =
  let t = Fixtures.table1 () in
  let paths = Topology.paths_to t 5 in
  (* Four ways to reach op6: via 2; via 3-4; via 3-5-4; via 3-5. *)
  Alcotest.(check int) "path count" 4 (List.length paths);
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 paths in
  Alcotest.(check (float 1e-9)) "paths partition the flow" 1.0 total

let test_visit_ratio_matches_paths () =
  let t = Fixtures.table1 () in
  let ratio = Topology.visit_ratio t in
  List.iter
    (fun v ->
      let by_paths =
        List.fold_left (fun acc (_, p) -> acc +. p) 0.0 (Topology.paths_to t v)
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "vertex %d" v)
        by_paths ratio.(v))
    (List.init (Topology.size t) Fun.id)

let test_find_by_name () =
  let t = Fixtures.table1 () in
  Alcotest.(check (option int)) "found" (Some 3) (Topology.find_by_name t "op4");
  Alcotest.(check (option int)) "missing" None (Topology.find_by_name t "nope")

let test_degrees () =
  let t = Fixtures.table1 () in
  Alcotest.(check int) "out of source" 2 (Topology.out_degree t 0);
  Alcotest.(check int) "in of op6" 3 (Topology.in_degree t 5);
  Alcotest.(check bool) "op6 is sink" true (Topology.is_sink t 5);
  Alcotest.(check bool) "source not sink" false (Topology.is_sink t 0)

(* ------------------------------------------------------------------ *)
(* Transformations *)

let test_with_operator () =
  let t = Fixtures.pipeline [ 1.0; 0.5 ] in
  let t' = Topology.with_operator t 1 (op "renamed" 0.7) in
  Alcotest.(check string) "name changed" "renamed"
    (Topology.operator t' 1).Operator.name;
  Alcotest.(check string) "original untouched" "stage1"
    (Topology.operator t 1).Operator.name

let test_map_operators_preserves_structure () =
  let t = Fixtures.table1 () in
  let t' =
    Topology.map_operators t (fun _ o -> Operator.with_service_time o 1e-3)
  in
  Alcotest.(check int) "same edges" (Topology.num_edges t) (Topology.num_edges t');
  Alcotest.(check (float 1e-12)) "service time updated" 1e-3
    (Topology.operator t' 3).Operator.service_time

let test_front_end_detection () =
  let t = Fixtures.table1 () in
  (match Topology.front_end_of t [ 2; 3; 4 ] with
  | Ok fe -> Alcotest.(check int) "front-end is op3" 2 fe
  | Error e -> Alcotest.fail e);
  (match Topology.front_end_of t [ 3; 4 ] with
  | Ok _ -> Alcotest.fail "two entry points expected"
  | Error _ -> ());
  (match Topology.front_end_of t [ 0; 1 ] with
  | Ok _ -> Alcotest.fail "source must be rejected"
  | Error _ -> ());
  match Topology.front_end_of t [] with
  | Ok _ -> Alcotest.fail "empty set"
  | Error _ -> ()

let test_contract_basic () =
  let t = Fixtures.table1 () in
  match Topology.contract t ~keep_name:"F" [ 2; 3; 4 ] with
  | Error e -> Alcotest.fail e
  | Ok (t', f) ->
      Alcotest.(check int) "four vertices" 4 (Topology.size t');
      let fop = Topology.operator t' f in
      Alcotest.(check string) "name" "F" fop.Operator.name;
      Alcotest.(check (float 1e-12)) "expected work" 2.8e-3
        fop.Operator.service_time;
      Alcotest.(check (float 1e-12)) "unit exit selectivity" 1.0
        fop.Operator.output_selectivity;
      (* Incoming edge keeps its probability. *)
      let src_new = Topology.source t' in
      Alcotest.(check (option (float 1e-12))) "entry probability" (Some 0.3)
        (Topology.edge_probability t' ~src:src_new ~dst:f)

let test_contract_with_internal_sink () =
  (* src -> a -> b, a -> c; fuse {a, b}: items exiting via b are none (b is a
     sink) so the meta-operator keeps only the a->c edge flow. *)
  let t =
    Topology.create_exn
      [| op "src" 1.0; op "a" 0.2; op "b" 0.3; op "c" 0.1 |]
      [ (0, 1, 1.0); (1, 2, 0.6); (1, 3, 0.4) ]
  in
  match Topology.contract t ~keep_name:"ab" [ 1; 2 ] with
  | Error e -> Alcotest.fail e
  | Ok (t', f) ->
      let fop = Topology.operator t' f in
      (* Work: a always, b with probability 0.6. *)
      Alcotest.(check (float 1e-12)) "expected work"
        ((0.2 +. (0.6 *. 0.3)) /. 1e3)
        fop.Operator.service_time;
      (* 40% of the items leave the fused region. *)
      Alcotest.(check (float 1e-12)) "exit selectivity" 0.4
        fop.Operator.output_selectivity;
      (match Topology.succs t' f with
      | [ (_, p) ] -> Alcotest.(check (float 1e-12)) "renormalized" 1.0 p
      | _ -> Alcotest.fail "expected a single out-edge")

let test_contract_cycle_rejected () =
  let t =
    Topology.create_exn
      [| op "src" 1.0; op "a" 0.2; op "b" 0.3; op "c" 0.1 |]
      [ (0, 1, 1.0); (1, 2, 0.5); (1, 3, 0.5); (2, 3, 1.0) ]
  in
  match Topology.contract t ~keep_name:"F" [ 1; 3 ] with
  | Ok _ -> Alcotest.fail "expected cycle error"
  | Error e ->
      Alcotest.(check bool) "explains the failure" true
        (String.length e > 0)

let test_contract_selectivity_weighting () =
  (* A filter inside the fused region scales downstream work and exits. *)
  let ops =
    [|
      op "src" 1.0;
      op ~output_selectivity:0.5 "filter" 0.2;
      op "work" 1.0;
      op "sink" 0.1;
    |]
  in
  let t =
    Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]
  in
  match Topology.contract t ~keep_name:"F" [ 1; 2 ] with
  | Error e -> Alcotest.fail e
  | Ok (t', f) ->
      let fop = Topology.operator t' f in
      (* Half the items reach the heavy stage. *)
      Alcotest.(check (float 1e-12)) "work" ((0.2 +. 0.5) /. 1e3)
        fop.Operator.service_time;
      Alcotest.(check (float 1e-12)) "selectivity" 0.5
        fop.Operator.output_selectivity

(* ------------------------------------------------------------------ *)
(* Builder *)

let test_builder_chain () =
  let b = Builder.create () in
  let s = Builder.add b (op "s" 1.0) in
  let a = Builder.add b (op "a" 0.5) in
  let c = Builder.add b (op "c" 0.2) in
  Builder.chain b [ s; a; c ];
  let t = Builder.finish_exn b in
  Alcotest.(check int) "size" 3 (Topology.size t);
  Alcotest.(check (option (float 1e-12))) "chain edge" (Some 1.0)
    (Topology.edge_probability t ~src:(Builder.vertex_id s)
       ~dst:(Builder.vertex_id a))

let test_builder_probabilistic_edges () =
  let b = Builder.create () in
  let s = Builder.add b (op "s" 1.0) in
  let x = Builder.add b (op "x" 0.5) in
  let y = Builder.add b (op "y" 0.2) in
  Builder.edge b s x ~prob:0.25;
  Builder.edge b s y ~prob:0.75;
  let t = Builder.finish_exn b in
  Alcotest.(check (option (float 1e-12))) "prob kept" (Some 0.25)
    (Topology.edge_probability t ~src:0 ~dst:1)

let test_builder_error_propagates () =
  let b = Builder.create () in
  let s = Builder.add b (op "s" 1.0) in
  let x = Builder.add b (op "x" 0.5) in
  Builder.edge b s x ~prob:0.5;
  match Builder.finish b with
  | Ok _ -> Alcotest.fail "expected unnormalized error"
  | Error (Topology.Unnormalized_probabilities _) -> ()
  | Error e -> Alcotest.failf "unexpected error %s" (Topology.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let test_dot_output () =
  let t = Fixtures.pipeline [ 1.0; 0.5 ] in
  let dot = Topology.to_dot t in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "mentions stages" true
    (let contains needle =
       let nl = String.length needle and hl = String.length dot in
       let rec go i = i + nl <= hl && (String.sub dot i nl = needle || go (i + 1)) in
       go 0
     in
     contains "stage0" && contains "stage1" && contains "->")

(* ------------------------------------------------------------------ *)
(* Properties *)

let arbitrary_dag =
  (* (n, seed) -> random layered DAG built with the library's own RNG. *)
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 2 15) (int_range 0 10_000))

let build_random_dag (n, seed) =
  let rng = Ss_prelude.Rng.create seed in
  let ops = Array.init n (fun i -> op (Printf.sprintf "v%d" i) 1.0) in
  let edges = ref [] in
  for j = 1 to n - 1 do
    let deg = 1 + Ss_prelude.Rng.int rng (min j 3) in
    let srcs = ref [] in
    while List.length !srcs < deg do
      let s = Ss_prelude.Rng.int rng j in
      if not (List.mem s !srcs) then srcs := s :: !srcs
    done;
    List.iter (fun s -> edges := (s, j, 1.0) :: !edges) !srcs
  done;
  let out_count = Array.make n 0 in
  List.iter (fun (i, _, _) -> out_count.(i) <- out_count.(i) + 1) !edges;
  let edges =
    List.map (fun (i, j, _) -> (i, j, 1.0 /. float_of_int out_count.(i))) !edges
  in
  Topology.create ops edges

let prop_random_dags_valid =
  QCheck.Test.make ~name:"random layered DAGs validate" ~count:500 arbitrary_dag
    (fun spec -> match build_random_dag spec with Ok _ -> true | Error _ -> false)

let prop_topo_order_respects_edges =
  QCheck.Test.make ~name:"topological order respects all edges" ~count:500
    arbitrary_dag (fun spec ->
      match build_random_dag spec with
      | Error _ -> false
      | Ok t ->
          let order = Topology.topological_order t in
          let position = Array.make (Topology.size t) 0 in
          Array.iteri (fun i v -> position.(v) <- i) order;
          List.for_all
            (fun (u, v, _) -> position.(u) < position.(v))
            (Topology.edges t))

let prop_visit_ratio_sinks_sum_to_one =
  QCheck.Test.make
    ~name:"visit ratios of sinks sum to 1 (flow partition)" ~count:500
    arbitrary_dag (fun spec ->
      match build_random_dag spec with
      | Error _ -> false
      | Ok t ->
          let ratio = Topology.visit_ratio t in
          let total =
            List.fold_left (fun acc v -> acc +. ratio.(v)) 0.0 (Topology.sinks t)
          in
          Float.abs (total -. 1.0) < 1e-9)

let prop_contract_preserves_external_vertices =
  QCheck.Test.make ~name:"contraction keeps external operators" ~count:300
    arbitrary_dag (fun spec ->
      match build_random_dag spec with
      | Error _ -> false
      | Ok t ->
          (* Contract a random sink's predecessors-closure of size 2 if legal;
             otherwise trivially pass. *)
          let n = Topology.size t in
          if n < 4 then true
          else
            let vs = [ n - 2; n - 1 ] in
            (match Topology.contract t ~keep_name:"F" vs with
            | Error _ -> true
            | Ok (t', _) ->
                let names t =
                  Array.to_list (Topology.operators t)
                  |> List.map (fun o -> o.Operator.name)
                in
                let kept =
                  List.filter
                    (fun name ->
                      name <> Printf.sprintf "v%d" (n - 2)
                      && name <> Printf.sprintf "v%d" (n - 1))
                    (names t)
                in
                List.for_all (fun o -> List.mem o (names t')) kept))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "ss_topology"
    [
      ( "operator",
        [
          quick "validation" test_operator_validation;
          quick "rates" test_operator_rates;
          quick "service time rescaling" test_operator_with_service_time_rescales_dist;
          quick "dist mismatch rejected" test_operator_dist_mismatch_rejected;
        ] );
      ( "validation",
        [
          quick "valid chain" test_valid_chain;
          quick "empty rejected" test_rejects_empty;
          quick "duplicate names" test_rejects_duplicate_names;
          quick "unknown vertex" test_rejects_unknown_vertex;
          quick "self loop" test_rejects_self_loop;
          quick "duplicate edge" test_rejects_duplicate_edge;
          quick "bad probability" test_rejects_bad_probability;
          quick "unnormalized probabilities" test_rejects_unnormalized;
          quick "cycles" test_rejects_cycle;
          quick "multiple sources" test_rejects_multiple_sources;
          quick "renormalization" test_probability_renormalized_exactly;
        ] );
      ( "accessors",
        [
          quick "adjacency views" test_adjacency_views_agree;
          quick "topological order" test_topological_order_is_valid;
          quick "paths to sink" test_paths_to_sink;
          quick "visit ratio matches paths" test_visit_ratio_matches_paths;
          quick "find by name" test_find_by_name;
          quick "degrees and sinks" test_degrees;
        ] );
      ( "transform",
        [
          quick "with_operator" test_with_operator;
          quick "map_operators" test_map_operators_preserves_structure;
          quick "front-end detection" test_front_end_detection;
          quick "contract fig11 sub-graph" test_contract_basic;
          quick "contract with internal sink" test_contract_with_internal_sink;
          quick "contract cycle rejected" test_contract_cycle_rejected;
          quick "contract selectivity weighting" test_contract_selectivity_weighting;
        ] );
      ( "builder",
        [
          quick "chain" test_builder_chain;
          quick "probabilistic edges" test_builder_probabilistic_edges;
          quick "error propagation" test_builder_error_propagates;
        ] );
      ("rendering", [ quick "dot output" test_dot_output ]);
      ( "properties",
        [
          prop prop_random_dags_valid;
          prop prop_topo_order_respects_edges;
          prop prop_visit_ratio_sinks_sum_to_one;
          prop prop_contract_preserves_external_vertices;
        ] );
    ]
