(* Tests for the discrete-event simulator: BAS blocking semantics, routing,
   selectivity, replicas, and agreement with the analytical cost model. *)

open Ss_topology
open Ss_core
open Ss_sim

let quick_config =
  { Engine.default_config with Engine.warmup = 2.0; Engine.measure = 10.0 }

let check_close ?(tol = 0.02) what expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.2f within %.1f%%, got %.2f" what expected
       (tol *. 100.0) actual)
    true
    (Float.abs (actual -. expected) <= tol *. Float.max 1.0 (Float.abs expected))

(* ------------------------------------------------------------------ *)
(* Basic throughput *)

let test_unconstrained_pipeline () =
  let t = Fixtures.pipeline [ 1.0; 0.5; 0.8 ] in
  let r = Engine.run ~config:quick_config t in
  check_close "throughput" 1000.0 r.Engine.throughput;
  check_close "sink keeps up" 1000.0 r.Engine.stats.(2).Engine.departure_rate

let test_bottleneck_pipeline () =
  let t = Fixtures.pipeline [ 1.0; 4.0; 0.8 ] in
  let r = Engine.run ~config:quick_config t in
  check_close "throttled to bottleneck" 250.0 r.Engine.throughput;
  check_close "bottleneck saturated" 1.0 r.Engine.stats.(1).Engine.busy_fraction
    ~tol:0.02;
  check_close "source idles under backpressure" 0.25
    r.Engine.stats.(0).Engine.busy_fraction ~tol:0.05

let test_diamond_weighted () =
  let t = Fixtures.diamond ~pa:0.3 ~t_src:1.0 ~t_a:5.0 ~t_b:0.5 ~t_sink:0.1 in
  let r = Engine.run ~config:quick_config t in
  check_close "throughput" (200.0 /. 0.3) r.Engine.throughput ~tol:0.03

let test_fig11_measured_vs_predicted () =
  let t = Fixtures.table1 () in
  let predicted = Steady_state.analyze t in
  let r = Engine.run ~config:quick_config t in
  check_close "topology throughput" predicted.Steady_state.throughput
    r.Engine.throughput ~tol:0.02;
  (* Per-operator departure rates within a few percent (paper Fig. 8). *)
  Array.iteri
    (fun v m ->
      check_close
        (Printf.sprintf "operator %d departure" v)
        m.Steady_state.departure_rate
        r.Engine.stats.(v).Engine.departure_rate ~tol:0.05)
    predicted.Steady_state.metrics

let test_table2_fused_measured () =
  let t = Fixtures.table2 () in
  match Fusion.apply t [ 2; 3; 4 ] with
  | Error e -> Alcotest.fail e
  | Ok o ->
      let r = Engine.run ~config:quick_config o.Fusion.topology in
      (* Paper: predicted 760, measured 753. *)
      check_close "fused topology throughput"
        o.Fusion.after.Steady_state.throughput r.Engine.throughput ~tol:0.03

(* ------------------------------------------------------------------ *)
(* Selectivity *)

let test_output_selectivity_flatmap () =
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:0.1e-3 ~output_selectivity:3.0 "flatmap";
      Operator.make ~service_time:0.2e-3 "sink";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let r = Engine.run ~config:quick_config t in
  check_close "flatmap triples the stream" 3000.0
    r.Engine.stats.(1).Engine.departure_rate;
  check_close "sink sees 3000/s" 3000.0 r.Engine.stats.(2).Engine.arrival_rate

let test_input_selectivity_window () =
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:0.5e-3 ~input_selectivity:10.0 "window";
      Operator.make ~service_time:2e-3 "slow_sink";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let r = Engine.run ~config:quick_config t in
  check_close "window divides by 10" 100.0
    r.Engine.stats.(1).Engine.departure_rate;
  check_close "no backpressure from the slow sink" 1000.0 r.Engine.throughput

let test_fractional_selectivity () =
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:0.1e-3 ~output_selectivity:0.5 "filter";
      Operator.make ~service_time:0.1e-3 "sink";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let r = Engine.run ~config:quick_config t in
  check_close "filter halves the stream" 500.0
    r.Engine.stats.(1).Engine.departure_rate

(* ------------------------------------------------------------------ *)
(* Replicas *)

let test_stateless_replicas_remove_bottleneck () =
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:4e-3 ~replicas:4 "worker";
      Operator.make ~service_time:0.2e-3 "sink";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let r = Engine.run ~config:quick_config t in
  check_close "4 replicas sustain the source" 1000.0 r.Engine.throughput ~tol:0.03

let test_underprovisioned_replicas () =
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:4e-3 ~replicas:2 "worker";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let r = Engine.run ~config:quick_config t in
  check_close "2 replicas give 500/s" 500.0 r.Engine.throughput ~tol:0.03

let test_partitioned_skew_capacity () =
  (* Two replicas, half the keys' mass on one group: capacity 2000/s. *)
  let keys = Ss_prelude.Discrete.of_weights [| 0.5; 0.25; 0.125; 0.125 |] in
  let ops =
    [|
      Operator.make ~service_time:(1.0 /. 3000.0) "src";
      Operator.make
        ~kind:(Operator.Partitioned_stateful keys)
        ~service_time:1e-3 ~replicas:2 "keyed";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let r = Engine.run ~config:quick_config t in
  let predicted = Steady_state.analyze t in
  check_close "skew-limited throughput" predicted.Steady_state.throughput
    r.Engine.throughput ~tol:0.05

let test_fission_plan_reaches_ideal_rate () =
  (* End-to-end: optimize a bottlenecked topology, then simulate the plan. *)
  let t = Fixtures.pipeline [ 0.5; 2.0; 0.4 ] in
  let f = Fission.optimize t in
  let r = Engine.run ~config:quick_config f.Fission.topology in
  check_close "optimized plan sustains the source" 2000.0 r.Engine.throughput
    ~tol:0.03

(* ------------------------------------------------------------------ *)
(* Engine behavior *)

let test_determinism () =
  let t = Fixtures.table1 () in
  let r1 = Engine.run ~config:quick_config t in
  let r2 = Engine.run ~config:quick_config t in
  Alcotest.(check (float 0.0)) "identical runs" r1.Engine.throughput
    r2.Engine.throughput;
  Alcotest.(check int) "identical event counts" r1.Engine.events r2.Engine.events

let test_seed_sensitivity () =
  let t = Fixtures.table1 () in
  let r1 = Engine.run ~config:quick_config t in
  let r2 =
    Engine.run ~config:{ quick_config with Engine.seed = 7 } t
  in
  (* Different random routing, same steady state. *)
  check_close "same steady state" r1.Engine.throughput r2.Engine.throughput
    ~tol:0.02

let test_replicated_source_rejected () =
  let ops =
    [|
      Operator.make ~service_time:1e-3 ~replicas:2 "src";
      Operator.make ~service_time:1e-3 "sink";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  Alcotest.check_raises "replicated source"
    (Invalid_argument "Engine.run: the source operator cannot be replicated")
    (fun () -> ignore (Engine.run ~config:quick_config t))

let test_stochastic_service_times () =
  (* Exponential service keeps the same mean rates (tolerance is wider:
     finite buffers under variance genuinely lose some throughput). *)
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~dist:(Ss_prelude.Dist.Exponential 2e-3) ~service_time:2e-3
        "stage";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let r = Engine.run ~config:quick_config t in
  check_close "M/M-ish bottleneck near 500/s" 500.0 r.Engine.throughput
    ~tol:0.10

let test_buffer_capacity_sensitivity () =
  (* Larger buffers decouple stochastic stages: throughput approaches the
     analytical bound from below. *)
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~dist:(Ss_prelude.Dist.Exponential 1.25e-3)
        ~service_time:1.25e-3 "a";
      Operator.make ~dist:(Ss_prelude.Dist.Exponential 1.25e-3)
        ~service_time:1.25e-3 "b";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let run cap =
    (Engine.run
       ~config:{ quick_config with Engine.buffer_capacity = cap }
       t)
      .Engine.throughput
  in
  let small = run 1 and large = run 128 in
  Alcotest.(check bool)
    (Printf.sprintf "cap=1 (%.0f) below cap=128 (%.0f)" small large)
    true (small < large);
  Alcotest.(check bool) "both below the analytical bound" true
    (small <= 800.0 +. 20.0 && large <= 800.0 +. 20.0)

let test_queue_stats_bottleneck () =
  (* The saturated stage's buffer stays essentially full; an underloaded
     stage's stays essentially empty. Little's law ties W to L by
     construction, so spot-check both. *)
  let t = Fixtures.pipeline [ 1.0; 4.0; 0.8 ] in
  let config = { quick_config with Engine.buffer_capacity = 8 } in
  let r = Engine.run ~config t in
  let hot = r.Engine.stats.(1) in
  let cold = r.Engine.stats.(2) in
  Alcotest.(check bool)
    (Printf.sprintf "bottleneck queue near capacity (%.2f)" hot.Engine.mean_queue_length)
    true
    (hot.Engine.mean_queue_length > 6.0);
  Alcotest.(check bool) "underloaded queue near empty" true
    (cold.Engine.mean_queue_length < 0.5);
  Alcotest.(check (float 1e-9)) "Little's law consistency"
    (hot.Engine.mean_queue_length /. hot.Engine.arrival_rate)
    hot.Engine.mean_waiting_time;
  (* ~8 queued items at 250/s service: about 32ms of buffering delay. *)
  Alcotest.(check bool)
    (Printf.sprintf "waiting time plausible (%.1f ms)"
       (hot.Engine.mean_waiting_time *. 1e3))
    true
    (hot.Engine.mean_waiting_time > 20e-3 && hot.Engine.mean_waiting_time < 40e-3)

let test_queue_stats_empty_when_idle () =
  let t = Fixtures.pipeline [ 1.0; 0.1 ] in
  let r = Engine.run ~config:quick_config t in
  Alcotest.(check bool) "fast stage queues nothing" true
    (r.Engine.stats.(1).Engine.mean_queue_length < 0.05)

let test_event_accounting () =
  let t = Fixtures.pipeline [ 1.0; 0.5 ] in
  let r = Engine.run ~config:quick_config t in
  Alcotest.(check bool) "events processed" true (r.Engine.events > 10_000);
  Alcotest.(check (float 1e-9)) "simulated time" 12.0 r.Engine.simulated_time

(* ------------------------------------------------------------------ *)
(* Model-vs-simulation agreement on random topologies (the heart of the
   paper's Fig. 7). *)

let arbitrary_spec =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 3 8) (int_range 0 1000))

let build_random (n, seed) =
  let rng = Ss_prelude.Rng.create seed in
  let ops =
    Array.init n (fun i ->
        let ms = 0.2 +. Ss_prelude.Rng.float rng *. 3.0 in
        Operator.make ~service_time:(ms /. 1e3) (Printf.sprintf "v%d" i))
  in
  let edges = ref [] in
  for j = 1 to n - 1 do
    let s = Ss_prelude.Rng.int rng j in
    edges := (s, j, 1.0) :: !edges
  done;
  let out_count = Array.make n 0 in
  List.iter (fun (i, _, _) -> out_count.(i) <- out_count.(i) + 1) !edges;
  let edges =
    List.map (fun (i, j, _) -> (i, j, 1.0 /. float_of_int out_count.(i))) !edges
  in
  Topology.create_exn ops edges

let prop_model_matches_simulation =
  QCheck.Test.make ~name:"predicted and simulated throughput agree within 5%"
    ~count:25 arbitrary_spec (fun spec ->
      let t = build_random spec in
      let predicted = (Steady_state.analyze t).Steady_state.throughput in
      let measured =
        (Engine.run
           ~config:{ quick_config with Engine.warmup = 1.0; Engine.measure = 5.0 }
           t)
          .Engine.throughput
      in
      Float.abs (measured -. predicted) <= 0.05 *. predicted)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "ss_sim"
    [
      ( "throughput",
        [
          quick "unconstrained pipeline" test_unconstrained_pipeline;
          quick "bottleneck pipeline" test_bottleneck_pipeline;
          quick "weighted diamond" test_diamond_weighted;
          quick "fig11 measured vs predicted" test_fig11_measured_vs_predicted;
          quick "table2 fused topology" test_table2_fused_measured;
        ] );
      ( "selectivity",
        [
          quick "flatmap output selectivity" test_output_selectivity_flatmap;
          quick "window input selectivity" test_input_selectivity_window;
          quick "fractional selectivity" test_fractional_selectivity;
        ] );
      ( "replicas",
        [
          quick "stateless fission" test_stateless_replicas_remove_bottleneck;
          quick "under-provisioned replicas" test_underprovisioned_replicas;
          quick "partitioned skew" test_partitioned_skew_capacity;
          quick "fission plan end-to-end" test_fission_plan_reaches_ideal_rate;
        ] );
      ( "engine",
        [
          quick "determinism" test_determinism;
          quick "seed sensitivity" test_seed_sensitivity;
          quick "replicated source rejected" test_replicated_source_rejected;
          quick "stochastic service times" test_stochastic_service_times;
          quick "buffer capacity sensitivity" test_buffer_capacity_sensitivity;
          quick "queue stats at a bottleneck" test_queue_stats_bottleneck;
          quick "queue stats when idle" test_queue_stats_empty_when_idle;
          quick "event accounting" test_event_accounting;
        ] );
      ("properties", [ prop prop_model_matches_simulation ]);
    ]
