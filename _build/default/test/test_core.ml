(* Tests for the SpinStreams cost models: steady-state analysis
   (Algorithm 1), fission (Algorithm 2), key partitioning, and fusion
   (Algorithm 3). The headline cases are the paper's Tables 1 and 2. *)

open Ss_topology
open Ss_core

let check_float ?(eps = 1e-6) what expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6f, got %.6f" what expected actual)
    true
    (Float.abs (expected -. actual) <= eps *. Float.max 1.0 (Float.abs expected))

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let metrics analysis v = analysis.Steady_state.metrics.(v)
let rho analysis v = (metrics analysis v).Steady_state.utilization
let delta analysis v = (metrics analysis v).Steady_state.departure_rate

(* ------------------------------------------------------------------ *)
(* Steady-state analysis *)

let test_table1_original () =
  let t = Fixtures.table1 () in
  let a = Steady_state.analyze t in
  check_float "throughput" 1000.0 a.Steady_state.throughput;
  check_float "rho op2" 0.84 (rho a 1) ~eps:1e-9;
  check_float "rho op3" 0.21 (rho a 2) ~eps:1e-9;
  check_float "rho op4" 0.405 (rho a 3) ~eps:1e-9;
  check_float "rho op5" 0.225 (rho a 4) ~eps:1e-9;
  check_float "rho op6" 0.2 (rho a 5) ~eps:1e-9;
  (* Paper Table 1 delta^-1 column (ms): 1.00 1.42 3.33 4.93 6.67 1.00 *)
  check_float "delta op2" (1.0 /. 1.42857e-3) (delta a 1) ~eps:1e-4;
  check_float "delta op3" (0.3 *. 1000.0) (delta a 2);
  check_float "delta op4" 202.5 (delta a 3);
  check_float "delta op5" 150.0 (delta a 4);
  check_float "delta op6" 1000.0 (delta a 5);
  Alcotest.(check int) "no restart" 0 a.Steady_state.restarts

let test_pipeline_no_bottleneck () =
  let t = Fixtures.pipeline [ 1.0; 0.5; 0.8 ] in
  let a = Steady_state.analyze t in
  check_float "throughput" 1000.0 a.Steady_state.throughput;
  check_float "sink rate equals source rate" a.Steady_state.throughput
    a.Steady_state.sink_rate

let test_pipeline_bottleneck () =
  (* Source at 1000/s, middle stage sustains only 250/s. *)
  let t = Fixtures.pipeline [ 1.0; 4.0; 0.8 ] in
  let a = Steady_state.analyze t in
  check_float "throughput capped by bottleneck" 250.0 a.Steady_state.throughput;
  check_float "source scaling" 0.25 a.Steady_state.source_scaling;
  check_float "bottleneck saturated" 1.0 (rho a 1);
  Alcotest.(check bool) "flagged" true (metrics a 1).Steady_state.is_bottleneck;
  check_float "downstream rho" (250.0 /. 1250.0) (rho a 2)

let test_two_bottlenecks () =
  (* The farther bottleneck is stricter; two corrections are required. *)
  let t = Fixtures.pipeline [ 1.0; 2.0; 5.0 ] in
  let a = Steady_state.analyze t in
  check_float "throughput" 200.0 a.Steady_state.throughput;
  Alcotest.(check bool) "at least two restarts" true (a.Steady_state.restarts >= 2);
  check_float "stage1 rho after correction" (200.0 /. 500.0) (rho a 1);
  check_float "stage2 saturated" 1.0 (rho a 2)

let test_diamond_weighted_paths () =
  (* Bottleneck on one branch only throttles in proportion to the branch
     probability: branch a receives 30% of 1000/s but sustains 200/s. *)
  let t = Fixtures.diamond ~pa:0.3 ~t_src:1.0 ~t_a:5.0 ~t_b:0.5 ~t_sink:0.1 in
  let a = Steady_state.analyze t in
  (* lambda_a = 0.3 * delta_src = mu_a  =>  delta_src = 200 / 0.3. *)
  check_float "throughput" (200.0 /. 0.3) a.Steady_state.throughput ~eps:1e-9;
  check_float "branch a saturated" 1.0 (rho a 1);
  check_float "sink rate equals throughput" a.Steady_state.throughput
    a.Steady_state.sink_rate ~eps:1e-9

let test_sink_rate_proposition () =
  (* Proposition 3.5 on the Fig. 11 topology. *)
  let t = Fixtures.table2 () in
  let a = Steady_state.analyze t in
  check_float "source rate = sum of sink rates" a.Steady_state.throughput
    a.Steady_state.sink_rate ~eps:1e-9

let test_output_selectivity () =
  (* A flatmap doubling the stream doubles downstream arrivals. *)
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:0.2e-3 ~output_selectivity:2.0 "flatmap";
      Operator.make ~service_time:0.3e-3 "sink";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let a = Steady_state.analyze t in
  check_float "flatmap departure" 2000.0 (delta a 1);
  check_float "sink arrival" 2000.0 (metrics a 2).Steady_state.arrival_rate;
  check_float "sink rho" (2000.0 /. (1000.0 /. 0.3)) (rho a 2)

let test_input_selectivity () =
  (* A sliding window with slide 10 emits one result per 10 inputs. *)
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:0.5e-3 ~input_selectivity:10.0 "window";
      Operator.make ~service_time:2e-3 "slow_sink";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let a = Steady_state.analyze t in
  check_float "window departure" 100.0 (delta a 1);
  (* 100/s into a 500/s sink: no bottleneck despite the slow sink. *)
  check_float "throughput" 1000.0 a.Steady_state.throughput;
  check_float "sink rho" 0.2 (rho a 2)

let test_selectivity_upstream_of_bottleneck () =
  (* The bottleneck check happens on post-selectivity arrival rates. *)
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:0.1e-3 ~output_selectivity:3.0 "expand";
      Operator.make ~service_time:1e-3 "stage";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let a = Steady_state.analyze t in
  (* stage receives 3x the source rate and sustains 1000/s: the source is
     throttled to 1000/3. *)
  check_float "throughput" (1000.0 /. 3.0) a.Steady_state.throughput ~eps:1e-9;
  check_float "stage saturated" 1.0 (rho a 2)

let test_replicated_capacity () =
  (* A pre-replicated stateless operator has n * mu capacity. *)
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:3e-3 ~replicas:3 "worker";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let a = Steady_state.analyze t in
  check_float "throughput" 1000.0 a.Steady_state.throughput;
  check_float "worker rho" 1.0 (rho a 1)

(* ------------------------------------------------------------------ *)
(* Key partitioning *)

let keys_of weights = Ss_prelude.Discrete.of_weights weights

let test_partitioning_uniform () =
  let a = Key_partitioning.assign ~keys:(keys_of (Array.make 100 1.0)) ~rho:3.4 in
  Alcotest.(check int) "replicas" 4 a.Key_partitioning.replicas;
  Alcotest.(check bool) "near-even split" true
    (a.Key_partitioning.max_fraction <= 0.26)

let test_partitioning_paper_example () =
  (* Paper §3.2: n_opt = 3 but 50% of items share one key: the bottleneck is
     mitigated with 2 replicas and pmax = 0.5. *)
  let a =
    Key_partitioning.assign
      ~keys:(keys_of [| 0.5; 0.25; 0.125; 0.125 |])
      ~rho:3.0
  in
  Alcotest.(check int) "replicas" 2 a.Key_partitioning.replicas;
  check_float "pmax" 0.5 a.Key_partitioning.max_fraction

let test_partitioning_fewer_keys_than_replicas () =
  let a = Key_partitioning.assign ~keys:(keys_of [| 1.0; 1.0 |]) ~rho:5.0 in
  Alcotest.(check int) "capped by key count" 2 a.Key_partitioning.replicas;
  check_float "pmax" 0.5 a.Key_partitioning.max_fraction

let test_partitioning_loads_sum_to_one () =
  let keys = keys_of [| 5.0; 3.0; 2.0; 2.0; 1.0; 1.0; 1.0 |] in
  let a = Key_partitioning.assign ~keys ~rho:2.7 in
  let loads = Key_partitioning.load_per_replica a ~keys in
  check_float "loads sum to 1" 1.0 (Array.fold_left ( +. ) 0.0 loads);
  check_float "pmax is the max load" a.Key_partitioning.max_fraction
    (Array.fold_left Float.max 0.0 loads)

(* ------------------------------------------------------------------ *)
(* Fission *)

let test_fission_stateless () =
  let t = Fixtures.pipeline [ 0.5; 2.0; 0.4 ] in
  let f = Fission.optimize t in
  check_float "ideal throughput restored" 2000.0
    f.Fission.analysis.Steady_state.throughput;
  (match f.Fission.replications with
  | [ r ] ->
      Alcotest.(check int) "vertex" 1 r.Fission.vertex;
      Alcotest.(check int) "ceil(rho) replicas" 4 r.Fission.after
  | rs ->
      Alcotest.failf "expected exactly one replication, got %d" (List.length rs));
  Alcotest.(check (list int)) "no residual" [] f.Fission.residual_bottlenecks

let test_fission_exact_multiple () =
  (* rho exactly 2.0 must use 2 replicas, not 3. *)
  let t = Fixtures.pipeline [ 1.0; 2.0 ] in
  let f = Fission.optimize t in
  match f.Fission.replications with
  | [ r ] -> Alcotest.(check int) "replicas" 2 r.Fission.after
  | _ -> Alcotest.fail "expected one replication"

let test_fission_stateful_blocks () =
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~kind:Operator.Stateful ~service_time:4e-3 "state";
      Operator.make ~service_time:0.5e-3 "sink";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let f = Fission.optimize t in
  Alcotest.(check (list int)) "stateful residual" [ 1 ]
    f.Fission.residual_bottlenecks;
  check_float "throughput capped" 250.0 f.Fission.analysis.Steady_state.throughput;
  Alcotest.(check (list int)) "replica counts unchanged" []
    (List.map (fun r -> r.Fission.vertex) f.Fission.replications)

let test_fission_partitioned_skew_residual () =
  (* mu = 1000/s, lambda = 3000/s, half the load on one key: 2 replicas,
     capacity 2000/s, residual bottleneck throttles the source. *)
  let keys = keys_of [| 0.5; 0.25; 0.125; 0.125 |] in
  let ops =
    [|
      Operator.make ~service_time:(1.0 /. 3000.0) "src";
      Operator.make ~kind:(Operator.Partitioned_stateful keys)
        ~service_time:1e-3 "keyed";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let f = Fission.optimize t in
  check_float "throughput" 2000.0 f.Fission.analysis.Steady_state.throughput;
  Alcotest.(check (list int)) "residual" [ 1 ] f.Fission.residual_bottlenecks;
  match f.Fission.replications with
  | [ r ] ->
      Alcotest.(check int) "replicas" 2 r.Fission.after;
      (match r.Fission.max_fraction with
      | Some p -> check_float "pmax" 0.5 p
      | None -> Alcotest.fail "expected pmax")
  | _ -> Alcotest.fail "expected one replication"

let test_fission_partitioned_even_keys () =
  (* 60 uniform keys split exactly over ceil(3) replicas. *)
  let keys = keys_of (Array.make 60 1.0) in
  let ops =
    [|
      Operator.make ~service_time:(1.0 /. 3000.0) "src";
      Operator.make ~kind:(Operator.Partitioned_stateful keys)
        ~service_time:1e-3 "keyed";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let f = Fission.optimize t in
  check_float "ideal throughput" 3000.0 f.Fission.analysis.Steady_state.throughput;
  Alcotest.(check (list int)) "no residual" [] f.Fission.residual_bottlenecks

let test_fission_bound () =
  (* Unbounded plan needs 4 replicas on the middle stage; bound the total to
     force a proportional de-scaling (paper Fig. 10). *)
  let t = Fixtures.pipeline [ 0.5; 2.0; 0.4 ] in
  let unbounded = Fission.optimize t in
  Alcotest.(check int) "unbounded total" 6 unbounded.Fission.total_replicas;
  let bounded = Fission.optimize ~max_replicas:4 t in
  let original = (Steady_state.analyze t).Steady_state.throughput in
  Alcotest.(check bool) "bound respected" true
    (bounded.Fission.total_replicas <= 4);
  Alcotest.(check bool) "throughput de-scales but stays above original" true
    (bounded.Fission.analysis.Steady_state.throughput
       < unbounded.Fission.analysis.Steady_state.throughput
    && bounded.Fission.analysis.Steady_state.throughput > original)

let test_fission_bound_too_small () =
  let t = Fixtures.pipeline [ 0.5; 2.0; 0.4 ] in
  Alcotest.check_raises "bound below one replica per op"
    (Invalid_argument
       "Fission.optimize: max_replicas below one replica per operator")
    (fun () -> ignore (Fission.optimize ~max_replicas:2 t))

let test_fission_no_bottleneck_is_identity () =
  let t = Fixtures.pipeline [ 1.0; 0.5; 0.8 ] in
  let f = Fission.optimize t in
  Alcotest.(check (list int)) "nothing replicated" []
    (List.map (fun r -> r.Fission.vertex) f.Fission.replications);
  Alcotest.(check int) "one replica per op" (Topology.size t)
    f.Fission.total_replicas

(* ------------------------------------------------------------------ *)
(* Fusion *)

let test_fusion_table1 () =
  let t = Fixtures.table1 () in
  (* Fuse operators 3, 4, 5 of the paper = vertices 2, 3, 4. *)
  (match Fusion.service_time t [ 2; 3; 4 ] with
  | Ok ts -> check_float "T_F = 2.80 ms" 2.8e-3 ts ~eps:1e-9
  | Error e -> Alcotest.fail e);
  match Fusion.apply t [ 2; 3; 4 ] with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_float "fused service time" 2.8e-3 o.Fusion.fused_service_time
        ~eps:1e-9;
      Alcotest.(check bool) "no new bottleneck" false o.Fusion.creates_bottleneck;
      check_float "throughput preserved" 1.0 o.Fusion.throughput_ratio ~eps:1e-9;
      check_float "rho_F" 0.84
        o.Fusion.after.Steady_state.metrics.(o.Fusion.fused_vertex)
          .Steady_state.utilization ~eps:1e-9;
      Alcotest.(check int) "four operators remain" 4
        (Topology.size o.Fusion.topology)

let test_fusion_table2 () =
  let t = Fixtures.table2 () in
  (match Fusion.service_time t [ 2; 3; 4 ] with
  | Ok ts -> check_float "T_F = 4.4225 ms" 4.4225e-3 ts ~eps:1e-9
  | Error e -> Alcotest.fail e);
  match Fusion.apply t [ 2; 3; 4 ] with
  | Error e -> Alcotest.fail e
  | Ok o ->
      Alcotest.(check bool) "creates a bottleneck" true
        o.Fusion.creates_bottleneck;
      (* Predicted throughput about 754/s (the paper rounds to 760). *)
      check_float "throughput after" (1000.0 /. (0.3 *. 4.4225))
        o.Fusion.after.Steady_state.throughput ~eps:1e-6;
      Alcotest.(check bool) "ratio reports the degradation" true
        (o.Fusion.throughput_ratio < 0.8)

let test_fusion_chain_service_time () =
  (* On a linear chain the fused service time is the plain sum. *)
  let t = Fixtures.pipeline [ 1.0; 0.3; 0.4; 0.5 ] in
  match Fusion.service_time t [ 1; 2; 3 ] with
  | Ok ts -> check_float "sum of stages" 1.2e-3 ts ~eps:1e-9
  | Error e -> Alcotest.fail e

let test_fusion_requires_single_front_end () =
  let t = Fixtures.diamond ~pa:0.5 ~t_src:1.0 ~t_a:1.0 ~t_b:1.0 ~t_sink:0.5 in
  (* Both branch heads receive edges from outside {a, b}. *)
  match Fusion.apply t [ 1; 2 ] with
  | Ok _ -> Alcotest.fail "expected a front-end error"
  | Error e ->
      Alcotest.(check bool) "mentions front-end" true
        (contains_substring ~needle:"front-end" e)

let test_fusion_rejects_source () =
  let t = Fixtures.pipeline [ 1.0; 0.5 ] in
  match Fusion.apply t [ 0; 1 ] with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ()

let test_fusion_rejects_cycle_creation () =
  (* Fusing {a, sink} in src -> a -> b -> sink, a -> sink would be fine, but
     fusing {a, sink} when b sits between them creates F -> b -> F. *)
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:0.1e-3 "a";
      Operator.make ~service_time:0.1e-3 "b";
      Operator.make ~service_time:0.1e-3 "sink";
    |]
  in
  let t =
    Topology.create_exn ops
      [ (0, 1, 1.0); (1, 2, 0.5); (1, 3, 0.5); (2, 3, 1.0) ]
  in
  match Fusion.apply t [ 1; 3 ] with
  | Ok _ -> Alcotest.fail "expected cycle rejection"
  | Error e ->
      Alcotest.(check bool) "mentions invalid topology" true
        (String.length e > 0)

let test_fusion_preserves_downstream_probabilities () =
  let t = Fixtures.table1 () in
  match Fusion.apply t [ 2; 3; 4 ] with
  | Error e -> Alcotest.fail e
  | Ok o ->
      let fused = o.Fusion.topology in
      let f = o.Fusion.fused_vertex in
      (* All sub-graph exits lead to op6. *)
      (match Topology.succs fused f with
      | [ (w, p) ] ->
          check_float "merged exit probability" 1.0 p;
          Alcotest.(check string) "exit target" "op6"
            (Topology.operator fused w).Operator.name
      | l -> Alcotest.failf "expected one out-edge, got %d" (List.length l));
      (* The meta-operator is stateful: fission must never replicate it. *)
      Alcotest.(check bool) "meta-operator is stateful" true
        (not (Operator.can_replicate (Topology.operator fused f)))

let test_fusion_candidates_ranked () =
  let t = Fixtures.table1 () in
  let cands = Fusion.candidates t in
  Alcotest.(check bool) "some candidates" true (List.length cands > 0);
  (* Ranking is by increasing mean utilization. *)
  let utils = List.map snd cands in
  Alcotest.(check bool) "sorted ascending" true
    (List.sort compare utils = utils);
  (* The paper's {3,4,5} sub-graph must be among the proposals. *)
  Alcotest.(check bool) "paper candidate present" true
    (List.exists (fun (vs, _) -> List.sort compare vs = [ 2; 3; 4 ]) cands)

(* ------------------------------------------------------------------ *)
(* Extensions: multi-source unification and automated fusion *)

let ms x = x /. 1e3

let test_multi_source_unify () =
  (* Two sources at 1000/s and 2000/s feeding a shared stage. *)
  let ops =
    [|
      Operator.make ~service_time:(ms 1.0) "s1";
      Operator.make ~service_time:(ms 0.5) "s2";
      Operator.make ~service_time:(ms 0.1) "stage";
    |]
  in
  match Multi_source.unify ops [ (0, 2, 1.0); (1, 2, 1.0) ] with
  | Error e -> Alcotest.fail e
  | Ok (t, remap) ->
      Alcotest.(check int) "root added" 4 (Topology.size t);
      Alcotest.(check string) "root name" Multi_source.root_name
        (Topology.operator t 0).Operator.name;
      Alcotest.(check (array int)) "remap shifts by one" [| 1; 2; 3 |] remap;
      let a = Steady_state.analyze t in
      check_float "combined throughput" 3000.0 a.Steady_state.throughput;
      (* Each source ingests exactly its nominal rate. *)
      (match Multi_source.throughput_per_source t a with
      | [ (v1, r1); (v2, r2) ] ->
          Alcotest.(check (list int)) "source vertices" [ 1; 2 ] [ v1; v2 ];
          check_float "s1 rate" 1000.0 r1;
          check_float "s2 rate" 2000.0 r2
      | l -> Alcotest.failf "expected two sources, got %d" (List.length l))

let test_multi_source_proportional_throttling () =
  (* A downstream bottleneck at 1200/s throttles both sources by the same
     factor (the canonical resolution of the ambiguity noted in §3.1). *)
  let ops =
    [|
      Operator.make ~service_time:(ms 1.0) "s1";
      Operator.make ~service_time:(ms 0.5) "s2";
      Operator.make ~kind:Operator.Stateful ~service_time:(ms (1.0 /. 1.2)) "slow";
    |]
  in
  match Multi_source.unify ops [ (0, 2, 1.0); (1, 2, 1.0) ] with
  | Error e -> Alcotest.fail e
  | Ok (t, _) ->
      let a = Steady_state.analyze t in
      check_float "throughput capped" 1200.0 a.Steady_state.throughput ~eps:1e-9;
      (match Multi_source.throughput_per_source t a with
      | [ (_, r1); (_, r2) ] ->
          check_float "s1 throttled to 40%" 400.0 r1 ~eps:1e-9;
          check_float "s2 throttled to 40%" 800.0 r2 ~eps:1e-9
      | _ -> Alcotest.fail "expected two sources");
      (* The simulator agrees with the proportional split. *)
      let config =
        { Ss_sim.Engine.default_config with Ss_sim.Engine.warmup = 2.0; measure = 10.0 }
      in
      let r = Ss_sim.Engine.run ~config t in
      Alcotest.(check bool) "measured near 1200" true
        (Float.abs (r.Ss_sim.Engine.throughput -. 1200.0) < 40.0)

let test_multi_source_single_source_ok () =
  let ops =
    [| Operator.make ~service_time:(ms 1.0) "s"; Operator.make ~service_time:(ms 0.5) "t" |]
  in
  match Multi_source.unify ops [ (0, 1, 1.0) ] with
  | Error e -> Alcotest.fail e
  | Ok (t, _) ->
      check_float "unchanged throughput" 1000.0
        (Steady_state.analyze t).Steady_state.throughput

let test_multi_source_errors () =
  let source = Operator.make ~service_time:(ms 1.0) in
  (match Multi_source.unify [||] [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty graph accepted");
  (match
     Multi_source.unify
       [| source "a"; Operator.make ~service_time:(ms 1.0) Multi_source.root_name |]
       [ (0, 1, 1.0) ]
   with
  | Error e -> Alcotest.(check bool) "reserved name" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "reserved name accepted");
  match
    Multi_source.unify
      [| Operator.make ~replicas:2 ~service_time:(ms 1.0) "a"; source "b" |]
      [ (0, 1, 1.0) ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replicated source accepted"

let test_auto_fusion_preserves_throughput_table1 () =
  let t = Fixtures.table1 () in
  let r = Fusion.auto t in
  Alcotest.(check bool) "some operators fused" true (r.Fusion.operators_saved > 0);
  check_float "throughput preserved"
    r.Fusion.initial_analysis.Steady_state.throughput
    r.Fusion.final_analysis.Steady_state.throughput ~eps:1e-9;
  (* The coarsened fig11 collapses the underutilized {op3,op4,op5} tail. *)
  Alcotest.(check int) "final size" 4 (Topology.size r.Fusion.final)

let test_auto_fusion_avoids_bottleneck_table2 () =
  (* With the Table 2 service times the full {op3,op4,op5} fusion would cost
     24% of throughput; auto must stop before that. *)
  let t = Fixtures.table2 () in
  let r = Fusion.auto t in
  check_float "throughput preserved" 1000.0
    r.Fusion.final_analysis.Steady_state.throughput ~eps:1e-9;
  Alcotest.(check bool) "still coarsened where harmless" true
    (Topology.size r.Fusion.final >= 4)

let test_auto_fusion_respects_utilization_cap () =
  let t = Fixtures.table1 () in
  let strict = Fusion.auto ~utilization_cap:0.5 t in
  Array.iter
    (fun m ->
      if m.Steady_state.name <> "op1" && m.Steady_state.name <> "op2" then
        Alcotest.(check bool)
          (Printf.sprintf "%s under cap" m.Steady_state.name)
          true
          (m.Steady_state.utilization <= 0.5 +. 1e-9
          || not (String.length m.Steady_state.name >= 10
                  && String.sub m.Steady_state.name 0 10 = "auto_fused")))
    strict.Fusion.final_analysis.Steady_state.metrics

let test_auto_fusion_no_candidate () =
  (* A two-operator pipeline at high utilization: nothing to fuse. *)
  let t = Fixtures.pipeline [ 1.0; 0.99 ] in
  let r = Fusion.auto t in
  Alcotest.(check int) "no steps" 0 (List.length r.Fusion.steps);
  Alcotest.(check int) "unchanged" 2 (Topology.size r.Fusion.final)

(* ------------------------------------------------------------------ *)
(* Latency estimation *)

let test_latency_dd1_no_waiting () =
  (* Deterministic arrivals into a deterministic, underloaded server: no
     queueing delay at all. *)
  let t = Fixtures.pipeline [ 1.0; 0.8 ] in
  let a = Steady_state.analyze t in
  let l = Latency.estimate t a in
  check_float "D/D/1 waits nothing" 0.0
    l.Latency.per_vertex.(1).Latency.waiting_time ~eps:1e-12;
  check_float "end-to-end = service time" 0.8e-3 l.Latency.end_to_end ~eps:1e-9

let test_latency_mm1_formula () =
  (* Poisson arrivals, exponential service at rho = 0.8:
     W = rho/(1-rho) * s = 4 * 0.8ms = 3.2 ms. *)
  let ops =
    [|
      Operator.make ~dist:(Ss_prelude.Dist.Exponential 1e-3) ~service_time:1e-3 "src";
      Operator.make ~dist:(Ss_prelude.Dist.Exponential 0.8e-3) ~service_time:0.8e-3
        "server";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let a = Steady_state.analyze t in
  let l = Latency.estimate t a in
  check_float "ca^2 = 1 for Poisson input" 1.0
    l.Latency.per_vertex.(1).Latency.arrival_scv ~eps:1e-9;
  check_float "M/M/1 waiting" 3.2e-3
    l.Latency.per_vertex.(1).Latency.waiting_time ~eps:1e-9

let test_latency_saturated_vertex () =
  let t = Fixtures.pipeline [ 1.0; 4.0; 0.8 ] in
  let a = Steady_state.analyze t in
  let l = Latency.estimate t a in
  Alcotest.(check bool) "saturated wait unbounded" true
    (l.Latency.per_vertex.(1).Latency.waiting_time = infinity);
  Alcotest.(check (list int)) "reported" [ 1 ] l.Latency.saturated;
  Alcotest.(check bool) "end-to-end finite (excludes saturation)" true
    (Float.is_finite l.Latency.end_to_end)

let test_latency_replicas_reduce_waiting () =
  (* Adding replicas at a fixed arrival rate lowers the utilization and
     with it the queueing delay. *)
  let station replicas =
    let ops =
      [|
        Operator.make ~dist:(Ss_prelude.Dist.Exponential 1e-3) ~service_time:1e-3
          "src";
        Operator.make
          ~dist:(Ss_prelude.Dist.Exponential 0.8e-3)
          ~service_time:0.8e-3 ~replicas "server";
      |]
    in
    let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
    let l = Latency.estimate t (Steady_state.analyze t) in
    l.Latency.per_vertex.(1).Latency.waiting_time
  in
  Alcotest.(check bool) "two replicas wait less than one" true
    (station 2 < station 1);
  Alcotest.(check bool) "four less than two" true (station 4 < station 2)

let test_latency_visit_ratios () =
  let t = Fixtures.table1 () in
  let a = Steady_state.analyze t in
  let l = Latency.estimate t a in
  check_float "op2 visited by 70% of items" 0.7
    l.Latency.per_vertex.(1).Latency.visit_ratio ~eps:1e-9;
  check_float "op4 visit ratio" 0.2025 l.Latency.per_vertex.(3).Latency.visit_ratio
    ~eps:1e-9;
  (* Deterministic services, but probabilistic splits randomize the arrival
     processes (Bernoulli thinning): ca^2 of op2 is 1 - 0.7 = 0.3, so a
     small but positive wait is expected everywhere behind a split. *)
  check_float "thinned arrival scv" 0.3 l.Latency.per_vertex.(1).Latency.arrival_scv
    ~eps:1e-9;
  Alcotest.(check bool) "op2 waits a little" true
    (l.Latency.per_vertex.(1).Latency.waiting_time > 0.0);
  Alcotest.(check bool) "all waits finite and small" true
    (Array.for_all
       (fun v ->
         Float.is_finite v.Latency.waiting_time && v.Latency.waiting_time < 5e-3)
       l.Latency.per_vertex)

let test_latency_simulator_agreement_mm1 () =
  (* Cross-check the Kingman estimate against the simulator's Little's-law
     measurement. Large buffers approximate the unbounded M/M/1 queue. *)
  let ops =
    [|
      Operator.make ~dist:(Ss_prelude.Dist.Exponential 1e-3) ~service_time:1e-3 "src";
      Operator.make ~dist:(Ss_prelude.Dist.Exponential 0.7e-3) ~service_time:0.7e-3
        "server";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let predicted =
    (Latency.estimate t (Steady_state.analyze t)).Latency.per_vertex.(1)
      .Latency.waiting_time
  in
  let config =
    {
      Ss_sim.Engine.default_config with
      Ss_sim.Engine.buffer_capacity = 4096;
      warmup = 20.0;
      measure = 120.0;
    }
  in
  let r = Ss_sim.Engine.run ~config t in
  let measured = r.Ss_sim.Engine.stats.(1).Ss_sim.Engine.mean_waiting_time in
  Alcotest.(check bool)
    (Printf.sprintf "predicted %.2fms vs measured %.2fms within 15%%"
       (predicted *. 1e3) (measured *. 1e3))
    true
    (Float.abs (measured -. predicted) <= 0.15 *. predicted)

(* ------------------------------------------------------------------ *)
(* COLA-style baseline *)

let test_cola_light_pipeline_single_unit () =
  (* 0.3 + 0.2 + 0.1 = 0.6 ms of work per item at a 1000/s target: one PE
     suffices and no traffic crosses unit boundaries. *)
  let t = Fixtures.pipeline [ 1.0; 0.3; 0.2; 0.1 ] in
  let p = Cola_baseline.partition t in
  Alcotest.(check int) "one unit" 1 (List.length p.Cola_baseline.units);
  check_float "no inter-unit traffic" 0.0 p.Cola_baseline.inter_unit_rate
    ~eps:1e-12;
  check_float "full rate" 1000.0 p.Cola_baseline.predicted_throughput;
  Alcotest.(check int) "no splits" 0 p.Cola_baseline.splits

let test_cola_splits_until_capacity () =
  (* 2.4 ms of work per item: needs at least three 1 ms executors. *)
  let t = Fixtures.pipeline [ 1.0; 0.8; 0.8; 0.8 ] in
  let p = Cola_baseline.partition t in
  Alcotest.(check bool) "at least 3 units" true
    (List.length p.Cola_baseline.units >= 3);
  (* Every multi-member PE fits the budget. *)
  List.iter
    (fun members ->
      let work =
        List.fold_left
          (fun acc v ->
            if v = Topology.source t then acc
            else acc +. (Topology.operator t v).Operator.service_time)
          0.0 members
      in
      if List.length members > 1 then
        Alcotest.(check bool) "PE within budget" true (work <= 1e-3 +. 1e-12))
    p.Cola_baseline.units;
  check_float "sustains the source" 1000.0 p.Cola_baseline.predicted_throughput

let test_cola_cut_prefers_thin_edge () =
  (* A sampler drops 90% between b and c: the cheap cut is after the
     sampler. Work forces exactly one split. *)
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:0.6e-3 "a";
      Operator.make ~service_time:0.3e-3 ~output_selectivity:0.1 "sampler";
      Operator.make ~service_time:6e-3 "c";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ] in
  (* Work per item: a 0.6 + sampler 0.3 + c 0.1*6 = 1.5ms > 1ms; halves
     {a, sampler} (0.9) and {c} (0.6) fit. *)
  let p = Cola_baseline.partition t in
  Alcotest.(check int) "two units" 2 (List.length p.Cola_baseline.units);
  (* The cut sits on the 100/s edge, not on a 1000/s edge. *)
  check_float "traffic only on the thinned edge" 100.0
    p.Cola_baseline.inter_unit_rate ~eps:1e-6

let test_cola_singleton_overload () =
  let t = Fixtures.pipeline [ 1.0; 4.0 ] in
  let p = Cola_baseline.partition t in
  check_float "capped by the heavy operator" 250.0
    p.Cola_baseline.predicted_throughput;
  Alcotest.(check bool) "no endless splitting" true (p.Cola_baseline.splits <= 1)

let test_cola_vs_spinstreams_fusion () =
  (* On fig11/Table 1 both strategies must keep the 1000/s rate; COLA may
     use fewer units (it packs to capacity), SpinStreams never loses
     throughput by construction. *)
  let t = Fixtures.table1 () in
  let cola = Cola_baseline.partition t in
  let auto = Fusion.auto t in
  check_float "COLA sustains the source" 1000.0
    cola.Cola_baseline.predicted_throughput;
  check_float "SpinStreams preserves throughput" 1000.0
    auto.Fusion.final_analysis.Steady_state.throughput;
  Alcotest.(check bool) "both coarsen" true
    (List.length cola.Cola_baseline.units < 6
    && Topology.size auto.Fusion.final < 6)

let test_cola_crossing_rate_metric () =
  let t = Fixtures.table1 () in
  let a = Steady_state.analyze t in
  (* Every vertex its own unit: all edges cross. *)
  let all_separate = Array.init (Topology.size t) Fun.id in
  let total = Cola_baseline.crossing_rate t a ~unit_of:all_separate in
  (* Edge rates of fig11 sum to: 700+300+150+150+52.5+97.5+202.5+700. *)
  check_float "total edge traffic" 2352.5 total ~eps:1e-6;
  (* Everything in one unit: nothing crosses. *)
  let all_together = Array.make (Topology.size t) 0 in
  check_float "no crossing" 0.0 (Cola_baseline.crossing_rate t a ~unit_of:all_together)
    ~eps:1e-12

(* ------------------------------------------------------------------ *)
(* Property-based tests *)

let random_topology_gen =
  (* Random rooted DAGs with stateless operators: vertex 0 is the source and
     each vertex j > 0 receives at least one edge from a lower-numbered
     vertex, so validity is by construction. *)
  let open QCheck.Gen in
  let* n = int_range 2 9 in
  let* service_times = array_size (return n) (float_range 1e-4 5e-3) in
  let* preds =
    flatten_l
      (List.init (n - 1) (fun j ->
           let j = j + 1 in
           let* mask = int_range 1 ((1 lsl min j 8) - 1) in
           return (j, mask)))
  in
  let ops =
    Array.mapi
      (fun i ts -> Operator.make ~service_time:ts (Printf.sprintf "v%d" i))
      service_times
  in
  let edges = ref [] in
  List.iter
    (fun (j, mask) ->
      let srcs =
        List.filter (fun i -> i < j && mask land (1 lsl i) <> 0)
          (List.init j Fun.id)
      in
      let srcs = if srcs = [] then [ j - 1 ] else srcs in
      List.iter (fun i -> edges := (i, j, 1.0) :: !edges) srcs)
    preds;
  (* Normalize out-probabilities per source vertex. *)
  let out_count = Array.make n 0 in
  List.iter (fun (i, _, _) -> out_count.(i) <- out_count.(i) + 1) !edges;
  let edges =
    List.map (fun (i, j, _) -> (i, j, 1.0 /. float_of_int out_count.(i))) !edges
  in
  match Topology.create ops edges with
  | Ok t -> return t
  | Error e -> failwith (Topology.error_to_string e)

let arbitrary_topology =
  QCheck.make ~print:(fun t -> Format.asprintf "%a" Topology.pp t)
    random_topology_gen

let prop_all_utilizations_bounded =
  QCheck.Test.make ~name:"analysis leaves every rho <= 1" ~count:300
    arbitrary_topology (fun t ->
      let a = Steady_state.analyze t in
      Array.for_all
        (fun m -> m.Steady_state.utilization <= 1.0 +. 1e-6)
        a.Steady_state.metrics)

let prop_flow_conservation =
  QCheck.Test.make ~name:"departure = arrival at steady state (unit selectivity)"
    ~count:300 arbitrary_topology (fun t ->
      let a = Steady_state.analyze t in
      List.for_all
        (fun v ->
          v = Topology.source t
          || Float.abs
               (a.Steady_state.metrics.(v).Steady_state.departure_rate
               -. a.Steady_state.metrics.(v).Steady_state.arrival_rate)
             <= 1e-6 *. a.Steady_state.metrics.(v).Steady_state.arrival_rate
                +. 1e-9)
        (List.init (Topology.size t) Fun.id))

let prop_source_equals_sinks =
  QCheck.Test.make ~name:"Proposition 3.5: source rate = sum of sink rates"
    ~count:300 arbitrary_topology (fun t ->
      let a = Steady_state.analyze t in
      Float.abs (a.Steady_state.throughput -. a.Steady_state.sink_rate)
      <= 1e-6 *. Float.max 1.0 a.Steady_state.throughput)

let prop_throughput_bounded_by_source =
  QCheck.Test.make ~name:"backpressure only lowers the source rate" ~count:300
    arbitrary_topology (fun t ->
      let a = Steady_state.analyze t in
      let src_rate =
        Ss_topology.Operator.service_rate (Topology.operator t (Topology.source t))
      in
      a.Steady_state.throughput <= src_rate +. 1e-6)

let prop_fission_removes_all_stateless_bottlenecks =
  QCheck.Test.make
    ~name:"fission on all-stateless topologies restores the source rate"
    ~count:300 arbitrary_topology (fun t ->
      let f = Fission.optimize t in
      let src_rate =
        Ss_topology.Operator.service_rate (Topology.operator t (Topology.source t))
      in
      f.Fission.residual_bottlenecks = []
      && Float.abs (f.Fission.analysis.Steady_state.throughput -. src_rate)
         <= 1e-6 *. src_rate)

let prop_fusion_service_time_matches_contract =
  (* The Algorithm 3 recursion and the flow-based contraction must agree. *)
  QCheck.Test.make ~name:"fusionRate agrees with contraction" ~count:300
    arbitrary_topology (fun t ->
      let candidates = Fusion.candidates ~max_size:3 t in
      List.for_all
        (fun (vs, _) ->
          match (Fusion.service_time t vs, Fusion.apply t vs) with
          | Ok ts, Ok o ->
              Float.abs (ts -. o.Fusion.fused_service_time) <= 1e-9
          | Error _, Error _ -> true
          | Ok _, Error _ ->
              (* contraction can fail on cycles that service_time ignores *)
              true
          | Error _, Ok _ -> false)
        candidates)

let prop_fusion_throughput_never_improves_above_source =
  QCheck.Test.make ~name:"fusion cannot push throughput above the source rate"
    ~count:200 arbitrary_topology (fun t ->
      let src_rate =
        Ss_topology.Operator.service_rate (Topology.operator t (Topology.source t))
      in
      List.for_all
        (fun (vs, _) ->
          match Fusion.apply t vs with
          | Ok o -> o.Fusion.after.Steady_state.throughput <= src_rate +. 1e-6
          | Error _ -> true)
        (Fusion.candidates ~max_size:3 t))

let prop_analysis_deterministic =
  QCheck.Test.make ~name:"analysis is deterministic (pure function of the graph)"
    ~count:200 arbitrary_topology (fun t ->
      let a = Steady_state.analyze t and b = Steady_state.analyze t in
      a.Steady_state.throughput = b.Steady_state.throughput
      && Array.for_all2
           (fun (x : Steady_state.vertex_metrics) (y : Steady_state.vertex_metrics) ->
             x.Steady_state.departure_rate = y.Steady_state.departure_rate
             && x.Steady_state.utilization = y.Steady_state.utilization)
           a.Steady_state.metrics b.Steady_state.metrics)

let prop_holdoff_bound_respected =
  QCheck.Test.make ~name:"hold-off replication never exceeds the budget"
    ~count:200
    QCheck.(pair arbitrary_topology (int_range 0 20))
    (fun (t, extra) ->
      let bound = Topology.size t + extra in
      let plan = Fission.optimize ~max_replicas:bound t in
      plan.Fission.total_replicas <= bound)

let prop_bounded_never_beats_unbounded =
  QCheck.Test.make
    ~name:"a replica budget never improves predicted throughput" ~count:200
    QCheck.(pair arbitrary_topology (int_range 0 10))
    (fun (t, extra) ->
      let bound = Topology.size t + extra in
      let bounded = Fission.optimize ~max_replicas:bound t in
      let unbounded = Fission.optimize t in
      bounded.Fission.analysis.Steady_state.throughput
      <= unbounded.Fission.analysis.Steady_state.throughput +. 1e-6)

let prop_fusion_preserves_sink_conservation =
  (* Proposition 3.5 assumes unit selectivity: a fused region with an
     internal sink absorbs part of the flow (its meta-operator has output
     selectivity < 1), so the check applies only to flow-preserving
     fusions. *)
  QCheck.Test.make
    ~name:"Proposition 3.5 still holds after flow-preserving fusions"
    ~count:150 arbitrary_topology (fun t ->
      List.for_all
        (fun (vs, _) ->
          match Fusion.apply t vs with
          | Error _ -> true
          | Ok o ->
              let fused_op =
                Topology.operator o.Fusion.topology o.Fusion.fused_vertex
              in
              Float.abs (fused_op.Operator.output_selectivity -. 1.0) > 1e-9
              ||
              let a = o.Fusion.after in
              Float.abs (a.Steady_state.throughput -. a.Steady_state.sink_rate)
              <= 1e-6 *. Float.max 1.0 a.Steady_state.throughput)
        (Fusion.candidates ~max_size:3 t))

let prop_auto_fusion_never_loses_throughput =
  QCheck.Test.make ~name:"automated fusion preserves predicted throughput"
    ~count:100 arbitrary_topology (fun t ->
      let r = Fusion.auto ~max_size:3 t in
      Float.abs
        (r.Fusion.final_analysis.Steady_state.throughput
        -. r.Fusion.initial_analysis.Steady_state.throughput)
      <= 1e-6 *. Float.max 1.0 r.Fusion.initial_analysis.Steady_state.throughput)

let prop_latency_nonnegative_and_finite_off_saturation =
  QCheck.Test.make
    ~name:"latency estimates are non-negative; finite below saturation"
    ~count:200 arbitrary_topology (fun t ->
      let a = Steady_state.analyze t in
      let l = Latency.estimate t a in
      Array.for_all2
        (fun (lv : Latency.vertex_latency) (m : Steady_state.vertex_metrics) ->
          lv.Latency.waiting_time >= 0.0
          && (m.Steady_state.utilization < 0.999
             || not (Float.is_finite lv.Latency.waiting_time)
             || lv.Latency.waiting_time >= 0.0))
        l.Latency.per_vertex a.Steady_state.metrics
      && l.Latency.end_to_end >= 0.0
      && Float.is_finite l.Latency.end_to_end)

let prop_cola_partitions_vertex_set =
  QCheck.Test.make ~name:"COLA units partition the vertex set" ~count:200
    arbitrary_topology (fun t ->
      let p = Cola_baseline.partition t in
      let all = List.concat p.Cola_baseline.units |> List.sort compare in
      all = List.init (Topology.size t) Fun.id
      && Array.length p.Cola_baseline.unit_of = Topology.size t)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "ss_core"
    [
      ( "steady_state",
        [
          quick "table1 original topology" test_table1_original;
          quick "pipeline without bottleneck" test_pipeline_no_bottleneck;
          quick "pipeline with bottleneck" test_pipeline_bottleneck;
          quick "two bottlenecks need two corrections" test_two_bottlenecks;
          quick "diamond with weighted paths" test_diamond_weighted_paths;
          quick "Proposition 3.5 on fig11" test_sink_rate_proposition;
          quick "output selectivity" test_output_selectivity;
          quick "input selectivity" test_input_selectivity;
          quick "selectivity feeds bottleneck detection"
            test_selectivity_upstream_of_bottleneck;
          quick "replicated operator capacity" test_replicated_capacity;
        ] );
      ( "key_partitioning",
        [
          quick "uniform keys split evenly" test_partitioning_uniform;
          quick "paper skew example (n=2, pmax=0.5)"
            test_partitioning_paper_example;
          quick "fewer keys than replicas" test_partitioning_fewer_keys_than_replicas;
          quick "loads sum to one" test_partitioning_loads_sum_to_one;
        ] );
      ( "fission",
        [
          quick "stateless bottleneck removed" test_fission_stateless;
          quick "exact multiple uses exact degree" test_fission_exact_multiple;
          quick "stateful bottleneck throttles" test_fission_stateful_blocks;
          quick "partitioned skew leaves residual"
            test_fission_partitioned_skew_residual;
          quick "partitioned even keys fully parallelize"
            test_fission_partitioned_even_keys;
          quick "hold-off replication bound" test_fission_bound;
          quick "bound below operator count rejected" test_fission_bound_too_small;
          quick "no bottleneck, no change" test_fission_no_bottleneck_is_identity;
        ] );
      ( "fusion",
        [
          quick "Table 1: feasible fusion" test_fusion_table1;
          quick "Table 2: fusion creating a bottleneck" test_fusion_table2;
          quick "chain service time is the sum" test_fusion_chain_service_time;
          quick "single front-end required" test_fusion_requires_single_front_end;
          quick "source cannot be fused" test_fusion_rejects_source;
          quick "cycle-creating fusion rejected" test_fusion_rejects_cycle_creation;
          quick "exit probabilities merged" test_fusion_preserves_downstream_probabilities;
          quick "candidates ranked by utilization" test_fusion_candidates_ranked;
        ] );
      ( "latency",
        [
          quick "D/D/1 has no waiting" test_latency_dd1_no_waiting;
          quick "M/M/1 closed form" test_latency_mm1_formula;
          quick "saturated vertices" test_latency_saturated_vertex;
          quick "multiple servers" test_latency_replicas_reduce_waiting;
          quick "visit ratios" test_latency_visit_ratios;
          quick "simulator agreement (M/M/1)" test_latency_simulator_agreement_mm1;
        ] );
      ( "extensions",
        [
          quick "multi-source unification" test_multi_source_unify;
          quick "proportional throttling" test_multi_source_proportional_throttling;
          quick "single source passes through" test_multi_source_single_source_ok;
          quick "multi-source errors" test_multi_source_errors;
          quick "auto fusion on table 1" test_auto_fusion_preserves_throughput_table1;
          quick "auto fusion avoids table 2 bottleneck"
            test_auto_fusion_avoids_bottleneck_table2;
          quick "auto fusion utilization cap" test_auto_fusion_respects_utilization_cap;
          quick "auto fusion with no candidate" test_auto_fusion_no_candidate;
        ] );
      ( "cola_baseline",
        [
          quick "light pipeline in one unit" test_cola_light_pipeline_single_unit;
          quick "splits until capacity" test_cola_splits_until_capacity;
          quick "cut prefers the thin edge" test_cola_cut_prefers_thin_edge;
          quick "singleton overload" test_cola_singleton_overload;
          quick "COLA vs SpinStreams fusion" test_cola_vs_spinstreams_fusion;
          quick "crossing-rate metric" test_cola_crossing_rate_metric;
        ] );
      ( "properties",
        [
          prop prop_all_utilizations_bounded;
          prop prop_flow_conservation;
          prop prop_source_equals_sinks;
          prop prop_throughput_bounded_by_source;
          prop prop_fission_removes_all_stateless_bottlenecks;
          prop prop_fusion_service_time_matches_contract;
          prop prop_fusion_throughput_never_improves_above_source;
          prop prop_analysis_deterministic;
          prop prop_holdoff_bound_respected;
          prop prop_bounded_never_beats_unbounded;
          prop prop_fusion_preserves_sink_conservation;
          prop prop_auto_fusion_never_loses_throughput;
          prop prop_latency_nonnegative_and_finite_off_saturation;
          prop prop_cola_partitions_vertex_set;
        ] );
    ]
