(* Tests for the cluster model and the placement strategies. *)

open Ss_topology
open Ss_placement

let cluster ?send_overhead ?link_latency nodes cores =
  Cluster.homogeneous ?send_overhead ?link_latency ~nodes ~cores ()

(* ------------------------------------------------------------------ *)
(* Cluster *)

let test_cluster_basics () =
  let c = cluster 3 4 in
  Alcotest.(check int) "size" 3 (Cluster.size c);
  Alcotest.(check int) "total cores" 12 (Cluster.total_cores c);
  Alcotest.(check (float 1e-12)) "capacity" 4.0 (Cluster.capacity c 1);
  Alcotest.(check string) "names" "node2" (Cluster.nodes c).(2).Cluster.node_name

let test_cluster_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Cluster.create: no nodes")
    (fun () -> ignore (Cluster.create []));
  Alcotest.check_raises "no cores"
    (Invalid_argument "Cluster.create: node \"x\" has no cores") (fun () ->
      ignore (Cluster.create [ { Cluster.node_name = "x"; cores = 0 } ]));
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Cluster.create: negative network cost") (fun () ->
      ignore
        (Cluster.create ~send_overhead:(-1.0)
           [ { Cluster.node_name = "x"; cores = 1 } ]))

(* ------------------------------------------------------------------ *)
(* Strategies *)

let chain () = Fixtures.pipeline [ 1.0; 0.6; 0.6; 0.6; 0.6; 0.6 ]

let test_round_robin_layout () =
  let t = chain () in
  let a = Placement.round_robin (cluster 2 4) t in
  Alcotest.(check (array int)) "alternating" [| 0; 1; 0; 1; 0; 1 |] a

let test_assignments_are_valid () =
  let t = Fixtures.table1 () in
  let c = cluster 3 2 in
  List.iter
    (fun a ->
      Alcotest.(check int) "covers all vertices" (Topology.size t) (Array.length a);
      Array.iter
        (fun m -> Alcotest.(check bool) "node in range" true (m >= 0 && m < 3))
        a)
    [
      Placement.round_robin c t;
      Placement.load_aware c t;
      Placement.communication_aware c t;
    ]

let test_load_aware_respects_capacity () =
  (* Total work ~2.8 executors; two 2-core nodes fit it without overload. *)
  let t =
    Fixtures.pipeline [ 1.0; 0.9; 0.9; 0.9; 0.1 ]
  in
  (* Zero network overhead: the capacity check concerns the placement
     itself, not the serialization surcharge evaluate folds in. *)
  let c = cluster ~send_overhead:0.0 2 2 in
  let a = Placement.load_aware c t in
  let e = Placement.evaluate c t a in
  Array.iteri
    (fun i load ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d within capacity (%.2f)" i load)
        true
        (load <= Cluster.capacity c i +. 1e-9))
    e.Placement.node_load

let test_communication_aware_reduces_crossings () =
  let t = Fixtures.table1 () in
  let c = cluster 2 8 in
  let naive = Placement.evaluate c t (Placement.round_robin c t) in
  let smart = Placement.evaluate c t (Placement.communication_aware c t) in
  Alcotest.(check bool)
    (Printf.sprintf "crossing rate %.0f <= %.0f" smart.Placement.inter_node_rate
       naive.Placement.inter_node_rate)
    true
    (smart.Placement.inter_node_rate <= naive.Placement.inter_node_rate);
  (* With capacity for everything on one node, the search co-locates all. *)
  Alcotest.(check (float 1e-9)) "all co-located" 0.0
    smart.Placement.inter_node_rate

let test_network_overhead_lowers_throughput () =
  (* A saturated stage that crosses a node boundary pays serialization CPU
     and loses throughput; co-located placement does not. *)
  let t = Fixtures.pipeline [ 1.0; 1.0; 0.2 ] in
  let expensive = cluster ~send_overhead:0.3e-3 2 8 in
  let spread = [| 0; 1; 0 |] in
  let together = [| 0; 0; 0 |] in
  let e_spread = Placement.evaluate expensive t spread in
  let e_together = Placement.evaluate expensive t together in
  Alcotest.(check (float 1e-6)) "co-located keeps 1000/s" 1000.0
    e_together.Placement.analysis.Ss_core.Steady_state.throughput;
  (* stage1 pays 0.3ms on top of 1ms for every item: ~769/s. *)
  Alcotest.(check bool)
    (Printf.sprintf "crossing costs throughput (%.0f)"
       e_spread.Placement.analysis.Ss_core.Steady_state.throughput)
    true
    (e_spread.Placement.analysis.Ss_core.Steady_state.throughput < 800.0);
  Alcotest.(check bool) "latency added" true
    (e_spread.Placement.added_latency > 0.0
    && e_together.Placement.added_latency = 0.0)

let test_added_latency_counts_crossings () =
  let t = Fixtures.pipeline [ 1.0; 0.1; 0.1 ] in
  let c = cluster ~send_overhead:0.0 ~link_latency:1e-3 3 4 in
  (* Every hop crosses: 2 crossings per item, 1 ms each. *)
  let e = Placement.evaluate c t [| 0; 1; 2 |] in
  Alcotest.(check (float 1e-6)) "two link traversals" 2e-3
    e.Placement.added_latency

let test_evaluate_validation () =
  let t = chain () in
  let c = cluster 2 2 in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Placement.evaluate: assignment size mismatch") (fun () ->
      ignore (Placement.evaluate c t [| 0 |]));
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Placement.evaluate: unknown node in assignment")
    (fun () -> ignore (Placement.evaluate c t [| 0; 1; 2; 0; 0; 0 |]))

let test_selectivity_scales_overhead () =
  (* A flatmap sending 3 items per input pays the overhead three times. *)
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:0.5e-3 ~output_selectivity:3.0 "flatmap";
      Operator.make ~service_time:0.05e-3 "sink";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let c = cluster ~send_overhead:0.1e-3 2 8 in
  let e = Placement.evaluate c t [| 0; 0; 1 |] in
  let flatmap_time =
    (Topology.operator e.Placement.placed 1).Operator.service_time
  in
  Alcotest.(check (float 1e-12)) "0.5ms + 3 x 0.1ms" 0.8e-3 flatmap_time

let prop_partition_feasible_when_capacity_suffices =
  QCheck.Test.make ~name:"load-aware placements fit ample clusters" ~count:100
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 3 12) (int_range 0 5000)))
    (fun (n, seed) ->
      let rng = Ss_prelude.Rng.create seed in
      let ops =
        Array.init n (fun i ->
            Operator.make
              ~service_time:((0.1 +. Ss_prelude.Rng.float rng) /. 1e3)
              (Printf.sprintf "v%d" i))
      in
      let edges = List.init (n - 1) (fun i -> (i, i + 1, 1.0)) in
      let t = Topology.create_exn ops edges in
      (* Total work < 1 executor by construction (all utilizations <= 1 over
         one chain); any cluster fits. *)
      let c = cluster ~send_overhead:0.0 3 5 in
      let e = Placement.evaluate c t (Placement.load_aware c t) in
      Array.for_all (fun l -> l <= 5.0 +. 1e-9) e.Placement.node_load)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "ss_placement"
    [
      ( "cluster",
        [ quick "basics" test_cluster_basics; quick "validation" test_cluster_validation ] );
      ( "strategies",
        [
          quick "round robin layout" test_round_robin_layout;
          quick "assignments valid" test_assignments_are_valid;
          quick "load-aware capacity" test_load_aware_respects_capacity;
          quick "communication-aware reduces crossings"
            test_communication_aware_reduces_crossings;
          quick "network overhead costs throughput"
            test_network_overhead_lowers_throughput;
          quick "latency accounting" test_added_latency_counts_crossings;
          quick "evaluate validation" test_evaluate_validation;
          quick "selectivity scales overhead" test_selectivity_scales_overhead;
        ] );
      ("properties", [ prop prop_partition_feasible_when_capacity_suffices ]);
    ]
