(* Tests for the XML substrate: the parser itself and the topology
   formalism reader/writer. *)

open Ss_topology
open Ss_xml

(* ------------------------------------------------------------------ *)
(* Xml parser *)

let parse_ok src =
  match Xml.parse src with
  | Ok t -> t
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let parse_err src =
  match Xml.parse src with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" src
  | Error e -> e

let test_parse_basic () =
  match parse_ok "<a x=\"1\"><b/><c y='2'>hi</c></a>" with
  | Xml.Element ("a", [ ("x", "1") ], [ b; c ]) ->
      Alcotest.(check (option string)) "b tag" (Some "b") (Xml.tag b);
      Alcotest.(check (option string)) "c attr" (Some "2") (Xml.attr "y" c);
      Alcotest.(check string) "c text" "hi" (Xml.text_content c)
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_prolog_and_comments () =
  let src =
    "<?xml version=\"1.0\"?>\n<!-- header -->\n<root><!-- inner -->\n  \
     <child/>\n</root>\n<!-- trailer -->"
  in
  match parse_ok src with
  | Xml.Element ("root", [], [ child ]) ->
      Alcotest.(check (option string)) "child" (Some "child") (Xml.tag child)
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_entities () =
  match parse_ok "<t a=\"x &amp; y\">1 &lt; 2 &gt; 0 &quot;q&quot; &#65;</t>" with
  | Xml.Element ("t", [ ("a", a) ], _) as node ->
      Alcotest.(check string) "attr entities" "x & y" a;
      Alcotest.(check string) "text entities" "1 < 2 > 0 \"q\" A"
        (Xml.text_content node)
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_whitespace_text_dropped () =
  match parse_ok "<a>\n  <b/>\n</a>" with
  | Xml.Element ("a", [], [ Xml.Element ("b", [], []) ]) -> ()
  | _ -> Alcotest.fail "whitespace text should be dropped"

let test_parse_errors () =
  List.iter
    (fun src -> ignore (parse_err src))
    [
      "";
      "<a>";
      "<a></b>";
      "<a x=1/>";
      "<a x=\"1\" x=\"2\"/>";
      "<a/><b/>";
      "<a>&nope;</a>";
      "<a><!-- unterminated </a>";
      "plain text";
    ]

let test_parse_error_position () =
  let e = parse_err "<a>\n<b></c></a>" in
  Alcotest.(check bool) "mentions line 2" true
    (String.length e >= 6 && String.sub e 0 6 = "line 2")

let test_render_roundtrip () =
  let doc =
    Xml.Element
      ( "root",
        [ ("attr", "a<b&c\"d"); ("n", "42") ],
        [
          Xml.Element ("leaf", [], []);
          Xml.Element ("mid", [], [ Xml.Text "x & y" ]);
        ] )
  in
  let rendered = Xml.to_string doc in
  match Xml.parse rendered with
  | Ok reparsed -> Alcotest.(check bool) "roundtrip" true (reparsed = doc)
  | Error e -> Alcotest.fail e

let test_accessors () =
  let node = parse_ok "<a><x i=\"1\"/><y/><x i=\"2\"/></a>" in
  Alcotest.(check int) "find_all" 2 (List.length (Xml.find_all "x" node));
  Alcotest.(check int) "children" 3 (List.length (Xml.children node));
  (match Xml.attr_exn "missing" node with
  | Ok _ -> Alcotest.fail "expected missing-attribute error"
  | Error e ->
      Alcotest.(check bool) "names the element" true
        (String.length e > 0 && e = "missing attribute \"missing\" on <a>"));
  Alcotest.(check (option string)) "text has no tag" None (Xml.tag (Xml.Text "x"))

(* ------------------------------------------------------------------ *)
(* Topology XML *)

let roundtrip t =
  match Topology_xml.of_string (Topology_xml.to_string t) with
  | Ok t' -> t'
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let check_same_topology a b =
  Alcotest.(check int) "size" (Topology.size a) (Topology.size b);
  Alcotest.(check int) "edges" (Topology.num_edges a) (Topology.num_edges b);
  List.iter2
    (fun (u1, v1, p1) (u2, v2, p2) ->
      Alcotest.(check int) "edge src" u1 u2;
      Alcotest.(check int) "edge dst" v1 v2;
      Alcotest.(check (float 1e-12)) "edge prob" p1 p2)
    (Topology.edges a) (Topology.edges b);
  let close x y = Float.abs (x -. y) <= 1e-12 *. Float.max 1.0 (Float.abs x) in
  Array.iteri
    (fun v op ->
      let op' = Topology.operator b v in
      let what fmt = Printf.sprintf ("operator %d " ^^ fmt) v in
      Alcotest.(check string) (what "name") op.Operator.name op'.Operator.name;
      Alcotest.(check bool) (what "service time") true
        (close op.Operator.service_time op'.Operator.service_time);
      Alcotest.(check bool) (what "dist") true
        (op.Operator.service_dist = op'.Operator.service_dist);
      Alcotest.(check bool) (what "selectivities") true
        (close op.Operator.input_selectivity op'.Operator.input_selectivity
        && close op.Operator.output_selectivity op'.Operator.output_selectivity);
      Alcotest.(check int) (what "replicas") op.Operator.replicas op'.Operator.replicas;
      match (op.Operator.kind, op'.Operator.kind) with
      | Operator.Stateless, Operator.Stateless
      | Operator.Stateful, Operator.Stateful ->
          ()
      | Operator.Partitioned_stateful ka, Operator.Partitioned_stateful kb ->
          let pa = Ss_prelude.Discrete.probs ka in
          let pb = Ss_prelude.Discrete.probs kb in
          Alcotest.(check int) (what "key groups") (Array.length pa) (Array.length pb);
          Array.iteri
            (fun i p -> Alcotest.(check bool) (what "key prob") true (close p pb.(i)))
            pa
      | _ -> Alcotest.fail (what "kind mismatch"))
    (Topology.operators a)

let test_topology_roundtrip_fig11 () =
  let t = Fixtures.table1 () in
  check_same_topology t (roundtrip t)

let test_topology_roundtrip_rich () =
  (* Exercises distributions, selectivities, replicas and key weights. *)
  let keys = Ss_prelude.Discrete.of_weights [| 0.5; 0.3; 0.2 |] in
  let ops =
    [|
      Operator.make ~service_time:1e-3 "source";
      Operator.make
        ~dist:(Ss_prelude.Dist.Exponential 2e-3)
        ~kind:(Operator.Partitioned_stateful keys)
        ~input_selectivity:10.0 ~output_selectivity:2.0 ~replicas:3
        ~service_time:2e-3 "agg#1";
      Operator.make ~kind:Operator.Stateful
        ~dist:(Ss_prelude.Dist.Erlang (4, 5e-3))
        ~service_time:5e-3 "join";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 0.25); (0, 2, 0.75); (1, 2, 1.0) ] in
  check_same_topology t (roundtrip t)

let test_topology_random_roundtrips () =
  let rng = Ss_prelude.Rng.create 77 in
  for _ = 1 to 20 do
    let t = Ss_workload.Random_topology.generate rng in
    check_same_topology t (roundtrip t)
  done

let test_topology_zipf_keys_input () =
  let src =
    {|<topology>
        <operator id="0" name="s" service_time="0.001"/>
        <operator id="1" name="k" type="partitioned" keys="zipf:1.5:32"
                  service_time="det:0.002"/>
        <edge from="0" to="1"/>
      </topology>|}
  in
  match Topology_xml.of_string src with
  | Error e -> Alcotest.fail e
  | Ok t -> (
      match (Topology.operator t 1).Operator.kind with
      | Operator.Partitioned_stateful keys ->
          Alcotest.(check int) "32 groups" 32 (Ss_prelude.Discrete.support keys);
          Alcotest.(check bool) "zipf skew" true
            (Ss_prelude.Discrete.prob keys 0 > Ss_prelude.Discrete.prob keys 31)
      | _ -> Alcotest.fail "expected partitioned kind")

let test_topology_default_attributes () =
  let src =
    {|<topology>
        <operator id="0" name="s" service_time="0.001"/>
        <operator id="1" name="t" service_time="0.002"/>
        <edge from="0" to="1"/>
      </topology>|}
  in
  match Topology_xml.of_string src with
  | Error e -> Alcotest.fail e
  | Ok t ->
      let op = Topology.operator t 1 in
      Alcotest.(check bool) "stateless default" true (op.Operator.kind = Operator.Stateless);
      Alcotest.(check (float 0.)) "unit selectivities" 1.0 op.Operator.input_selectivity;
      Alcotest.(check int) "one replica" 1 op.Operator.replicas;
      Alcotest.(check (option (float 1e-12))) "probability defaults to 1"
        (Some 1.0)
        (Topology.edge_probability t ~src:0 ~dst:1)

let expect_error src fragment =
  match Topology_xml.of_string src with
  | Ok _ -> Alcotest.failf "expected an error mentioning %S" fragment
  | Error e ->
      let contains =
        let nl = String.length fragment and hl = String.length e in
        let rec go i = i + nl <= hl && (String.sub e i nl = fragment || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (Printf.sprintf "%S in %S" fragment e) true contains

let test_topology_errors () =
  expect_error "<nope/>" "expected <topology>";
  expect_error "<topology/>" "no <operator>";
  expect_error
    {|<topology><operator id="0" name="s"/></topology>|}
    "service_time";
  expect_error
    {|<topology>
        <operator id="0" name="s" service_time="0.001"/>
        <operator id="5" name="t" service_time="0.001"/>
      </topology>|}
    "dense";
  expect_error
    {|<topology>
        <operator id="0" name="s" service_time="0.001"/>
        <operator id="0" name="t" service_time="0.001"/>
      </topology>|}
    "duplicate operator id";
  expect_error
    {|<topology>
        <operator id="0" name="s" service_time="0.001" type="warp"/>
      </topology>|}
    "unknown operator type";
  expect_error
    {|<topology>
        <operator id="0" name="s" service_time="0.001" type="partitioned"/>
      </topology>|}
    "keys";
  expect_error
    {|<topology>
        <operator id="0" name="s" service_time="abc"/>
      </topology>|}
    "invalid";
  (* Structural errors surface through topology validation. *)
  expect_error
    {|<topology>
        <operator id="0" name="s" service_time="0.001"/>
        <operator id="1" name="a" service_time="0.001"/>
        <operator id="2" name="b" service_time="0.001"/>
        <edge from="0" to="1"/>
        <edge from="1" to="2"/>
        <edge from="2" to="1"/>
      </topology>|}
    "cycle"

(* ------------------------------------------------------------------ *)
(* Fuzzing: random corruption must yield Error, never an exception *)

let base_document =
  {|<topology>
      <operator id="0" name="s" service_time="det:0.001"/>
      <operator id="1" name="k" type="partitioned" keys="zipf:1.5:32"
                service_time="exp:0.002" input_selectivity="10"/>
      <operator id="2" name="t" service_time="0.0005" replicas="2"/>
      <edge from="0" to="1" probability="0.25"/>
      <edge from="0" to="2" probability="0.75"/>
      <edge from="1" to="2"/>
    </topology>|}

let mutate rng doc =
  let b = Bytes.of_string doc in
  let mutations = 1 + Ss_prelude.Rng.int rng 4 in
  for _ = 1 to mutations do
    match Ss_prelude.Rng.int rng 4 with
    | 0 ->
        (* flip a character *)
        let i = Ss_prelude.Rng.int rng (Bytes.length b) in
        Bytes.set b i (Char.chr (32 + Ss_prelude.Rng.int rng 95))
    | 1 ->
        (* delete a character (overwrite with space) *)
        let i = Ss_prelude.Rng.int rng (Bytes.length b) in
        Bytes.set b i ' '
    | 2 ->
        (* clobber a quote *)
        let quotes =
          List.filter (fun i -> Bytes.get b i = '"')
            (List.init (Bytes.length b) Fun.id)
        in
        if quotes <> [] then
          Bytes.set b (List.nth quotes (Ss_prelude.Rng.int rng (List.length quotes))) 'x'
    | _ ->
        (* clobber an angle bracket *)
        let brackets =
          List.filter
            (fun i -> Bytes.get b i = '<' || Bytes.get b i = '>')
            (List.init (Bytes.length b) Fun.id)
        in
        if brackets <> [] then
          Bytes.set b
            (List.nth brackets (Ss_prelude.Rng.int rng (List.length brackets)))
            ' '
  done;
  Bytes.to_string b

let prop_fuzzed_documents_never_raise =
  QCheck.Test.make ~name:"corrupted documents return Error, never raise"
    ~count:1000 QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Ss_prelude.Rng.create seed in
      let doc = mutate rng base_document in
      match Topology_xml.of_string doc with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "raised %s on:\n%s" (Printexc.to_string e) doc)

let prop_truncated_documents_never_raise =
  QCheck.Test.make ~name:"truncated documents return Error, never raise"
    ~count:300
    QCheck.(int_range 0 400)
    (fun len ->
      let doc =
        String.sub base_document 0 (min len (String.length base_document))
      in
      match Topology_xml.of_string doc with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "raised %s on %S" (Printexc.to_string e) doc)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_xml"
    [
      ( "parser",
        [
          quick "basic structure" test_parse_basic;
          quick "prolog and comments" test_parse_prolog_and_comments;
          quick "entities" test_parse_entities;
          quick "whitespace text dropped" test_parse_whitespace_text_dropped;
          quick "parse errors" test_parse_errors;
          quick "error positions" test_parse_error_position;
          quick "render roundtrip" test_render_roundtrip;
          quick "accessors" test_accessors;
        ] );
      ( "topology",
        [
          quick "fig11 roundtrip" test_topology_roundtrip_fig11;
          quick "rich roundtrip" test_topology_roundtrip_rich;
          quick "random roundtrips" test_topology_random_roundtrips;
          quick "zipf key spec" test_topology_zipf_keys_input;
          quick "defaults" test_topology_default_attributes;
          quick "error reporting" test_topology_errors;
        ] );
      ( "fuzzing",
        [
          QCheck_alcotest.to_alcotest prop_fuzzed_documents_never_raise;
          QCheck_alcotest.to_alcotest prop_truncated_documents_never_raise;
        ] );
    ]
