(* Tests for the ss_prelude substrate: PRNG, distributions, statistics and
   the binary heap. *)

open Ss_prelude

let check_float ?(eps = 1e-9) what expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6g, got %.6g" what expected actual)
    true
    (Float.abs (expected -. actual) <= eps *. Float.max 1.0 (Float.abs expected))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds diverge" true
    (List.init 10 (fun _ -> Rng.int64 a) <> List.init 10 (fun _ -> Rng.int64 b))

let test_rng_float_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  let seen = Array.make 7 false in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7);
    seen.(x) <- true
  done;
  Alcotest.(check bool) "all outcomes reached" true (Array.for_all Fun.id seen)

let test_rng_int_in_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.int_in_range rng 3 9 in
    Alcotest.(check bool) "inclusive bounds" true (x >= 3 && x <= 9)
  done;
  Alcotest.(check int) "degenerate range" 4 (Rng.int_in_range rng 4 4)

let test_rng_uniformity () =
  (* Chi-square-ish sanity: each of 10 buckets within 20% of expectation. *)
  let rng = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let x = Rng.float rng in
    let b = min 9 (int_of_float (x *. 10.0)) in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket within 20% of uniform" true
        (abs (c - (n / 10)) < n / 50))
    buckets

let test_rng_split_independent () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  let xs = List.init 20 (fun _ -> Rng.int64 parent) in
  let ys = List.init 20 (fun _ -> Rng.int64 child) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_rng_invalid_args () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "int with zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0));
  Alcotest.check_raises "empty pick"
    (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

(* ------------------------------------------------------------------ *)
(* Dist *)

let sample_mean rng dist n =
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Dist.sample rng dist
  done;
  !acc /. float_of_int n

let test_dist_deterministic () =
  let rng = Rng.create 1 in
  for _ = 1 to 10 do
    check_float "constant" 0.42 (Dist.sample rng (Dist.Deterministic 0.42))
  done

let test_dist_means () =
  let rng = Rng.create 21 in
  let cases =
    [
      (Dist.Deterministic 2.0, 2.0);
      (Dist.Uniform (1.0, 3.0), 2.0);
      (Dist.Exponential 0.5, 0.5);
      (Dist.Normal (5.0, 0.5), 5.0);
      (Dist.Erlang (4, 2.0), 2.0);
    ]
  in
  List.iter
    (fun (d, expected) ->
      check_float
        (Format.asprintf "sample mean of %a" Dist.pp d)
        expected
        (sample_mean rng d 200_000)
        ~eps:0.02)
    cases

let test_dist_analytic_moments () =
  check_float "uniform variance" (1.0 /. 3.0) (Dist.variance (Dist.Uniform (0.0, 2.0)));
  check_float "exponential variance" 0.25 (Dist.variance (Dist.Exponential 0.5));
  check_float "erlang variance" (0.25 /. 4.0) (Dist.variance (Dist.Erlang (4, 0.5)));
  Alcotest.(check bool) "erlang variance below exponential" true
    (Dist.variance (Dist.Erlang (4, 0.5)) < Dist.variance (Dist.Exponential 0.5))

let test_dist_non_negative () =
  let rng = Rng.create 33 in
  let d = Dist.Normal (0.001, 0.5) in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "clamped at zero" true (Dist.sample rng d >= 0.0)
  done

let test_dist_scale () =
  check_float "scaled mean" 4.0 (Dist.mean (Dist.scale 2.0 (Dist.Exponential 2.0)));
  check_float "scaled normal stddev" 1.0
    (sqrt (Dist.variance (Dist.scale 2.0 (Dist.Normal (1.0, 0.5)))))

let test_dist_string_roundtrip () =
  let cases =
    [
      Dist.Deterministic 0.5;
      Dist.Uniform (0.1, 0.3);
      Dist.Exponential 2.5;
      Dist.Normal (1.0, 0.25);
      Dist.Erlang (3, 0.9);
    ]
  in
  List.iter
    (fun d ->
      match Dist.of_string (Dist.to_string d) with
      | Ok d' -> Alcotest.(check bool) (Dist.to_string d) true (d = d')
      | Error e -> Alcotest.fail e)
    cases

let test_dist_parse_errors () =
  List.iter
    (fun s ->
      match Dist.of_string s with
      | Ok _ -> Alcotest.failf "expected parse failure for %S" s
      | Error _ -> ())
    [ "nope:1"; "uniform:3:1"; "erlang:0:1"; "erlang:x:1"; "det:abc"; "exp" ]

let test_dist_bare_float () =
  match Dist.of_string "0.75" with
  | Ok (Dist.Deterministic x) -> check_float "bare float" 0.75 x
  | Ok _ -> Alcotest.fail "expected deterministic"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Discrete *)

let test_discrete_normalization () =
  let d = Discrete.of_weights [| 2.0; 6.0 |] in
  check_float "p0" 0.25 (Discrete.prob d 0);
  check_float "p1" 0.75 (Discrete.prob d 1);
  check_float "sums to one" 1.0 (Array.fold_left ( +. ) 0.0 (Discrete.probs d))

let test_discrete_zipf () =
  let d = Discrete.zipf ~alpha:1.0 4 in
  let h = 1.0 +. 0.5 +. (1.0 /. 3.0) +. 0.25 in
  check_float "rank 1" (1.0 /. h) (Discrete.prob d 0);
  check_float "rank 4" (0.25 /. h) (Discrete.prob d 3);
  Alcotest.(check bool) "monotone decreasing" true
    (Discrete.prob d 0 > Discrete.prob d 1
    && Discrete.prob d 1 > Discrete.prob d 2);
  let uniform = Discrete.zipf ~alpha:0.0 5 in
  check_float "alpha=0 is uniform" 0.2 (Discrete.prob uniform 3)

let test_discrete_sampling_frequencies () =
  let rng = Rng.create 77 in
  let d = Discrete.of_weights [| 1.0; 2.0; 7.0 |] in
  let counts = Array.make 3 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Discrete.sample rng d in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      check_float
        (Printf.sprintf "frequency of %d" i)
        (Discrete.prob d i)
        (float_of_int c /. float_of_int n)
        ~eps:0.05)
    counts

let test_discrete_singleton () =
  let rng = Rng.create 5 in
  let d = Discrete.uniform 1 in
  Alcotest.(check int) "only outcome" 0 (Discrete.sample rng d);
  check_float "max prob" 1.0 (Discrete.max_prob d);
  check_float "entropy" 0.0 (Discrete.entropy d)

let test_discrete_entropy () =
  check_float "fair coin" 1.0 (Discrete.entropy (Discrete.uniform 2));
  check_float "uniform 8" 3.0 (Discrete.entropy (Discrete.uniform 8))

let test_discrete_invalid () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Discrete.of_weights: empty support") (fun () ->
      ignore (Discrete.of_weights [||]));
  Alcotest.check_raises "all zero"
    (Invalid_argument "Discrete.of_weights: all weights are zero") (fun () ->
      ignore (Discrete.of_weights [| 0.0; 0.0 |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Discrete.of_weights: negative or NaN weight") (fun () ->
      ignore (Discrete.of_weights [| 1.0; -1.0 |]))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" 1.25 (Stats.variance xs);
  check_float "stddev" (sqrt 1.25) (Stats.stddev xs);
  check_float "min" 1.0 (Stats.minimum xs);
  check_float "max" 4.0 (Stats.maximum xs)

let test_stats_empty_and_singleton () =
  check_float "empty mean" 0.0 (Stats.mean [||]);
  check_float "singleton variance" 0.0 (Stats.variance [| 5.0 |])

let test_stats_percentile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "median" 3.0 (Stats.median xs);
  check_float "p0" 1.0 (Stats.percentile 0.0 xs);
  check_float "p100" 5.0 (Stats.percentile 100.0 xs);
  check_float "p25" 2.0 (Stats.percentile 25.0 xs);
  check_float "interpolated p10" 1.4 (Stats.percentile 10.0 xs);
  (* The input is not mutated. *)
  Alcotest.(check (array (float 0.0))) "input untouched"
    [| 5.0; 1.0; 3.0; 2.0; 4.0 |] xs

let test_stats_relative_error () =
  check_float "plain" 0.1 (Stats.relative_error ~expected:10.0 ~actual:11.0);
  check_float "zero-zero" 0.0 (Stats.relative_error ~expected:0.0 ~actual:0.0);
  Alcotest.(check bool) "zero expected, nonzero actual" true
    (Stats.relative_error ~expected:0.0 ~actual:1.0 = infinity)

let test_stats_acc_matches_batch () =
  let rng = Rng.create 19 in
  let xs = Array.init 1000 (fun _ -> Rng.float rng) in
  let acc = Stats.Acc.create () in
  Array.iter (Stats.Acc.add acc) xs;
  Alcotest.(check int) "count" 1000 (Stats.Acc.count acc);
  check_float "mean agrees" (Stats.mean xs) (Stats.Acc.mean acc) ~eps:1e-12;
  check_float "variance agrees" (Stats.variance xs) (Stats.Acc.variance acc)
    ~eps:1e-9

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_peek_and_length () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check int) "length" 2 (Heap.length h);
  Alcotest.(check (option int)) "peek does not pop" (Some 1) (Heap.peek h)

let test_heap_pop_exn () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "empty pop_exn"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_custom_order () =
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> compare (b : float) a) in
  List.iter (Heap.push h) [ (1.0, "a"); (3.0, "b"); (2.0, "c") ];
  Alcotest.(check (option (pair (float 0.0) string))) "max-heap via cmp"
    (Some (3.0, "b")) (Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:500
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let prop_percentile_within_bounds =
  QCheck.Test.make ~name:"percentile stays within sample bounds" ~count:500
    QCheck.(pair (float_range 0.0 100.0) (array_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.) 100.)))
    (fun (p, xs) ->
      let v = Stats.percentile p xs in
      v >= Stats.minimum xs -. 1e-9 && v <= Stats.maximum xs +. 1e-9)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "ss_prelude"
    [
      ( "rng",
        [
          quick "deterministic per seed" test_rng_deterministic;
          quick "seed sensitivity" test_rng_seed_sensitivity;
          quick "float in [0,1)" test_rng_float_range;
          quick "int bounds" test_rng_int_bounds;
          quick "int_in_range inclusive" test_rng_int_in_range;
          quick "approximate uniformity" test_rng_uniformity;
          quick "split independence" test_rng_split_independent;
          quick "shuffle is a permutation" test_rng_shuffle_permutation;
          quick "invalid arguments" test_rng_invalid_args;
        ] );
      ( "dist",
        [
          quick "deterministic sampling" test_dist_deterministic;
          quick "sample means converge" test_dist_means;
          quick "analytic moments" test_dist_analytic_moments;
          quick "samples are non-negative" test_dist_non_negative;
          quick "scaling" test_dist_scale;
          quick "string round-trip" test_dist_string_roundtrip;
          quick "parse errors" test_dist_parse_errors;
          quick "bare float parses as deterministic" test_dist_bare_float;
        ] );
      ( "discrete",
        [
          quick "weight normalization" test_discrete_normalization;
          quick "zipf law" test_discrete_zipf;
          quick "sampling frequencies" test_discrete_sampling_frequencies;
          quick "singleton support" test_discrete_singleton;
          quick "entropy" test_discrete_entropy;
          quick "invalid weights" test_discrete_invalid;
        ] );
      ( "stats",
        [
          quick "basic moments" test_stats_basic;
          quick "empty and singleton" test_stats_empty_and_singleton;
          quick "percentiles" test_stats_percentile;
          quick "relative error" test_stats_relative_error;
          quick "streaming accumulator" test_stats_acc_matches_batch;
        ] );
      ( "heap",
        [
          quick "ordering" test_heap_ordering;
          quick "peek and length" test_heap_peek_and_length;
          quick "pop_exn on empty" test_heap_pop_exn;
          quick "custom comparison" test_heap_custom_order;
        ] );
      ( "properties",
        [ prop prop_heap_sorts; prop prop_percentile_within_bounds ] );
    ]
