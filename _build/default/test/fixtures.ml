(* Shared topology fixtures for the test suites. All service times are in
   seconds; the paper quotes them in milliseconds. *)

open Ss_topology

let ms x = x /. 1e3

(* The six-operator topology of the paper's Fig. 11, with the edge set
   reconstructed from Tables 1-2:
     1->2 @0.7, 1->3 @0.3, 3->4 @0.5, 3->5 @0.5, 5->4 @0.35, 5->6 @0.65,
     4->6 @1.0, 2->6 @1.0
   (vertices renumbered 0-based). [service_times_ms] has one entry per
   vertex. *)
let fig11 service_times_ms =
  let ops =
    Array.of_list
      (List.mapi
         (fun i t -> Operator.make ~service_time:(ms t) (Printf.sprintf "op%d" (i + 1)))
         service_times_ms)
  in
  Topology.create_exn ops
    [
      (0, 1, 0.7);
      (0, 2, 0.3);
      (2, 3, 0.5);
      (2, 4, 0.5);
      (4, 3, 0.35);
      (4, 5, 0.65);
      (3, 5, 1.0);
      (1, 5, 1.0);
    ]

(* Service times of Table 1 (fusion feasible) and Table 2 (fusion creates a
   bottleneck). *)
let table1 () = fig11 [ 1.0; 1.2; 0.7; 2.0; 1.5; 0.2 ]
let table2 () = fig11 [ 1.0; 1.2; 1.5; 2.7; 2.2; 0.2 ]

(* A plain pipeline source -> a -> b -> c with the given service times. *)
let pipeline service_times_ms =
  let ops =
    Array.of_list
      (List.mapi
         (fun i t ->
           Operator.make ~service_time:(ms t) (Printf.sprintf "stage%d" i))
         service_times_ms)
  in
  let edges =
    List.init (Array.length ops - 1) (fun i -> (i, i + 1, 1.0))
  in
  Topology.create_exn ops edges

(* Diamond: source fans out to two branches that rejoin at a sink.
   src -> a @pa, src -> b @(1-pa), a -> sink, b -> sink. *)
let diamond ~pa ~t_src ~t_a ~t_b ~t_sink =
  let ops =
    [|
      Operator.make ~service_time:(ms t_src) "src";
      Operator.make ~service_time:(ms t_a) "a";
      Operator.make ~service_time:(ms t_b) "b";
      Operator.make ~service_time:(ms t_sink) "sink";
    |]
  in
  Topology.create_exn ops
    [ (0, 1, pa); (0, 2, 1.0 -. pa); (1, 3, 1.0); (2, 3, 1.0) ]
