(* Tests for the code generator: structure of the emitted program, catalog
   resolution vs cost-faithful stubs, and project writing. *)

open Ss_topology

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_contains what needle haystack =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %S in output" what needle)
    true (contains ~needle haystack)

let check_absent what needle haystack =
  Alcotest.(check bool)
    (Printf.sprintf "%s: did not expect %S" what needle)
    true
    (not (contains ~needle haystack))

let simple_topology () =
  Topology.create_exn
    [|
      Operator.make ~service_time:1e-3 "source";
      (* "identity" is a catalog name: must resolve, not stub. *)
      Operator.make ~service_time:0.5e-3 "identity#1";
      (* unknown class: must fall back to the stub. *)
      Operator.make ~service_time:2e-3 "proprietary_scorer#2";
    |]
    [ (0, 1, 1.0); (1, 2, 1.0) ]

let test_program_structure () =
  let code = Ss_codegen.Codegen.program (simple_topology ()) in
  check_contains "topology binding" "let topology =" code;
  check_contains "create call" "Ss_topology.Topology.create_exn" code;
  check_contains "edges" "(0, 1, 1.);" code;
  check_contains "registry" "let registry = function" code;
  check_contains "executor" "Ss_runtime.Executor.run" code;
  check_contains "source stream" "Ss_workload.Stream_gen.tuples" code;
  check_contains "metrics printing" "source rate" code

let test_catalog_vs_stub_resolution () =
  let code = Ss_codegen.Codegen.program (simple_topology ()) in
  check_contains "catalog lookup" "Ss_operators.Catalog.find_exn \"identity\"" code;
  check_contains "stub for unknown class" "stub ~state_kind" code;
  check_contains "stub class name" "\"proprietary_scorer\"" code

let test_float_literals_valid () =
  (* Integral floats must render with a trailing dot, or OCaml reads ints. *)
  let ops =
    [|
      Operator.make ~service_time:1.0 "source";
      Operator.make ~service_time:2.0 ~output_selectivity:3.0 "x#1";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let code = Ss_codegen.Codegen.program t in
  check_contains "integral service time" "~service_time:1." code;
  check_absent "bare integer selectivity" "~output_selectivity:3\n" code

let test_kinds_and_distributions_rendered () =
  let keys = Ss_prelude.Discrete.of_weights [| 0.75; 0.25 |] in
  let ops =
    [|
      Operator.make ~service_time:1e-3 "source";
      Operator.make
        ~kind:(Operator.Partitioned_stateful keys)
        ~dist:(Ss_prelude.Dist.Exponential 2e-3)
        ~replicas:3 ~service_time:2e-3 "keyed#1";
      Operator.make ~kind:Operator.Stateful ~service_time:1e-3 "join#2";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let code = Ss_codegen.Codegen.program t in
  check_contains "partitioned kind" "Partitioned_stateful" code;
  check_contains "key weights" "Ss_prelude.Discrete.of_weights [| 0.75; 0.25 |]" code;
  check_contains "exponential dist" "Ss_prelude.Dist.Exponential" code;
  check_contains "stateful kind" "Ss_topology.Operator.Stateful" code;
  check_contains "replicas" "~replicas:3" code

let test_fused_groups_rendered () =
  let t = Fixtures.table1 () in
  let code = Ss_codegen.Codegen.program ~fused:[ [ 2; 3; 4 ] ] t in
  check_contains "fused option" "~fused:[ [ 2; 3; 4 ] ]" code;
  let without = Ss_codegen.Codegen.program t in
  check_absent "no fused option by default" "~fused:" without

let test_tuples_parameter () =
  let code = Ss_codegen.Codegen.program ~tuples:1234 (simple_topology ()) in
  check_contains "stream length" "1234" code

let test_dune_stanza () =
  let stanza = Ss_codegen.Codegen.dune_stanza ~name:"my_pipeline" in
  check_contains "executable name" "(name my_pipeline)" stanza;
  check_contains "runtime dependency" "ss_runtime" stanza

let test_write_project () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ss_codegen_test_%d" (Unix.getpid ()))
  in
  Ss_codegen.Codegen.write_project ~dir ~name:"pipeline" (simple_topology ());
  let read path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let ml = read (Filename.concat dir "pipeline.ml") in
  let dune = read (Filename.concat dir "dune") in
  check_contains "module content" "let topology =" ml;
  check_contains "dune content" "(name pipeline)" dune;
  Sys.remove (Filename.concat dir "pipeline.ml");
  Sys.remove (Filename.concat dir "dune");
  Sys.rmdir dir

let test_generated_program_deterministic () =
  let a = Ss_codegen.Codegen.program (simple_topology ()) in
  let b = Ss_codegen.Codegen.program (simple_topology ()) in
  Alcotest.(check string) "same input, same output" a b

let test_roundtrip_topology_through_program () =
  (* The operator table in the generated program must reflect the input
     exactly: spot-check a service time rendered at full precision. *)
  let t =
    Topology.create_exn
      [|
        Operator.make ~service_time:1e-3 "source";
        Operator.make ~service_time:0.0012345678901234567 "x#1";
      |]
      [ (0, 1, 1.0) ]
  in
  let code = Ss_codegen.Codegen.program t in
  check_contains "full precision" "0.0012345678901234567" code

(* ------------------------------------------------------------------ *)
(* Plan: direct deployment *)

let test_plan_resolves_catalog () =
  let op = Operator.make ~service_time:1e-3 "identity#3" in
  let b = Ss_codegen.Plan.resolve op in
  Alcotest.(check string) "catalog behavior" "identity" b.Ss_operators.Behavior.name

let test_plan_stub_for_unknown () =
  let op =
    Operator.make ~service_time:0.2e-3 ~output_selectivity:2.0 "custom_scorer#1"
  in
  let b = Ss_codegen.Plan.resolve op in
  Alcotest.(check string) "stub named after the class" "custom_scorer"
    b.Ss_operators.Behavior.name;
  Alcotest.(check (float 1e-9)) "stub selectivity" 2.0
    b.Ss_operators.Behavior.output_selectivity;
  (* The stub runs and honors its selectivity. *)
  let fn = Ss_operators.Behavior.instantiate b in
  let outs = fn (Ss_operators.Tuple.make [| 1.0 |]) in
  Alcotest.(check int) "two outputs per input" 2 (List.length outs)

let test_plan_runs_topology () =
  let t =
    Topology.create_exn
      [|
        Operator.make ~service_time:1e-5 "source";
        Operator.make ~service_time:1e-5 "identity#1";
        Operator.make ~service_time:1e-5 "sample_1_in_4#2";
      |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let m = Ss_codegen.Plan.run ~tuples:400 t in
  Alcotest.(check int) "source emitted" 400 m.Ss_runtime.Executor.produced.(0);
  Alcotest.(check int) "identity passed through" 400
    m.Ss_runtime.Executor.consumed.(1);
  Alcotest.(check int) "sampler kept a quarter" 100
    m.Ss_runtime.Executor.produced.(2)

let test_plan_runs_fused () =
  let t =
    Topology.create_exn
      [|
        Operator.make ~service_time:1e-5 "source";
        Operator.make ~service_time:1e-5 "identity#1";
        Operator.make ~service_time:1e-5 "identity#2";
      |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let m = Ss_codegen.Plan.run ~tuples:300 ~fused:[ [ 1; 2 ] ] t in
  Alcotest.(check int) "meta-operator processed both stages" 300
    m.Ss_runtime.Executor.consumed.(2)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_codegen"
    [
      ( "program",
        [
          quick "overall structure" test_program_structure;
          quick "catalog vs stub" test_catalog_vs_stub_resolution;
          quick "float literals" test_float_literals_valid;
          quick "kinds and distributions" test_kinds_and_distributions_rendered;
          quick "fused groups" test_fused_groups_rendered;
          quick "tuples parameter" test_tuples_parameter;
          quick "deterministic output" test_generated_program_deterministic;
          quick "precision" test_roundtrip_topology_through_program;
        ] );
      ( "project",
        [ quick "dune stanza" test_dune_stanza; quick "write project" test_write_project ] );
      ( "plan",
        [
          quick "catalog resolution" test_plan_resolves_catalog;
          quick "stub fallback" test_plan_stub_for_unknown;
          quick "end-to-end run" test_plan_runs_topology;
          quick "fused run" test_plan_runs_fused;
        ] );
    ]
