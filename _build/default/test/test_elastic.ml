(* Tests for the elasticity baseline: convergence, downtime accounting, and
   the comparison against SpinStreams' static plan. *)

open Ss_topology
open Ss_elastic

let bottlenecked () = Fixtures.pipeline [ 0.5; 2.0; 0.4 ]
(* Source 2000/s; middle stage sustains 500/s per replica: needs 4. *)

let run_fast ?policy ?max_epochs t =
  Controller.run ?policy ?max_epochs ~epoch_length:5.0
    ~reconfiguration_downtime:1.0 t

let test_converges_to_needed_replicas () =
  let r = run_fast (bottlenecked ()) in
  (match r.Controller.converged_at with
  | None -> Alcotest.fail "did not converge"
  | Some i -> Alcotest.(check bool) "converges within 8 epochs" true (i <= 8));
  let final_replicas = (Topology.operator r.Controller.final 1).Operator.replicas in
  Alcotest.(check bool)
    (Printf.sprintf "enough replicas (%d)" final_replicas)
    true (final_replicas >= 4);
  match List.rev r.Controller.epochs with
  | last :: _ ->
      Alcotest.(check bool) "near-ideal final throughput" true
        (last.Controller.throughput > 1900.0)
  | [] -> Alcotest.fail "no epochs"

let test_balanced_topology_stays_put () =
  let t = Fixtures.pipeline [ 1.0; 0.8; 0.9 ] in
  (* Utilizations 0.8/0.9 sit inside the 0.3-0.9 dead band. *)
  let r = run_fast ~max_epochs:4 t in
  Alcotest.(check (option int)) "no change from the start" (Some 0)
    r.Controller.converged_at;
  List.iter
    (fun e -> Alcotest.(check int) "no resizes" 0 (List.length e.Controller.changes))
    r.Controller.epochs

let test_downtime_charged_after_changes () =
  let r = run_fast (bottlenecked ()) in
  let rec check_pairs = function
    | a :: (b :: _ as rest) ->
        if a.Controller.changes <> [] then
          Alcotest.(check bool) "epoch after a resize loses throughput" true
            (b.Controller.effective_throughput < b.Controller.throughput -. 1e-9);
        check_pairs rest
    | [ last ] ->
        if last.Controller.changes = [] then
          Alcotest.(check (float 1e-6)) "stable epoch is not charged"
            last.Controller.throughput last.Controller.effective_throughput
    | [] -> ()
  in
  check_pairs r.Controller.epochs

let test_stateful_never_resized () =
  let ops =
    [|
      Operator.make ~service_time:0.5e-3 "src";
      Operator.make ~kind:Operator.Stateful ~service_time:2e-3 "state";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let r = run_fast ~max_epochs:4 t in
  List.iter
    (fun e ->
      Alcotest.(check int) "stateful untouched" 0 (List.length e.Controller.changes))
    r.Controller.epochs;
  Alcotest.(check int) "still one replica" 1
    (Topology.operator r.Controller.final 1).Operator.replicas

let test_scale_down_from_overprovisioned () =
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:0.5e-3 ~replicas:8 "worker";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let r = run_fast t in
  Alcotest.(check bool) "replicas released" true
    ((Topology.operator r.Controller.final 1).Operator.replicas < 8)

let test_static_beats_elastic_on_stable_workload () =
  (* The paper's core claim, quantified: over the same horizon, the
     statically optimized configuration processes more items than the
     elastic run that has to discover it (convergence + downtime). *)
  let t = bottlenecked () in
  let elastic = run_fast ~max_epochs:12 t in
  let static_plan = Ss_core.Fission.optimize t in
  let static_throughput =
    let config =
      { Ss_sim.Engine.default_config with Ss_sim.Engine.warmup = 1.0; measure = 5.0 }
    in
    (Ss_sim.Engine.run ~config static_plan.Ss_core.Fission.topology)
      .Ss_sim.Engine.throughput
  in
  let static_items = static_throughput *. elastic.Controller.horizon in
  Alcotest.(check bool)
    (Printf.sprintf "static %.0f items > elastic %.0f items" static_items
       elastic.Controller.items_processed)
    true
    (static_items > elastic.Controller.items_processed);
  (* But elasticity does converge to a comparable configuration. *)
  match List.rev elastic.Controller.epochs with
  | last :: _ ->
      Alcotest.(check bool) "elastic eventually matches" true
        (last.Controller.throughput > 0.95 *. static_throughput)
  | [] -> Alcotest.fail "no epochs"

let test_invalid_epoch_length () =
  Alcotest.check_raises "epoch must outlast downtime"
    (Invalid_argument
       "Controller.run: epoch must outlast the reconfiguration downtime")
    (fun () ->
      ignore
        (Controller.run ~epoch_length:1.0 ~reconfiguration_downtime:2.0
           (bottlenecked ())))

let test_pp_renders () =
  let r = run_fast ~max_epochs:3 (bottlenecked ()) in
  let s = Format.asprintf "%a" Controller.pp r in
  Alcotest.(check bool) "mentions epochs" true (String.length s > 40)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_elastic"
    [
      ( "controller",
        [
          quick "converges on a bottleneck" test_converges_to_needed_replicas;
          quick "balanced topology untouched" test_balanced_topology_stays_put;
          quick "downtime accounting" test_downtime_charged_after_changes;
          quick "stateful operators skipped" test_stateful_never_resized;
          quick "scale down when overprovisioned" test_scale_down_from_overprovisioned;
          quick "static beats elastic on stable load"
            test_static_beats_elastic_on_stable_workload;
          quick "invalid epoch length" test_invalid_epoch_length;
          quick "pretty printing" test_pp_renders;
        ] );
    ]
