let () =
  let impl = if Sys.argv.(1) = "locked" then `Locked else `Lockfree in
  let pool = Ss_sched.Sched.create ~workers:1 ~impl () in
  let flag = Atomic.make false in
  (* task A: yields until B sets the flag *)
  Ss_sched.Sched.spawn pool (fun () ->
      let n = ref 0 in
      while not (Atomic.get flag) && !n < 1_000_000 do
        incr n;
        Ss_sched.Sched.yield ()
      done;
      if Atomic.get flag then print_endline "A: saw flag"
      else print_endline "A: gave up after 1M yields (starved B)");
  Ss_sched.Sched.spawn pool (fun () ->
      Atomic.set flag true;
      print_endline "B: ran");
  Ss_sched.Sched.run pool
