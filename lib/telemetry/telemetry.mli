(** Runtime observability: per-actor event sinks, aggregated latency and
    service-time histograms, per-edge transfer counters, exporters, and the
    feedback path turning measurements back into optimizer inputs.

    The design splits recording from aggregation so the hot path stays
    lock-free: every actor owns a private {!Sink} (histograms plus an edge
    counter array) that only it writes; a {!Collector} created alongside the
    run knows every sink and merges them on demand — periodically from the
    scheduler tick or monitor domain (a {e live} snapshot readable while the
    topology runs) and once more after all actors have joined (the final
    {!report}). Races on a sink's plain fields during a live merge can read
    slightly stale values but never tear or crash (OCaml 5 memory model);
    the final report is exact.

    The feedback path ({!to_profile}, {!measured_topology}) converts a
    report into the same shape {!Ss_workload.Profiler} produces from
    offline profiling, so Algorithm 1 can re-predict throughput from live
    measurements and the optimizer can re-run on a measured twin of the
    topology. *)

type report = {
  latency : Histogram.t array;
      (** Per topology vertex: distribution of tuple age — time since the
          source emitted the tuple — sampled when the vertex's behavior
          starts processing it. Empty for the source. *)
  service : Histogram.t array;
      (** Per vertex: measured wall-clock duration of each behavior
          invocation. Empty for the source. *)
  edges : (int * int * int) list;
      (** [(u, v, tuples)] per topology edge, in {!Ss_topology.Topology.edges}
          order: tuples transferred over that edge. *)
  late : int array;
      (** Per vertex: tuples that arrived behind the merged watermark at an
          event-time operator. All zero when event time is off. *)
  wm_lag : Histogram.t array;
      (** Per vertex: event-time distance (seconds) between the maximum
          timestamp the vertex has seen and the merged watermark, sampled
          at each watermark advance. Empty when event time is off. *)
}

(** Per-actor recording endpoint. Not thread-safe by design: exactly one
    actor writes a given sink. *)
module Sink : sig
  type t

  val record_latency : t -> int -> float -> unit
  (** [record_latency s v age] records a tuple of age [age] seconds arriving
      at vertex [v]'s behavior. *)

  val record_service : t -> int -> float -> unit
  (** [record_service s v dt] records one behavior invocation of [dt]
      seconds at vertex [v]. *)

  val incr_edge : t -> int -> unit
  (** [incr_edge s e] counts one tuple over edge index [e] (the index into
      {!Ss_topology.Topology.edges}). *)

  val add_edge : t -> int -> int -> unit
  (** [add_edge s e k] counts [k] tuples over edge index [e] at once —
      the flush path for compiled fused chains, which accumulate edge
      transfers in plain local arrays and drain them on a cadence and at
      end-of-stream. *)

  val record_late : t -> int -> unit
  (** [record_late s v] counts one tuple arriving behind the watermark at
      vertex [v]. *)

  val record_wm_lag : t -> int -> float -> unit
  (** [record_wm_lag s v lag] records the watermark's event-time lag of
      [lag] seconds behind the max observed timestamp at vertex [v]. *)
end

(** Aggregation point for one run. *)
module Collector : sig
  type t

  val create : Ss_topology.Topology.t -> t

  val sink : t -> Sink.t
  (** Register and return a fresh sink. Safe to call concurrently with
      running actors and live merges (registration is a CAS push), so live
      reconfiguration can create sinks for replicas spawned mid-run. *)

  val refresh : t -> unit
  (** Merge every sink into the cached live snapshot; called periodically
      by the scheduler tick (pool mode) or the monitor domain
      (domain-per-actor mode) when occupancy sampling keeps one running. *)

  val live : t -> report
  (** A snapshot readable while the topology runs: the last {!refresh}
      result when a periodic refresher is active, otherwise a fresh
      on-demand merge (runs with instrumentation ticking disabled don't
      pay for a tick they never read). *)

  val report : t -> report
  (** Merge every sink now and return the aggregate. Exact once the actors
      have joined. *)
end

val delta : since:report -> report -> report
(** [delta ~since current] is the telemetry window between two cumulative
    reports over the same topology ([since] taken earlier): histograms
    subtract per {!Histogram.diff} and edge counters subtract, clamped at
    zero (live snapshots race benignly with recording actors). The elastic
    controller uses this to score each epoch in isolation. *)

val to_profile :
  Ss_topology.Topology.t ->
  consumed:int array ->
  produced:int array ->
  report ->
  Ss_workload.Profiler.profile array
(** Per-vertex measured profile in {!Ss_workload.Profiler} shape:
    [mean_service_time] from the service histogram and [outputs_per_input]
    from the consumed/produced counters. Vertices with no measurements (the
    source, or vertices no tuple reached) fall back to their declared
    descriptor values, and every field is guaranteed finite: a vertex that
    consumed zero tuples cannot produce a NaN/inf selectivity, and a
    degenerate declared selectivity falls back to 1. *)

val measured_topology :
  Ss_topology.Topology.t ->
  consumed:int array ->
  produced:int array ->
  report ->
  Ss_topology.Topology.t
(** The measured twin: same graph, but every measured operator carries its
    measured mean service time and output selectivity (following
    {!Ss_workload.Profiler.to_operator}'s convention: the declared input
    selectivity is kept and the measured outputs-per-input is folded into
    the output selectivity), and out-edge probabilities are re-estimated
    from the edge counters. A vertex keeps its declared probabilities when
    any of its out-edges saw no tuple (a zero probability would be an
    invalid topology), and the source keeps its declared service time (the
    source callback is not a behavior and is never timed). Feeding the twin
    to Algorithm 1 re-predicts throughput from live data. *)

val to_prometheus : Ss_topology.Topology.t -> report -> string
(** Prometheus text exposition: the counter families [ss_edge_tuples_total]
    (labels [src], [dst]) and [ss_late_tuples_total] (label [operator]),
    and the histogram families [ss_latency_seconds], [ss_service_seconds]
    and [ss_watermark_lag_seconds] (label [operator], cumulative [le]
    buckets, [_sum] and [_count] series). *)
