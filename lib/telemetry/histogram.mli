(** Mergeable fixed-bucket log-scale histograms for latency and service-time
    distributions.

    Buckets are powers of two over a microsecond base: bucket [0] holds
    values at or below 1 us, bucket [i] holds values in
    [(2^(i-1), 2^i] us], and the last bucket collects the overflow above
    ~134 s. The layout is identical for every histogram, so merging is a
    plain element-wise sum — per-actor histograms recorded without locks can
    be aggregated by a monitor at any time.

    Recording is O(1) with no allocation; a histogram is a few dozen words.
    Quantiles are estimated by linear interpolation inside the matched
    bucket (lower bound 0 for bucket 0, the observed maximum for the
    overflow bucket), so they are exact at bucket boundaries and never
    exceed the observed maximum. *)

type t

val create : unit -> t
(** An empty histogram. *)

val record : t -> float -> unit
(** [record t x] adds one observation of [x] seconds. Negative and NaN
    values are clamped to [0.] (they arise only from clock steps). *)

val count : t -> int
(** Observations recorded. *)

val sum : t -> float
(** Sum of all recorded values, in seconds. *)

val mean : t -> float
(** [sum / count]; [0.] when empty. *)

val max_value : t -> float
(** Largest recorded value; [0.] when empty. *)

val is_empty : t -> bool

val merge_into : into:t -> t -> unit
(** Element-wise sum of counts; [sum] and [max_value] combine likewise.
    Associative and commutative up to float rounding of [sum]. *)

val merge : t -> t -> t
(** Fresh histogram holding both inputs' observations. *)

val copy : t -> t

val diff : since:t -> t -> t
(** [diff ~since t] is the window of observations recorded between the
    [since] snapshot and [t] (both cumulative, [since] taken earlier):
    bucket counts and [sum] subtract (clamped at zero, so a racy live
    snapshot can never yield a negative window), while [max_value] keeps
    [t]'s cumulative maximum — an upper bound for the window. Used for
    per-epoch telemetry in the elastic controller. *)

val reset : t -> unit
(** Forget every observation (used at warmup boundaries). *)

val percentile : t -> float -> float
(** [percentile t q] with [q] in [[0, 1]]: the estimated value below which
    a fraction [q] of the observations fall. Monotone in [q]; returns [0.]
    when empty. *)

type snapshot = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

val snapshot : t -> snapshot

(** {2 Bucket layout} — exposed for exporters and tests. *)

val num_buckets : int
(** Total buckets including the overflow bucket. *)

val bucket_index : float -> int
(** The bucket an observation falls into. *)

val bucket_upper : int -> float
(** Inclusive upper bound of a bucket in seconds; [infinity] for the
    overflow bucket. *)

val bucket_counts : t -> int array
(** Copy of the per-bucket counts, length {!num_buckets}. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
