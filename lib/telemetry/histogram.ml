(* Fixed log2-scale buckets over a 1 us base. 28 boundaries cover 1 us to
   ~134 s; one extra bucket collects the overflow. The layout is a module
   constant so any two histograms merge bucket-by-bucket. *)

let base = 1e-6
let log_buckets = 28
let num_buckets = log_buckets + 1

(* bounds.(i) = base * 2^i, the inclusive upper bound of bucket i. *)
let bounds = Array.init log_buckets (fun i -> base *. (2. ** float_of_int i))

type t = {
  counts : int array;  (* length [num_buckets]; last slot is overflow *)
  mutable count : int;
  stats : float array;  (* [| sum; max |]: float-array cells mutate without
                           boxing, keeping [record] allocation-free *)
}

let create () =
  { counts = Array.make num_buckets 0; count = 0; stats = [| 0.0; 0.0 |] }

(* Binary search over the bounds: ~5 float compares, no transcendental C
   call and no allocation — [record] sits on the actors' timed path. *)
let bucket_index x =
  if not (x > base) (* includes NaN, negatives and the first bucket *) then 0
  else if x > bounds.(log_buckets - 1) then log_buckets
  else begin
    let lo = ref 0 and hi = ref (log_buckets - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if x > bounds.(mid) then lo := mid + 1 else hi := mid
    done;
    !lo
  end

let bucket_upper i =
  if i < 0 || i >= num_buckets then invalid_arg "Histogram.bucket_upper"
  else if i = log_buckets then infinity
  else bounds.(i)

let record t x =
  let x = if Float.is_nan x || x < 0.0 then 0.0 else x in
  let i = bucket_index x in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.stats.(0) <- t.stats.(0) +. x;
  if x > t.stats.(1) then t.stats.(1) <- x

let count t = t.count
let sum t = t.stats.(0)
let mean t = if t.count = 0 then 0.0 else t.stats.(0) /. float_of_int t.count
let max_value t = t.stats.(1)
let is_empty t = t.count = 0

let merge_into ~into t =
  for i = 0 to num_buckets - 1 do
    into.counts.(i) <- into.counts.(i) + t.counts.(i)
  done;
  into.count <- into.count + t.count;
  into.stats.(0) <- into.stats.(0) +. t.stats.(0);
  if t.stats.(1) > into.stats.(1) then into.stats.(1) <- t.stats.(1)

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let copy t =
  {
    counts = Array.copy t.counts;
    count = t.count;
    stats = Array.copy t.stats;
  }

let reset t =
  Array.fill t.counts 0 num_buckets 0;
  t.count <- 0;
  t.stats.(0) <- 0.0;
  t.stats.(1) <- 0.0

let bucket_counts t = Array.copy t.counts

(* Epoch windows: the elastic controller snapshots a cumulative histogram at
   an epoch boundary and subtracts it from the next snapshot. Counts are
   clamped at zero so a racy live snapshot (taken while actors record) can
   never produce a negative window; [max] keeps the cumulative maximum — the
   per-window maximum is not recoverable from bucket counts alone, and a
   monotone upper bound is what percentile clamping needs. *)
let diff ~since t =
  let counts =
    Array.init num_buckets (fun i -> max 0 (t.counts.(i) - since.counts.(i)))
  in
  {
    counts;
    count = Array.fold_left ( + ) 0 counts;
    stats = [| Float.max 0.0 (t.stats.(0) -. since.stats.(0)); t.stats.(1) |];
  }

let percentile t q =
  if t.count = 0 then 0.0
  else begin
    let max_v = t.stats.(1) in
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int t.count in
    let rec go i cum =
      if i >= num_buckets then max_v
      else begin
        let here = t.counts.(i) in
        let cum' = cum +. float_of_int here in
        if here > 0 && cum' >= rank then begin
          let lo = if i = 0 then 0.0 else bounds.(i - 1) in
          let hi = if i = log_buckets then max_v else bounds.(i) in
          let hi = Float.min hi max_v in
          let within = Float.max 0.0 ((rank -. cum) /. float_of_int here) in
          Float.min max_v (lo +. ((hi -. lo) *. within))
        end
        else go (i + 1) cum'
      end
    in
    go 0 0.0
  end

type snapshot = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let snapshot t =
  let mean = mean t in
  {
    count = t.count;
    mean;
    p50 = percentile t 0.50;
    p95 = percentile t 0.95;
    p99 = percentile t 0.99;
    max = t.stats.(1);
  }

let pp_snapshot ppf s =
  Format.fprintf ppf
    "@[<h>n=%d mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus@]"
    s.count (s.mean *. 1e6) (s.p50 *. 1e6) (s.p95 *. 1e6) (s.p99 *. 1e6)
    (s.max *. 1e6)
