open Ss_topology

type report = {
  latency : Histogram.t array;
  service : Histogram.t array;
  edges : (int * int * int) list;
  late : int array;
  wm_lag : Histogram.t array;
}

module Sink = struct
  (* Histograms are created on first record: an actor only ever records at
     its own vertex, so eager per-vertex arrays would allocate (and keep
     live, slowing the GC for the whole run) n times more histograms than
     are used — measurably expensive when a run itself lasts milliseconds. *)
  type t = {
    latency : Histogram.t option array;
    service : Histogram.t option array;
    edge_counts : int array;
    late : int array;
    wm_lag : Histogram.t option array;
  }

  let hist (arr : Histogram.t option array) v =
    match arr.(v) with
    | Some h -> h
    | None ->
        let h = Histogram.create () in
        arr.(v) <- Some h;
        h

  let record_latency t v x = Histogram.record (hist t.latency v) x
  let record_service t v x = Histogram.record (hist t.service v) x
  let incr_edge t e = t.edge_counts.(e) <- t.edge_counts.(e) + 1

  (* Bulk transfer for compiled fused chains: they accumulate edge counts
     in their own local arrays and flush on a cadence, so the hot loop
     stays free of sink traffic. *)
  let add_edge t e k = if k <> 0 then t.edge_counts.(e) <- t.edge_counts.(e) + k
  let record_late t v = t.late.(v) <- t.late.(v) + 1
  let record_wm_lag t v x = Histogram.record (hist t.wm_lag v) x
end

module Collector = struct
  type t = {
    n : int;
    edge_list : (int * int) list;  (* Topology.edges order *)
    sinks : Sink.t list Atomic.t;
        (* CAS-pushed: live reconfiguration registers sinks for freshly
           spawned replicas while other actors run and the monitor merges. *)
    live : report Atomic.t;
    mutable refreshed : bool;
  }

  let empty_report n edge_list =
    {
      latency = Array.init n (fun _ -> Histogram.create ());
      service = Array.init n (fun _ -> Histogram.create ());
      edges = List.map (fun (u, v) -> (u, v, 0)) edge_list;
      late = Array.make n 0;
      wm_lag = Array.init n (fun _ -> Histogram.create ());
    }

  let create topology =
    let n = Topology.size topology in
    let edge_list =
      List.map (fun (u, v, _) -> (u, v)) (Topology.edges topology)
    in
    {
      n;
      edge_list;
      sinks = Atomic.make [];
      live = Atomic.make (empty_report n edge_list);
      refreshed = false;
    }

  let sink t =
    let s =
      {
        Sink.latency = Array.make t.n None;
        service = Array.make t.n None;
        edge_counts = Array.make (List.length t.edge_list) 0;
        late = Array.make t.n 0;
        wm_lag = Array.make t.n None;
      }
    in
    let rec push () =
      let old = Atomic.get t.sinks in
      if not (Atomic.compare_and_set t.sinks old (s :: old)) then push ()
    in
    push ();
    s

  let aggregate t =
    let acc = empty_report t.n t.edge_list in
    let edge_totals = Array.make (List.length t.edge_list) 0 in
    let merge_opt into = function
      | Some h -> Histogram.merge_into ~into h
      | None -> ()
    in
    List.iter
      (fun (s : Sink.t) ->
        for v = 0 to t.n - 1 do
          merge_opt acc.latency.(v) s.Sink.latency.(v);
          merge_opt acc.service.(v) s.Sink.service.(v);
          merge_opt acc.wm_lag.(v) s.Sink.wm_lag.(v);
          acc.late.(v) <- acc.late.(v) + s.Sink.late.(v)
        done;
        Array.iteri
          (fun e c -> edge_totals.(e) <- edge_totals.(e) + c)
          s.Sink.edge_counts)
      (Atomic.get t.sinks);
    {
      acc with
      edges = List.mapi (fun e (u, v) -> (u, v, edge_totals.(e))) t.edge_list;
    }

  let refresh t =
    t.refreshed <- true;
    Atomic.set t.live (aggregate t)

  (* When a periodic refresher (occupancy monitor or pool tick) feeds the
     cache, readers get the last snapshot for free; otherwise merge on
     demand — a few microseconds, fine for a monitoring read, and much
     cheaper than forcing a 1 ms tick on runs that never look at it. *)
  let live t = if t.refreshed then Atomic.get t.live else aggregate t
  let report t = aggregate t
end

(* Per-epoch window: subtract the snapshot taken at the previous epoch
   boundary from the current cumulative report. Edge counters are clamped at
   zero for the same reason as {!Histogram.diff}: a live snapshot can race
   with the counters it reads. *)
let delta ~since current =
  {
    latency =
      Array.map2 (fun s c -> Histogram.diff ~since:s c) since.latency
        current.latency;
    service =
      Array.map2 (fun s c -> Histogram.diff ~since:s c) since.service
        current.service;
    edges =
      List.map2
        (fun (u, v, c0) (u', v', c1) ->
          assert (u = u' && v = v');
          (u, v, max 0 (c1 - c0)))
        since.edges current.edges;
    late = Array.map2 (fun s c -> max 0 (c - s)) since.late current.late;
    wm_lag =
      Array.map2 (fun s c -> Histogram.diff ~since:s c) since.wm_lag
        current.wm_lag;
  }

(* The profile feeds Algorithm 1 and the elastic controller: a single NaN or
   inf here silently corrupts every downstream prediction, so each field is
   forced finite. [finite_or f fb] also rejects values a division by a
   denormal could produce. *)
let finite_or x fallback = if Float.is_finite x then x else fallback

let to_profile topology ~consumed ~produced report =
  Array.init (Topology.size topology) (fun v ->
      let op = Topology.operator topology v in
      let h = report.service.(v) in
      let samples = Histogram.count h in
      let declared_service = Float.max op.Operator.service_time 1e-9 in
      let mean_service_time =
        if samples > 0 then
          finite_or (Float.max (Histogram.mean h) 1e-9) declared_service
        else declared_service
      in
      let declared_selectivity =
        (* [selectivity_factor] divides by the input selectivity; a
           descriptor hand-built with a denormal input selectivity could
           overflow, so the declared fallback itself falls back to 1. *)
        finite_or (Operator.selectivity_factor op) 1.0
      in
      let outputs_per_input =
        (* A vertex that consumed nothing (short run, fully-filtered branch)
           has no measured selectivity: 0/0 is NaN and n/0 is inf, either of
           which would poison the optimizer. Fall back to the declared
           value. *)
        if consumed.(v) > 0 then
          finite_or
            (float_of_int produced.(v) /. float_of_int consumed.(v))
            declared_selectivity
        else declared_selectivity
      in
      {
        Ss_workload.Profiler.behavior = op.Operator.name;
        samples = (if samples > 0 then samples else consumed.(v));
        mean_service_time;
        outputs_per_input;
      })

let measured_topology topology ~consumed ~produced report =
  let src = Topology.source topology in
  let profiles = to_profile topology ~consumed ~produced report in
  let ops =
    Array.mapi
      (fun v (op : Operator.t) ->
        if v = src || Histogram.is_empty report.service.(v) then op
        else begin
          let p = profiles.(v) in
          let output_selectivity =
            Float.max
              (p.Ss_workload.Profiler.outputs_per_input
              *. op.Operator.input_selectivity)
              0.0
          in
          let op =
            Operator.with_service_time op
              p.Ss_workload.Profiler.mean_service_time
          in
          { op with Operator.output_selectivity }
        end)
      (Topology.operators topology)
  in
  (* Re-estimate out-edge probabilities from the transfer counters; keep the
     declared ones for a vertex whose edges were not all exercised (a zero
     probability would make the topology invalid). *)
  let out_total = Array.make (Topology.size topology) 0 in
  List.iter (fun (u, _, c) -> out_total.(u) <- out_total.(u) + c) report.edges;
  let all_positive = Array.make (Topology.size topology) true in
  List.iter
    (fun (u, _, c) -> if c = 0 then all_positive.(u) <- false)
    report.edges;
  let counts = Hashtbl.create 16 in
  List.iter (fun (u, v, c) -> Hashtbl.replace counts (u, v) c) report.edges;
  let edges =
    List.map
      (fun (u, v, p) ->
        if all_positive.(u) && out_total.(u) > 0 then
          ( u,
            v,
            float_of_int (Hashtbl.find counts (u, v))
            /. float_of_int out_total.(u) )
        else (u, v, p))
      (Topology.edges topology)
  in
  Topology.create_exn ops edges

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition *)

let prom_escape s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_float f =
  if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" f

let add_histogram_family buf ~family ~help topology hists =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" family help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" family);
  Array.iteri
    (fun v h ->
      if not (Histogram.is_empty h) then begin
        let label =
          prom_escape (Topology.operator topology v).Operator.name
        in
        let counts = Histogram.bucket_counts h in
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            cum := !cum + c;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{operator=\"%s\",le=\"%s\"} %d\n"
                 family label
                 (prom_float (Histogram.bucket_upper i))
                 !cum))
          counts;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum{operator=\"%s\"} %s\n" family label
             (prom_float (Histogram.sum h)));
        Buffer.add_string buf
          (Printf.sprintf "%s_count{operator=\"%s\"} %d\n" family label
             (Histogram.count h))
      end)
    hists

let to_prometheus topology report =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "# HELP ss_edge_tuples_total Tuples transferred per topology edge.\n";
  Buffer.add_string buf "# TYPE ss_edge_tuples_total counter\n";
  List.iter
    (fun (u, v, c) ->
      Buffer.add_string buf
        (Printf.sprintf "ss_edge_tuples_total{src=\"%s\",dst=\"%s\"} %d\n"
           (prom_escape (Topology.operator topology u).Operator.name)
           (prom_escape (Topology.operator topology v).Operator.name)
           c))
    report.edges;
  add_histogram_family buf ~family:"ss_latency_seconds"
    ~help:
      "Tuple age (seconds since source emission) at behavior start, per \
       operator."
    topology report.latency;
  add_histogram_family buf ~family:"ss_service_seconds"
    ~help:"Behavior invocation duration in seconds, per operator." topology
    report.service;
  Buffer.add_string buf
    "# HELP ss_late_tuples_total Tuples behind the watermark at arrival, \
     per operator.\n";
  Buffer.add_string buf "# TYPE ss_late_tuples_total counter\n";
  Array.iteri
    (fun v c ->
      if c > 0 then
        Buffer.add_string buf
          (Printf.sprintf "ss_late_tuples_total{operator=\"%s\"} %d\n"
             (prom_escape (Topology.operator topology v).Operator.name)
             c))
    report.late;
  add_histogram_family buf ~family:"ss_watermark_lag_seconds"
    ~help:
      "Event-time distance between the max observed timestamp and the \
       merged watermark at each advance, per operator."
    topology report.wm_lag;
  Buffer.contents buf
