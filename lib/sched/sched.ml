type task = unit -> unit

type _ Effect.t +=
  | Suspend : ((unit -> unit) -> bool) -> unit Effect.t
  | Yield : unit Effect.t

let suspend ~register = Effect.perform (Suspend register)
let yield () = Effect.perform Yield

let next_id = Atomic.make 0

(* Which pool+worker the current domain belongs to, so [enqueue] can route
   to the local deque instead of the injection path. *)
let dls_key : (int * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* Worker-count / group-shape resolution shared by both implementations. *)
let resolve_shape ~workers ~groups =
  match groups with
  | Some sizes ->
      if Array.length sizes = 0 then
        invalid_arg "Sched.create: groups must be non-empty";
      Array.iter
        (fun s ->
          if s < 1 then
            invalid_arg "Sched.create: every group needs at least one worker")
        sizes;
      let sum = Array.fold_left ( + ) 0 sizes in
      (match workers with
      | Some w when w <> sum ->
          invalid_arg "Sched.create: workers must equal the sum of groups"
      | _ -> ());
      (sum, Array.copy sizes)
  | None ->
      let w =
        match workers with
        | Some w ->
            if w < 1 then invalid_arg "Sched.create: workers must be >= 1";
            w
        | None -> Stdlib.max 1 (Domain.recommended_domain_count ())
      in
      (w, [| w |])

(* Interruptible tick loop shared by both implementations: call [fn] every
   [interval] seconds until [finished ()]; the pipe read end becomes
   readable when the pool drains, so the final sleep is cut short instead
   of delaying join (and telemetry merge) by up to one full interval. *)
let tick_loop ~finished ~wake_rd interval fn =
  let rec loop () =
    if not (finished ()) then begin
      fn ();
      (match Unix.select [ wake_rd ] [] [] interval with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

let notify_tick = function
  | Some wr -> (
      try ignore (Unix.write wr (Bytes.of_string "!") 0 1)
      with Unix.Unix_error _ -> ())
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Chase–Lev work-stealing deque (Chase & Lev, SPAA '05), monomorphic
   over [task]. The owner pushes/pops at the bottom without locks;
   thieves CAS the top. OCaml's SC atomics stand in for the seq_cst
   fences of the C11 formulation (Lê et al., PPoPP '13): [top] is
   monotonic, and [pop] publishes the decremented [bottom] before
   reading [top], which is what makes the owner/thief race on the last
   element resolve through the single CAS.

   The circular buffer grows geometrically. A replaced buffer is never
   written again, and growth preserves every live entry at the same
   logical index, so a thief that read a stale buffer still sees the
   correct value for any index whose CAS it can win. Consumed slots are
   overwritten with [dummy] by the owner so the pool does not retain
   completed continuations. *)
module Deque : sig
  type t

  val create : unit -> t
  val push : t -> task -> unit
  val pop : t -> task option
  val steal : t -> task option

  (* Plain loads only — a racy emptiness hint for idle-spin probes. *)
  val nonempty : t -> bool
end = struct
  let min_capacity = 64
  let dummy : task = fun () -> ()

  type t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    buf : task array Atomic.t;
  }

  let create () =
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      buf = Atomic.make (Array.make min_capacity dummy);
    }

  let slot a i = i land (Array.length a - 1)

  let grow a t b =
    let a' = Array.make (2 * Array.length a) dummy in
    for i = t to b - 1 do
      a'.(slot a' i) <- a.(slot a i)
    done;
    a'

  let push q x =
    let b = Atomic.get q.bottom in
    let t = Atomic.get q.top in
    let a = Atomic.get q.buf in
    let a =
      if b - t = Array.length a then begin
        let a' = grow a t b in
        Atomic.set q.buf a';
        a'
      end
      else a
    in
    a.(slot a b) <- x;
    Atomic.set q.bottom (b + 1)

  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      (* Deque was empty: restore bottom. *)
      Atomic.set q.bottom t;
      None
    end
    else
      let a = Atomic.get q.buf in
      let x = a.(slot a b) in
      if b > t then begin
        a.(slot a b) <- dummy;
        Some x
      end
      else begin
        (* Single element left: race thieves for it on [top]. *)
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (t + 1);
        if won then begin
          a.(slot a b) <- dummy;
          Some x
        end
        else None
      end

  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if b - t <= 0 then None
    else
      let a = Atomic.get q.buf in
      let x = a.(slot a t) in
      if Atomic.compare_and_set q.top t (t + 1) then Some x else None

  let nonempty q = Atomic.get q.bottom - Atomic.get q.top > 0
end

(* ------------------------------------------------------------------ *)
(* Lock-free locality-aware pool: the default implementation. *)
module Lockfree = struct
  (* One parked worker. [state] is 0 = waiting, 1 = notified,
     2 = cancelled (the parker found work while double-checking); the CAS
     on [state] decides who owns the ticket, the mutex/condvar pair only
     carries the actual sleep. *)
  type parker = { state : int Atomic.t; pm : Mutex.t; pc : Condition.t }

  (* Sleep slot for a dormant reserve worker: unlike a [parker] ticket it
     is permanent, and a wakeup means "your mode changed", not "work
     arrived". *)
  type dormitory = { dm : Mutex.t; dc : Condition.t }

  type t = {
    id : int;
    nworkers : int; (* total slots: base + reserve *)
    base : int; (* workers active from the start *)
    base_sizes : int array; (* the created per-group shape, sans reserve *)
    group_of : int array; (* worker index -> group *)
    members : int array array; (* group -> worker indices *)
    deques : Deque.t array; (* one per worker *)
    injects : task list Atomic.t array; (* per-group Treiber stacks *)
    parked : parker list Atomic.t array; (* per-group parked workers *)
    searching : int Atomic.t; (* workers in the spin/steal phase *)
    pending : int Atomic.t;
    finished : bool Atomic.t;
    error : exn option Atomic.t;
    (* Dynamic admission: reserve slots [base, nworkers) each carry a mode
       atomic (1 = active, 0 = dormant) and a dormitory to sleep in. Their
       domains are spawned with everyone else's and immediately go dormant;
       [add_workers]/[retire_workers] CAS the mode, so growth and shrink
       never spawn or join a domain mid-run. *)
    mode : int Atomic.t array; (* length nworkers; base slots pinned to 1 *)
    dorms : dormitory array; (* length nworkers - base *)
    active : int Atomic.t;
    rmutex : Mutex.t; (* runner's finish wait, no-tick mode *)
    rcond : Condition.t;
    mutable tick_wr : Unix.file_descr option;
    mutable started : bool;
    mutable initial : (int * task) list;
  }

  let create ~nworkers ~sizes ~reserve =
    let slots = nworkers + reserve in
    let ngroups = Array.length sizes in
    let group_of = Array.make slots 0 in
    let members =
      let next = ref 0 in
      Array.init ngroups (fun g ->
          Array.init sizes.(g) (fun _ ->
              let w = !next in
              incr next;
              group_of.(w) <- g;
              w))
    in
    (* Reserve slots live in group 0 and are listed as stealing victims, so
       work they leave behind (or the initial deal never sends them — see
       [run]) is always reachable from active workers. *)
    members.(0) <-
      Array.append members.(0)
        (Array.init reserve (fun i -> nworkers + i));
    {
      id = Atomic.fetch_and_add next_id 1;
      nworkers = slots;
      base = nworkers;
      base_sizes = Array.copy sizes;
      group_of;
      members;
      deques = Array.init slots (fun _ -> Deque.create ());
      injects = Array.init ngroups (fun _ -> Atomic.make []);
      parked = Array.init ngroups (fun _ -> Atomic.make []);
      searching = Atomic.make 0;
      pending = Atomic.make 0;
      finished = Atomic.make false;
      error = Atomic.make None;
      mode = Array.init slots (fun w -> Atomic.make (if w < nworkers then 1 else 0));
      dorms =
        Array.init reserve (fun _ ->
            { dm = Mutex.create (); dc = Condition.create () });
      active = Atomic.make nworkers;
      rmutex = Mutex.create ();
      rcond = Condition.create ();
      tick_wr = None;
      started = false;
      initial = [];
    }

  let ngroups t = Array.length t.members

  (* --- Treiber stacks (injection and parked lists) --- *)

  let rec stack_push s x =
    let old = Atomic.get s in
    if not (Atomic.compare_and_set s old (x :: old)) then stack_push s x

  let rec stack_pop s =
    match Atomic.get s with
    | [] -> None
    | x :: rest as old ->
        if Atomic.compare_and_set s old rest then Some x else stack_pop s

  (* --- Idle protocol: wake exactly one parked worker per enqueue --- *)

  let unpark p =
    if Atomic.compare_and_set p.state 0 1 then begin
      Mutex.lock p.pm;
      Condition.signal p.pc;
      Mutex.unlock p.pm;
      true
    end
    else false (* ticket already notified or cancelled *)

  let rec wake_from stack =
    match stack_pop stack with
    | None -> false
    | Some p -> if unpark p then true else wake_from stack

  (* Prefer a sleeper from the task's own group; failing that, wake any
     sleeper — foreign workers steal cross-group, so the task is still
     picked up. When nobody is parked this is [ngroups] atomic reads. *)
  let wake_one t group =
    if not (wake_from t.parked.(group)) then begin
      let g = ngroups t in
      let rec scan k =
        if k < g then
          if not (wake_from t.parked.((group + k) mod g)) then scan (k + 1)
      in
      scan 1
    end

  (* Searching throttle: skip the unpark when some worker is already in
     the spin/steal phase. The handoff cannot be lost: the task is
     published before [searching] is read, every searcher's scans happen
     before it decrements the counter, and a searcher that gives up
     always posts a park ticket and then rescans everything — one side
     of the race sees the other. The worst case is a burst landing on a
     single searcher, which re-wakes a peer on its way out (see
     [worker]). *)
  let wake t group = if Atomic.get t.searching = 0 then wake_one t group

  (* --- Enqueue: route to the local deque when the calling domain is a
     worker of the task's group, otherwise to the group's injection
     stack. The task is published (deque/stack write) before the parked
     list is scanned, while a parker pushes its ticket before its final
     rescan, so under SC atomics either the scan sees the ticket or the
     rescan sees the task — no lost wakeup. --- *)

  let enqueue t ~group task =
    (match Domain.DLS.get dls_key with
    | Some (id, w) when id = t.id && t.group_of.(w) = group ->
        Deque.push t.deques.(w) task
    | _ -> stack_push t.injects.(group) task);
    wake t group

  (* --- Finish / error bookkeeping --- *)

  let record_error t e =
    let rec go () =
      match Atomic.get t.error with
      | Some _ -> ()
      | None ->
          if not (Atomic.compare_and_set t.error None (Some e)) then go ()
    in
    go ()

  let finish t =
    Atomic.set t.finished true;
    Array.iter
      (fun stack ->
        let rec drain () =
          match stack_pop stack with
          | None -> ()
          | Some p ->
              ignore (unpark p);
              drain ()
        in
        drain ())
      t.parked;
    (* Dormant reserve workers sleep on their dormitory, not on a parker
       ticket: wake them so their domains exit and [run] can join. *)
    Array.iter
      (fun d ->
        Mutex.lock d.dm;
        Condition.broadcast d.dc;
        Mutex.unlock d.dm)
      t.dorms;
    Mutex.lock t.rmutex;
    Condition.broadcast t.rcond;
    Mutex.unlock t.rmutex;
    notify_tick t.tick_wr

  let task_done t =
    if Atomic.fetch_and_add t.pending (-1) = 1 then finish t

  (* Run a task body under the effect handler that implements parking. *)
  let exec t group body =
    let open Effect.Deep in
    match_with body ()
      {
        retc = (fun () -> task_done t);
        exnc =
          (fun e ->
            record_error t e;
            task_done t);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    (* [register] may fire [resume] concurrently with (or
                       even before) returning [true]; the flag makes the
                       two resumption paths mutually exclusive. *)
                    let resumed = Atomic.make false in
                    let resume () =
                      if not (Atomic.exchange resumed true) then
                        enqueue t ~group (fun () -> continue k ())
                    in
                    if register resume then () else continue k ())
            | Yield ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    enqueue t ~group (fun () -> continue k ()))
            | _ -> None);
      }

  let spawn ?group t body =
    let g =
      match group with
      | Some g ->
          if g < 0 || g >= ngroups t then
            invalid_arg "Sched.spawn: group out of range";
          g
      | None -> (
          match Domain.DLS.get dls_key with
          | Some (id, w) when id = t.id -> t.group_of.(w)
          | _ -> 0)
    in
    Atomic.incr t.pending;
    let task () = exec t g body in
    if t.started then enqueue t ~group:g task
    else t.initial <- (g, task) :: t.initial

  (* --- Task discovery --- *)

  (* Drain the group's injection stack into the calling worker's deque:
     oldest entry runs now, the rest keep arrival order in the deque so
     thieves (which steal from the top = oldest end) see FIFO-ish order. *)
  let drain_inject t w inj =
    if Atomic.get inj == [] then None
    else
      match List.rev (Atomic.exchange inj []) with
      | [] -> None
      | task :: rest ->
          List.iter (Deque.push t.deques.(w)) rest;
          Some task

  (* Take one task from a foreign group's injection stack, putting the
     remainder back so the pinned group keeps its work. *)
  let steal_inject inj =
    if Atomic.get inj == [] then None
    else
      match List.rev (Atomic.exchange inj []) with
      | [] -> None
      | task :: rest ->
          (match List.rev rest with
          | [] -> ()
          | back ->
              let rec put () =
                let old = Atomic.get inj in
                if not (Atomic.compare_and_set inj old (back @ old)) then
                  put ()
              in
              put ());
          Some task

  let steal_from t w victims =
    let m = Array.length victims in
    let rec go k =
      if k >= m then None
      else
        let v = victims.((w + k) mod m) in
        if v = w then go (k + 1)
        else
          match Deque.steal t.deques.(v) with
          | Some _ as r -> r
          | None -> go (k + 1)
    in
    go 0

  (* Local deque, own group's injects, group-local victims, then foreign
     groups (nearest first): locality-ordered but work-conserving. *)
  let find_once t w g =
    match Deque.pop t.deques.(w) with
    | Some _ as r -> r
    | None -> (
        match drain_inject t w t.injects.(g) with
        | Some _ as r -> r
        | None -> (
            match steal_from t w t.members.(g) with
            | Some _ as r -> r
            | None ->
                let n = ngroups t in
                let rec go k =
                  if k >= n then None
                  else
                    let j = (g + k) mod n in
                    match steal_from t w t.members.(j) with
                    | Some _ as r -> r
                    | None -> (
                        match steal_inject t.injects.(j) with
                        | Some _ as r -> r
                        | None -> go (k + 1))
                in
                go 1))

  (* --- Parking: push a ticket, re-scan everything, then sleep. The
     rescan after publishing the ticket closes the race with [enqueue]
     (publish task, then scan parked lists). Spurious wakeups are safe:
     a woken worker always rescans before parking again. --- *)

  let park t w g =
    let p =
      { state = Atomic.make 0; pm = Mutex.create (); pc = Condition.create () }
    in
    stack_push t.parked.(g) p;
    match find_once t w g with
    | Some _ as r ->
        ignore (Atomic.compare_and_set p.state 0 2);
        r
    | None ->
        if Atomic.get t.finished then begin
          ignore (Atomic.compare_and_set p.state 0 2);
          None
        end
        else begin
          Mutex.lock p.pm;
          while Atomic.get p.state = 0 && not (Atomic.get t.finished) do
            Condition.wait p.pc p.pm
          done;
          Mutex.unlock p.pm;
          None
        end

  (* Read-only emptiness probe used between spin rounds: a full
     [find_once] costs fenced RMWs on every deque and an exchange on
     every injection stack, which is far too expensive to repeat while
     idle — the probe is plain loads only. *)
  let has_work t =
    let g = ngroups t in
    let rec inj i =
      if i >= g then false
      else if Atomic.get t.injects.(i) <> [] then true
      else inj (i + 1)
    in
    let n = Array.length t.deques in
    let rec deq i =
      if i >= n then false
      else if Deque.nonempty t.deques.(i) then true
      else deq (i + 1)
    in
    inj 0 || deq 0

  (* A worker that keeps finding local work still polls its group's
     injection stack periodically so externally-resumed tasks cannot
     starve behind a long local run. *)
  let inject_poll_mask = 63

  (* Short: each round's probe is ~2 loads per deque/stack, but a worker
     that exhausts the spin still pays a full rescan inside [park], so
     long spins only delay the futex sleep that an idle trickle wants. *)
  let spin_rounds = 8

  (* A retiring worker first spills its local deque into the group's
     injection stack (its items stay reachable even while it sleeps —
     thieves do scan reserve deques, but only when searching) and hands
     off with a wakeup, then sleeps until readmitted or the pool drains. *)
  let go_dormant t w g =
    let rec spill () =
      match Deque.pop t.deques.(w) with
      | Some task ->
          stack_push t.injects.(g) task;
          spill ()
      | None -> ()
    in
    spill ();
    wake_one t g;
    let d = t.dorms.(w - t.base) in
    Mutex.lock d.dm;
    while Atomic.get t.mode.(w) = 0 && not (Atomic.get t.finished) do
      Condition.wait d.dc d.dm
    done;
    Mutex.unlock d.dm

  let worker t w () =
    Domain.DLS.set dls_key (Some (t.id, w));
    let g = t.group_of.(w) in
    let activations = ref 0 in
    let next () =
      incr activations;
      if !activations land inject_poll_mask = 0 then
        match drain_inject t w t.injects.(g) with
        | Some _ as r -> r
        | None -> find_once t w g
      else find_once t w g
    in
    (* The spin phase is counted in [searching] (enqueues then skip the
       unpark — see [wake]) and only pays for a real scan when the probe
       sees something. *)
    let search () =
      Atomic.incr t.searching;
      let rec spin k =
        if k = 0 then None
        else begin
          Domain.cpu_relax ();
          if has_work t then
            match next () with Some _ as r -> r | None -> spin (k - 1)
          else spin (k - 1)
        end
      in
      let r = spin spin_rounds in
      Atomic.decr t.searching;
      (match r with
      | Some _ when Atomic.get t.searching = 0 && has_work t ->
          (* Last searcher leaving with a task while more work is
             visible: re-wake one peer so a burst that the throttle
             collapsed onto this worker still ramps back up. *)
          wake_one t g
      | _ -> ());
      r
    in
    let rec loop () =
      if Atomic.get t.finished then ()
      else if Atomic.get t.mode.(w) = 0 then begin
        go_dormant t w g;
        loop ()
      end
      else
        match next () with
        | Some task ->
            task ();
            loop ()
        | None -> (
            match search () with
            | Some task ->
                task ();
                loop ()
            | None ->
                if Atomic.get t.finished then ()
                else (
                  match park t w g with
                  | Some task ->
                      task ();
                      loop ()
                  | None -> loop ()))
    in
    loop ()

  (* --- Dynamic admission over the reserve slots --- *)

  let active_workers t = Atomic.get t.active

  let add_workers t k =
    let n = ref 0 in
    for w = t.base to t.nworkers - 1 do
      if !n < k && Atomic.compare_and_set t.mode.(w) 0 1 then begin
        incr n;
        Atomic.incr t.active;
        let d = t.dorms.(w - t.base) in
        Mutex.lock d.dm;
        Condition.signal d.dc;
        Mutex.unlock d.dm
      end
    done;
    !n

  let retire_workers t k =
    let n = ref 0 in
    for i = 0 to t.nworkers - t.base - 1 do
      let w = t.nworkers - 1 - i in
      if !n < k && Atomic.compare_and_set t.mode.(w) 1 0 then begin
        incr n;
        Atomic.decr t.active
      end
    done;
    (* A retiring worker may be parked on a ticket: drain the parked lists
       so everyone rescans. Active workers that wake spuriously just park
       again — this is the control path, not the hot path. *)
    if !n > 0 then
      Array.iter
        (fun stack ->
          let rec drain () =
            match stack_pop stack with
            | None -> ()
            | Some p ->
                ignore (unpark p);
                drain ()
          in
          drain ())
        t.parked;
    !n

  let run ?tick t =
    if t.started then invalid_arg "Sched.run: pool already ran";
    t.started <- true;
    (* Deal initial tasks round-robin into their group's deques, skipping
       dormant reserve slots (their owners would only spill the tasks back
       to the injection stack on startup). Safe without the owner: workers
       have not been spawned yet. *)
    let rr = Array.make (ngroups t) 0 in
    List.iter
      (fun (g, task) ->
        let ms = t.members.(g) in
        let live =
          if g = 0 then Array.length ms - (t.nworkers - t.base)
          else Array.length ms
        in
        Deque.push t.deques.(ms.(rr.(g) mod live)) task;
        rr.(g) <- rr.(g) + 1)
      (List.rev t.initial);
    t.initial <- [];
    if Atomic.get t.pending = 0 then ()
    else begin
      let pipe =
        match tick with
        | Some _ ->
            let rd, wr = Unix.pipe () in
            t.tick_wr <- Some wr;
            Some (rd, wr)
        | None -> None
      in
      let domains = Array.init t.nworkers (fun w -> Domain.spawn (worker t w)) in
      (match (tick, pipe) with
      | Some (interval, fn), Some (rd, _) ->
          tick_loop ~finished:(fun () -> Atomic.get t.finished) ~wake_rd:rd
            interval fn
      | _ ->
          Mutex.lock t.rmutex;
          while not (Atomic.get t.finished) do
            Condition.wait t.rcond t.rmutex
          done;
          Mutex.unlock t.rmutex);
      Array.iter Domain.join domains;
      (match pipe with
      | Some (rd, wr) ->
          (try Unix.close rd with Unix.Unix_error _ -> ());
          (try Unix.close wr with Unix.Unix_error _ -> ())
      | None -> ());
      match Atomic.get t.error with Some e -> raise e | None -> ()
    end
end

(* ------------------------------------------------------------------ *)
(* The pre-Chase–Lev implementation: a Mutex-guarded Queue per worker, a
   global-mutex injection queue, and a broadcast-on-enqueue wakeup. Kept
   (group-blind) as the differential baseline for BENCH_sched.json; only
   the tick loop shares the prompt-finish fix, since end-of-run latency
   is not part of the measured differential. *)
module Locked = struct
  type t = {
    id : int;
    nworkers : int;
    sizes : int array; (* accepted for interface parity, locality ignored *)
    queues : task Queue.t array;
    qlocks : Mutex.t array;
    inject : task Queue.t;
    mutex : Mutex.t;
    nonempty : Condition.t;
    idlers : int Atomic.t;
    pending : int Atomic.t;
    mutable finished : bool;
    mutable tick_wr : Unix.file_descr option;
    mutable started : bool;
    mutable initial : task list;
    mutable error : exn option;
  }

  let create ~nworkers ~sizes =
    {
      id = Atomic.fetch_and_add next_id 1;
      nworkers;
      sizes = Array.copy sizes;
      queues = Array.init nworkers (fun _ -> Queue.create ());
      qlocks = Array.init nworkers (fun _ -> Mutex.create ());
      inject = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      idlers = Atomic.make 0;
      pending = Atomic.make 0;
      finished = false;
      tick_wr = None;
      started = false;
      initial = [];
      error = None;
    }

  let enqueue t task =
    (match Domain.DLS.get dls_key with
    | Some (id, idx) when id = t.id ->
        Mutex.lock t.qlocks.(idx);
        Queue.push task t.queues.(idx);
        Mutex.unlock t.qlocks.(idx)
    | _ ->
        Mutex.lock t.mutex;
        Queue.push task t.inject;
        Mutex.unlock t.mutex);
    (* Wake sleepers. The idlers counter is incremented under [t.mutex]
       before the final rescan, so either this read sees the idler (and
       broadcasts) or the idler's rescan sees the task — no lost wakeup. *)
    if Atomic.get t.idlers > 0 then begin
      Mutex.lock t.mutex;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mutex
    end

  let task_done t =
    if Atomic.fetch_and_add t.pending (-1) = 1 then begin
      Mutex.lock t.mutex;
      t.finished <- true;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mutex;
      notify_tick t.tick_wr
    end

  let record_error t e =
    Mutex.lock t.mutex;
    if t.error = None then t.error <- Some e;
    Mutex.unlock t.mutex

  let exec t body =
    let open Effect.Deep in
    match_with body ()
      {
        retc = (fun () -> task_done t);
        exnc =
          (fun e ->
            record_error t e;
            task_done t);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let resumed = Atomic.make false in
                    let resume () =
                      if not (Atomic.exchange resumed true) then
                        enqueue t (fun () -> continue k ())
                    in
                    if register resume then () else continue k ())
            | Yield ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    enqueue t (fun () -> continue k ()))
            | _ -> None);
      }

  let spawn ?group t body =
    (match group with
    | Some g when g < 0 || g >= Array.length t.sizes ->
        invalid_arg "Sched.spawn: group out of range"
    | _ -> ());
    Atomic.incr t.pending;
    let task () = exec t body in
    if t.started then enqueue t task else t.initial <- task :: t.initial

  let pop_local t idx =
    Mutex.lock t.qlocks.(idx);
    let task = Queue.take_opt t.queues.(idx) in
    Mutex.unlock t.qlocks.(idx);
    task

  let steal t idx =
    let rec scan k =
      if k >= t.nworkers then None
      else
        let j = (idx + k) mod t.nworkers in
        match pop_local t j with Some _ as r -> r | None -> scan (k + 1)
    in
    scan 1

  (* Under [t.mutex]: injection queue first, then every worker deque.
     Acquiring a qlock while holding [t.mutex] cannot deadlock: no path
     takes [t.mutex] while holding a qlock. *)
  let rescan_locked t =
    match Queue.take_opt t.inject with
    | Some _ as r -> r
    | None ->
        let rec scan j =
          if j >= t.nworkers then None
          else
            match pop_local t j with Some _ as r -> r | None -> scan (j + 1)
        in
        scan 0

  let idle_wait t =
    Mutex.lock t.mutex;
    Atomic.incr t.idlers;
    let rec loop () =
      if t.finished then None
      else
        match rescan_locked t with
        | Some _ as r -> r
        | None ->
            Condition.wait t.nonempty t.mutex;
            loop ()
    in
    let r = loop () in
    Atomic.decr t.idlers;
    Mutex.unlock t.mutex;
    r

  let worker t idx () =
    Domain.DLS.set dls_key (Some (t.id, idx));
    let rec loop () =
      let task =
        match pop_local t idx with
        | Some _ as r -> r
        | None -> (
            match steal t idx with Some _ as r -> r | None -> idle_wait t)
      in
      match task with
      | Some task ->
          task ();
          loop ()
      | None -> () (* pool drained *)
    in
    loop ()

  let is_finished t =
    Mutex.lock t.mutex;
    let v = t.finished in
    Mutex.unlock t.mutex;
    v

  let run ?tick t =
    if t.started then invalid_arg "Sched.run: pool already ran";
    t.started <- true;
    List.iteri
      (fun i task -> Queue.push task t.queues.(i mod t.nworkers))
      (List.rev t.initial);
    t.initial <- [];
    if Atomic.get t.pending = 0 then ()
    else begin
      let pipe =
        match tick with
        | Some _ ->
            let rd, wr = Unix.pipe () in
            t.tick_wr <- Some wr;
            Some (rd, wr)
        | None -> None
      in
      let domains =
        Array.init t.nworkers (fun idx -> Domain.spawn (worker t idx))
      in
      (match (tick, pipe) with
      | Some (interval, fn), Some (rd, _) ->
          tick_loop ~finished:(fun () -> is_finished t) ~wake_rd:rd interval fn
      | _ ->
          Mutex.lock t.mutex;
          while not t.finished do
            Condition.wait t.nonempty t.mutex
          done;
          Mutex.unlock t.mutex);
      Array.iter Domain.join domains;
      (match pipe with
      | Some (rd, wr) ->
          (try Unix.close rd with Unix.Unix_error _ -> ());
          (try Unix.close wr with Unix.Unix_error _ -> ())
      | None -> ());
      match t.error with Some e -> raise e | None -> ()
    end
end

(* ------------------------------------------------------------------ *)

type t = LF of Lockfree.t | LK of Locked.t

let create ?workers ?groups ?(reserve = 0) ?(impl = `Lockfree) () =
  if reserve < 0 then invalid_arg "Sched.create: reserve must be >= 0";
  let nworkers, sizes = resolve_shape ~workers ~groups in
  match impl with
  | `Lockfree -> LF (Lockfree.create ~nworkers ~sizes ~reserve)
  | `Locked -> LK (Locked.create ~nworkers ~sizes)

let workers = function
  | LF t -> t.Lockfree.base
  | LK t -> t.Locked.nworkers

let groups = function
  | LF t -> Array.copy t.Lockfree.base_sizes
  | LK t -> Array.copy t.Locked.sizes

let active_workers = function
  | LF t -> Lockfree.active_workers t
  | LK t -> t.Locked.nworkers

let add_workers t k =
  if k < 0 then invalid_arg "Sched.add_workers: negative count";
  match t with LF t -> Lockfree.add_workers t k | LK _ -> 0

let retire_workers t k =
  if k < 0 then invalid_arg "Sched.retire_workers: negative count";
  match t with LF t -> Lockfree.retire_workers t k | LK _ -> 0

let spawn ?group t body =
  match t with
  | LF t -> Lockfree.spawn ?group t body
  | LK t -> Locked.spawn ?group t body

let run ?tick = function
  | LF t -> Lockfree.run ?tick t
  | LK t -> Locked.run ?tick t
