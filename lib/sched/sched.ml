type task = unit -> unit

type t = {
  id : int;
  nworkers : int;
  (* Per-worker deques, each under its own lock; stealing scans peers. *)
  queues : task Queue.t array;
  qlocks : Mutex.t array;
  (* Injection queue for tasks enqueued from outside the pool's domains
     (initial spawns, wakeups from supervisor/watchdog domains). *)
  inject : task Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  idlers : int Atomic.t;
  (* Tasks spawned but not yet returned/raised. Parked tasks still count:
     the pool drains only when every task has actually finished. *)
  pending : int Atomic.t;
  mutable finished : bool;
  mutable started : bool;
  mutable initial : task list;
  mutable error : exn option;
}

type _ Effect.t +=
  | Suspend : ((unit -> unit) -> bool) -> unit Effect.t
  | Yield : unit Effect.t

let suspend ~register = Effect.perform (Suspend register)
let yield () = Effect.perform Yield

let next_id = Atomic.make 0

(* Which pool+worker the current domain belongs to, so [enqueue] can route
   to the local deque instead of the injection queue. *)
let dls_key : (int * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let create ?workers () =
  let nworkers =
    match workers with
    | Some w ->
        if w < 1 then invalid_arg "Sched.create: workers must be >= 1";
        w
    | None -> Stdlib.max 1 (Domain.recommended_domain_count ())
  in
  {
    id = Atomic.fetch_and_add next_id 1;
    nworkers;
    queues = Array.init nworkers (fun _ -> Queue.create ());
    qlocks = Array.init nworkers (fun _ -> Mutex.create ());
    inject = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    idlers = Atomic.make 0;
    pending = Atomic.make 0;
    finished = false;
    started = false;
    initial = [];
    error = None;
  }

let workers t = t.nworkers

let enqueue t task =
  (match Domain.DLS.get dls_key with
  | Some (id, idx) when id = t.id ->
      Mutex.lock t.qlocks.(idx);
      Queue.push task t.queues.(idx);
      Mutex.unlock t.qlocks.(idx)
  | _ ->
      Mutex.lock t.mutex;
      Queue.push task t.inject;
      Mutex.unlock t.mutex);
  (* Wake sleepers. The idlers counter is incremented under [t.mutex]
     before the final rescan, so either this read sees the idler (and
     broadcasts) or the idler's rescan sees the task — no lost wakeup. *)
  if Atomic.get t.idlers > 0 then begin
    Mutex.lock t.mutex;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex
  end

let task_done t =
  if Atomic.fetch_and_add t.pending (-1) = 1 then begin
    Mutex.lock t.mutex;
    t.finished <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex
  end

let record_error t e =
  Mutex.lock t.mutex;
  if t.error = None then t.error <- Some e;
  Mutex.unlock t.mutex

(* Run a task body under the effect handler that implements parking. *)
let exec t body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> task_done t);
      exnc =
        (fun e ->
          record_error t e;
          task_done t);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* [register] may fire [resume] concurrently with (or even
                     before) returning [true]; the flag makes the two
                     resumption paths mutually exclusive. *)
                  let resumed = Atomic.make false in
                  let resume () =
                    if not (Atomic.exchange resumed true) then
                      enqueue t (fun () -> continue k ())
                  in
                  if register resume then () else continue k ())
          | Yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  enqueue t (fun () -> continue k ()))
          | _ -> None);
    }

let spawn t body =
  Atomic.incr t.pending;
  let task () = exec t body in
  if t.started then enqueue t task
  else t.initial <- task :: t.initial

let pop_local t idx =
  Mutex.lock t.qlocks.(idx);
  let task = Queue.take_opt t.queues.(idx) in
  Mutex.unlock t.qlocks.(idx);
  task

let steal t idx =
  let rec scan k =
    if k >= t.nworkers then None
    else
      let j = (idx + k) mod t.nworkers in
      match pop_local t j with Some _ as r -> r | None -> scan (k + 1)
  in
  scan 1

(* Under [t.mutex]: injection queue first, then every worker deque.
   Acquiring a qlock while holding [t.mutex] cannot deadlock: no path
   takes [t.mutex] while holding a qlock. *)
let rescan_locked t =
  match Queue.take_opt t.inject with
  | Some _ as r -> r
  | None ->
      let rec scan j =
        if j >= t.nworkers then None
        else
          match pop_local t j with Some _ as r -> r | None -> scan (j + 1)
      in
      scan 0

let idle_wait t =
  Mutex.lock t.mutex;
  Atomic.incr t.idlers;
  let rec loop () =
    if t.finished then None
    else
      match rescan_locked t with
      | Some _ as r -> r
      | None ->
          Condition.wait t.nonempty t.mutex;
          loop ()
  in
  let r = loop () in
  Atomic.decr t.idlers;
  Mutex.unlock t.mutex;
  r

let worker t idx () =
  Domain.DLS.set dls_key (Some (t.id, idx));
  let rec loop () =
    let task =
      match pop_local t idx with
      | Some _ as r -> r
      | None -> (
          match steal t idx with Some _ as r -> r | None -> idle_wait t)
    in
    match task with
    | Some task ->
        task ();
        loop ()
    | None -> () (* pool drained *)
  in
  loop ()

let is_finished t =
  Mutex.lock t.mutex;
  let v = t.finished in
  Mutex.unlock t.mutex;
  v

let run ?tick t =
  if t.started then invalid_arg "Sched.run: pool already ran";
  t.started <- true;
  List.iteri
    (fun i task -> Queue.push task t.queues.(i mod t.nworkers))
    (List.rev t.initial);
  t.initial <- [];
  if Atomic.get t.pending = 0 then ()
  else begin
    let domains =
      Array.init t.nworkers (fun idx -> Domain.spawn (worker t idx))
    in
    (match tick with
    | Some (interval, fn) ->
        let rec loop () =
          if not (is_finished t) then begin
            fn ();
            Unix.sleepf interval;
            loop ()
          end
        in
        loop ()
    | None ->
        Mutex.lock t.mutex;
        while not t.finished do
          Condition.wait t.nonempty t.mutex
        done;
        Mutex.unlock t.mutex);
    Array.iter Domain.join domains;
    match t.error with Some e -> raise e | None -> ()
  end
