(** N:M cooperative work-stealing scheduler: runs any number of tasks on a
    fixed pool of domains, the repository's equivalent of Akka's dispatcher
    (paper §4.2). Where [lib/runtime] historically spawned one domain per
    actor — collapsing on fissioned topologies with hundreds of deployed
    units — a {!t} multiplexes all of them over
    [Domain.recommended_domain_count] workers by default.

    Tasks are plain thunks made resumable with effect handlers: instead of
    blocking a worker, a task {!suspend}s with a registration function that
    atomically parks it on some external condition (e.g. "this mailbox has
    an item"). The wakeup callback re-enqueues the continuation, which may
    then run on any worker. The scheduler itself knows nothing about
    mailboxes; the blocking protocol lives with the caller.

    Scheduling is work-stealing: each worker owns a deque and steals from
    peers when empty; tasks spawned from inside a worker stay local, tasks
    resumed from foreign domains (e.g. a supervisor closing mailboxes) land
    on a shared injection queue. The pool terminates when every spawned task
    has returned or raised. *)

type t

val create : ?workers:int -> unit -> t
(** [create ()] makes a pool with [Domain.recommended_domain_count] workers
    (clamped to at least 1); [?workers] overrides the count.
    @raise Invalid_argument if [workers < 1]. *)

val workers : t -> int
(** Number of worker domains the pool will spawn. *)

val spawn : t -> (unit -> unit) -> unit
(** Register a task. Before {!run} the task is only queued; tasks spawned
    while the pool runs (including from inside other tasks) are scheduled
    immediately. An exception escaping a task is captured; {!run} re-raises
    the first one after the pool drains. *)

val run : ?tick:float * (unit -> unit) -> t -> unit
(** Run the pool to completion: spawn the worker domains, execute every
    task, join the workers. The calling domain does not execute tasks; with
    [?tick:(interval, fn)] it instead invokes [fn] every [interval] seconds
    until the pool drains (the executor uses this for occupancy sampling,
    keeping the domain count at exactly [workers t] + the caller).
    Re-raises the first exception that escaped a task, after all tasks have
    finished. Can only be called once per pool. *)

val suspend : register:((unit -> unit) -> bool) -> unit
(** [suspend ~register] parks the current task. [register resume] must
    atomically either install [resume] as a wakeup callback and return
    [true], or return [false] when the awaited condition already holds (or
    can never hold) — in which case the task continues immediately. [resume]
    may be called from any domain, at most once per registration; calling it
    re-enqueues the task. Callers retry their non-blocking operation after
    waking: a wakeup is a hint, not a guarantee.

    Must be called from inside a task running on a pool. *)

val yield : unit -> unit
(** Re-enqueue the current task and let the worker pick other work. Must be
    called from inside a task running on a pool. *)
