(** N:M cooperative work-stealing scheduler: runs any number of tasks on a
    fixed pool of domains, the repository's equivalent of Akka's dispatcher
    (paper §4.2). Where [lib/runtime] historically spawned one domain per
    actor — collapsing on fissioned topologies with hundreds of deployed
    units — a {!t} multiplexes all of them over
    [Domain.recommended_domain_count] workers by default.

    Tasks are plain thunks made resumable with effect handlers: instead of
    blocking a worker, a task {!suspend}s with a registration function that
    atomically parks it on some external condition (e.g. "this mailbox has
    an item"). The wakeup callback re-enqueues the continuation, which may
    then run on any worker. The scheduler itself knows nothing about
    mailboxes; the blocking protocol lives with the caller.

    The default implementation is lock-free on the hot path: each worker
    owns a Chase–Lev deque (push/pop without locks, thieves CAS the top),
    cross-domain wakeups land on a per-group lock-free injection stack, and
    idle workers spin briefly before parking on a single-waiter list where
    an enqueue wakes exactly one sleeper. Workers can further be
    partitioned into locality {e groups}: a task spawned with [?group] has
    its wakeups routed to that group's deques and its group's workers steal
    from each other before raiding foreign groups, emulating NUMA/placement
    domains in process. The previous mutex-per-deque implementation is kept
    as [`Locked] for differential benchmarking.

    The pool terminates when every spawned task has returned or raised. *)

type t

val create :
  ?workers:int ->
  ?groups:int array ->
  ?reserve:int ->
  ?impl:[ `Lockfree | `Locked ] ->
  unit ->
  t
(** [create ()] makes a pool with [Domain.recommended_domain_count] workers
    (clamped to at least 1); [?workers] overrides the count.

    [?groups] partitions the workers into locality groups: [groups.(g)] is
    the number of workers in group [g] (each must be [>= 1]); when both
    [?workers] and [?groups] are given the sizes must sum to [workers].
    Default: a single group containing every worker — exactly the
    historical behavior.

    [?reserve] (default 0) allocates that many extra worker slots for
    dynamic admission: their domains are spawned with the pool but sleep
    dormant (in group 0) until {!add_workers} activates them, so the
    elastic controller can grow and shrink the worker count mid-run without
    spawning or joining a domain. Reserve slots do not count toward
    [workers]/[groups].

    [?impl] selects the scheduler core: [`Lockfree] (default) is the
    Chase–Lev deque pool; [`Locked] is the retained mutex-per-deque
    baseline (it accepts [?groups] for interface parity but schedules
    without locality, and ignores [?reserve]).

    @raise Invalid_argument if [workers < 1], a group is empty, the
    group sizes disagree with [workers], or [reserve < 0]. *)

val workers : t -> int
(** Number of worker domains active from the start (excludes the reserve). *)

val groups : t -> int array
(** The per-group worker counts the pool was created with ([[| workers t |]]
    when [?groups] was omitted; excludes the reserve). The returned array is
    a copy. *)

val active_workers : t -> int
(** Workers currently executing tasks: [workers t] plus activated reserve
    slots. For the [`Locked] baseline this is always [workers t]. *)

val add_workers : t -> int -> int
(** [add_workers t k] activates up to [k] dormant reserve workers and
    returns how many were actually activated (0 when the reserve is
    exhausted, or on the [`Locked] baseline). Safe to call from any domain
    while the pool runs.
    @raise Invalid_argument if [k < 0]. *)

val retire_workers : t -> int -> int
(** [retire_workers t k] sends up to [k] previously-activated reserve
    workers back to dormancy (base workers never retire) and returns how
    many were retired. A retiring worker finishes its current task slice,
    spills any queued work back to the pool, and sleeps; its tasks are
    never lost. Safe to call from any domain while the pool runs.
    @raise Invalid_argument if [k < 0]. *)

val spawn : ?group:int -> t -> (unit -> unit) -> unit
(** Register a task. Before {!run} the task is only queued; tasks spawned
    while the pool runs (including from inside other tasks) are scheduled
    immediately. An exception escaping a task is captured; {!run} re-raises
    the first one after the pool drains.

    [?group] pins the task's locality: its initial placement and every
    subsequent wakeup target that group's deques (other groups can still
    steal it when their own work runs dry — the pool stays
    work-conserving). Defaults to the spawning worker's group when called
    from inside the pool, group [0] otherwise.

    @raise Invalid_argument if [group] is out of range. *)

val run : ?tick:float * (unit -> unit) -> t -> unit
(** Run the pool to completion: spawn the worker domains, execute every
    task, join the workers. The calling domain does not execute tasks; with
    [?tick:(interval, fn)] it instead invokes [fn] every [interval] seconds
    until the pool drains (the executor uses this for occupancy sampling,
    keeping the domain count at exactly [workers t] + the caller). The
    final task's completion interrupts the tick sleep, so [run] returns
    promptly rather than up to one [interval] late.
    Re-raises the first exception that escaped a task, after all tasks have
    finished. Can only be called once per pool. *)

val suspend : register:((unit -> unit) -> bool) -> unit
(** [suspend ~register] parks the current task. [register resume] must
    atomically either install [resume] as a wakeup callback and return
    [true], or return [false] when the awaited condition already holds (or
    can never hold) — in which case the task continues immediately. [resume]
    may be called from any domain, at most once per registration; calling it
    re-enqueues the task. Callers retry their non-blocking operation after
    waking: a wakeup is a hint, not a guarantee.

    Must be called from inside a task running on a pool. *)

val yield : unit -> unit
(** Re-enqueue the current task and let the worker pick other work. Must be
    called from inside a task running on a pool. *)
