exception Closed

(* Lamport/Vyukov SPSC ring. [head] is the next slot to consume, [tail]
   the next to fill; both grow monotonically (63-bit counters never wrap
   in practice) and are published through [Atomic], which under the OCaml
   memory model gives the release/acquire pairing that makes the plain
   slot write visible to the reader of the index. Each side additionally
   caches its last view of the opposite index ([cached_head] is touched
   only by the producer, [cached_tail] only by the consumer), so in the
   common case an operation reads one atomic it owns and refreshes the
   cache only when the cached view says the ring looks full/empty.

   Slots hold [Obj.t] with a unique out-of-band sentinel [nil] marking an
   empty slot: values are stored with [Obj.repr] directly, avoiding a
   [Some]-box per enqueue on the hot path. The array is created from a
   heap-allocated sentinel, so it is a regular (boxed) array even when
   ['a = float] and the representation is uniform throughout.

   The waiter lock serializes only the slow path: parked-waiter
   registration, the blocking put/take park, and close. The fast path
   skips it entirely — a successful publish checks a single [Atomic]
   flag and takes the lock only when the opposite side is actually
   parked. The no-lost-wakeup argument is in [on_item] below. *)
type 'a t = {
  mask : int; (* slot-array length - 1; power of two *)
  buf : Obj.t array;
  capacity : int; (* requested bound, honored exactly (<= mask+1) *)
  head : int Atomic.t;
  tail : int Atomic.t;
  mutable cached_head : int; (* producer-private *)
  mutable cached_tail : int; (* consumer-private *)
  closed : bool Atomic.t;
  (* True while the corresponding waiter queue may be non-empty; lets a
     publish skip the waiter lock when nobody is parked. *)
  item_waiting : bool Atomic.t;
  space_waiting : bool Atomic.t;
  wlock : Mutex.t;
  wcond : Condition.t; (* blocking put/take park on this *)
  item_waiters : (unit -> unit) Queue.t;
  space_waiters : (unit -> unit) Queue.t;
}

let nil : Obj.t = Obj.repr (ref ())

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc_ring.create: capacity must be >= 1";
  let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
  let slots = pow2 1 in
  {
    mask = slots - 1;
    buf = Array.make slots nil;
    capacity;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    cached_head = 0;
    cached_tail = 0;
    closed = Atomic.make false;
    item_waiting = Atomic.make false;
    space_waiting = Atomic.make false;
    wlock = Mutex.create ();
    wcond = Condition.create ();
    item_waiters = Queue.create ();
    space_waiters = Queue.create ();
  }

let capacity t = t.capacity
let is_closed t = Atomic.get t.closed

let length t =
  if Atomic.get t.closed then 0
  else
    let d = Atomic.get t.tail - Atomic.get t.head in
    if d < 0 then 0 else d

let drain_waiters q =
  let ws = List.of_seq (Queue.to_seq q) in
  Queue.clear q;
  ws

(* Drain one waiter queue under the lock, invoke outside it (a resumed
   task may touch the ring — or this very lock — immediately). *)
let wake t flag q =
  Mutex.lock t.wlock;
  Atomic.set flag false;
  let ws = drain_waiters q in
  Mutex.unlock t.wlock;
  List.iter (fun k -> k ()) ws

let wake_item t = wake t t.item_waiting t.item_waiters
let wake_space t = wake t t.space_waiting t.space_waiters

let try_put t x =
  if Atomic.get t.closed then raise Closed;
  let tail = Atomic.get t.tail in
  let free = t.capacity - (tail - t.cached_head) in
  let free =
    if free > 0 then free
    else begin
      t.cached_head <- Atomic.get t.head;
      t.capacity - (tail - t.cached_head)
    end
  in
  if free <= 0 then false
  else begin
    t.buf.(tail land t.mask) <- Obj.repr x;
    Atomic.set t.tail (tail + 1);
    if Atomic.get t.item_waiting then wake_item t;
    true
  end

let try_take t =
  if Atomic.get t.closed then raise Closed;
  let head = Atomic.get t.head in
  let avail = t.cached_tail - head in
  let avail =
    if avail > 0 then avail
    else begin
      t.cached_tail <- Atomic.get t.tail;
      t.cached_tail - head
    end
  in
  if avail <= 0 then None
  else begin
    let i = head land t.mask in
    let x = t.buf.(i) in
    t.buf.(i) <- nil;
    Atomic.set t.head (head + 1);
    if Atomic.get t.space_waiting then wake_space t;
    Some (Obj.obj x)
  end

let try_put_chunk t xs =
  match xs with
  | [] -> []
  | _ ->
      if Atomic.get t.closed then raise Closed;
      let tail = Atomic.get t.tail in
      t.cached_head <- Atomic.get t.head;
      let free = t.capacity - (tail - t.cached_head) in
      if free <= 0 then xs
      else begin
        let rec fill i xs =
          if i >= free then (i, xs)
          else
            match xs with
            | [] -> (i, [])
            | x :: rest ->
                t.buf.((tail + i) land t.mask) <- Obj.repr x;
                fill (i + 1) rest
        in
        let n, rest = fill 0 xs in
        Atomic.set t.tail (tail + n);
        if Atomic.get t.item_waiting then wake_item t;
        rest
      end

let take_batch t ~max ~into =
  if max < 1 then invalid_arg "Spsc_ring.take_batch: max must be >= 1";
  if Atomic.get t.closed then raise Closed;
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  t.cached_tail <- tail;
  let avail = tail - head in
  let n = if avail < max then avail else max in
  for k = 0 to n - 1 do
    let i = (head + k) land t.mask in
    Queue.push (Obj.obj t.buf.(i)) into;
    t.buf.(i) <- nil
  done;
  if n > 0 then begin
    Atomic.set t.head (head + n);
    if Atomic.get t.space_waiting then wake_space t
  end;
  avail

(* Registration raises the waiter flag {e before} re-checking the
   emptiness/fullness condition, both under the waiter lock; a publish
   writes its index {e before} reading the flag. [Atomic] operations are
   sequentially consistent, so if the re-check here missed the publish,
   the publisher's flag read is ordered after our flag write and sees it —
   the publisher then takes the lock (serializing with this registration)
   and fires the callback. Either way no wakeup is lost. *)
let on_item t k =
  if Atomic.get t.closed then false
  else begin
    Mutex.lock t.wlock;
    Atomic.set t.item_waiting true;
    let park =
      (not (Atomic.get t.closed))
      && Atomic.get t.tail - Atomic.get t.head = 0
    in
    if park then Queue.push k t.item_waiters
    else if Queue.is_empty t.item_waiters then Atomic.set t.item_waiting false;
    Mutex.unlock t.wlock;
    park
  end

let on_space t k =
  if Atomic.get t.closed then false
  else begin
    Mutex.lock t.wlock;
    Atomic.set t.space_waiting true;
    let park =
      (not (Atomic.get t.closed))
      && Atomic.get t.tail - Atomic.get t.head >= t.capacity
    in
    if park then Queue.push k t.space_waiters
    else if Queue.is_empty t.space_waiters then Atomic.set t.space_waiting false;
    Mutex.unlock t.wlock;
    park
  end

(* Blocking slow path, built on the parking hooks: register a callback
   that flips a flag under the waiter lock and broadcasts; close fires
   registered callbacks, so a blocked side wakes and re-observes Closed.
   Both sides share [wcond] — a broadcast may wake the other side too,
   which just re-checks its own flag and sleeps again. *)
let block_on t register =
  let signaled = ref false in
  let k () =
    Mutex.lock t.wlock;
    signaled := true;
    Condition.broadcast t.wcond;
    Mutex.unlock t.wlock
  in
  if register k then begin
    Mutex.lock t.wlock;
    while not !signaled do
      Condition.wait t.wcond t.wlock
    done;
    Mutex.unlock t.wlock
  end

let rec put t x =
  if not (try_put t x) then begin
    block_on t (on_space t);
    put t x
  end

let rec take t =
  match try_take t with
  | Some x -> x
  | None ->
      block_on t (on_item t);
      take t

let rec put_batch t xs =
  match try_put_chunk t xs with
  | [] -> ()
  | rest ->
      block_on t (on_space t);
      put_batch t rest

let close t =
  Mutex.lock t.wlock;
  Atomic.set t.closed true;
  Atomic.set t.item_waiting false;
  Atomic.set t.space_waiting false;
  let ws = drain_waiters t.item_waiters @ drain_waiters t.space_waiters in
  Condition.broadcast t.wcond;
  Mutex.unlock t.wlock;
  List.iter (fun k -> k ()) ws
