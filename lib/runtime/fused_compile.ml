open Ss_prelude
open Ss_topology
open Ss_operators

type env = {
  rng : Rng.t;
  consumed : int array;
  produced : int array;
  emit : int -> int -> Tuple.t -> unit;
}

type chain = env -> Tuple.t -> unit

type instance = {
  step : Tuple.t -> unit;
  export : unit -> Behavior.keyed_state;
  import : Behavior.keyed_state -> unit;
}

type staged = env -> instance

type telemetry = {
  sample_every : int;
  edge_count : int array;
  edge_index : int -> int -> int;
  record_latency : int -> float -> unit;
  record_service : int -> float -> unit;
  birth : float ref;
}

let of_chain chain env =
  { step = chain env; export = (fun () -> []); import = ignore }

let linear topology ~members =
  List.for_all
    (fun v -> List.length (Topology.succs topology v) <= 1)
    members

let migratable ~members ~registry =
  List.for_all
    (fun v ->
      let b = registry v in
      (not (Behavior.is_evented b))
      &&
      match b.Behavior.state_kind with
      | Behavior.Stateless_op -> true
      | Behavior.Partitioned_op | Behavior.Stateful_op ->
          Behavior.inline_migratable b || Option.is_some b.Behavior.migrate)
    members

(* Merged state encoding: each member's keyed entries ride in one flat
   list, the value array prefixed with the owning member's vertex id. The
   entry key stays the tuple key, so a repartitioning emitter can route
   entries by key without understanding the payload; the tag finds the
   member again on import. *)
let tag v st =
  List.map
    (fun (k, a) -> (k, Array.append [| float_of_int v |] a))
    st

let untag_for v st =
  List.filter_map
    (fun (k, a) ->
      if Array.length a >= 1 && int_of_float a.(0) = v then
        Some (k, Array.sub a 1 (Array.length a - 1))
      else None)
    st

(* Mirror of the executor's [invoke] sampling: time the first, then every
   k-th, invocation of member [v] — latency from the group input's birth,
   service around the behavior application only. Polymorphic in the
   application's result so every inline shape keeps its direct form. *)
let timed tl v f =
  let k = tl.sample_every in
  let left = ref 1 in
  fun t ->
    decr left;
    if !left <= 0 then begin
      left := k;
      let start = Unix.gettimeofday () in
      tl.record_latency v (start -. !(tl.birth));
      let r = f t in
      tl.record_service v (Unix.gettimeofday () -. start);
      r
    end
    else f t

(* Shared eligibility: one legal entry vertex, no evented member. *)
let validate topology ~members ~registry =
  match Topology.front_end_of topology members with
  | Error e -> Error e
  | Ok front -> (
      match
        List.find_opt (fun v -> Behavior.is_evented (registry v)) members
      with
      | Some v ->
          Error
            (Printf.sprintf
               "member %d is evented (watermark/late hooks need the \
                interpreted walk)"
               v)
      | None -> Ok front)

(* One destination table per member, in [Topology.succs] order — the same
   order the interpreted chooser samples over, so the index drawn by
   [Discrete.sample] names the same successor on both paths. *)
let route_of topology v =
  match Topology.succs topology v with
  | [] -> ([||], None)
  | edges ->
      ( Array.of_list (List.map fst edges),
        Some (Discrete.of_weights (Array.of_list (List.map snd edges))) )

let plan ?telemetry topology ~members ~registry =
  match validate topology ~members ~registry with
  | Error e -> Error e
  | Ok front ->
      let n = Topology.size topology in
      let in_group = Array.make n false in
      List.iter (fun v -> in_group.(v) <- true) members;
      (* Reverse topological order of the members: every in-group
         successor of a member sorts after it, so building the member
         steps back to front needs no recursion and every in-group
         hop can bind its successor's already-staged step directly.
         Terminates on any legal (acyclic) sub-graph, fig11's diamond
         included. *)
      let rev_members =
        Array.to_list (Topology.topological_order topology)
        |> List.filter (fun v -> in_group.(v))
        |> List.rev
      in
      let staged env =
        let nop (_ : Tuple.t) = () in
        let steps = Array.make n nop in
        let states = ref [] in
        let { rng; consumed; produced; emit } = env in
        (* The continuation of one destination: the successor's
           already-staged step for in-group hops, the external emit
           otherwise — with the edge transfer counted in front when
           telemetry is on (internal and external edges alike feed the
           local accumulator; the caller flushes). *)
        let continue v dest =
          let base =
            if in_group.(dest) then steps.(dest)
            else fun out -> emit v dest out
          in
          match telemetry with
          | None -> base
          | Some tl ->
              let e = tl.edge_index v dest in
              let ec = tl.edge_count in
              fun out ->
                ec.(e) <- ec.(e) + 1;
                base out
        in
        List.iter
          (fun v ->
            let dests, dist = route_of topology v in
            (* Route one result of [v], drawing exactly as the
               interpreted chooser would: one [Discrete.sample] per
               produced tuple when the member has successors, no draw
               when it has none — so the group rng stays in lockstep
               with the interpreted walk and with [Engine.replay]. *)
            let route1 =
              match dist with
              | None -> fun (_ : Tuple.t) -> produced.(v) <- produced.(v) + 1
              | Some _ when Array.length dests = 1 ->
                  (* One-point support: the interpreted chooser still
                     consumes one [Rng.float] here, so draw it raw —
                     same stream position, without the sampler's
                     search. *)
                  let k0 = continue v dests.(0) in
                  fun out ->
                    produced.(v) <- produced.(v) + 1;
                    ignore (Rng.float rng : float);
                    k0 out
              | Some dist ->
                  let ks = Array.map (continue v) dests in
                  fun out ->
                    produced.(v) <- produced.(v) + 1;
                    ks.(Discrete.sample rng dist) out
            in
            let b = registry v in
            let step =
              match Behavior.inline_spec b with
              | Some (Behavior.Inline_map mk) ->
                  let f = mk () in
                  let f =
                    match telemetry with
                    | None -> f
                    | Some tl -> timed tl v f
                  in
                  fun t ->
                    consumed.(v) <- consumed.(v) + 1;
                    route1 (f t)
              | Some (Behavior.Inline_filter mk) ->
                  let f = mk () in
                  let f =
                    match telemetry with
                    | None -> f
                    | Some tl -> timed tl v f
                  in
                  fun t ->
                    consumed.(v) <- consumed.(v) + 1;
                    (match f t with Some out -> route1 out | None -> ())
              | Some (Behavior.Inline_fold mk) ->
                  let s = mk () in
                  states :=
                    (v, s.Behavior.sexport, s.Behavior.simport) :: !states;
                  let f =
                    match telemetry with
                    | None -> s.Behavior.sstep
                    | Some tl -> timed tl v s.Behavior.sstep
                  in
                  fun t ->
                    consumed.(v) <- consumed.(v) + 1;
                    route1 (f t)
              | Some (Behavior.Inline_window mk) ->
                  let s = mk () in
                  states :=
                    (v, s.Behavior.sexport, s.Behavior.simport) :: !states;
                  let f =
                    match telemetry with
                    | None -> s.Behavior.sstep
                    | Some tl -> timed tl v s.Behavior.sstep
                  in
                  fun t ->
                    consumed.(v) <- consumed.(v) + 1;
                    (match f t with Some out -> route1 out | None -> ())
              | None ->
                  let fn =
                    match b.Behavior.migrate with
                    | Some mk ->
                        let m = mk () in
                        states :=
                          ( v,
                            m.Behavior.export_state,
                            m.Behavior.import_state )
                          :: !states;
                        m.Behavior.mfn
                    | None -> Behavior.instantiate b
                  in
                  let fn =
                    match telemetry with
                    | None -> fn
                    | Some tl -> timed tl v fn
                  in
                  fun t ->
                    consumed.(v) <- consumed.(v) + 1;
                    List.iter route1 (fn t)
            in
            steps.(v) <- step)
          rev_members;
        {
          step = steps.(front);
          export =
            (fun () ->
              List.concat_map (fun (v, ex, _) -> tag v (ex ())) !states);
          import =
            (fun st -> List.iter (fun (v, _, im) -> im (untag_for v st)) !states);
        }
      in
      Ok staged

let interpret ?telemetry topology ~members ~registry =
  match validate topology ~members ~registry with
  | Error e -> Error e
  | Ok front ->
      let n = Topology.size topology in
      let in_group = Array.make n false in
      List.iter (fun v -> in_group.(v) <- true) members;
      let routes = Array.make n ([||], None) in
      List.iter (fun v -> routes.(v) <- route_of topology v) members;
      let staged env =
        let { rng; consumed; produced; emit } = env in
        let fns = Array.make n (fun (_ : Tuple.t) -> ([] : Tuple.t list)) in
        let states = ref [] in
        List.iter
          (fun v ->
            let b = registry v in
            let fn =
              (* Algorithm 4 walks list-returning closures; the stateful
                 inline hooks are wrapped back to that form so the
                 interpreted instance still exports/imports its state
                 across a live resize. *)
              match Behavior.inline_spec b with
              | Some (Behavior.Inline_fold mk) ->
                  let s = mk () in
                  states :=
                    (v, s.Behavior.sexport, s.Behavior.simport) :: !states;
                  fun t -> [ s.Behavior.sstep t ]
              | Some (Behavior.Inline_window mk) ->
                  let s = mk () in
                  states :=
                    (v, s.Behavior.sexport, s.Behavior.simport) :: !states;
                  fun t ->
                    (match s.Behavior.sstep t with
                    | Some out -> [ out ]
                    | None -> [])
              | Some (Behavior.Inline_map _ | Behavior.Inline_filter _)
              | None -> (
                  match b.Behavior.migrate with
                  | Some mk ->
                      let m = mk () in
                      states :=
                        (v, m.Behavior.export_state, m.Behavior.import_state)
                        :: !states;
                      m.Behavior.mfn
                  | None -> Behavior.instantiate b)
            in
            fns.(v) <-
              (match telemetry with None -> fn | Some tl -> timed tl v fn))
          members;
        (* Algorithm 4: follow each result through the sub-graph until it
           exits; the sub-graph is acyclic so the walk terminates. One
           routing draw per produced tuple at members with successors —
           the same stream positions as the compiled loop. *)
        let rec walk v t =
          consumed.(v) <- consumed.(v) + 1;
          route_outs v (fns.(v) t)
        and route_outs v outs =
          let dests, dist = routes.(v) in
          match dist with
          | None ->
              List.iter
                (fun (_ : Tuple.t) -> produced.(v) <- produced.(v) + 1)
                outs
          | Some dist ->
              List.iter
                (fun out ->
                  produced.(v) <- produced.(v) + 1;
                  let dest = dests.(Discrete.sample rng dist) in
                  (match telemetry with
                  | Some tl ->
                      let e = tl.edge_index v dest in
                      tl.edge_count.(e) <- tl.edge_count.(e) + 1
                  | None -> ());
                  if in_group.(dest) then walk dest out else emit v dest out)
                outs
        in
        {
          step = (fun t -> walk front t);
          export =
            (fun () ->
              List.concat_map (fun (v, ex, _) -> tag v (ex ())) !states);
          import =
            (fun st -> List.iter (fun (v, _, im) -> im (untag_for v st)) !states);
        }
      in
      Ok staged
