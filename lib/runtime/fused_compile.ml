open Ss_prelude
open Ss_topology
open Ss_operators

type env = {
  rng : Rng.t;
  consumed : int array;
  produced : int array;
  emit : int -> int -> Tuple.t -> unit;
}

type chain = env -> Tuple.t -> unit

(* One destination table per member, in [Topology.succs] order — the same
   order the interpreted chooser samples over, so the index drawn by
   [Discrete.sample] names the same successor on both paths. *)
type route = { dests : int array; dist : Discrete.t option }

let plan topology ~members ~registry =
  match Topology.front_end_of topology members with
  | Error e -> Error e
  | Ok front -> (
      match
        List.find_opt (fun v -> Behavior.is_evented (registry v)) members
      with
      | Some v ->
          Error
            (Printf.sprintf
               "member %d is evented (watermark/late hooks need the \
                interpreted walk)"
               v)
      | None ->
          let n = Topology.size topology in
          let in_group = Array.make n false in
          List.iter (fun v -> in_group.(v) <- true) members;
          let route_of v =
            match Topology.succs topology v with
            | [] -> { dests = [||]; dist = None }
            | edges ->
                {
                  dests = Array.of_list (List.map fst edges);
                  dist =
                    Some
                      (Discrete.of_weights
                         (Array.of_list (List.map snd edges)));
                }
          in
          (* Reverse topological order of the members: every in-group
             successor of a member sorts after it, so building the member
             steps back to front needs no recursion and every in-group
             hop can bind its successor's already-staged step directly.
             Terminates on any legal (acyclic) sub-graph, fig11's diamond
             included. *)
          let rev_members =
            Array.to_list (Topology.topological_order topology)
            |> List.filter (fun v -> in_group.(v))
            |> List.rev
          in
          let chain env =
            let nop (_ : Tuple.t) = () in
            let steps = Array.make n nop in
            let { rng; consumed; produced; emit } = env in
            List.iter
              (fun v ->
                let { dests; dist } = route_of v in
                (* Route one result of [v], drawing exactly as the
                   interpreted chooser would: one [Discrete.sample] per
                   produced tuple when the member has successors, no draw
                   when it has none — so the group rng stays in lockstep
                   with the interpreted walk and with [Engine.replay]. *)
                let route1 =
                  match dist with
                  | None ->
                      fun (_ : Tuple.t) -> produced.(v) <- produced.(v) + 1
                  | Some _ when Array.length dests = 1 ->
                      (* One-point support: the interpreted chooser still
                         consumes one [Rng.float] here, so draw it raw —
                         same stream position, without the sampler's
                         search. *)
                      let dest = dests.(0) in
                      if in_group.(dest) then begin
                        let next = steps.(dest) in
                        fun out ->
                          produced.(v) <- produced.(v) + 1;
                          ignore (Rng.float rng : float);
                          next out
                      end
                      else
                        fun out ->
                          produced.(v) <- produced.(v) + 1;
                          ignore (Rng.float rng : float);
                          emit v dest out
                  | Some dist ->
                      fun out ->
                        produced.(v) <- produced.(v) + 1;
                        let dest = dests.(Discrete.sample rng dist) in
                        if in_group.(dest) then steps.(dest) out
                        else emit v dest out
                in
                let step =
                  match Behavior.inline_spec (registry v) with
                  | Some (Behavior.Inline_map mk) ->
                      let f = mk () in
                      fun t ->
                        consumed.(v) <- consumed.(v) + 1;
                        route1 (f t)
                  | Some (Behavior.Inline_filter mk) ->
                      let f = mk () in
                      fun t ->
                        consumed.(v) <- consumed.(v) + 1;
                        (match f t with Some out -> route1 out | None -> ())
                  | None ->
                      let fn = Behavior.instantiate (registry v) in
                      fun t ->
                        consumed.(v) <- consumed.(v) + 1;
                        List.iter route1 (fn t)
                in
                steps.(v) <- step)
              rev_members;
            steps.(front)
          in
          Ok chain)
