(** Threaded actor runtime executing topologies on real tuples — the
    repository's equivalent of the paper's SS2Akka layer (§4.2).

    Each deployed unit is an actor with a bounded mailbox. By default the
    actors run as cooperative tasks on an N:M work-stealing pool of
    [Domain.recommended_domain_count] domains ({!Ss_sched.Sched}) — like
    Akka's dispatcher multiplexing actors over a thread pool — parking
    instead of blocking on a full/empty mailbox and draining up to a
    configurable batch of messages per activation. The historical
    one-domain-per-actor model remains available as [`Domain_per_actor].

    The deployment shape is the same in both modes:
    - an ordinary vertex becomes one actor applying its behavior function;
    - a vertex with [n > 1] replicas becomes an emitter actor, [n] worker
      actors (each with an independent behavior instance) and a collector
      actor; stateless vertices shuffle round-robin, partitioned-stateful
      vertices route by key through the same greedy key-group assignment the
      optimizer uses;
    - a fused group becomes a single {e meta-operator} actor executing the
      paper's Algorithm 4: each input tuple is processed by the front-end
      behavior and results travel the sub-graph inside the actor until they
      exit.

    Output items are routed to one successor, sampled with the topology's
    edge probabilities (the paper's routing semantics); [router] overrides
    this with content-based routing. Termination uses end-of-stream markers
    counted per consumer.

    Every actor body runs under a {!Supervision} supervisor: an exception
    in one behavior no longer deadlocks the network — the supervisor closes
    every mailbox, blocked peers wake with {!Mailbox.Closed} and exit as
    [Cancelled], and [run] returns a structured {!Supervision.outcome}
    instead of hanging. An optional wall-clock [timeout] drives the same
    shutdown path. *)

type instrument = {
  sample_occupancy : bool;
      (** Sample entry-mailbox occupancy every millisecond (default
          [true]); when [false] [metrics.occupancy] is all zeros. *)
  telemetry : bool;
      (** Record latency/service histograms and per-edge transfer counts
          (default [false]); when [false] [metrics.telemetry] is [None]
          and the hot path is untouched (no timestamps, no counters). *)
  telemetry_sample : int;
      (** Time (and record into the histograms) every k-th behavior
          invocation per vertex — deterministically by arrival order at
          that vertex, starting with the first — so histogram counts are
          [ceil (consumed / k)] per vertex. The source's birth timestamps
          (the basis of the latency histograms) are refreshed on the same
          cadence: the clock is read every k-th emission and reused in
          between, so recorded tuple ages carry a staleness bounded by k
          source intervals. Clock reads dominate telemetry's cost on cheap
          behaviors; the default ([32]) keeps the overhead a few percent
          even on identity operators. Edge transfer counts are always
          exact. Use [1] to time every invocation and stamp every tuple
          exactly. Ignored when [telemetry] is off. *)
}
(** Runtime instrumentation configuration. When [sample_occupancy] is on,
    a periodic instrumentation pass runs at the sampling cadence — on the
    pool's scheduler tick in [`Pool] mode, on a dedicated monitor domain in
    [`Domain_per_actor] mode — sampling occupancy and refreshing the live
    telemetry aggregate ({!Ss_telemetry.Telemetry.Collector.live}).
    Telemetry alone never forces a tick: recording happens inline in the
    actors, the live aggregate falls back to merge-on-demand, and the final
    report is merged exactly once after all actors have joined. *)

val default_instrument : instrument
(** [{ sample_occupancy = true; telemetry = false; telemetry_sample = 32 }]. *)

type metrics = {
  elapsed : float;  (** Wall-clock seconds from start to full drain. *)
  consumed : int array;
      (** Per vertex: tuples processed by the vertex's behavior. *)
  produced : int array;  (** Per vertex: tuples emitted by the behavior. *)
  late : int array;
      (** Per vertex: tuples that arrived behind the merged watermark at an
          event-time operator (dropped, dead-lettered or refired according
          to the run's lateness policy). All zero without [?event_time]. *)
  source_rate : float;  (** Source tuples per wall-clock second. *)
  blocked : float array;
      (** Per vertex: seconds its actors spent waiting on full downstream
          mailboxes (backpressure), measured on the slow path of every put
          in {e both} scheduler modes. The semantics differ slightly: in
          [`Domain_per_actor] mode it is the wall-clock time the actor's
          domain sat blocked in [Mailbox.put]; in [`Pool] mode it is the
          park-to-resume time of the suspended task, which additionally
          includes the scheduling delay until a worker re-runs the task
          after space opens up. Under contention the pool figure therefore
          reads slightly higher for the same topology. Fission units
          aggregate their emitter, workers and collector. *)
  occupancy : float array;
      (** Per vertex: mean sampled occupancy of its entry mailbox (sampled
          every millisecond — by the pool's scheduler tick in [`Pool] mode,
          by a monitor domain in [`Domain_per_actor] mode; see
          [instrument.sample_occupancy]); 0 for the source and for
          non-entry members of fused groups. *)
  telemetry : Ss_telemetry.Telemetry.report option;
      (** With [instrument.telemetry]: per-vertex latency histograms (tuple
          age at behavior start, from source emission), per-vertex service
          histograms (behavior invocation durations) and per-edge transfer
          counts. [None] otherwise. *)
  actors : Supervision.report list;
      (** Per-actor completion status, in completion order. *)
  outcome : Supervision.outcome;
      (** [Finished], the first actor failure, or a timeout. *)
}

type router = Ss_operators.Tuple.t -> int
(** Returns the index of the chosen successor in the vertex's out-edge list
    (as given by [Topology.succs]). *)

type scheduler = [ `Domain_per_actor | `Pool of int | `Locked_pool of int ]
(** Execution model: [`Pool w] (the default, with
    [w = Domain.recommended_domain_count]) multiplexes all actors over [w]
    worker domains on the lock-free Chase–Lev scheduler;
    [`Domain_per_actor] spawns one domain per actor and is limited to ~110
    actors by the OCaml domain budget. [`Locked_pool w] runs the retained
    mutex-per-deque pool implementation — semantically identical to
    [`Pool], kept for differential benchmarking of the scheduler core. *)

type batch = [ `Fixed of int | `Adaptive of int ]
(** Drain policy for pooled-actor mailbox activations. [`Fixed b] always
    offers to drain up to [b] messages. [`Adaptive batch_max] (the
    default, with [batch_max = 32]) sizes each mailbox's drain from an
    EWMA of the occupancy observed at its activations, within
    [\[1, batch_max\]]: deep queues earn big amortized drains, near-empty
    latency-sensitive edges drain small and yield. The policy only caps
    how much an activation {e offers} to drain; counts and routing are
    unaffected, so metrics stay scheduler- and policy-independent. *)

type ingest
(** Log-backed source configuration: replay a {!Ss_log.Log} partition set
    through the topology with at-least-once delivery (see {!ingest}). *)

val ingest :
  ?group:string -> ?commit_every:int -> ?read_batch:int -> Ss_log.Log.t -> ingest
(** [ingest log] makes {!run} consume [log] instead of its [source]
    function: one reader actor per log partition replays the partition
    from consumer group [group]'s (default ["default"]) committed offset
    to the log's current end, decoding payloads with {!Ss_log.Tuple_codec}
    and routing them exactly like a source would. Readers stripe across
    the pool's locality groups, one per partition.

    Delivery is {e at-least-once}: every tuple derived from a log record
    is tracked (Storm-style ack counting), a per-partition watermark
    advances over the contiguous prefix of fully-drained records, and the
    group's offset is durably committed at that watermark — every
    [commit_every] records (default 512) while running, and finally when
    the run ends, {e whatever} the outcome. A run killed mid-stream
    therefore resumes from the last committed watermark and redelivers
    exactly the uncommitted suffix: records may be processed twice, never
    lost. [read_batch] (default 256) sizes each log read.

    @raise Invalid_argument if [commit_every < 1] or [read_batch < 1]. *)

type channels = [ `Auto | `Locking ]
(** Mailbox implementation selection. [`Auto] (the default) statically
    assigns each channel from the topology: an edge with exactly one
    producing actor and one consuming actor — an entry mailbox fed by a
    single upstream unit, or a fission-internal emitter->worker /
    worker->collector(ordered) channel — gets the lock-free SPSC ring
    ({!Spsc_ring}); fan-in edges (multi-predecessor entries and fission
    merge points) keep the locking MPSC mailbox. [`Locking] forces the
    locking implementation everywhere, for differential benchmarks. Both
    implementations share the close/poison, batching and occupancy
    behavior, so the choice is invisible to everything but throughput. *)

val run :
  ?ingest:ingest ->
  ?event_time:Ss_event.Event_time.config ->
  ?mailbox_capacity:int ->
  ?fused:int list list ->
  ?fusion:[ `Interpreted | `Compiled ] ->
  ?chains:(int list * Fused_compile.chain) list ->
  ?flush_every:int ->
  ?routers:(int * router) list ->
  ?ordered:int list ->
  ?seed:int ->
  ?timeout:float ->
  ?scheduler:scheduler ->
  ?placement:int array ->
  ?batch:batch ->
  ?channels:channels ->
  ?instrument:instrument ->
  source:(unit -> Ss_operators.Tuple.t option) ->
  registry:(int -> Ss_operators.Behavior.t) ->
  Ss_topology.Topology.t ->
  metrics
(** [run ~source ~registry topology] deploys and executes the topology until
    [source] returns [None] and every in-flight tuple has drained — or until
    an actor fails or [timeout] elapses, in which case the run shuts down
    promptly and reports the cause in [metrics.outcome].

    With [ingest], [source] is ignored and the topology consumes a durable
    {!Ss_log.Log} instead: one reader per partition, offsets committed
    downstream of processing (see {!ingest} for the at-least-once
    contract). Ingest is not yet available on {!Live} deployments.

    With [event_time], the run processes by {e event} time: each source
    (or each ingest partition reader, independently) runs the configured
    {!Ss_event.Watermark} generator over the timestamps it emits and sends
    watermarks in-band; every deployed unit merges the watermarks of its
    upstream producers (minimum across slots — fission collectors take the
    minimum across their replicas) and forwards only advances, after first
    firing any windows of an evented behavior
    ({!Ss_operators.Behavior.make_evented}) that the new watermark closed.
    Producers announce watermark infinity before end-of-stream, so finite
    runs flush every open window. Tuples arriving behind the merged
    watermark at an evented vertex are handled by the configured
    {!Ss_event.Lateness.policy} — dropped, diverted to a dead-letter
    mailbox, or given to the behavior's refire hook — and counted in
    [metrics.late]. Without [event_time] no watermark is ever generated
    and the hot paths are untouched.

    [registry v] supplies the behavior of vertex [v] (never called for the
    source). [fused] lists disjoint vertex groups to execute as
    meta-operators; each must be a legal fusion target
    ({!Ss_topology.Topology.front_end_of}).

    [fusion] selects how fused groups execute their members (default
    [`Compiled]): under [`Compiled] each group is staged at deploy time
    into one flat closure ({!Fused_compile.plan}) whenever the run
    qualifies — no event time, no ingest, no router override on a member,
    and a group shape the planner accepts — and falls back to the
    interpreted Algorithm 4 walk otherwise; [`Interpreted] forces the
    walk everywhere. Telemetry does {e not} force the walk: the planner
    instruments the staged loop itself (local edge counters flushed every
    [flush_every] tuples — default 4096 — at end-of-stream and on actor
    failure; latency/service samples on the interpreted 1-in-k schedule),
    so compiled and interpreted runs report identical edge counts and
    histogram sample counts. A fused group whose front operator is
    replicated deploys as a {e fission unit of the whole staged loop}
    (emitter, one staged instance per replica, collector) when the group
    is linear — at most one successor per member, which keeps routing
    draws count-neutral so per-vertex counts stay bit-identical to the
    single-actor walk — and every member's operator can replicate; tuples
    route to replicas by key as soon as any member partitions state by
    key (members are assumed key-preserving). Under {!Live} deployments
    such a group is additionally {e elastic} when its staged instance can
    migrate state (every stateful member exposes an inline stateful hook
    or a migratable instance): a resize drains the workers, exports each
    staged instance's keyed state (window phases, running aggregates),
    repartitions it by key over the new generation and resumes, losing no
    tuple. [chains] supplies pre-compiled closures keyed by member set
    (compared as sorted vertex lists, e.g. from {!Ss_codegen}-emitted
    closed loops); a matching entry overrides the deploy-time planner
    under the same eligibility rules, except under telemetry (a supplied
    chain has no counter hooks, so the planner is used).
    [ordered] lists replicated
    stateless vertices whose fission must preserve the arrival order
    (paper §2): their emitter deals strictly round-robin and their
    collector reassembles results in the same order, batching per input so
    any selectivity is supported. [mailbox_capacity] defaults to 64.
    [timeout] bounds the wall-clock run time in seconds; cancellation is
    cooperative (it takes effect when an actor next touches a mailbox).

    [scheduler] picks the execution model (default [`Pool] sized to the
    machine). [placement] maps each vertex to an abstract locality node
    (typically an {!Ss_placement} assignment, [placement.(v) = node]):
    node ids are normalized to dense scheduler groups (collapsed by
    modulo when there are more nodes than workers), the pool's workers
    are split across the groups as evenly as possible, and every actor of
    a vertex — including its fission units — is pinned to its vertex's
    group, so wakeups stay group-local and stealing prefers same-group
    victims. Default: one group, exactly the ungrouped behavior. Counts
    and routing are placement-independent; only locality changes.
    Placement is ignored under [`Domain_per_actor].
    [batch] (default [`Adaptive 32]) sets the per-activation
    drain policy of pooled actors; [channels] (default [`Auto]) selects
    the mailbox implementation per edge. [instrument] (default
    {!default_instrument}) selects runtime instrumentation: occupancy
    sampling and/or telemetry recording; when occupancy sampling is off no
    monitor domain is spawned in [`Domain_per_actor] mode and the pool
    skips its tick. Per-vertex [consumed]/[produced] counts — and with telemetry on,
    per-edge transfer counts — are identical across schedulers for
    deterministic behaviors: routing draws depend only on per-vertex tuple
    ordinals, not on interleaving.
    @raise Invalid_argument on overlapping or illegal fused groups, a
    replicated source, a non-positive [timeout], a non-positive pool size,
    [batch] or [flush_every], an [ordered] vertex that is not replicated
    stateless, or —
    in [`Domain_per_actor] mode only — an actor count above the domain
    budget. *)

(** Live deployments: run a topology on a background domain while keeping a
    handle for online observation and reconfiguration — the execution side
    of the elasticity loop (paper §1, §6). Replicated vertices whose
    operator {!Ss_topology.Operator.can_replicate}s (and, for
    partitioned-stateful vertices, whose behavior
    {!Ss_operators.Behavior.can_migrate}s) deploy as {e elastic} fission
    units: their parallelism degree can be changed while the topology runs,
    without restarting it.

    Reconfiguration is drain-and-swap per vertex: the unit's emitter stops
    feeding the current worker generation, sends a drain marker behind all
    in-flight work, collects each retiring worker's exported keyed state
    (for migratable partitioned behaviors), repartitions it over a freshly
    spawned worker generation and resumes. No tuple is lost or duplicated
    and no Eos is forged; the wall-clock cost of each swap is measured and
    accumulated per vertex as {!Live.downtime}. Worker-pool capacity can be
    grown and shrunk the same way through a dormant reserve
    ({!Ss_sched.Sched.add_workers}). *)
module Live : sig
  type t
  (** A running deployment. *)

  val start :
    ?event_time:Ss_event.Event_time.config ->
    ?mailbox_capacity:int ->
    ?fused:int list list ->
    ?fusion:[ `Interpreted | `Compiled ] ->
    ?chains:(int list * Fused_compile.chain) list ->
    ?flush_every:int ->
    ?routers:(int * router) list ->
    ?seed:int ->
    ?timeout:float ->
    ?workers:int ->
    ?reserve:int ->
    ?locked:bool ->
    ?batch:batch ->
    ?channels:channels ->
    ?instrument:instrument ->
    source:(unit -> Ss_operators.Tuple.t option) ->
    registry:(int -> Ss_operators.Behavior.t) ->
    Ss_topology.Topology.t ->
    t
  (** Deploy the topology on a fresh domain and return once it is running.
      Replicated elastic-eligible vertices start at their descriptor's
      [replicas] degree. Parameters mirror {!run} where shared; [workers]
      sizes the pool (default [Domain.recommended_domain_count]),
      [reserve] adds dormant worker slots for {!add_workers} (default 0),
      [locked] selects the [`Locked_pool] scheduler core, and telemetry
      defaults {e on} (the controller needs it). [fused]/[fusion]/[chains]/
      [flush_every] mirror {!run}; a fused group whose front operator is
      replicated and whose staged instance can migrate its state deploys
      as an {e elastic} unit resizable through {!resize} (address it by its
      front vertex) — other fused groups deploy as a single pinned actor.
      Ordered fission is not available live (ordered collectors cannot
      survive a degree change). With [event_time],
      watermark state survives {!resize}: the emitter chooses the swap's
      watermark floor (its own input merge), re-shapes the collector's
      replica merge through the swap, and primes each new worker at the
      floor, so in-flight windows migrate with the keyed state and no
      on-time tuple is lost or spuriously declared late.
      @raise Invalid_argument as {!run}, or if [reserve < 0]. *)

  val topology : t -> Ss_topology.Topology.t
  (** The deployed topology, as given. *)

  val elastic : t -> bool array
  (** Per vertex: whether it deployed as an elastic fission unit (and can
      therefore be {!resize}d). *)

  val degrees : t -> int array
  (** Per vertex: the currently {e applied} parallelism degree (1 for
      non-elastic vertices). *)

  val generation : t -> int
  (** Total number of completed reconfigurations across all vertices. *)

  val downtime : t -> float array
  (** Per vertex: accumulated measured reconfiguration downtime in seconds —
      wall-clock from the moment the emitter stops feeding the old
      generation to the moment the new generation is fed. *)

  val total_downtime : t -> float
  (** Sum of {!downtime}. *)

  val consumed : t -> int array
  (** Per vertex: tuples processed so far (live snapshot of the counters
      that become [metrics.consumed]). *)

  val produced : t -> int array
  (** Per vertex: tuples emitted so far. *)

  val telemetry_sample : t -> int
  (** The deployment's telemetry sampling stride
      ([instrument.telemetry_sample]): the controller multiplies sampled
      service-time sums by this to estimate total busy time. *)

  val telemetry : t -> Ss_telemetry.Telemetry.report option
  (** Live telemetry aggregate (see
      {!Ss_telemetry.Telemetry.Collector.live}); [None] only if telemetry
      was explicitly disabled in [instrument]. Successive snapshots are
      cumulative — diff them with {!Ss_telemetry.Telemetry.delta} for
      per-epoch views. *)

  val resize : t -> vertex:int -> int -> bool
  (** [resize t ~vertex d] requests parallelism degree [d] for [vertex].
      Returns [false] when the vertex is not elastic ([elastic t] is false
      there). The change is applied asynchronously by the vertex's emitter
      between input bursts; observe completion via {!degrees} /
      {!generation}.
      @raise Invalid_argument if [d < 1] or [vertex] is out of range. *)

  val add_workers : t -> int -> int
  (** Activate up to [k] dormant reserve workers; returns the number
      activated (see {!Ss_sched.Sched.add_workers}). *)

  val retire_workers : t -> int -> int
  (** Send up to [k] activated reserve workers back to dormancy; returns
      the number retired. *)

  val active_workers : t -> int
  (** Workers currently executing actors. *)

  val stop : t -> metrics
  (** Stop the source (the stream ends at the next emission), wait for the
      drain and return the final metrics. Blocks until the deployment
      domain joins; re-raises any exception that escaped it. *)
end

val source_of_list : Ss_operators.Tuple.t list -> unit -> Ss_operators.Tuple.t option
(** Stateful closure draining the list once. *)

val source_of_fn :
  count:int -> (int -> Ss_operators.Tuple.t) -> unit -> Ss_operators.Tuple.t option
(** [source_of_fn ~count f] emits [f 0 .. f (count-1)] without materializing
    the stream. *)

val source_throttled :
  rate:float ->
  (unit -> Ss_operators.Tuple.t option) ->
  unit ->
  Ss_operators.Tuple.t option
(** [source_throttled ~rate source] paces [source] to [rate] tuples per
    wall-clock second by sleeping before each emission until its scheduled
    slot ([i /. rate] seconds after the first call). Deficits are caught up
    without sleeping, so the long-run rate converges to [rate] even after a
    stall. Live elasticity runs use this to present a {e stable offered
    load} — the regime where the paper argues a static plan beats reactive
    scaling — instead of the executor's default
    produce-at-memory-speed sources.
    @raise Invalid_argument if [rate] is not positive and finite. *)
