(** Bounded lock-free single-producer/single-consumer ring buffer — the
    fast path behind {!Mailbox} for topology edges with exactly one
    producing actor and one consuming actor.

    The design is the classic Lamport queue with the Vyukov refinements:
    a power-of-two slot array indexed by monotonically increasing head and
    tail counters published through [Atomic], and a per-side cache of the
    opposite index so the common case of a put or take touches only the
    owner's own atomic plus a plain array slot. No mutex is taken on the
    fast path; a lock exists only on the parking slow path
    ({!on_space}/{!on_item}, blocking {!put}/{!take}, {!close}), mirroring
    the locking mailbox's waiter protocol exactly so the N:M scheduler and
    the supervision close/poison protocol behave identically on both
    implementations.

    Contract: at most one domain (or pooled task) calls the producer
    operations ([put], [try_put], [try_put_chunk], [put_batch]) and at most
    one calls the consumer operations ([take], [try_take], [take_batch])
    at any time. This is not checked; violating it loses items. [close],
    [length], [capacity] and [is_closed] are safe from any domain —
    supervision closers and occupancy monitors rely on this. *)

type 'a t

exception Closed
(** Same role as [Mailbox.Closed]; {!Mailbox} aliases its exception to
    this one so both implementations raise physically the same
    exception. *)

val create : capacity:int -> 'a t
(** The slot array is rounded up to a power of two, but backpressure
    honors the requested [capacity] exactly.
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val put : 'a t -> 'a -> unit
(** Enqueue, blocking (condition-variable park) while full.
    @raise Closed if closed, including while blocked. *)

val take : 'a t -> 'a
(** Dequeue, blocking while empty. @raise Closed as {!put}. *)

val try_put : 'a t -> 'a -> bool
(** Lock-free enqueue; false when full. @raise Closed when closed. *)

val try_take : 'a t -> 'a option
(** Lock-free dequeue; [None] when empty. @raise Closed when closed. *)

val try_put_chunk : 'a t -> 'a list -> 'a list
(** Enqueue a prefix of the list — bounded by free capacity — with a
    single tail publication; returns the items that did not fit (a
    physical suffix of the input, so no allocation). [[]] means all were
    enqueued. An empty input returns [[]] without touching the ring.
    @raise Closed when closed and the input is non-empty. *)

val put_batch : 'a t -> 'a list -> unit
(** Enqueue all items in order, blocking for space as needed. Equivalent
    to iterated {!put} but publishes capacity-sized chunks at once.
    @raise Closed if closed, including mid-batch (already-enqueued items
    stay behind and are discarded by the close). *)

val take_batch : 'a t -> max:int -> into:'a Queue.t -> int
(** Dequeue up to [max] items in order, appending them to [into], with a
    single head publication. Returns the occupancy observed {e before}
    draining — so [min max result] items were appended, and the caller can
    use the result as an occupancy sample for adaptive drain sizing.
    Non-blocking. @raise Closed when closed.
    @raise Invalid_argument if [max < 1]. *)

val on_space : 'a t -> (unit -> unit) -> bool
(** Parking hook, same contract as [Mailbox.on_space]: registers the
    one-shot callback only if the ring is full and open (checked under the
    waiter lock, after raising the waiter flag, so a concurrent consumer
    either sees the flag or the registration re-check sees the freed
    slot — no lost wakeup). A wakeup is a hint; callers retry. *)

val on_item : 'a t -> (unit -> unit) -> bool
(** Dual of {!on_space}: registers only while empty and open. *)

val length : 'a t -> int
(** Instantaneous occupancy (racy; monitoring only). 0 once closed. *)

val close : 'a t -> unit
(** Poison: subsequent operations raise {!Closed}, blocked producers and
    consumers wake with {!Closed}, parked waiters fire. Pending items are
    never delivered (observably discarded; the slots themselves are not
    scrubbed — a ring pins at most [capacity] items until it is
    collected, because a concurrent scrub could race the consumer's slot
    read). Idempotent; safe from any domain. *)

val is_closed : 'a t -> bool
