type status =
  | Completed
  | Failed of { exn : string; backtrace : string }
  | Cancelled

type report = { actor : string; vertex : int option; status : status }

type outcome =
  | Finished
  | Actor_failed of report
  | Timed_out of float

type t = {
  mutex : Mutex.t;
  mutable closers : (unit -> unit) list;
  mutable reports : report list; (* completion order, newest first *)
  mutable first_failure : report option;
  mutable timeout : float option;
  tripped : bool Atomic.t;
}

let create () =
  {
    mutex = Mutex.create ();
    closers = [];
    reports = [];
    first_failure = None;
    timeout = None;
    tripped = Atomic.make false;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Run every registered closer; a closer must be idempotent (Mailbox.close
   is). Closer exceptions are swallowed: shutdown must always make
   progress. *)
let trip_locked t =
  Atomic.set t.tripped true;
  List.iter (fun close -> try close () with _ -> ()) t.closers

let register_closer t close =
  let already_tripped =
    locked t (fun () ->
        t.closers <- close :: t.closers;
        Atomic.get t.tripped)
  in
  if already_tripped then try close () with _ -> ()

let trip t = locked t (fun () -> trip_locked t)

let trip_timeout t ~after =
  locked t (fun () ->
      if t.first_failure = None && t.timeout = None then
        t.timeout <- Some after;
      trip_locked t)

let tripped t = Atomic.get t.tripped

let record t report =
  locked t (fun () ->
      t.reports <- report :: t.reports;
      (match report.status with
      | Failed _ when t.first_failure = None -> t.first_failure <- Some report
      | _ -> ());
      match report.status with Failed _ -> trip_locked t | _ -> ())

let supervise t ~actor ?vertex body () =
  let status =
    try
      body ();
      Completed
    with
    | Mailbox.Closed -> Cancelled
    | exn ->
        let backtrace =
          Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
        in
        Failed { exn = Printexc.to_string exn; backtrace }
  in
  record t { actor; vertex; status }

let reports t = locked t (fun () -> List.rev t.reports)

let outcome t =
  locked t (fun () ->
      match (t.timeout, t.first_failure) with
      | Some s, _ -> Timed_out s
      | None, Some r -> Actor_failed r
      | None, None -> Finished)

let pp_status ppf = function
  | Completed -> Format.pp_print_string ppf "completed"
  | Cancelled -> Format.pp_print_string ppf "cancelled"
  | Failed { exn; _ } -> Format.fprintf ppf "failed: %s" exn

let pp_outcome ppf = function
  | Finished -> Format.pp_print_string ppf "finished"
  | Timed_out s -> Format.fprintf ppf "timed out after %.3fs" s
  | Actor_failed { actor; vertex; status } ->
      Format.fprintf ppf "actor %s%a %a" actor
        (fun ppf -> function
          | None -> ()
          | Some v -> Format.fprintf ppf " (vertex %d)" v)
        vertex pp_status status
