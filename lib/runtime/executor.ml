open Ss_prelude
open Ss_topology
open Ss_operators
module Telemetry = Ss_telemetry.Telemetry
module Sink = Ss_telemetry.Telemetry.Sink

type instrument = {
  sample_occupancy : bool;
  telemetry : bool;
  telemetry_sample : int;
}

let default_instrument =
  { sample_occupancy = true; telemetry = false; telemetry_sample = 32 }

type metrics = {
  elapsed : float;
  consumed : int array;
  produced : int array;
  late : int array;
  source_rate : float;
  blocked : float array;
  occupancy : float array;
  telemetry : Telemetry.report option;
  actors : Supervision.report list;
  outcome : Supervision.outcome;
}

type router = Tuple.t -> int

(* Provenance of a log-backed source record, threaded through every tuple
   derived from it so the ingest offset can be committed exactly when the
   record's whole derivation tree has drained (Storm-style ack counting).
   [acks] counts in-flight tuple instances of the record: it starts at 1
   when the reader emits the record and every processing step adds
   (forwards - 1); when it reaches 0 the record is complete and
   [complete] advances the partition's commit watermark. [No_track] is
   the in-process-source case and costs nothing (an immediate). *)
type track =
  | No_track
  | Track of { acks : int Atomic.t; complete : unit -> unit }

(* [settle tk d] accounts a net change of [d] in-flight instances. The
   delta must be applied {e before} the new instances are published:
   adding after a send would let a fast consumer drive the counter to 0
   while siblings are still in flight. *)
let settle tk d =
  match tk with
  | No_track -> ()
  | Track { acks; complete } ->
      if d <> 0 && Atomic.fetch_and_add acks d = -d then complete ()

(* [Timed] carries the tuple's birth timestamp (source emission time) so
   downstream vertices can record its age; it is used only when telemetry
   is on, keeping the off path allocation-identical to before. [Tracked]
   additionally carries the provenance of a log record — it only exists
   in ingest runs, so the generator-driven hot paths are untouched.

   [Drain] and [Expect] exist only inside elastic fission units. [Drain] is
   the quiesce marker the emitter appends behind all in-flight work on a
   worker channel: the worker finishes everything before it, exports its
   keyed state to the handoff channel and exits {e without} signalling
   end-of-stream. [Expect k] tells the unit's collector how many
   end-of-stream markers terminate the run (the final generation's degree) —
   unknowable at deploy time when the degree changes live. Static units
   never see either.

   [Wm (slot, w)] is an in-band watermark from one upstream producer: the
   promise that the producer will send no more tuples with event timestamp
   below [w]. [slot] identifies the producer within the receiver's merge
   array (a unit's watermark is the minimum over its upstream slots);
   producers send [Wm (slot, infinity)] before their [Eos] so finite
   streams flush every open window. [Resize (d, floor)] travels only on an
   elastic unit's collector channel: the replica set just swapped to [d]
   workers, each primed at watermark [floor], so the collector rebuilds its
   merge array. Both exist only in event-time runs — without
   [?event_time] no watermark is ever generated and the arms are dead.

   [Routed (dest, out, birth)] exists only on a replicated fused group's
   worker->collector channel: the staged chain already drew the routing
   decision inside the loop, so the worker ships the destination with the
   tuple and the collector only forwards. Workers cannot write downstream
   mailboxes directly — the unit must stay a single producer per
   downstream edge or the SPSC channel selection above breaks. *)
type msg =
  | Data of Tuple.t
  | Timed of Tuple.t * float
  | Tracked of Tuple.t * float * track
  | Eos
  | Drain
  | Expect of int
  | Wm of int * float
  | Resize of int * float
  | Routed of int * Tuple.t * float

(* Per-receiver watermark merge: one slot per upstream producer (ingest
   readers included); the unit's watermark is the minimum over slots and
   only its advances propagate. Single-threaded: each merge belongs to the
   one actor that drains the unit's input channel. *)
module Wm_merge = struct
  type t = { mutable slots : float array; mutable cur : float }

  let create k =
    { slots = Array.make (Stdlib.max 1 k) neg_infinity; cur = neg_infinity }

  let min_slots a = Array.fold_left Float.min infinity a

  let observe t slot w =
    if w > t.slots.(slot) then t.slots.(slot) <- w;
    let m = min_slots t.slots in
    if m > t.cur then begin
      t.cur <- m;
      Some m
    end
    else None

  (* Elastic generation swap: the producer set changes size and every new
     producer starts from the emitter-chosen floor. *)
  let reset t k floor =
    t.slots <- Array.make (Stdlib.max 1 k) floor;
    if floor > t.cur then begin
      t.cur <- floor;
      Some floor
    end
    else None

  (* Defensive end-of-stream advance: all producers are gone, so the merge
     can jump to infinity even if a [Wm (_, infinity)] went missing. *)
  let force t =
    if t.cur < infinity then begin
      t.cur <- infinity;
      Some infinity
    end
    else None

  let current t = t.cur
end

(* Ordered-fission worker→collector entries: one batch of results per
   input in deal order, a watermark dealt in-band (echoed in position so
   the collector forwards it after exactly the inputs dealt before it), or
   the worker's end marker. *)
type ordered_out =
  | Obatch of Tuple.t list * float * track
  | Owm of float
  | Odone

type ingest = {
  ingest_log : Ss_log.Log.t;
  ingest_group : string;
  ingest_commit_every : int;
  ingest_read_batch : int;
}

let ingest ?(group = "default") ?(commit_every = 512) ?(read_batch = 256) log =
  if commit_every < 1 then invalid_arg "Executor.ingest: commit_every must be >= 1";
  if read_batch < 1 then invalid_arg "Executor.ingest: read_batch must be >= 1";
  {
    ingest_log = log;
    ingest_group = group;
    ingest_commit_every = commit_every;
    ingest_read_batch = read_batch;
  }

(* Per-partition completion watermark: records complete out of order (their
   derivation trees drain independently), but only the contiguous prefix
   may be committed — a gap means an earlier record still has in-flight
   tuples that a crash would lose. *)
module Completion = struct
  type t = {
    mutable low : int; (* all offsets <= low are complete *)
    pending : (int, unit) Hashtbl.t; (* completed offsets above low *)
    m : Mutex.t;
  }

  let create ~start = { low = start - 1; pending = Hashtbl.create 64; m = Mutex.create () }

  let complete t off =
    Mutex.lock t.m;
    if off = t.low + 1 then begin
      t.low <- off;
      let continue = ref true in
      while !continue do
        if Hashtbl.mem t.pending (t.low + 1) then begin
          Hashtbl.remove t.pending (t.low + 1);
          t.low <- t.low + 1
        end
        else continue := false
      done
    end
    else Hashtbl.replace t.pending off ();
    Mutex.unlock t.m

  (* Next offset to consume: everything below it is fully processed. *)
  let watermark t =
    Mutex.lock t.m;
    let w = t.low + 1 in
    Mutex.unlock t.m;
    w
end

type scheduler = [ `Domain_per_actor | `Pool of int | `Locked_pool of int ]
type batch = [ `Fixed of int | `Adaptive of int ]
type channels = [ `Auto | `Locking ]

(* Shared-memory control plane between a running deployment and the elastic
   controller. [target] is written by the controller; the unit's emitter
   polls it between input bursts and performs the swap; [applied],
   [generation] and [downtime] flow back. Only vertices flagged in
   [managed] deploy as resizable units. *)
type control = {
  target : int Atomic.t array;
  applied : int Atomic.t array;
  managed : bool array;
  generation : int Atomic.t;
  downtime : float Atomic.t array; (* cumulative quiesce seconds, per vertex *)
  stop : bool Atomic.t; (* cuts the source off at the next emission *)
}

(* Runtime handles surfaced to [Live] once deployment is complete and the
   pool is about to run. *)
type live_internals = {
  li_consumed : int Atomic.t array;
  li_produced : int Atomic.t array;
  li_collector : Telemetry.Collector.t option;
  li_pool : Ss_sched.Sched.t;
}

let source_of_list items =
  let rest = ref items in
  fun () ->
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some x

let source_of_fn ~count f =
  let i = ref 0 in
  fun () ->
    if !i >= count then None
    else begin
      let t = f !i in
      incr i;
      Some t
    end

let source_throttled ~rate source =
  if not (Float.is_finite rate && rate > 0.0) then
    invalid_arg "Executor.source_throttled: rate must be positive";
  let started = ref None in
  let emitted = ref 0 in
  fun () ->
    match source () with
    | None -> None
    | Some t ->
        let now = Unix.gettimeofday () in
        let t0 =
          match !started with
          | Some t0 -> t0
          | None ->
              started := Some now;
              now
        in
        let target = t0 +. (float_of_int !emitted /. rate) in
        if target > now then Unix.sleepf (target -. now);
        incr emitted;
        Some t

(* In [`Domain_per_actor] mode every actor body runs on its own domain, so
   the runtime caps the actor count below the OCaml domain limit (the
   monitor and watchdog domains ride on top of this budget). [`Pool] mode
   has no such cap: any number of actors multiplex over the workers. *)
let max_actors = 110

(* Interval between mailbox-occupancy samples (monitor domain in legacy
   mode, the pool's tick in pool mode). *)
let sample_interval = 1e-3

(* How an actor body touches mailboxes, abstracted over the execution
   model. [cput] is a vertex-attributed put that accounts time spent
   waiting on a full downstream mailbox as blocked/parked time;
   [cput_batch] is its multi-item form, publishing a burst in amortized
   mailbox transactions. [creader] builds a per-mailbox reader closure;
   the pool version drains a batch per activation into a reusable buffer
   to amortize scheduling cost, the legacy version is a plain blocking
   [Mailbox.take]. [cburst] is the burst-granular reader used by fission
   emitters: it returns a non-empty buffer of messages valid until the
   next call, so the emitter can route a whole drain and republish it
   with [cput_batch]. All raise {!Mailbox.Closed} on a poisoned mailbox,
   preserving the supervision protocol identically in both modes. *)
type ctx = {
  cput : 'a. int -> 'a Mailbox.t -> 'a -> unit;
  cput_batch : 'a. int -> 'a Mailbox.t -> 'a list -> unit;
  creader : 'a. 'a Mailbox.t -> unit -> 'a;
  cburst : 'a. 'a Mailbox.t -> unit -> 'a Queue.t;
}

let run_internal ?control ?notify ?ingest ?event_time ?(reserve = 0)
    ?(mailbox_capacity = 64) ?(fused = []) ?(fusion = `Compiled) ?(chains = [])
    ?(flush_every = 4096) ?(routers = []) ?(ordered = []) ?(seed = 42) ?timeout
    ?scheduler ?placement ?(batch = `Adaptive 32) ?(channels = `Auto)
    ?(instrument = default_instrument) ~source ~registry topology =
  if flush_every < 1 then
    invalid_arg "Executor.run: flush_every must be >= 1";
  let scheduler =
    match scheduler with
    | Some (`Pool w | `Locked_pool w) when w < 1 ->
        invalid_arg "Executor.run: pool workers must be >= 1"
    | Some s -> s
    | None -> `Pool (Stdlib.max 1 (Domain.recommended_domain_count ()))
  in
  (match (control, scheduler) with
  | Some _, `Domain_per_actor ->
      invalid_arg
        "Executor: live reconfiguration requires a pool scheduler (replicas \
         spawned mid-run multiplex over the workers)"
  | _ -> ());
  (match (control, ingest) with
  | Some _, Some _ ->
      invalid_arg
        "Executor: live reconfiguration and log-backed ingest cannot be \
         combined yet"
  | _ -> ());
  (* Log-backed ingest deploys the source as one reader actor per log
     partition; everything downstream sees [source_units] producers where
     it used to see one. *)
  let source_units =
    match ingest with
    | None -> 1
    | Some i -> Ss_log.Log.partitions i.ingest_log
  in
  if reserve < 0 then invalid_arg "Executor.run: reserve must be >= 0";
  (* Dynamic spawn hook: elastic emitters spawn replacement workers through
     it. Bound to [Sched.spawn] on the live pool just before the pool runs;
     reconfiguration can only be requested while the pool runs, so elastic
     units never observe the placeholder. *)
  let spawn_dyn :
      (actor:string -> vertex:int -> (unit -> unit) -> unit) ref =
    ref (fun ~actor:_ ~vertex:_ _ ->
        invalid_arg "Executor: dynamic spawn before the pool started")
  in
  (match batch with
  | `Fixed b | `Adaptive b ->
      if b < 1 then invalid_arg "Executor.run: batch must be >= 1");
  (* Cap on messages drained per activation; the adaptive policy moves
     within [1, batch_max], a fixed policy always drains up to it. *)
  let batch_max = match batch with `Fixed b | `Adaptive b -> b in
  (* Per-mailbox drain-size policy. Fixed: always offer the full cap.
     Adaptive: an EWMA of the occupancy observed at each activation
     (returned by [Mailbox.take_batch] at no extra cost) sets the next
     drain size — deep queues earn big drains, near-empty latency-bound
     edges drain one or two and yield. *)
  let new_drain () =
    match batch with
    | `Fixed b -> ((fun () -> b), fun _occ -> ())
    | `Adaptive bmax ->
        let ewma = ref 1.0 in
        ( (fun () ->
            let w = int_of_float (Float.ceil !ewma) in
            if w < 1 then 1 else if w > bmax then bmax else w),
          fun occ -> ewma := (0.75 *. !ewma) +. (0.25 *. float_of_int occ) )
  in
  if instrument.telemetry_sample < 1 then
    invalid_arg "Executor.run: telemetry_sample must be >= 1";
  let n = Topology.size topology in
  let src = Topology.source topology in
  if (Topology.operator topology src).Operator.replicas <> 1 then
    invalid_arg "Executor.run: the source operator cannot be replicated";
  (* Locality plan: [placement.(v)] is an abstract node id (typically an
     [Ss_placement] assignment). Normalize the ids to dense scheduler
     groups, collapse by modulo when there are more nodes than workers,
     and split the workers across groups as evenly as possible. Returns
     [(group_of_vertex, group_sizes)]. Placement only affects pool
     scheduling; [`Domain_per_actor] runs every actor on its own domain
     and ignores it. *)
  let placement_groups ~workers placement =
    if Array.length placement <> n then
      invalid_arg "Executor.run: placement length must equal topology size";
    Array.iter
      (fun g ->
        if g < 0 then invalid_arg "Executor.run: placement nodes must be >= 0")
      placement;
    let ids = Array.to_list placement |> List.sort_uniq compare in
    let dense = Hashtbl.create 8 in
    List.iteri (fun i id -> Hashtbl.replace dense id i) ids;
    let ngroups = Stdlib.min (List.length ids) workers in
    let group_of_vertex =
      Array.map (fun id -> Hashtbl.find dense id mod ngroups) placement
    in
    let sizes = Array.make ngroups (workers / ngroups) in
    for g = 0 to (workers mod ngroups) - 1 do
      sizes.(g) <- sizes.(g) + 1
    done;
    (group_of_vertex, sizes)
  in
  (match timeout with
  | Some limit when limit <= 0.0 ->
      invalid_arg "Executor.run: timeout must be positive"
  | _ -> ());
  List.iter
    (fun v ->
      let op = Topology.operator topology v in
      if op.Operator.kind <> Operator.Stateless || op.Operator.replicas < 2 then
        invalid_arg
          (Printf.sprintf
             "Executor.run: ordered fission requires a replicated stateless \
              operator (vertex %d)"
             v))
    ordered;
  (* Fused groups: disjoint, legal, source excluded. *)
  let group_of = Array.make n (-1) in
  let fronts = Array.of_list (List.map (fun _ -> -1) fused) in
  List.iteri
    (fun gi vs ->
      (match Topology.front_end_of topology vs with
      | Ok fe -> fronts.(gi) <- fe
      | Error e -> invalid_arg ("Executor.run: illegal fused group: " ^ e));
      List.iter
        (fun v ->
          if group_of.(v) <> -1 then
            invalid_arg "Executor.run: overlapping fused groups";
          group_of.(v) <- gi)
        vs)
    fused;
  let entry_vertex v = if group_of.(v) >= 0 then fronts.(group_of.(v)) else v in
  let is_entry v = v <> src && entry_vertex v = v in
  let sup = Supervision.create () in
  (* Expected end-of-stream markers per entry vertex: one per distinct
     upstream unit. This doubles as the channel-selection fan-in count:
     every deployed unit publishes into a given mailbox from exactly one
     actor (the unit itself, its collector, or its meta-operator), so an
     entry mailbox with one distinct upstream unit has exactly one
     producer. *)
  let expected_eos v =
    Topology.preds topology v
    |> List.map (fun (u, _) -> entry_vertex u)
    |> List.sort_uniq compare
    |> List.fold_left
         (fun acc u -> acc + if u = src then source_units else 1)
         0
  in
  (* Channel selection is static, from the topology: an edge with a single
     producing actor and a single consuming actor gets the lock-free SPSC
     ring; fan-in edges (multi-predecessor entries, fission merge points)
     keep the locking MPSC mailbox. A unit's fan-out never matters: each
     out-edge targets a distinct mailbox, so fan-out does not add
     producers to any one of them. [`Locking] forces the locking
     implementation everywhere (for differential benchmarks). *)
  let new_mailbox ~spsc () =
    let mb =
      if spsc && channels = `Auto then
        Mailbox.create_spsc ~capacity:mailbox_capacity
      else Mailbox.create ~capacity:mailbox_capacity
    in
    Supervision.register_closer sup (fun () -> Mailbox.close mb);
    mb
  in
  (* One entry mailbox per deployed unit; SPSC when a single upstream unit
     feeds it. Replicated units consume it through their (single) emitter,
     fused groups through their (single) meta-actor, so the consumer side
     is always one actor. *)
  let entry_mailbox = Array.make n None in
  for v = 0 to n - 1 do
    if is_entry v then
      entry_mailbox.(v) <- Some (new_mailbox ~spsc:(expected_eos v = 1) ())
  done;
  let mailbox_of v =
    match entry_mailbox.(entry_vertex v) with
    | Some mb -> mb
    | None -> assert false
  in
  let consumed = Array.init n (fun _ -> Atomic.make 0) in
  let produced = Array.init n (fun _ -> Atomic.make 0) in
  (* Per-vertex seconds spent blocked (legacy) or parked (pool) on a full
     downstream mailbox — the backpressure felt by the vertex. Timed only
     on the slow path: a failed [try_put] costs one extra lock round-trip
     before blocking/parking. *)
  let blocked = Array.init n (fun _ -> Atomic.make 0.0) in
  let add_blocked v dt =
    let cell = blocked.(v) in
    let rec go () =
      let old = Atomic.get cell in
      if not (Atomic.compare_and_set cell old (old +. dt)) then go ()
    in
    go ()
  in
  (* Telemetry: one collector per run, one private sink per actor (created
     here, on the deploying thread, before any actor starts). Vertices
     record tuple age and behavior duration; every successful routing choice
     counts one transfer on the chosen topology edge. *)
  let collector =
    if instrument.telemetry then Some (Telemetry.Collector.create topology)
    else None
  in
  let new_sink () = Option.map Telemetry.Collector.sink collector in
  (* Flat (u, v) -> edge-index map: the lookup sits on the telemetry send
     path, so it must be a plain array read, not a hash probe. *)
  let edge_idx = Array.make (n * n) (-1) in
  List.iteri
    (fun i (u, v, _) -> edge_idx.((u * n) + v) <- i)
    (Topology.edges topology);
  let edge_id u v = edge_idx.((u * n) + v) in
  (* Blocking-put slow path under the pool: park the task (the worker moves
     on) until the mailbox signals space, then retry — a wakeup is a hint,
     not a reservation, so another producer may win the slot. *)
  let sched_put mb x =
    let rec go () =
      Ss_sched.Sched.suspend ~register:(Mailbox.on_space mb);
      if not (Mailbox.try_put mb x) then go ()
    in
    if not (Mailbox.try_put mb x) then go ()
  in
  (* Multi-item publish under the pool: park-and-retry on the unplaced
     suffix until the whole burst is in. *)
  let sched_put_batch mb xs =
    let rec go xs =
      Ss_sched.Sched.suspend ~register:(Mailbox.on_space mb);
      match Mailbox.try_put_chunk mb xs with [] -> () | rest -> go rest
    in
    go xs
  in
  let ctx =
    match scheduler with
    | `Domain_per_actor ->
        {
          cput =
            (fun v mb x ->
              if not (Mailbox.try_put mb x) then begin
                let t0 = Unix.gettimeofday () in
                Mailbox.put mb x;
                add_blocked v (Unix.gettimeofday () -. t0)
              end);
          cput_batch =
            (fun v mb xs ->
              match Mailbox.try_put_chunk mb xs with
              | [] -> ()
              | rest ->
                  let t0 = Unix.gettimeofday () in
                  Mailbox.put_batch mb rest;
                  add_blocked v (Unix.gettimeofday () -. t0));
          creader = (fun mb () -> Mailbox.take mb);
          cburst =
            (fun mb ->
              let buf = Queue.create () in
              fun () ->
                Queue.clear buf;
                (* One blocking take for the head of the burst, then a
                   non-blocking drain of whatever else is already there. *)
                Queue.push (Mailbox.take mb) buf;
                if batch_max > 1 then
                  ignore (Mailbox.take_batch mb ~max:(batch_max - 1) ~into:buf);
                buf);
        }
    | `Pool _ | `Locked_pool _ ->
        {
          cput =
            (fun v mb x ->
              if not (Mailbox.try_put mb x) then begin
                let t0 = Unix.gettimeofday () in
                sched_put mb x;
                add_blocked v (Unix.gettimeofday () -. t0)
              end);
          cput_batch =
            (fun v mb xs ->
              match Mailbox.try_put_chunk mb xs with
              | [] -> ()
              | rest ->
                  let t0 = Unix.gettimeofday () in
                  sched_put_batch mb rest;
                  add_blocked v (Unix.gettimeofday () -. t0));
          creader =
            (fun mb ->
              let buf = Queue.create () in
              let want, observe = new_drain () in
              let rec next () =
                match Queue.take_opt buf with
                | Some x -> x
                | None ->
                    observe (Mailbox.take_batch mb ~max:(want ()) ~into:buf);
                    if Queue.is_empty buf then begin
                      Ss_sched.Sched.suspend ~register:(Mailbox.on_item mb);
                      next ()
                    end
                    else next ()
              in
              next);
          cburst =
            (fun mb ->
              let buf = Queue.create () in
              let want, observe = new_drain () in
              let rec fill () =
                observe (Mailbox.take_batch mb ~max:(want ()) ~into:buf);
                if Queue.is_empty buf then begin
                  Ss_sched.Sched.suspend ~register:(Mailbox.on_item mb);
                  fill ()
                end
              in
              fun () ->
                Queue.clear buf;
                fill ();
                buf);
        }
  in
  let put_from v mb x = ctx.cput v mb x in
  (* --- event time ---------------------------------------------------
     Watermarks are generated at the source(s) and travel in-band as
     [Wm (slot, w)] messages. Slot assignment is static, derived from the
     same sorted upstream-unit list as [expected_eos]: unit [u]'s slot in
     receiver [v]'s merge array is the number of producers of units sorted
     before [u] (the source expands to [source_units] reader slots, ingest
     reader [p] claiming base + p). FIFO channel order is the correctness
     backbone: a producer fires its own windows {e before} forwarding the
     watermark, so fired results reach the channel ahead of the watermark
     that would declare them late downstream. *)
  let et_on = Option.is_some event_time in
  let lateness =
    match event_time with
    | Some c -> c.Ss_event.Event_time.lateness
    | None -> Ss_event.Lateness.Drop
  in
  let new_watermark () =
    match event_time with
    | Some c -> Some (Ss_event.Watermark.create c.Ss_event.Event_time.watermark)
    | None -> None
  in
  let upstream_units v =
    Topology.preds topology v
    |> List.map (fun (u, _) -> entry_vertex u)
    |> List.sort_uniq compare
  in
  let wm_slot ~receiver u =
    let rec go acc = function
      | [] -> assert false (* [u] is an upstream unit of [receiver] *)
      | x :: tl ->
          if x = u then acc
          else go (acc + if x = src then source_units else 1) tl
    in
    go 0 (upstream_units receiver)
  in
  (* Distinct downstream entry mailboxes paired with [sender]'s slot in
     each receiver's merge; empty when event time is off, so watermark
     broadcasts vanish from the hot paths. *)
  let wm_targets sender vs =
    if not et_on then []
    else
      vs
      |> List.map entry_vertex
      |> List.sort_uniq compare
      |> List.map (fun w -> (mailbox_of w, wm_slot ~receiver:w sender))
  in
  let wm_forward v targets m =
    List.iter (fun (mb, slot) -> put_from v mb (Wm (slot, m))) targets
  in
  (* The evented instance of a behavior, shared between its [efn] and its
     watermark/late hooks; [None] for ordinary behaviors. *)
  let evented_of behavior =
    match behavior.Behavior.evented with
    | Some mk -> Some (mk ())
    | None -> None
  in
  let late = Array.init n (fun _ -> Atomic.make 0) in
  let count_late snk v =
    Atomic.incr late.(v);
    match snk with Some s -> Sink.record_late s v | None -> ()
  in
  (* Successor choice for items leaving vertex [v]: a user router or a
     probabilistic sample over the out-edges. Returns the successor vertex. *)
  let chooser v rng =
    let out = Topology.succs topology v in
    match out with
    | [] -> fun _ -> None
    | edges -> (
        let dests = Array.of_list (List.map fst edges) in
        match List.assoc_opt v routers with
        | Some router ->
            fun t ->
              let i = router t in
              if i < 0 || i >= Array.length dests then
                invalid_arg
                  (Printf.sprintf
                     "Executor: router of vertex %d chose successor %d of %d" v
                     i (Array.length dests))
              else Some dests.(i)
        | None ->
            let dist = Discrete.of_weights (Array.of_list (List.map snd edges)) in
            fun _ -> Some dests.(Discrete.sample rng dist))
  in
  (* Distinct destination mailboxes used by a set of (external) successor
     vertices; Eos is broadcast to each exactly once. *)
  let eos_targets vertices =
    vertices
    |> List.map entry_vertex
    |> List.sort_uniq compare
    |> List.map (fun v -> mailbox_of v)
  in
  let external_succs v =
    Topology.succs topology v |> List.map fst
    |> List.filter (fun w -> group_of.(w) < 0 || group_of.(w) <> group_of.(v))
  in
  let opname v = (Topology.operator topology v).Operator.name in
  let actors = ref [] in
  (* [group_hint] overrides the vertex's placement group: ingest readers
     spread across the pool's locality groups (one stripe per partition)
     instead of piling onto the source's group. *)
  let add_actor ~actor ?vertex ?group_hint body =
    actors := (actor, vertex, group_hint, body) :: !actors
  in
  (* Forward one result of vertex [v] to [dest]'s mailbox: counts the edge
     transfer and propagates the tuple's birth time when telemetry is on,
     and its log-record provenance when the run is ingest-backed. *)
  let wrap out birth tk =
    match tk with
    | No_track -> Timed (out, birth)
    | Track _ -> Tracked (out, birth, tk)
  in
  (* The telemetry-off equivalent: [Data] stays the zero-overhead common
     case; tracked tuples must keep their provenance either way. *)
  let wrap_plain out tk =
    match tk with No_track -> Data out | Track _ -> Tracked (out, 0.0, tk)
  in
  let sender snk v =
    match snk with
    | Some s ->
        fun dest out birth tk ->
          Sink.incr_edge s (edge_id v dest);
          put_from v (mailbox_of dest) (wrap out birth tk)
    | None ->
        fun dest out _birth tk -> put_from v (mailbox_of dest) (wrap_plain out tk)
  in
  (* Route-then-send for one invocation's outputs under tracking: the
     number of surviving instances must be known (and settled) before the
     first publish, so routing decisions are materialized first. The
     untracked path keeps the original single pass. *)
  let fanout v send choose outs birth tk =
    match tk with
    | No_track ->
        List.iter
          (fun out ->
            Atomic.incr produced.(v);
            match choose out with
            | Some dest -> send dest out birth No_track
            | None -> ())
          outs
    | Track _ ->
        let routed =
          List.map
            (fun out ->
              Atomic.incr produced.(v);
              (out, choose out))
            outs
        in
        let live =
          List.fold_left
            (fun acc (_, d) -> acc + match d with Some _ -> 1 | None -> 0)
            0 routed
        in
        settle tk (live - 1);
        List.iter
          (fun (out, d) ->
            match d with Some dest -> send dest out birth tk | None -> ())
          routed
  in
  (* One behavior invocation at vertex [v], recording the input tuple's age
     and the invocation duration when telemetry is on. Timing reads the
     clock twice per invocation, which dominates telemetry's cost on cheap
     behaviors, so only every [telemetry_sample]-th invocation per vertex
     is timed (deterministically: the first, then every k-th by arrival
     order at that vertex). Edge counters stay exact regardless. *)
  let invoke snk v fn =
    match snk with
    | Some s ->
        let k = instrument.telemetry_sample in
        let left = ref 1 in
        fun t birth ->
          decr left;
          if !left <= 0 then begin
            left := k;
            let start = Unix.gettimeofday () in
            Sink.record_latency s v (start -. birth);
            let outs = fn t in
            Sink.record_service s v (Unix.gettimeofday () -. start);
            outs
          end
          else fn t
    | None -> fun t _birth -> fn t
  in

  (* Birth timestamps feed the latency histograms, whose buckets start
     at a microsecond, so the clock is read every [telemetry_sample]-th
     emission and reused in between: staleness is bounded by k source
     intervals and the per-tuple cost drops to a counter. [1] stamps
     every tuple exactly. *)
  let new_stamper snk =
    match snk with
    | Some _ ->
        let k = instrument.telemetry_sample in
        let left = ref 1 in
        let cached = ref 0.0 in
        fun () ->
          decr left;
          if !left <= 0 then begin
            left := k;
            cached := Unix.gettimeofday ()
          end;
          !cached
    | None -> fun () -> 0.0
  in
  (* Per-partition completion trackers of an ingest run, created on the
     deploying thread so the final offset commit (after the join) can read
     their watermarks even if the run was cancelled mid-stream. *)
  let completions =
    match ingest with
    | None -> [||]
    | Some i ->
        Array.init source_units (fun p ->
            Completion.create
              ~start:
                (Ss_log.Log.committed i.ingest_log ~group:i.ingest_group
                   ~partition:p))
  in

  (* --- source actor(s) --------------------------------------------- *)
  let () =
    match ingest with
    | None ->
        let rng = Rng.create seed in
        let choose = chooser src rng in
        let snk = new_sink () in
        let send = sender snk src in
        let stamped = new_stamper snk in
        let wmg = new_watermark () in
        let wmt = wm_targets src (external_succs src) in
        add_actor ~actor:(opname src) ~vertex:src (fun () ->
            let observe t =
              match wmg with
              | None -> ()
              | Some g -> (
                  match Ss_event.Watermark.observe g t.Tuple.ts with
                  | Some w -> wm_forward src wmt w
                  | None -> ())
            in
            let rec loop () =
              match source () with
              | Some t ->
                  Atomic.incr produced.(src);
                  (match choose t with
                  | Some dest -> send dest t (stamped ()) No_track
                  | None -> ());
                  observe t;
                  loop ()
              | None ->
                  wm_forward src wmt infinity;
                  List.iter (fun mb -> put_from src mb Eos)
                    (eos_targets (external_succs src))
            in
            loop ())
    | Some ing ->
        (* One reader actor per log partition. Each reader replays its
           partition from the group's committed offset to the log's end,
           decodes tuples, routes them like the source would, and — on a
           [commit_every] cadence — durably commits the partition's
           completion watermark: the largest contiguous prefix of records
           whose derivation trees have fully drained. Commits therefore
           trail processing (at-least-once: a crash redelivers exactly the
           uncommitted suffix) and never lead it (zero loss). *)
        for p = 0 to source_units - 1 do
          let rng = Rng.create (seed + (104729 * (p + 1))) in
          let choose = chooser src rng in
          let snk = new_sink () in
          let send = sender snk src in
          let stamped = new_stamper snk in
          (* Per-partition watermark: reader [p] owns slot base + p in every
             downstream merge, so one stalled partition holds the merged
             watermark back — exactly the Kafka-style per-partition bound. *)
          let wmg = new_watermark () in
          let wmt =
            List.map
              (fun (mb, slot) -> (mb, slot + p))
              (wm_targets src (external_succs src))
          in
          let compl = completions.(p) in
          add_actor
            ~actor:(Printf.sprintf "%s.reader%d" (opname src) p)
            ~vertex:src ~group_hint:p
            (fun () ->
              let cursor = ref (Completion.watermark compl) in
              let committed = ref !cursor in
              let since_commit = ref 0 in
              let maybe_commit ~force () =
                if force || !since_commit >= ing.ingest_commit_every then begin
                  since_commit := 0;
                  let wm = Completion.watermark compl in
                  if wm > !committed then begin
                    Ss_log.Log.commit ing.ingest_log ~group:ing.ingest_group
                      ~partition:p wm;
                    committed := wm
                  end
                end
              in
              let emit (off, payload) =
                let t = Ss_log.Tuple_codec.decode payload in
                Atomic.incr produced.(src);
                let tk =
                  Track
                    {
                      acks = Atomic.make 1;
                      complete = (fun () -> Completion.complete compl off);
                    }
                in
                (match choose t with
                | Some dest -> send dest t (stamped ()) tk
                | None -> settle tk (-1));
                match wmg with
                | None -> ()
                | Some g -> (
                    match Ss_event.Watermark.observe g t.Tuple.ts with
                    | Some w -> wm_forward src wmt w
                    | None -> ())
              in
              let rec loop () =
                match
                  Ss_log.Log.read ing.ingest_log ~partition:p ~from:!cursor
                    ~max_records:ing.ingest_read_batch ()
                with
                | [] ->
                    maybe_commit ~force:true ();
                    wm_forward src wmt infinity;
                    List.iter (fun mb -> put_from src mb Eos)
                      (eos_targets (external_succs src))
                | records ->
                    List.iter emit records;
                    (match List.rev records with
                    | (last, _) :: _ -> cursor := last + 1
                    | [] -> ());
                    since_commit := !since_commit + List.length records;
                    maybe_commit ~force:false ();
                    loop ()
              in
              loop ())
        done
  in

  (* --- per-vertex units -------------------------------------------- *)
  for v = 0 to n - 1 do
    if v <> src && group_of.(v) < 0 then begin
      let op = Topology.operator topology v in
      let behavior = registry v in
      let inbox = mailbox_of v in
      let expected = expected_eos v in
      (* With a control plane attached, every vertex that can legally change
         degree deploys as an elastic unit — even at degree 1, so growth
         from a sequential deployment needs no restart. Ordered-fission and
         fused vertices keep their static deployment (their protocols pin
         the worker set), as do partitioned-stateful operators whose
         behavior cannot export its state (resizing those live would
         silently drop state). *)
      let elastic =
        match control with
        | None -> false
        | Some ctl ->
            let ok =
              (not (List.mem v ordered))
              && Operator.can_replicate op
              &&
              match op.Operator.kind with
              | Operator.Partitioned_stateful _ -> Behavior.can_migrate behavior
              | Operator.Stateless | Operator.Stateful -> true
            in
            if ok then begin
              ctl.managed.(v) <- true;
              Atomic.set ctl.target.(v) op.Operator.replicas;
              Atomic.set ctl.applied.(v) op.Operator.replicas
            end;
            ok
      in
      if elastic then begin
        (* --- elastic fission unit: emitter, one {e generation} of
           workers at a time, collector. The swap protocol is coordinated
           entirely by the emitter, inline between input bursts:
           1. it notices [target <> applied] and stamps the clock;
           2. it appends [Drain] behind all in-flight work on every worker
              channel — FIFO order quiesces each worker after it has
              processed everything dealt to it, so no tuple is lost,
              reordered (per key) or double-processed;
           3. each worker exports its keyed state (empty for stateless
              behaviors) to the handoff channel and retires without an
              end-of-stream marker;
           4. the emitter merges the exports, repartitions them under the
              new degree's routing, spawns the next generation with state
              preloaded, and resumes dealing.
           Input never overtakes the swap (the emitter is the only dealer),
           and the wall-clock span of steps 2-4 is the measured
           reconfiguration downtime charged to the vertex. The collector is
           generation-agnostic: workers of any generation feed the same
           merge mailbox, and the final [Expect] message tells it how many
           end-of-stream markers — the last generation's degree — end the
           run. *)
        let ctl = match control with Some c -> c | None -> assert false in
        let initial = op.Operator.replicas in
        let collector_mb = new_mailbox ~spsc:false () in
        let handoff_mb : Behavior.keyed_state Mailbox.t =
          new_mailbox ~spsc:false ()
        in
        let partition_of d =
          match op.Operator.kind with
          | Operator.Partitioned_stateful keys ->
              let groups =
                Ss_core.Key_partitioning.groups_for ~keys ~replicas:d
              in
              let support = Discrete.support keys in
              Some (fun k -> groups.(((k mod support) + support) mod support))
          | Operator.Stateless | Operator.Stateful -> None
        in
        let route_of d =
          match partition_of d with
          | Some owner -> fun (t : Tuple.t) _rr -> owner t.Tuple.key
          | None -> fun (_ : Tuple.t) rr -> rr mod d
        in
        let make_worker ~gen ~r mb state =
          let snk = new_sink () in
          (* Evented behaviors migrate through their own export/import (the
             in-flight windows ride the handoff), so they take precedence
             over the plain migratable interface. *)
          let inst =
            match behavior.Behavior.evented with
            | Some mk -> `Evented (mk ())
            | None -> (
                match behavior.Behavior.migrate with
                | Some mk -> `Migratable (mk ())
                | None -> `Plain (Behavior.instantiate behavior))
          in
          (match (inst, state) with
          | `Migratable m, Some st -> m.Behavior.import_state st
          | `Evented e, Some st -> e.Behavior.eimport st
          | _ -> ());
          let fn =
            match inst with
            | `Migratable m -> m.Behavior.mfn
            | `Evented e -> e.Behavior.efn
            | `Plain f -> f
          in
          let evented =
            match inst with `Evented e -> Some e | _ -> None
          in
          let apply = invoke snk v fn in
          let stamped = new_stamper snk in
          let emit =
            match snk with
            | Some _ -> fun out birth tk -> put_from v collector_mb (wrap out birth tk)
            | None -> fun out _birth tk -> put_from v collector_mb (wrap_plain out tk)
          in
          let export () =
            match inst with
            | `Migratable m -> m.Behavior.export_state ()
            | `Evented e -> e.Behavior.eexport ()
            | `Plain _ -> []
          in
          let body () =
            let next = ctx.creader mb in
            let continue = ref true in
            (* Single producer (the emitter), so the merge is scalar. *)
            let mg = Wm_merge.create 1 in
            let max_seen = ref neg_infinity in
            let emit_all outs birth tk =
              settle tk (List.length outs - 1);
              List.iter
                (fun out ->
                  Atomic.incr produced.(v);
                  emit out birth tk)
                outs
            in
            let fire m =
              (match evented with
              | Some e ->
                  let outs = e.Behavior.on_watermark m in
                  if outs <> [] then emit_all outs (stamped ()) No_track
              | None -> ());
              (match snk with
              | Some s when Float.is_finite m ->
                  Sink.record_wm_lag s v (Float.max 0.0 (!max_seen -. m))
              | _ -> ());
              put_from v collector_mb (Wm (r, m))
            in
            let handle t birth tk =
              match evented with
              | Some e when t.Tuple.ts < Wm_merge.current mg -> (
                  count_late snk v;
                  match lateness with
                  | Ss_event.Lateness.Drop -> settle tk (-1)
                  | Ss_event.Lateness.Side_output dl ->
                      Ss_event.Dead_letter.add dl t;
                      settle tk (-1)
                  | Ss_event.Lateness.Refire ->
                      Atomic.incr consumed.(v);
                      emit_all (e.Behavior.on_late t) birth tk)
              | _ ->
                  if et_on && t.Tuple.ts > !max_seen then
                    max_seen := t.Tuple.ts;
                  Atomic.incr consumed.(v);
                  emit_all (apply t birth) birth tk
            in
            while !continue do
              match next () with
              | Eos ->
                  (if et_on then
                     match Wm_merge.force mg with
                     | Some m -> fire m
                     | None -> ());
                  put_from v collector_mb Eos;
                  continue := false
              | Drain ->
                  put_from v handoff_mb (export ());
                  continue := false
              | Data t -> handle t 0.0 No_track
              | Timed (t, birth) -> handle t birth No_track
              | Tracked (t, birth, tk) -> handle t birth tk
              | Wm (_, w) -> (
                  match Wm_merge.observe mg 0 w with
                  | Some m -> fire m
                  | None -> ())
              | Expect _ | Resize _ | Routed _ ->
                  assert false (* collector channel only *)
            done
          in
          (Printf.sprintf "%s.g%d.worker%d" (opname v) gen r, body)
        in
        (* Generation 0 deploys with everyone else. *)
        let gen0_mbs =
          Array.init initial (fun _ -> new_mailbox ~spsc:true ())
        in
        Array.iteri
          (fun r mb ->
            let name, body = make_worker ~gen:0 ~r mb None in
            add_actor ~actor:name ~vertex:v body)
          gen0_mbs;
        (* emitter *)
        add_actor ~actor:(opname v ^ ".emitter") ~vertex:v (fun () ->
            let next = ctx.cburst inbox in
            let next_handoff = ctx.creader handoff_mb in
            let degree = ref initial in
            let gen = ref 0 in
            let mbs = ref gen0_mbs in
            let route = ref (route_of initial) in
            let buckets = ref (Array.make initial []) in
            let eos = ref 0 in
            let rr = ref 0 in
            let emg = Wm_merge.create expected in
            let reconfigure want =
              let t0 = Unix.gettimeofday () in
              Array.iter (fun mb -> put_from v mb Drain) !mbs;
              let merged = ref [] in
              for _ = 1 to !degree do
                merged := List.rev_append (next_handoff ()) !merged
              done;
              incr gen;
              let d = want in
              (* The watermark floor of the new generation is the input
                 merge: every old worker has fired up to it (the emitter
                 broadcast each advance before dealing further input), so
                 imported windows all end above it. [Resize] must reach the
                 collector before any new-generation [Wm] can — old-gen
                 output is already enqueued at this point and the new
                 workers are not spawned yet, so putting it now, ahead of
                 the spawn, guarantees the order. *)
              let floor = Wm_merge.current emg in
              if et_on then put_from v collector_mb (Resize (d, floor));
              let mbs' = Array.init d (fun _ -> new_mailbox ~spsc:true ()) in
              (* Prime each new worker with the floor as its first message
                 so its scalar merge starts where the old generation
                 stopped. *)
              if et_on && floor > neg_infinity then
                Array.iter (fun mb -> put_from v mb (Wm (0, floor))) mbs';
              let parts = Array.make d None in
              (match partition_of d with
              | Some owner ->
                  let parts' = Array.make d [] in
                  List.iter
                    (fun ((k, _) as entry) ->
                      let r = owner k in
                      parts'.(r) <- entry :: parts'.(r))
                    !merged;
                  Array.iteri (fun r st -> parts.(r) <- Some st) parts'
              | None -> ());
              Array.iteri
                (fun r mb ->
                  let name, body = make_worker ~gen:!gen ~r mb parts.(r) in
                  !spawn_dyn ~actor:name ~vertex:v body)
                mbs';
              mbs := mbs';
              route := route_of d;
              buckets := Array.make d [];
              degree := d;
              rr := 0;
              Atomic.set ctl.applied.(v) d;
              (* Single writer (this emitter), so a plain read-add-set on
                 the atomic cell is race-free. *)
              Atomic.set ctl.downtime.(v)
                (Atomic.get ctl.downtime.(v)
                +. (Unix.gettimeofday () -. t0));
              Atomic.incr ctl.generation
            in
            while !eos < expected do
              let want = Atomic.get ctl.target.(v) in
              if want >= 1 && want <> !degree then reconfigure want;
              let burst = next () in
              let d = !degree and bks = !buckets and rt = !route in
              Queue.iter
                (fun m ->
                  match m with
                  | Eos -> incr eos
                  | Data t | Timed (t, _) | Tracked (t, _, _) ->
                      let r = rt t !rr in
                      incr rr;
                      bks.(r) <- m :: bks.(r)
                  | Wm (slot, w) -> (
                      (* Broadcast each advance to every worker, in deal
                         position: a worker's windows can span any key it
                         owns, so all replicas need the watermark. *)
                      match Wm_merge.observe emg slot w with
                      | Some m ->
                          for i = 0 to d - 1 do
                            bks.(i) <- Wm (0, m) :: bks.(i)
                          done
                      | None -> ())
                  | Drain | Expect _ | Resize _ | Routed _ -> assert false)
                burst;
              for r = 0 to d - 1 do
                match bks.(r) with
                | [] -> ()
                | acc ->
                    bks.(r) <- [];
                    ctx.cput_batch v !mbs.(r) (List.rev acc)
              done
            done;
            (if et_on then
               match Wm_merge.force emg with
               | Some m -> Array.iter (fun mb -> put_from v mb (Wm (0, m))) !mbs
               | None -> ());
            Array.iter (fun mb -> put_from v mb Eos) !mbs;
            put_from v collector_mb (Expect !degree));
        (* collector *)
        let rng = Rng.create (seed + (104729 * (v + 1))) in
        let choose = chooser v rng in
        let snk = new_sink () in
        let send = sender snk v in
        let wmt = wm_targets v (external_succs v) in
        add_actor ~actor:(opname v ^ ".collector") ~vertex:v (fun () ->
            let next = ctx.creader collector_mb in
            let eos = ref 0 in
            let expect = ref (-1) in
            (* Min across the current generation's replicas; [Resize]
               re-shapes the merge at each swap. *)
            let mg = Wm_merge.create initial in
            let handle t birth tk =
              match choose t with
              | Some dest -> send dest t birth tk
              | None -> settle tk (-1)
            in
            while !expect < 0 || !eos < !expect do
              match next () with
              | Eos -> incr eos
              | Expect k -> expect := k
              | Data t -> handle t 0.0 No_track
              | Timed (t, birth) -> handle t birth No_track
              | Tracked (t, birth, tk) -> handle t birth tk
              | Wm (slot, w) -> (
                  match Wm_merge.observe mg slot w with
                  | Some m -> wm_forward v wmt m
                  | None -> ())
              | Resize (d, floor) -> (
                  match Wm_merge.reset mg d floor with
                  | Some m -> wm_forward v wmt m
                  | None -> ())
              | Drain | Routed _ -> assert false (* worker channels only *)
            done;
            (if et_on then
               match Wm_merge.force mg with
               | Some m -> wm_forward v wmt m
               | None -> ());
            List.iter (fun mb -> put_from v mb Eos)
              (eos_targets (external_succs v)))
      end
      else if op.Operator.replicas = 1 then begin
        (* Standard operator: one actor (paper §4.2, standard case). *)
        let rng = Rng.create (seed + (7919 * (v + 1))) in
        let choose = chooser v rng in
        let snk = new_sink () in
        let send = sender snk v in
        let evented = evented_of behavior in
        let fn =
          match evented with
          | Some e -> e.Behavior.efn
          | None -> Behavior.instantiate behavior
        in
        let apply = invoke snk v fn in
        let stamped = new_stamper snk in
        let wmt = wm_targets v (external_succs v) in
        add_actor ~actor:(opname v) ~vertex:v (fun () ->
            let next = ctx.creader inbox in
            let eos = ref 0 in
            let mg = Wm_merge.create expected in
            let max_seen = ref neg_infinity in
            let fire m =
              (match evented with
              | Some e ->
                  let outs = e.Behavior.on_watermark m in
                  if outs <> [] then
                    fanout v send choose outs (stamped ()) No_track
              | None -> ());
              (match snk with
              | Some s when Float.is_finite m ->
                  Sink.record_wm_lag s v (Float.max 0.0 (!max_seen -. m))
              | _ -> ());
              wm_forward v wmt m
            in
            let handle t birth tk =
              match evented with
              | Some e when t.Tuple.ts < Wm_merge.current mg -> (
                  count_late snk v;
                  match lateness with
                  | Ss_event.Lateness.Drop -> settle tk (-1)
                  | Ss_event.Lateness.Side_output dl ->
                      Ss_event.Dead_letter.add dl t;
                      settle tk (-1)
                  | Ss_event.Lateness.Refire ->
                      Atomic.incr consumed.(v);
                      fanout v send choose (e.Behavior.on_late t) birth tk)
              | _ ->
                  if et_on && t.Tuple.ts > !max_seen then
                    max_seen := t.Tuple.ts;
                  Atomic.incr consumed.(v);
                  fanout v send choose (apply t birth) birth tk
            in
            while !eos < expected do
              match next () with
              | Eos -> incr eos
              | Data t -> handle t 0.0 No_track
              | Timed (t, birth) -> handle t birth No_track
              | Tracked (t, birth, tk) -> handle t birth tk
              | Wm (slot, w) -> (
                  match Wm_merge.observe mg slot w with
                  | Some m -> fire m
                  | None -> ())
              | Drain | Expect _ | Resize _ | Routed _ ->
                  assert false (* elastic units only *)
            done;
            (if et_on then
               match Wm_merge.force mg with Some m -> fire m | None -> ());
            List.iter (fun mb -> put_from v mb Eos)
              (eos_targets (external_succs v)))
      end
      else if List.mem v ordered then begin
        (* Order-preserving pipelined fission (paper §2): the emitter deals
           inputs round-robin; each worker forwards one {e batch} of results
           per input (possibly empty, for selectivity); the collector pops
           worker queues in the same round-robin order, reconstructing the
           exact arrival order. *)
        let replicas = op.Operator.replicas in
        (* Emitter -> worker and worker -> collector channels each have one
           producer and one consumer, so they ride the SPSC ring. *)
        let worker_mb = Array.init replicas (fun _ -> new_mailbox ~spsc:true ()) in
        (* Each entry is one input's batch of results paired with that
           input's birth time and provenance; [None] is the worker's end
           marker. *)
        let out_mb = Array.init replicas (fun _ -> new_mailbox ~spsc:true ()) in
        add_actor ~actor:(opname v ^ ".emitter") ~vertex:v (fun () ->
            let next = ctx.cburst inbox in
            let eos = ref 0 in
            let rr = ref 0 in
            let mg = Wm_merge.create expected in
            (* Route a whole input burst, bucketing per worker, then flush
               each bucket in one amortized mailbox transaction. The strict
               round-robin deal (and thus the collector's reassembly order)
               is untouched: bucketing only batches the publication, the
               per-worker subsequences stay in deal order. *)
            let buckets = Array.make replicas [] in
            while !eos < expected do
              let burst = next () in
              Queue.iter
                (fun m ->
                  match m with
                  | Eos -> incr eos
                  | Data _ | Timed _ | Tracked _ ->
                      let r = !rr mod replicas in
                      incr rr;
                      buckets.(r) <- m :: buckets.(r)
                  | Wm (slot, w) -> (
                      (* A watermark advance takes one round-robin turn
                         like an input: the dealt-to worker echoes it in
                         position and the collector forwards it after
                         exactly the inputs dealt before it. *)
                      match Wm_merge.observe mg slot w with
                      | Some adv ->
                          let r = !rr mod replicas in
                          incr rr;
                          buckets.(r) <- Wm (0, adv) :: buckets.(r)
                      | None -> ())
                  | Drain | Expect _ | Resize _ | Routed _ ->
                      assert false (* elastic units only *))
                burst;
              for r = 0 to replicas - 1 do
                match buckets.(r) with
                | [] -> ()
                | acc ->
                    buckets.(r) <- [];
                    ctx.cput_batch v worker_mb.(r) (List.rev acc)
              done
            done;
            (if et_on then
               match Wm_merge.force mg with
               | Some adv ->
                   let r = !rr mod replicas in
                   incr rr;
                   put_from v worker_mb.(r) (Wm (0, adv))
               | None -> ());
            Array.iter (fun mb -> put_from v mb Eos) worker_mb);
        for r = 0 to replicas - 1 do
          let snk = new_sink () in
          let apply = invoke snk v (Behavior.instantiate behavior) in
          add_actor ~actor:(Printf.sprintf "%s.worker%d" (opname v) r)
            ~vertex:v (fun () ->
              let next = ctx.creader worker_mb.(r) in
              let continue = ref true in
              let handle t birth tk =
                Atomic.incr consumed.(v);
                let outs = apply t birth in
                List.iter (fun _ -> Atomic.incr produced.(v)) outs;
                (* The whole batch rides one entry, so the record's single
                   in-flight instance transfers with it: nothing settles
                   until the collector routes the batch. *)
                put_from v out_mb.(r) (Obatch (outs, birth, tk))
              in
              while !continue do
                match next () with
                | Eos ->
                    put_from v out_mb.(r) Odone;
                    continue := false
                | Data t -> handle t 0.0 No_track
                | Timed (t, birth) -> handle t birth No_track
                | Tracked (t, birth, tk) -> handle t birth tk
                | Wm (_, w) -> put_from v out_mb.(r) (Owm w)
                | Drain | Expect _ | Resize _ | Routed _ ->
                    assert false (* elastic units only *)
              done)
        done;
        let rng = Rng.create (seed + (104729 * (v + 1))) in
        let choose = chooser v rng in
        let snk = new_sink () in
        let send = sender snk v in
        add_actor ~actor:(opname v ^ ".collector") ~vertex:v (fun () ->
            let next = Array.map (fun mb -> ctx.creader mb) out_mb in
            let forward birth tk outs =
              match tk with
              | No_track ->
                  List.iter
                    (fun t ->
                      match choose t with
                      | Some dest -> send dest t birth No_track
                      | None -> ())
                    outs
              | Track _ ->
                  let routed = List.map (fun t -> (t, choose t)) outs in
                  let live =
                    List.fold_left
                      (fun acc (_, d) ->
                        acc + match d with Some _ -> 1 | None -> 0)
                      0 routed
                  in
                  settle tk (live - 1);
                  List.iter
                    (fun (t, d) ->
                      match d with
                      | Some dest -> send dest t birth tk
                      | None -> ())
                    routed
            in
            let wmt = wm_targets v (external_succs v) in
            let rec collect c =
              match next.(c mod replicas) () with
              | Obatch (outs, birth, tk) ->
                  forward birth tk outs;
                  collect (c + 1)
              | Owm w ->
                  wm_forward v wmt w;
                  collect (c + 1)
              | Odone ->
                  (* The round-robin deal is sequential: the first exhausted
                     worker marks the end; the rest only hold their marker. *)
                  for r = 1 to replicas - 1 do
                    match next.((c + r) mod replicas) () with
                    | Odone -> ()
                    | Obatch _ | Owm _ -> assert false
                  done
            in
            collect 0;
            (* Defensive flush: re-announcing infinity is idempotent at the
               receivers' merges. *)
            if et_on then wm_forward v wmt infinity;
            List.iter (fun mb -> put_from v mb Eos)
              (eos_targets (external_succs v)))
      end
      else begin
        (* Parallel operator: emitter, replicas, collector (§4.2). The
           emitter->worker channels are SPSC (one producer: the emitter;
           one consumer: that worker); the collector mailbox is the fission
           merge point — every worker publishes into it — so it stays on
           the locking MPSC implementation. *)
        let replicas = op.Operator.replicas in
        let worker_mb = Array.init replicas (fun _ -> new_mailbox ~spsc:true ()) in
        let collector_mb = new_mailbox ~spsc:false () in
        let route_to_replica =
          match op.Operator.kind with
          | Operator.Partitioned_stateful keys ->
              let groups = Ss_core.Key_partitioning.groups_for ~keys ~replicas in
              let support = Discrete.support keys in
              fun (t : Tuple.t) rr ->
                ignore rr;
                groups.((t.Tuple.key mod support + support) mod support)
          | Operator.Stateless | Operator.Stateful ->
              fun _ rr -> rr mod replicas
        in
        (* emitter — burst-granular like the ordered one: route the whole
           drain into per-worker buckets, publish each with one amortized
           transaction. Routing is positional (per-vertex arrival ordinal)
           or key-based, so bucketing changes neither the assignment nor
           any per-worker order. *)
        add_actor ~actor:(opname v ^ ".emitter") ~vertex:v (fun () ->
            let next = ctx.cburst inbox in
            let eos = ref 0 in
            let rr = ref 0 in
            let mg = Wm_merge.create expected in
            let buckets = Array.make replicas [] in
            while !eos < expected do
              let burst = next () in
              Queue.iter
                (fun m ->
                  match m with
                  | Eos -> incr eos
                  | Data t | Timed (t, _) | Tracked (t, _, _) ->
                      let r = route_to_replica t !rr in
                      incr rr;
                      buckets.(r) <- m :: buckets.(r)
                  | Wm (slot, w) -> (
                      (* Each advance goes to every replica, in deal
                         position within the burst. *)
                      match Wm_merge.observe mg slot w with
                      | Some adv ->
                          for i = 0 to replicas - 1 do
                            buckets.(i) <- Wm (0, adv) :: buckets.(i)
                          done
                      | None -> ())
                  | Drain | Expect _ | Resize _ | Routed _ ->
                      assert false (* elastic units only *))
                burst;
              for r = 0 to replicas - 1 do
                match buckets.(r) with
                | [] -> ()
                | acc ->
                    buckets.(r) <- [];
                    ctx.cput_batch v worker_mb.(r) (List.rev acc)
              done
            done;
            (if et_on then
               match Wm_merge.force mg with
               | Some adv ->
                   Array.iter (fun mb -> put_from v mb (Wm (0, adv))) worker_mb
               | None -> ());
            Array.iter (fun mb -> put_from v mb Eos) worker_mb);
        (* workers *)
        for r = 0 to replicas - 1 do
          let snk = new_sink () in
          let evented = evented_of behavior in
          let fn =
            match evented with
            | Some e -> e.Behavior.efn
            | None -> Behavior.instantiate behavior
          in
          let apply = invoke snk v fn in
          let stamped = new_stamper snk in
          let emit =
            match snk with
            | Some _ -> fun out birth tk -> put_from v collector_mb (wrap out birth tk)
            | None -> fun out _birth tk -> put_from v collector_mb (wrap_plain out tk)
          in
          add_actor ~actor:(Printf.sprintf "%s.worker%d" (opname v) r)
            ~vertex:v (fun () ->
              let next = ctx.creader worker_mb.(r) in
              let continue = ref true in
              let mg = Wm_merge.create 1 in
              let max_seen = ref neg_infinity in
              let emit_all outs birth tk =
                settle tk (List.length outs - 1);
                List.iter
                  (fun out ->
                    Atomic.incr produced.(v);
                    emit out birth tk)
                  outs
              in
              let fire m =
                (match evented with
                | Some e ->
                    let outs = e.Behavior.on_watermark m in
                    if outs <> [] then emit_all outs (stamped ()) No_track
                | None -> ());
                (match snk with
                | Some s when Float.is_finite m ->
                    Sink.record_wm_lag s v (Float.max 0.0 (!max_seen -. m))
                | _ -> ());
                put_from v collector_mb (Wm (r, m))
              in
              let handle t birth tk =
                match evented with
                | Some e when t.Tuple.ts < Wm_merge.current mg -> (
                    count_late snk v;
                    match lateness with
                    | Ss_event.Lateness.Drop -> settle tk (-1)
                    | Ss_event.Lateness.Side_output dl ->
                        Ss_event.Dead_letter.add dl t;
                        settle tk (-1)
                    | Ss_event.Lateness.Refire ->
                        Atomic.incr consumed.(v);
                        emit_all (e.Behavior.on_late t) birth tk)
                | _ ->
                    if et_on && t.Tuple.ts > !max_seen then
                      max_seen := t.Tuple.ts;
                    Atomic.incr consumed.(v);
                    emit_all (apply t birth) birth tk
              in
              while !continue do
                match next () with
                | Eos ->
                    (if et_on then
                       match Wm_merge.force mg with
                       | Some m -> fire m
                       | None -> ());
                    put_from v collector_mb Eos;
                    continue := false
                | Data t -> handle t 0.0 No_track
                | Timed (t, birth) -> handle t birth No_track
                | Tracked (t, birth, tk) -> handle t birth tk
                | Wm (_, w) -> (
                    match Wm_merge.observe mg 0 w with
                    | Some m -> fire m
                    | None -> ())
                | Drain | Expect _ | Resize _ | Routed _ ->
                    assert false (* elastic units only *)
              done)
        done;
        (* collector *)
        let rng = Rng.create (seed + (104729 * (v + 1))) in
        let choose = chooser v rng in
        let snk = new_sink () in
        let send = sender snk v in
        let wmt = wm_targets v (external_succs v) in
        add_actor ~actor:(opname v ^ ".collector") ~vertex:v (fun () ->
            let next = ctx.creader collector_mb in
            let eos = ref 0 in
            (* The fission fan-in: the unit's outgoing watermark is the
               minimum across its replicas. *)
            let mg = Wm_merge.create replicas in
            let handle t birth tk =
              match choose t with
              | Some dest -> send dest t birth tk
              | None -> settle tk (-1)
            in
            while !eos < replicas do
              match next () with
              | Eos -> incr eos
              | Data t -> handle t 0.0 No_track
              | Timed (t, birth) -> handle t birth No_track
              | Tracked (t, birth, tk) -> handle t birth tk
              | Wm (slot, w) -> (
                  match Wm_merge.observe mg slot w with
                  | Some m -> wm_forward v wmt m
                  | None -> ())
              | Drain | Expect _ | Resize _ | Routed _ ->
                  assert false (* elastic units only *)
            done;
            (if et_on then
               match Wm_merge.force mg with
               | Some m -> wm_forward v wmt m
               | None -> ());
            List.iter (fun mb -> put_from v mb Eos)
              (eos_targets (external_succs v)))
      end
    end
  done;

  (* --- meta-operators (Algorithm 4) -------------------------------- *)
  let num_edges = List.length (Topology.edges topology) in
  (* Telemetry hooks for one staged fused loop: edge transfers accumulate
     in a plain local array (flushed by the hosting actor on its counter
     cadence and at end-of-stream), latency/service samples go straight
     into the actor's private sink on the interpreted executor's 1-in-k
     schedule. One record per hosting actor — the arrays are single-writer
     like the sink itself. *)
  let new_fused_tl snk =
    Option.map
      (fun s ->
        {
          Fused_compile.sample_every = instrument.telemetry_sample;
          edge_count = Array.make num_edges 0;
          edge_index = edge_id;
          record_latency = (fun v x -> Sink.record_latency s v x);
          record_service = (fun v x -> Sink.record_service s v x);
          birth = ref 0.0;
        })
      snk
  in
  let flush_edges snk tl =
    match (snk, tl) with
    | Some s, Some tl ->
        let ec = tl.Fused_compile.edge_count in
        Array.iteri
          (fun e k ->
            if k <> 0 then begin
              Sink.add_edge s e k;
              ec.(e) <- 0
            end)
          ec
    | _ -> ()
  in
  let birth_setter tl =
    match tl with
    | Some tl -> fun b -> tl.Fused_compile.birth := b
    | None -> fun (_ : float) -> ()
  in
  List.iteri
    (fun gi members ->
      let front = fronts.(gi) in
      let inbox = mailbox_of front in
      let expected = expected_eos front in
      (* Replica worker [r] of group [gi] draws from
         seed + 15485863*(gi+1) + 7919*r — keep in sync with the single
         meta-actor convention (r = 0 reproduces it) and with the
         documented seeding table in {!Ss_sim.Engine}. *)
      let group_seed r = seed + (15485863 * (gi + 1)) + (7919 * r) in
      let all_external =
        List.concat_map
          (fun v ->
            List.filter
              (fun w -> group_of.(w) <> gi)
              (List.map fst (Topology.succs topology v)))
          members
      in
      (* Deploy-time staging: compile the group into one flat closure
         ({!Fused_compile.plan}, or a caller-supplied chain matched by
         member set) whenever the run's message traffic is the plain
         [Data]/[Timed] common case. Event time (watermarks, lateness),
         ingest (tracked provenance) and router overrides all need the
         interpreted walk, as do group shapes the planner declines; count
         parity makes the choice unobservable. Telemetry no longer forces
         interpretation: the planner instruments the loop itself (supplied
         chains cannot be instrumented, so they are skipped when telemetry
         is on). *)
      let baseline_ok =
        (not et_on)
        && Option.is_none ingest
        && not (List.exists (fun v -> List.mem_assoc v routers) members)
      in
      let stage ?telemetry () =
        match fusion with
        | `Compiled ->
            Fused_compile.plan ?telemetry topology ~members ~registry
        | `Interpreted ->
            Fused_compile.interpret ?telemetry topology ~members ~registry
      in
      let stageable =
        baseline_ok && match stage () with Ok _ -> true | Error _ -> false
      in
      (* Fission of a fused group: the whole staged loop replicates, one
         instance per worker. Legality needs the group linear (routing
         draws are then count-neutral, so splitting the rng stream across
         replicas keeps per-vertex counts bit-identical to the
         single-actor walk) and every member fissionable. Routing at the
         emitter is by input-tuple key as soon as any member partitions
         state by key — members are assumed key-preserving, like the
         per-vertex fission they replace. *)
      let group_replicas =
        (Topology.operator topology front).Operator.replicas
      in
      let partitioned_keys =
        List.find_map
          (fun v ->
            match (Topology.operator topology v).Operator.kind with
            | Operator.Partitioned_stateful keys -> Some keys
            | Operator.Stateless | Operator.Stateful -> None)
          members
      in
      let replicable =
        stageable
        && Fused_compile.linear topology ~members
        && List.for_all
             (fun v -> Operator.can_replicate (Topology.operator topology v))
             members
        && not (List.exists (fun v -> List.mem v ordered) members)
      in
      let group_stateless =
        List.for_all
          (fun v -> (registry v).Behavior.state_kind = Behavior.Stateless_op)
          members
      in
      (* Elastic deployment additionally needs the staged instance to hand
         its whole state across a generation swap, and a keyed routing to
         repartition it under (stateless groups have nothing to move). *)
      let elastic_ok =
        replicable
        && Option.is_some control
        && Fused_compile.migratable ~members ~registry
        && (group_stateless || Option.is_some partitioned_keys)
      in
      (* One staged host loop, shared by the single actor and every
         replica worker: plain local counters flushed on a budget, at
         end-of-stream and on failure ([Fun.protect] — a crash downstream
         must not lose the counts and edge transfers already earned). *)
      let host_loop ~next ~tl ~snk ~rng ~staged ~prepare ~emit ~on_eos
          ~on_drain () =
        let lc = Array.make n 0 and lp = Array.make n 0 in
        let flush () =
          List.iter
            (fun v ->
              if lc.(v) <> 0 then begin
                ignore (Atomic.fetch_and_add consumed.(v) lc.(v));
                lc.(v) <- 0
              end;
              if lp.(v) <> 0 then begin
                ignore (Atomic.fetch_and_add produced.(v) lp.(v));
                lp.(v) <- 0
              end)
            members;
          flush_edges snk tl
        in
        let inst =
          staged { Fused_compile.rng; consumed = lc; produced = lp; emit }
        in
        prepare inst;
        let set_birth = birth_setter tl in
        let budget = ref flush_every in
        let step = inst.Fused_compile.step in
        let ingest_tuple t =
          step t;
          decr budget;
          if !budget <= 0 then begin
            flush ();
            budget := flush_every
          end
        in
        Fun.protect ~finally:flush (fun () ->
            let eos = ref 0 in
            let continue = ref true in
            while !continue do
              match next () with
              | Eos ->
                  incr eos;
                  if on_eos inst !eos then continue := false
              | Drain ->
                  on_drain inst;
                  continue := false
              | Data t ->
                  set_birth 0.0;
                  ingest_tuple t
              | Timed (t, birth) ->
                  set_birth birth;
                  ingest_tuple t
              | Tracked _ | Wm _ | Expect _ | Resize _ | Routed _ ->
                  assert false (* excluded by eligibility above *)
            done)
      in
      let staged_of tl =
        match stage ?telemetry:tl () with
        | Ok staged -> staged
        | Error _ -> assert false (* guarded by [stageable] *)
      in
      let staged_deployed =
        if elastic_ok then begin
          (* --- elastic fused unit: the vertex-level swap protocol
             (emitter-coordinated drain, keyed-state handoff, [Expect]
             terminated collector), hosting one staged group instance per
             worker. The staged instance's export/import carry every
             stateful member's keyed state in one flat list, so a resize
             moves window phases and running aggregates losslessly. *)
          let ctl = match control with Some c -> c | None -> assert false in
          let initial = group_replicas in
          ctl.managed.(front) <- true;
          Atomic.set ctl.target.(front) initial;
          Atomic.set ctl.applied.(front) initial;
          let collector_mb = new_mailbox ~spsc:false () in
          let handoff_mb : Behavior.keyed_state Mailbox.t =
            new_mailbox ~spsc:false ()
          in
          let partition_of d =
            match partitioned_keys with
            | Some keys ->
                let groups =
                  Ss_core.Key_partitioning.groups_for ~keys ~replicas:d
                in
                let support = Discrete.support keys in
                Some (fun k -> groups.(((k mod support) + support) mod support))
            | None -> None
          in
          let route_of d =
            match partition_of d with
            | Some owner -> fun (t : Tuple.t) _rr -> owner t.Tuple.key
            | None -> fun (_ : Tuple.t) rr -> rr mod d
          in
          let make_worker ~gen ~r mb state =
            let snk = new_sink () in
            let tl = new_fused_tl snk in
            let emit =
              match tl with
              | Some tlr ->
                  fun _ dest out ->
                    put_from front collector_mb
                      (Routed (dest, out, !(tlr.Fused_compile.birth)))
              | None ->
                  fun _ dest out ->
                    put_from front collector_mb (Routed (dest, out, 0.0))
            in
            let body () =
              host_loop
                ~next:(ctx.creader mb)
                ~tl ~snk
                ~rng:(Rng.create (group_seed r))
                ~staged:(staged_of tl)
                ~prepare:(fun inst ->
                  match state with
                  | Some st -> inst.Fused_compile.import st
                  | None -> ())
                ~emit
                ~on_eos:(fun _ _ ->
                  put_from front collector_mb Eos;
                  true)
                ~on_drain:(fun inst ->
                  put_from front handoff_mb (inst.Fused_compile.export ()))
                ()
            in
            ( Printf.sprintf "fused%d.%s.g%d.worker%d" gi (opname front) gen r,
              body )
          in
          let gen0_mbs =
            Array.init initial (fun _ -> new_mailbox ~spsc:true ())
          in
          Array.iteri
            (fun r mb ->
              let name, body = make_worker ~gen:0 ~r mb None in
              add_actor ~actor:name ~vertex:front body)
            gen0_mbs;
          (* emitter *)
          add_actor
            ~actor:(Printf.sprintf "fused%d.%s.emitter" gi (opname front))
            ~vertex:front
            (fun () ->
              let next = ctx.cburst inbox in
              let next_handoff = ctx.creader handoff_mb in
              let degree = ref initial in
              let gen = ref 0 in
              let mbs = ref gen0_mbs in
              let route = ref (route_of initial) in
              let buckets = ref (Array.make initial []) in
              let eos = ref 0 in
              let rr = ref 0 in
              let reconfigure want =
                let t0 = Unix.gettimeofday () in
                Array.iter (fun mb -> put_from front mb Drain) !mbs;
                let merged = ref [] in
                for _ = 1 to !degree do
                  merged := List.rev_append (next_handoff ()) !merged
                done;
                incr gen;
                let d = want in
                let mbs' =
                  Array.init d (fun _ -> new_mailbox ~spsc:true ())
                in
                let parts = Array.make d None in
                (match partition_of d with
                | Some owner ->
                    (* Entries are keyed by tuple key (the member tag
                       rides inside the value array), so they repartition
                       under the new degree exactly like the tuples
                       themselves. *)
                    let parts' = Array.make d [] in
                    List.iter
                      (fun ((k, _) as entry) ->
                        let r = owner k in
                        parts'.(r) <- entry :: parts'.(r))
                      !merged;
                    Array.iteri (fun r st -> parts.(r) <- Some st) parts'
                | None -> ());
                Array.iteri
                  (fun r mb ->
                    let name, body = make_worker ~gen:!gen ~r mb parts.(r) in
                    !spawn_dyn ~actor:name ~vertex:front body)
                  mbs';
                mbs := mbs';
                route := route_of d;
                buckets := Array.make d [];
                degree := d;
                rr := 0;
                Atomic.set ctl.applied.(front) d;
                Atomic.set ctl.downtime.(front)
                  (Atomic.get ctl.downtime.(front)
                  +. (Unix.gettimeofday () -. t0));
                Atomic.incr ctl.generation
              in
              while !eos < expected do
                let want = Atomic.get ctl.target.(front) in
                if want >= 1 && want <> !degree then reconfigure want;
                let burst = next () in
                let bks = !buckets and rt = !route in
                Queue.iter
                  (fun m ->
                    match m with
                    | Eos -> incr eos
                    | Data t | Timed (t, _) ->
                        let r = rt t !rr in
                        incr rr;
                        bks.(r) <- m :: bks.(r)
                    | Tracked _ | Wm _ | Drain | Expect _ | Resize _
                    | Routed _ ->
                        assert false)
                  burst;
                for r = 0 to !degree - 1 do
                  match bks.(r) with
                  | [] -> ()
                  | acc ->
                      bks.(r) <- [];
                      ctx.cput_batch front !mbs.(r) (List.rev acc)
                done
              done;
              Array.iter (fun mb -> put_from front mb Eos) !mbs;
              put_from front collector_mb (Expect !degree));
          (* collector: forwards pre-routed results — the worker chains
             already drew destinations and counted edges — and terminates
             on the final generation's degree. *)
          add_actor
            ~actor:(Printf.sprintf "fused%d.%s.collector" gi (opname front))
            ~vertex:front
            (fun () ->
              let next = ctx.creader collector_mb in
              let eos = ref 0 in
              let expect = ref (-1) in
              let forward =
                match collector with
                | Some _ ->
                    fun dest out birth ->
                      put_from front (mailbox_of dest) (Timed (out, birth))
                | None ->
                    fun dest out _ ->
                      put_from front (mailbox_of dest) (Data out)
              in
              while !expect < 0 || !eos < !expect do
                match next () with
                | Eos -> incr eos
                | Expect k -> expect := k
                | Routed (dest, out, birth) -> forward dest out birth
                | Data _ | Timed _ | Tracked _ | Wm _ | Drain | Resize _ ->
                    assert false
              done;
              List.iter (fun mb -> put_from front mb Eos)
                (eos_targets all_external));
          true
        end
        else if replicable && group_replicas > 1 then begin
          (* --- static replicated fused unit: emitter, [group_replicas]
             workers each hosting one staged loop, collector (§4.2 shape
             over a whole group). *)
          let replicas = group_replicas in
          let worker_mb =
            Array.init replicas (fun _ -> new_mailbox ~spsc:true ())
          in
          let collector_mb = new_mailbox ~spsc:false () in
          let route_to_replica =
            match partitioned_keys with
            | Some keys ->
                let groups =
                  Ss_core.Key_partitioning.groups_for ~keys ~replicas
                in
                let support = Discrete.support keys in
                fun (t : Tuple.t) _rr ->
                  groups.(((t.Tuple.key mod support) + support) mod support)
            | None -> fun (_ : Tuple.t) rr -> rr mod replicas
          in
          add_actor
            ~actor:(Printf.sprintf "fused%d.%s.emitter" gi (opname front))
            ~vertex:front
            (fun () ->
              let next = ctx.cburst inbox in
              let eos = ref 0 in
              let rr = ref 0 in
              let buckets = Array.make replicas [] in
              while !eos < expected do
                let burst = next () in
                Queue.iter
                  (fun m ->
                    match m with
                    | Eos -> incr eos
                    | Data t | Timed (t, _) ->
                        let r = route_to_replica t !rr in
                        incr rr;
                        buckets.(r) <- m :: buckets.(r)
                    | Tracked _ | Wm _ | Drain | Expect _ | Resize _
                    | Routed _ ->
                        assert false)
                  burst;
                for r = 0 to replicas - 1 do
                  match buckets.(r) with
                  | [] -> ()
                  | acc ->
                      buckets.(r) <- [];
                      ctx.cput_batch front worker_mb.(r) (List.rev acc)
                done
              done;
              Array.iter (fun mb -> put_from front mb Eos) worker_mb);
          for r = 0 to replicas - 1 do
            let snk = new_sink () in
            let tl = new_fused_tl snk in
            let emit =
              match tl with
              | Some tlr ->
                  fun _ dest out ->
                    put_from front collector_mb
                      (Routed (dest, out, !(tlr.Fused_compile.birth)))
              | None ->
                  fun _ dest out ->
                    put_from front collector_mb (Routed (dest, out, 0.0))
            in
            add_actor
              ~actor:
                (Printf.sprintf "fused%d.%s.worker%d" gi (opname front) r)
              ~vertex:front
              (fun () ->
                host_loop
                  ~next:(ctx.creader worker_mb.(r))
                  ~tl ~snk
                  ~rng:(Rng.create (group_seed r))
                  ~staged:(staged_of tl)
                  ~prepare:ignore
                  ~emit
                  ~on_eos:(fun _ _ ->
                    put_from front collector_mb Eos;
                    true)
                  ~on_drain:(fun _ -> assert false (* static unit *))
                  ())
          done;
          add_actor
            ~actor:(Printf.sprintf "fused%d.%s.collector" gi (opname front))
            ~vertex:front
            (fun () ->
              let next = ctx.creader collector_mb in
              let eos = ref 0 in
              let forward =
                match collector with
                | Some _ ->
                    fun dest out birth ->
                      put_from front (mailbox_of dest) (Timed (out, birth))
                | None ->
                    fun dest out _ ->
                      put_from front (mailbox_of dest) (Data out)
              in
              while !eos < replicas do
                match next () with
                | Eos -> incr eos
                | Routed (dest, out, birth) -> forward dest out birth
                | Data _ | Timed _ | Tracked _ | Wm _ | Drain | Expect _
                | Resize _ ->
                    assert false
              done;
              List.iter (fun mb -> put_from front mb Eos)
                (eos_targets all_external));
          true
        end
        else if fusion = `Compiled && baseline_ok then begin
          (* --- single staged actor: the compiled closed loop of the whole
             group, telemetry-instrumented when the run collects it. *)
          let snk = new_sink () in
          let tl = new_fused_tl snk in
          let staged =
            let key = List.sort compare members in
            match
              match collector with
              | None ->
                  List.find_opt
                    (fun (m, _) -> List.sort compare m = key)
                    chains
              | Some _ -> None
            with
            | Some (_, chain) -> Some (Fused_compile.of_chain chain)
            | None -> (
                match Fused_compile.plan ?telemetry:tl topology ~members ~registry with
                | Ok staged -> Some staged
                | Error _ -> None)
          in
          match staged with
          | None -> false
          | Some staged ->
              let emit =
                match tl with
                | Some tlr ->
                    fun v dest out ->
                      put_from v (mailbox_of dest)
                        (Timed (out, !(tlr.Fused_compile.birth)))
                | None ->
                    fun v dest out -> put_from v (mailbox_of dest) (Data out)
              in
              add_actor
                ~actor:(Printf.sprintf "fused%d.%s" gi (opname front))
                ~vertex:front
                (fun () ->
                  host_loop
                    ~next:(ctx.creader inbox)
                    ~tl ~snk
                    ~rng:(Rng.create (group_seed 0))
                    ~staged ~prepare:ignore ~emit
                    ~on_eos:(fun _ eos ->
                      if eos < expected then false
                      else begin
                        List.iter (fun mb -> put_from front mb Eos)
                          (eos_targets all_external);
                        true
                      end)
                    ~on_drain:(fun _ -> assert false (* static actor *))
                    ());
              true
        end
        else false
      in
      if staged_deployed then ()
      else begin
      let rng = Rng.create (group_seed 0) in
      (* Evented members keep one shared instance: its [efn] buckets from
         the Algorithm 4 walk and its watermark hooks fire from the group's
         merge below. *)
      (* Dense vertex-indexed member tables: the walk below hits them per
         tuple, so they are plain array reads, not hash probes. Non-member
         slots keep the inert defaults and are never consulted. *)
      let insts = Array.make n None in
      let fns = Array.make n (fun (_ : Tuple.t) -> ([] : Tuple.t list)) in
      List.iter
        (fun v ->
          let b = registry v in
          match b.Behavior.evented with
          | Some mk ->
              let e = mk () in
              insts.(v) <- Some e;
              fns.(v) <- e.Behavior.efn
          | None -> fns.(v) <- Behavior.instantiate b)
        members;
      let choosers = Array.make n (fun (_ : Tuple.t) -> (None : int option)) in
      List.iter (fun v -> choosers.(v) <- chooser v rng) members;
      let snk = new_sink () in
      let applies = Array.make n (fun (_ : Tuple.t) (_ : float) -> []) in
      List.iter (fun v -> applies.(v) <- invoke snk v fns.(v)) members;
      let senders =
        Array.make n (fun (_ : int) (_ : Tuple.t) (_ : float) (_ : track) -> ())
      in
      List.iter (fun v -> senders.(v) <- sender snk v) members;
      (* Members in topology order: the group watermark fires them front
         first, so an upstream member's fired results are bucketed by
         downstream members before those fire at the same watermark. *)
      let topo_members =
        Array.to_list (Topology.topological_order topology)
        |> List.filter (fun v -> List.mem v members)
      in
      (* Algorithm 4: follow each result through the sub-graph until it
         exits; the sub-graph is acyclic so the walk terminates. Intra-group
         hops count on their topology edge like external ones, so the edge
         counters see through the fusion. *)
      (* Intra-group recursion is synchronous, so a recursive hop carries
         the instance it was granted in [live] below and settles it on its
         own account when its sub-walk ends — the same protocol as a
         mailbox hop, without the mailbox. [route_outs] is the shared exit
         path: the walk feeds it behavior results, the watermark path feeds
         it window firings. *)
      let rec route_outs v outs birth tk =
        let choose = choosers.(v) in
        let deliver dest out =
          if group_of.(dest) = gi then begin
            (match snk with
            | Some s -> Sink.incr_edge s (edge_id v dest)
            | None -> ());
            process dest out birth tk
          end
          else senders.(v) dest out birth tk
        in
        match tk with
        | No_track ->
            List.iter
              (fun out ->
                Atomic.incr produced.(v);
                match choose out with
                | Some dest -> deliver dest out
                | None -> ())
              outs
        | Track _ ->
            let routed =
              List.map
                (fun out ->
                  Atomic.incr produced.(v);
                  (out, choose out))
                outs
            in
            let live =
              List.fold_left
                (fun acc (_, d) -> acc + match d with Some _ -> 1 | None -> 0)
                0 routed
            in
            settle tk (live - 1);
            List.iter
              (fun (out, d) ->
                match d with Some dest -> deliver dest out | None -> ())
              routed
      and process v t birth tk =
        Atomic.incr consumed.(v);
        route_outs v (applies.(v) t birth) birth tk
      in
      let wmt = wm_targets front all_external in
      let stamped = new_stamper snk in
      add_actor
        ~actor:(Printf.sprintf "fused%d.%s" gi (opname front))
        ~vertex:front
        (fun () ->
          let next = ctx.creader inbox in
          let eos = ref 0 in
          let mg = Wm_merge.create expected in
          let max_seen = ref neg_infinity in
          let fire m =
            List.iter
              (fun v ->
                match insts.(v) with
                | Some e ->
                    let outs = e.Behavior.on_watermark m in
                    if outs <> [] then route_outs v outs (stamped ()) No_track
                | None -> ())
              topo_members;
            (match snk with
            | Some s when Float.is_finite m ->
                Sink.record_wm_lag s front (Float.max 0.0 (!max_seen -. m))
            | _ -> ());
            wm_forward front wmt m
          in
          (* Lateness applies at the group boundary: internal hops are
             synchronous, so a tuple admitted on time stays on time through
             the walk. *)
          let admit t birth tk =
            match insts.(front) with
            | Some e when t.Tuple.ts < Wm_merge.current mg -> (
                count_late snk front;
                match lateness with
                | Ss_event.Lateness.Drop -> settle tk (-1)
                | Ss_event.Lateness.Side_output dl ->
                    Ss_event.Dead_letter.add dl t;
                    settle tk (-1)
                | Ss_event.Lateness.Refire ->
                    Atomic.incr consumed.(front);
                    route_outs front (e.Behavior.on_late t) birth tk)
            | _ ->
                if et_on && t.Tuple.ts > !max_seen then max_seen := t.Tuple.ts;
                process front t birth tk
          in
          while !eos < expected do
            match next () with
            | Eos -> incr eos
            | Data t -> admit t 0.0 No_track
            | Timed (t, birth) -> admit t birth No_track
            | Tracked (t, birth, tk) -> admit t birth tk
            | Wm (slot, w) -> (
                match Wm_merge.observe mg slot w with
                | Some m -> fire m
                | None -> ())
            | Drain | Expect _ | Resize _ | Routed _ ->
                assert false (* elastic units only *)
          done;
          (if et_on then
             match Wm_merge.force mg with Some m -> fire m | None -> ());
          List.iter (fun mb -> put_from front mb Eos)
            (eos_targets all_external))
      end)
    fused;

  let actors = List.rev !actors in
  (match scheduler with
  | `Domain_per_actor when List.length actors > max_actors ->
      invalid_arg
        (Printf.sprintf
           "Executor.run: %d actors exceed the domain budget of %d; reduce \
            replicas, fuse operators, or use the `Pool scheduler"
           (List.length actors) max_actors)
  | _ -> ());
  let finished = Atomic.make false in
  (* Entry-mailbox occupancy sampling: run by a dedicated monitor domain in
     legacy mode, by the pool's tick (on the calling domain) in pool mode —
     no extra domain, and none at all when the caller opts out. *)
  let occ_sum = Array.make n 0.0 in
  let occ_samples = ref 0 in
  let sample_occ () =
    for v = 0 to n - 1 do
      match entry_mailbox.(v) with
      | Some mb -> occ_sum.(v) <- occ_sum.(v) +. float_of_int (Mailbox.length mb)
      | None -> ()
    done;
    incr occ_samples
  in
  (* One periodic instrumentation pass: occupancy sampling and the live
     telemetry aggregate share the tick/monitor cadence. Telemetry alone
     does not force a tick — on small machines a 1 ms tick costs more than
     all the recording combined; without one, [Collector.live] merges on
     demand and the final report is aggregated after the join anyway. *)
  let instr_active = instrument.sample_occupancy in
  let instr_tick () =
    sample_occ ();
    Option.iter Telemetry.Collector.refresh collector
  in
  (* Watchdog domain: trip the supervisor when the wall-clock budget runs
     out. Cancellation is cooperative — it takes effect when actors touch a
     mailbox — so a behavior spinning forever on one tuple is not
     interruptible. *)
  let spawn_watchdog () =
    Option.map
      (fun limit ->
        Domain.spawn (fun () ->
            let t0 = Unix.gettimeofday () in
            let tick = Float.min 0.005 (limit /. 10.0) in
            let rec wait () =
              if Atomic.get finished then ()
              else if Unix.gettimeofday () -. t0 >= limit then
                Supervision.trip_timeout sup ~after:limit
              else begin
                Unix.sleepf tick;
                wait ()
              end
            in
            wait ()))
      timeout
  in
  let t0 = Unix.gettimeofday () in
  (match scheduler with
  | `Domain_per_actor ->
      let monitor =
        if instr_active then
          Some
            (Domain.spawn (fun () ->
                 while not (Atomic.get finished) do
                   instr_tick ();
                   Unix.sleepf sample_interval
                 done))
        else None
      in
      let watchdog = spawn_watchdog () in
      let domains =
        List.map
          (fun (actor, vertex, _hint, body) ->
            Domain.spawn (Supervision.supervise sup ~actor ?vertex body))
          actors
      in
      List.iter Domain.join domains;
      Atomic.set finished true;
      Option.iter Domain.join monitor;
      Option.iter Domain.join watchdog
  | (`Pool w | `Locked_pool w) as pool_kind ->
      let impl =
        match pool_kind with `Locked_pool _ -> `Locked | `Pool _ -> `Lockfree
      in
      let group_of_vertex, group_sizes =
        match placement with
        | Some p -> placement_groups ~workers:w p
        | None -> (Array.make n 0, [| w |])
      in
      let pool =
        Ss_sched.Sched.create ~workers:w ~groups:group_sizes ~reserve ~impl ()
      in
      let ngroups = Array.length group_sizes in
      List.iter
        (fun (actor, vertex, group_hint, body) ->
          let group =
            match (group_hint, vertex) with
            | Some g, _ -> g mod ngroups
            | None, Some v -> group_of_vertex.(v)
            | None, None -> 0
          in
          Ss_sched.Sched.spawn ~group pool
            (Supervision.supervise sup ~actor ?vertex body))
        actors;
      (spawn_dyn :=
         fun ~actor ~vertex body ->
           Ss_sched.Sched.spawn ~group:group_of_vertex.(vertex) pool
             (Supervision.supervise sup ~actor ~vertex body));
      Option.iter
        (fun f ->
          f
            {
              li_consumed = consumed;
              li_produced = produced;
              li_collector = collector;
              li_pool = pool;
            })
        notify;
      let watchdog = spawn_watchdog () in
      let tick =
        if instr_active then Some (sample_interval, instr_tick) else None
      in
      Ss_sched.Sched.run ?tick pool;
      Atomic.set finished true;
      Option.iter Domain.join watchdog);
  let elapsed = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
  (* Final offset commit, whatever the outcome: after a clean drain the
     watermark is the log end; after a timeout or failure it is exactly
     the prefix whose derivation trees fully drained, so a restarted run
     redelivers the uncommitted suffix and nothing is lost. Watermarks
     are monotone from the previously committed position, so this never
     rewinds a group. *)
  (match ingest with
  | None -> ()
  | Some i ->
      Array.iteri
        (fun p compl ->
          Ss_log.Log.commit i.ingest_log ~group:i.ingest_group ~partition:p
            (Completion.watermark compl))
        completions);
  let consumed = Array.map Atomic.get consumed in
  let produced = Array.map Atomic.get produced in
  let late = Array.map Atomic.get late in
  let occupancy =
    let samples = float_of_int (Stdlib.max 1 !occ_samples) in
    Array.map (fun s -> s /. samples) occ_sum
  in
  {
    elapsed;
    consumed;
    produced;
    late;
    source_rate = float_of_int produced.(src) /. elapsed;
    blocked = Array.map Atomic.get blocked;
    occupancy;
    telemetry = Option.map Telemetry.Collector.report collector;
    actors = Supervision.reports sup;
    outcome = Supervision.outcome sup;
  }

let run ?ingest ?event_time ?mailbox_capacity ?fused ?fusion ?chains
    ?flush_every ?routers ?ordered ?seed ?timeout ?scheduler ?placement ?batch
    ?channels ?instrument ~source ~registry topology =
  run_internal ?ingest ?event_time ?mailbox_capacity ?fused ?fusion ?chains
    ?flush_every ?routers ?ordered ?seed ?timeout ?scheduler ?placement ?batch
    ?channels ?instrument ~source ~registry topology

(* ------------------------------------------------------------------ *)
(* Live deployments: the executor runs on its own domain while the caller
   keeps a handle for observation (counters, live telemetry, measured
   downtime) and mutation (degree targets, worker admission). *)
module Live = struct
  type nonrec t = {
    topology : Topology.t;
    ctl : control;
    internals : live_internals;
    instrument : instrument;
    domain : metrics Domain.t;
  }

  let start ?event_time ?(mailbox_capacity = 64) ?fused ?fusion ?chains
      ?flush_every ?(routers = []) ?(seed = 42) ?timeout ?workers
      ?(reserve = 0) ?(locked = false) ?(batch = `Adaptive 32)
      ?(channels = `Auto)
      ?(instrument = { default_instrument with telemetry = true }) ~source
      ~registry topology =
    let n = Topology.size topology in
    let workers =
      match workers with
      | Some w -> w
      | None -> Stdlib.max 1 (Domain.recommended_domain_count ())
    in
    let ctl =
      {
        target = Array.init n (fun _ -> Atomic.make 1);
        applied = Array.init n (fun _ -> Atomic.make 1);
        managed = Array.make n false;
        generation = Atomic.make 0;
        downtime = Array.init n (fun _ -> Atomic.make 0.0);
        stop = Atomic.make false;
      }
    in
    Array.iteri
      (fun v (op : Operator.t) ->
        Atomic.set ctl.target.(v) op.Operator.replicas;
        Atomic.set ctl.applied.(v) op.Operator.replicas)
      (Topology.operators topology);
    let scheduler = if locked then `Locked_pool workers else `Pool workers in
    let source () = if Atomic.get ctl.stop then None else source () in
    (* The handle is only returned once deployment completed and the pool is
       about to run, so accessors never see half-built internals; a
       validation error raised before that point propagates here through
       the join. *)
    let ready_m = Mutex.create () in
    let ready_c = Condition.create () in
    let cell = ref None in
    let failed = ref false in
    let notify li =
      Mutex.lock ready_m;
      cell := Some li;
      Condition.signal ready_c;
      Mutex.unlock ready_m
    in
    let domain =
      Domain.spawn (fun () ->
          try
            run_internal ~control:ctl ~notify ?event_time ~reserve
              ~mailbox_capacity ?fused ?fusion ?chains ?flush_every ~routers
              ~seed ?timeout ~scheduler ~batch ~channels ~instrument ~source
              ~registry topology
          with e ->
            Mutex.lock ready_m;
            failed := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m;
            raise e)
    in
    Mutex.lock ready_m;
    while !cell = None && not !failed do
      Condition.wait ready_c ready_m
    done;
    Mutex.unlock ready_m;
    match !cell with
    | Some internals -> { topology; ctl; internals; instrument; domain }
    | None ->
        ignore (Domain.join domain : metrics);
        assert false (* the domain must have raised *)

  let topology t = t.topology
  let telemetry_sample t = t.instrument.telemetry_sample
  let elastic t = Array.copy t.ctl.managed
  let degrees t = Array.map Atomic.get t.ctl.applied
  let generation t = Atomic.get t.ctl.generation
  let downtime t = Array.map Atomic.get t.ctl.downtime

  let total_downtime t =
    Array.fold_left (fun acc c -> acc +. Atomic.get c) 0.0 t.ctl.downtime

  let consumed t = Array.map Atomic.get t.internals.li_consumed
  let produced t = Array.map Atomic.get t.internals.li_produced

  let telemetry t =
    Option.map Telemetry.Collector.live t.internals.li_collector

  let resize t ~vertex degree =
    if degree < 1 then invalid_arg "Executor.Live.resize: degree must be >= 1";
    if vertex < 0 || vertex >= Array.length t.ctl.managed then
      invalid_arg "Executor.Live.resize: vertex out of range";
    if not t.ctl.managed.(vertex) then false
    else begin
      Atomic.set t.ctl.target.(vertex) degree;
      true
    end

  let add_workers t k = Ss_sched.Sched.add_workers t.internals.li_pool k
  let retire_workers t k = Ss_sched.Sched.retire_workers t.internals.li_pool k
  let active_workers t = Ss_sched.Sched.active_workers t.internals.li_pool

  let stop t =
    Atomic.set t.ctl.stop true;
    Domain.join t.domain
end
