(** Actor supervision for the threaded runtime.

    A supervisor wraps every actor body spawned by {!Executor.run}. When a
    body raises, the supervisor records the failure (actor name, vertex,
    exception, backtrace) and {e trips}: every registered mailbox is closed
    so that peers blocked in [Mailbox.put]/[Mailbox.take] wake with
    {!Mailbox.Closed} and exit as [Cancelled] instead of deadlocking the
    run. The same trip path implements the executor's wall-clock timeout.

    Production stream engines treat operator failure as a first-class
    runtime event rather than a hang; this module is the repository's
    minimal version of that contract: fail fast, release every resource,
    and report per-actor status. *)

type status =
  | Completed  (** The body returned normally. *)
  | Failed of { exn : string; backtrace : string }
      (** The body raised; the exception tripped the supervisor. *)
  | Cancelled
      (** The body was unblocked by a mailbox closed during shutdown. *)

type report = { actor : string; vertex : int option; status : status }
(** [vertex] is [None] for actors not tied to a single topology vertex. *)

type outcome =
  | Finished  (** Every actor completed. *)
  | Actor_failed of report  (** The first failure observed. *)
  | Timed_out of float  (** The watchdog tripped after this many seconds. *)

type t

val create : unit -> t

val register_closer : t -> (unit -> unit) -> unit
(** Register an idempotent shutdown action (typically [Mailbox.close]). If
    the supervisor already tripped, the closer runs immediately. *)

val supervise : t -> actor:string -> ?vertex:int -> (unit -> unit) -> unit -> unit
(** [supervise t ~actor ?vertex body] is a body that runs [body], catching
    every exception: a normal return records [Completed],
    {!Mailbox.Closed} records [Cancelled], anything else records [Failed]
    and trips the supervisor (closing all registered mailboxes). *)

val trip : t -> unit
(** Force shutdown: run every registered closer. Idempotent. *)

val trip_timeout : t -> after:float -> unit
(** Like {!trip}, additionally recording a timeout as the run outcome
    (unless an actor failure was already recorded). *)

val tripped : t -> bool

val reports : t -> report list
(** Per-actor reports in completion order. *)

val outcome : t -> outcome
(** The first shutdown cause wins: a recorded timeout (which is only
    recorded when no failure preceded it) takes precedence over failures
    raised during the ensuing cancellation; [Finished] otherwise. *)

val pp_status : Format.formatter -> status -> unit
val pp_outcome : Format.formatter -> outcome -> unit
