(** Deploy-time staging of fused groups into one flat closure.

    The interpreted meta-operator (in {!Executor}) walks a fused group's
    members per tuple: closure dispatch through vertex-indexed tables, an
    intermediate result list per member, and one routing draw per produced
    tuple. [plan] compiles the same walk once, at deploy time, into a
    straight-line composition of the member behaviors: one-in/one-out
    members declared through {!Ss_operators.Behavior.inline_spec} compose
    directly (no intermediate list, no per-member closure table lookup),
    and in-group hops bind the successor's step function instead of going
    back through a dispatch table. Stateful members ([Inline_fold],
    [Inline_window]) thread their explicit state through the same loop and
    surface it on the staged {!instance} so the composed chain can hand
    state off across a live resize.

    {b Count parity} is the contract that makes the compiled path safe to
    select automatically: a compiled chain consumes exactly the same
    [Rng.float] draws, in the same order, as the interpreted walk — one
    {!Ss_prelude.Discrete.sample} per produced tuple at every member that
    has successors (single-successor members included), and none at
    members without successors. Per-vertex consumed/produced counts are
    therefore bit-identical to the interpreted executor and to
    {!Ss_sim.Engine.replay} for any seed. *)

type env = {
  rng : Ss_prelude.Rng.t;
      (** The fused group's routing rng — the caller seeds it exactly as
          the interpreted meta-operator would. *)
  consumed : int array;
      (** Topology-sized per-vertex counters the chain increments in
          place. Plain arrays: the chain is single-writer; the caller
          flushes them to its shared counters. *)
  produced : int array;  (** Same contract as [consumed]. *)
  emit : int -> int -> Ss_operators.Tuple.t -> unit;
      (** [emit member dest out] delivers [out] on the group-external edge
          [member -> dest]. *)
}

type chain = env -> Ss_operators.Tuple.t -> unit
(** Applying a chain to an [env] allocates fresh member state instances
    (like {!Ss_operators.Behavior.instantiate}) and returns the group's
    entry step: feed it one input tuple and it runs the whole group to
    quiescence, counting and emitting through the [env]. *)

type instance = {
  step : Ss_operators.Tuple.t -> unit;
      (** The group's entry step: one input tuple runs the whole group to
          quiescence, counting and emitting through the staging [env]. *)
  export : unit -> Ss_operators.Behavior.keyed_state;
      (** Snapshot every stateful member's keyed state as one flat list.
          Each entry's value array is prefixed with the owning member's
          vertex id, so entries repartition across replicas by tuple key
          while still finding their member on import. Call only when the
          instance has quiesced. *)
  import : Ss_operators.Behavior.keyed_state -> unit;
      (** Load an {!export} snapshot (or the key-subset this instance now
          owns) into the member state instances, before any [step] call. *)
}
(** One staged occurrence of a fused group: the flat loop plus the
    state-handoff pair that keeps a compiled group migratable. *)

type staged = env -> instance
(** Like {!chain}, but the application also surfaces the member states. *)

type telemetry = {
  sample_every : int;
      (** Time the first, then every k-th, invocation per member — the
          same deterministic schedule as the interpreted executor's
          per-vertex sampling, so histogram sample counts match. *)
  edge_count : int array;
      (** Edge-indexed transfer counters the chain increments in place —
          internal hops and external emissions alike. Plain ints: the
          chain is single-writer; the caller flushes them to its shared
          telemetry sink on its own cadence. *)
  edge_index : int -> int -> int;
      (** [edge_index u v] is the slot of topology edge [u -> v] in
          [edge_count]. *)
  record_latency : int -> float -> unit;
      (** [record_latency v age]: input-tuple age at member [v] on a
          timed invocation. *)
  record_service : int -> float -> unit;
      (** [record_service v dt]: duration of a timed invocation of member
          [v]'s behavior (the behavior application only — routing is
          excluded, as in the interpreted executor). *)
  birth : float ref;
      (** The current group-input tuple's birth timestamp, set by the
          caller before each [step]. Internal hops are synchronous, so
          every member sees the group input's birth — exactly the
          interpreted walk's behavior. *)
}
(** Instrumentation hooks for a telemetry-on compiled run. When supplied
    to {!plan} or {!interpret}, the staged loop accumulates edge counts in
    plain local slots and samples latency/service on the interpreted
    executor's 1-in-k schedule; histograms are recorded directly, edge
    counts are flushed by the caller. *)

val of_chain : chain -> staged
(** Adapt a caller-supplied (or generated) chain: no exportable state. *)

val linear : Ss_topology.Topology.t -> members:int list -> bool
(** Every member has at most one successor (in-group or external). Linear
    groups make routing draws count-neutral — each draw picks among one
    destination — so per-vertex counts are a deterministic function of the
    inputs alone. That is what lets a replicated fused group (which splits
    the rng stream across replicas) keep counts bit-identical to the
    single-actor walk and to {!Ss_sim.Engine.replay}. *)

val migratable :
  members:int list -> registry:(int -> Ss_operators.Behavior.t) -> bool
(** Every stateful member exposes exportable state through its inline hook
    ({!Ss_operators.Behavior.inline_migratable}) or its [migrate]
    interface, and none is evented: a staged instance's
    {!instance.export}/{!instance.import} then carry the group's complete
    state, so live resizing a replica hosting it loses nothing. Stateless
    members pass trivially (nothing to move). *)

val plan :
  ?telemetry:telemetry ->
  Ss_topology.Topology.t ->
  members:int list ->
  registry:(int -> Ss_operators.Behavior.t) ->
  (staged, string) result
(** Stage [members] of the topology as one compiled chain.

    Eligibility: the members must form a legal single-front group
    ({!Ss_topology.Topology.front_end_of} — one entry vertex, no source,
    no duplicates; the in-group sub-graph of any well-formed topology is
    acyclic, so trees and diamonds both stage), and no member may be
    evented — watermark and late-tuple paths need the interpreted walk.
    Returns [Error reason] for shapes it declines; the caller falls back
    to interpretation. *)

val interpret :
  ?telemetry:telemetry ->
  Ss_topology.Topology.t ->
  members:int list ->
  registry:(int -> Ss_operators.Behavior.t) ->
  (staged, string) result
(** The Algorithm-4-faithful twin of {!plan}: vertex-indexed closure
    tables, an intermediate result list per member, a routing draw per
    produced tuple. Same eligibility, same counts, same draws — it exists
    as the apples-to-apples interpreted baseline where the classic
    executor walk is not available (inside fission replicas) and for
    benchmarking the compiled tier's speedup. *)
