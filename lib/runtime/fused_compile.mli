(** Deploy-time staging of fused groups into one flat closure.

    The interpreted meta-operator (in {!Executor}) walks a fused group's
    members per tuple: closure dispatch through vertex-indexed tables, an
    intermediate result list per member, and one routing draw per produced
    tuple. [plan] compiles the same walk once, at deploy time, into a
    straight-line composition of the member behaviors: one-in/one-out
    members declared through {!Ss_operators.Behavior.inline_spec} compose
    directly (no intermediate list, no per-member closure table lookup),
    and in-group hops bind the successor's step function instead of going
    back through a dispatch table.

    {b Count parity} is the contract that makes the compiled path safe to
    select automatically: a compiled chain consumes exactly the same
    [Rng.float] draws, in the same order, as the interpreted walk — one
    {!Ss_prelude.Discrete.sample} per produced tuple at every member that
    has successors (single-successor members included), and none at
    members without successors. Per-vertex consumed/produced counts are
    therefore bit-identical to the interpreted executor and to
    {!Ss_sim.Engine.replay} for any seed. *)

type env = {
  rng : Ss_prelude.Rng.t;
      (** The fused group's routing rng — the caller seeds it exactly as
          the interpreted meta-operator would. *)
  consumed : int array;
      (** Topology-sized per-vertex counters the chain increments in
          place. Plain arrays: the chain is single-writer; the caller
          flushes them to its shared counters. *)
  produced : int array;  (** Same contract as [consumed]. *)
  emit : int -> int -> Ss_operators.Tuple.t -> unit;
      (** [emit member dest out] delivers [out] on the group-external edge
          [member -> dest]. *)
}

type chain = env -> Ss_operators.Tuple.t -> unit
(** Applying a chain to an [env] allocates fresh member state instances
    (like {!Ss_operators.Behavior.instantiate}) and returns the group's
    entry step: feed it one input tuple and it runs the whole group to
    quiescence, counting and emitting through the [env]. *)

val plan :
  Ss_topology.Topology.t ->
  members:int list ->
  registry:(int -> Ss_operators.Behavior.t) ->
  (chain, string) result
(** Stage [members] of the topology as one compiled chain.

    Eligibility: the members must form a legal single-front group
    ({!Ss_topology.Topology.front_end_of} — one entry vertex, no source,
    no duplicates; the in-group sub-graph of any well-formed topology is
    acyclic, so trees and diamonds both stage), and no member may be
    evented — watermark and late-tuple paths need the interpreted walk.
    Returns [Error reason] for shapes it declines; the caller falls back
    to interpretation. *)
