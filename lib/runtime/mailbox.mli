(** Bounded blocking mailboxes: the runtime's equivalent of Akka's
    [BoundedMailbox] with a blocking producer (paper §5.1).

    [put] blocks while the mailbox is full — this is the
    Blocking-After-Service backpressure the cost model assumes. [take]
    blocks while it is empty. Both are thread-safe; waiters are woken in an
    unspecified but starvation-free order.

    A mailbox can be {!close}d (poisoned) for fault containment: every
    blocked producer and consumer wakes immediately with {!Closed} instead
    of waiting forever, pending items are discarded, and all subsequent
    operations (except {!length}, {!capacity} and {!is_closed}) raise
    {!Closed}. The supervisor uses this to unblock the whole actor network
    when one actor fails. All operations release the internal mutex on
    every path, exceptional ones included. *)

type 'a t

exception Closed
(** Raised by [put]/[take]/[try_put]/[try_take] once the mailbox is closed,
    including by callers that were already blocked when [close] ran. *)

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val put : 'a t -> 'a -> unit
(** Enqueue, blocking while full. @raise Closed if the mailbox is (or
    becomes, while blocked) closed. *)

val take : 'a t -> 'a
(** Dequeue, blocking while empty. @raise Closed if the mailbox is (or
    becomes, while blocked) closed. *)

val try_put : 'a t -> 'a -> bool
(** Non-blocking enqueue; false when full. @raise Closed when closed. *)

val try_take : 'a t -> 'a option
(** Non-blocking dequeue; [None] when empty. @raise Closed when closed. *)

val length : 'a t -> int
(** Instantaneous occupancy (racy by nature; for monitoring only). Never
    raises; a closed mailbox reports 0. *)

val close : 'a t -> unit
(** Poison the mailbox: discard pending items, wake every blocked producer
    and consumer with {!Closed}, and make subsequent operations raise
    {!Closed}. Idempotent. *)

val is_closed : 'a t -> bool
