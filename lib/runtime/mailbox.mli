(** Bounded blocking mailboxes: the runtime's equivalent of Akka's
    [BoundedMailbox] with a blocking producer (paper §5.1).

    [put] blocks while the mailbox is full — this is the
    Blocking-After-Service backpressure the cost model assumes. [take]
    blocks while it is empty. Both are thread-safe; waiters are woken in an
    unspecified but starvation-free order.

    A mailbox can be {!close}d (poisoned) for fault containment: every
    blocked producer and consumer wakes immediately with {!Closed} instead
    of waiting forever, pending items are discarded, and all subsequent
    operations (except {!length}, {!capacity} and {!is_closed}) raise
    {!Closed}. The supervisor uses this to unblock the whole actor network
    when one actor fails. All operations release the internal mutex on
    every path, exceptional ones included. *)

type 'a t

exception Closed
(** Raised by [put]/[take]/[try_put]/[try_take] once the mailbox is closed,
    including by callers that were already blocked when [close] ran. *)

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val put : 'a t -> 'a -> unit
(** Enqueue, blocking while full. @raise Closed if the mailbox is (or
    becomes, while blocked) closed. *)

val take : 'a t -> 'a
(** Dequeue, blocking while empty. @raise Closed if the mailbox is (or
    becomes, while blocked) closed. *)

val try_put : 'a t -> 'a -> bool
(** Non-blocking enqueue; false when full. @raise Closed when closed. *)

val try_take : 'a t -> 'a option
(** Non-blocking dequeue; [None] when empty. @raise Closed when closed. *)

val take_batch : 'a t -> max:int -> 'a list
(** Non-blocking dequeue of up to [max] items in queue order; [[]] when
    empty. Frees slots in one lock round-trip — the N:M scheduler drains a
    batch per activation to amortize dispatch cost (cf. stream fusion).
    @raise Closed when closed.
    @raise Invalid_argument if [max < 1]. *)

val on_space : 'a t -> (unit -> unit) -> bool
(** [on_space t k] atomically checks for free capacity: if the mailbox is
    full (and open), registers [k] as a one-shot wakeup callback and
    returns [true]; otherwise returns [false] without registering — the
    caller should retry its [try_put] immediately. [k] is invoked (outside
    the mailbox lock, at most once) when a slot may have freed or the
    mailbox closes; a wakeup is a hint — the caller must retry, and may
    re-register. This is the parking hook for {!Ss_sched.Sched.suspend}. *)

val on_item : 'a t -> (unit -> unit) -> bool
(** [on_item t k] — dual of {!on_space}: registers [k] only while the
    mailbox is empty and open; [k] fires when an item may have arrived or
    the mailbox closes. *)

val length : 'a t -> int
(** Instantaneous occupancy (racy by nature; for monitoring only). Never
    raises; a closed mailbox reports 0. *)

val close : 'a t -> unit
(** Poison the mailbox: discard pending items, wake every blocked producer
    and consumer with {!Closed}, invoke every parked-task callback
    registered via {!on_space}/{!on_item} (so parked actors resume, retry,
    and observe {!Closed}), and make subsequent operations raise {!Closed}.
    Idempotent. *)

val is_closed : 'a t -> bool
