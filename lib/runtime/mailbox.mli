(** Bounded blocking mailboxes: the runtime's equivalent of Akka's
    [BoundedMailbox] with a blocking producer (paper §5.1).

    [put] blocks while the mailbox is full — this is the
    Blocking-After-Service backpressure the cost model assumes. [take]
    blocks while it is empty. Both are thread-safe; waiters are woken in an
    unspecified but starvation-free order.

    Two implementations live behind this interface and behave
    identically at the API level:
    - {!create} builds the general locking mailbox (a queue under a mutex
      and two condition variables) — safe for any number of producers and
      consumers, so it backs fan-in edges: shuffle/key-partition
      collectors and fission merge points;
    - {!create_spsc} builds a bounded lock-free single-producer/
      single-consumer ring ({!Spsc_ring}) whose fast path takes no lock at
      all — the executor selects it statically for topology edges with
      exactly one producing and one consuming actor.

    A mailbox can be {!close}d (poisoned) for fault containment: every
    blocked producer and consumer wakes immediately with {!Closed} instead
    of waiting forever, pending items are discarded, and all subsequent
    operations (except {!length}, {!capacity}, {!is_spsc} and
    {!is_closed}) raise {!Closed}. The supervisor uses this to unblock the
    whole actor network when one actor fails. All operations release any
    internal mutex on every path, exceptional ones included. *)

type 'a t

exception Closed
(** Raised by [put]/[take]/[try_put]/[try_take] once the mailbox is closed,
    including by callers that were already blocked when [close] ran.
    (Physically the same exception as [Spsc_ring.Closed].) *)

val create : capacity:int -> 'a t
(** The locking multi-producer implementation.
    @raise Invalid_argument if [capacity < 1]. *)

val create_spsc : capacity:int -> 'a t
(** The lock-free ring. Contract: at most one concurrent producer and one
    concurrent consumer (not checked — the executor guarantees it by
    construction from the topology). [close], [length] and [is_closed]
    remain safe from any domain.
    @raise Invalid_argument if [capacity < 1]. *)

val is_spsc : 'a t -> bool
(** True for mailboxes built by {!create_spsc}. *)

val capacity : 'a t -> int

val put : 'a t -> 'a -> unit
(** Enqueue, blocking while full. @raise Closed if the mailbox is (or
    becomes, while blocked) closed. *)

val take : 'a t -> 'a
(** Dequeue, blocking while empty. @raise Closed if the mailbox is (or
    becomes, while blocked) closed. *)

val try_put : 'a t -> 'a -> bool
(** Non-blocking enqueue; false when full. @raise Closed when closed. *)

val try_take : 'a t -> 'a option
(** Non-blocking dequeue; [None] when empty. @raise Closed when closed. *)

val try_put_chunk : 'a t -> 'a list -> 'a list
(** Non-blocking multi-item enqueue in one mailbox transaction (one lock
    round-trip on the locking path, one index publication on the ring):
    enqueues a prefix bounded by free capacity and returns the suffix that
    did not fit — physically a tail of the input, so the call allocates
    nothing. [[]] means everything was enqueued; an empty input is a no-op
    that never raises. @raise Closed when closed and the input is
    non-empty. *)

val put_batch : 'a t -> 'a list -> unit
(** Enqueue all items in order, blocking for space as needed; equivalent
    to iterated {!put} but amortizes to one mailbox transaction per
    capacity-sized chunk. Fission emitters use this to publish a routed
    burst per worker. An empty input is a no-op.
    @raise Closed if closed, including mid-batch while blocked (items
    already enqueued are discarded by the close, like any pending item). *)

val take_batch : 'a t -> max:int -> into:'a Queue.t -> int
(** Non-blocking dequeue of up to [max] items in queue order, appended to
    the caller's reusable [into] buffer (no per-activation list is built —
    cf. stream fusion: the N:M scheduler drains a batch per activation to
    amortize dispatch cost). Returns the occupancy observed {e before}
    draining, so [min max result] items were appended and the result
    doubles as the occupancy sample behind adaptive drain sizing.
    @raise Closed when closed.
    @raise Invalid_argument if [max < 1]. *)

val on_space : 'a t -> (unit -> unit) -> bool
(** [on_space t k] atomically checks for free capacity: if the mailbox is
    full (and open), registers [k] as a one-shot wakeup callback and
    returns [true]; otherwise returns [false] without registering — the
    caller should retry its [try_put] immediately. [k] is invoked (outside
    the mailbox lock, at most once) when a slot may have freed or the
    mailbox closes; a wakeup is a hint — the caller must retry, and may
    re-register. This is the parking hook for {!Ss_sched.Sched.suspend}. *)

val on_item : 'a t -> (unit -> unit) -> bool
(** [on_item t k] — dual of {!on_space}: registers [k] only while the
    mailbox is empty and open; [k] fires when an item may have arrived or
    the mailbox closes. *)

val length : 'a t -> int
(** Instantaneous occupancy (racy by nature; for monitoring only). Never
    raises; a closed mailbox reports 0. *)

val close : 'a t -> unit
(** Poison the mailbox: discard pending items, wake every blocked producer
    and consumer with {!Closed}, invoke every parked-task callback
    registered via {!on_space}/{!on_item} (so parked actors resume, retry,
    and observe {!Closed}), and make subsequent operations raise {!Closed}.
    Idempotent. *)

val is_closed : 'a t -> bool
