(* Both implementations raise physically the same exception so callers —
   and the supervision protocol — never care which one backs an edge. *)
exception Closed = Spsc_ring.Closed

(* --- locking MPSC implementation ---------------------------------- *)

type 'a locking = {
  capacity : int;
  queue : 'a Queue.t;
  mutex : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  (* Parked-task wakeup callbacks (scheduler resumptions). Registered by
     [on_space]/[on_item] only while the awaited condition does not hold;
     drained — and invoked outside the lock — whenever it may again. *)
  space_waiters : (unit -> unit) Queue.t;
  item_waiters : (unit -> unit) Queue.t;
  mutable closed : bool;
}

let create_lk ~capacity =
  {
    capacity;
    queue = Queue.create ();
    mutex = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    space_waiters = Queue.create ();
    item_waiters = Queue.create ();
    closed = false;
  }

(* Every operation holds the mutex inside [Fun.protect] so an exception on
   any path — including the deliberate [Closed] raise — releases the lock
   and cannot wedge peer actors. *)
let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let drain q =
  let ws = List.of_seq (Queue.to_seq q) in
  Queue.clear q;
  ws

(* Like [locked], but [f] additionally returns wakeup callbacks collected
   under the lock; they run after the unlock so a resumed task can touch
   the mailbox immediately without self-deadlock. Paths that raise collect
   no wakeups (close already woke everyone). *)
let locked_wake t f =
  let result, wakeups = locked t f in
  List.iter (fun w -> w ()) wakeups;
  result

let signal_item t =
  Condition.signal t.not_empty;
  drain t.item_waiters

let signal_space t =
  Condition.signal t.not_full;
  drain t.space_waiters

let put_lk t x =
  locked_wake t (fun () ->
      while (not t.closed) && Queue.length t.queue >= t.capacity do
        Condition.wait t.not_full t.mutex
      done;
      if t.closed then raise Closed;
      Queue.push x t.queue;
      ((), signal_item t))

let take_lk t =
  locked_wake t (fun () ->
      while (not t.closed) && Queue.is_empty t.queue do
        Condition.wait t.not_empty t.mutex
      done;
      if t.closed then raise Closed;
      let x = Queue.pop t.queue in
      (x, signal_space t))

let try_put_lk t x =
  locked_wake t (fun () ->
      if t.closed then raise Closed;
      let ok = Queue.length t.queue < t.capacity in
      if ok then begin
        Queue.push x t.queue;
        (ok, signal_item t)
      end
      else (ok, []))

let try_take_lk t =
  locked_wake t (fun () ->
      if t.closed then raise Closed;
      if Queue.is_empty t.queue then (None, [])
      else
        let x = Queue.pop t.queue in
        (Some x, signal_space t))

(* Multi-item publish in one lock round-trip: push while capacity lasts,
   hand back the suffix that did not fit (physically shared — no
   allocation). *)
let try_put_chunk_lk t xs =
  locked_wake t (fun () ->
      if t.closed then raise Closed;
      let rec fill = function
        | x :: rest when Queue.length t.queue < t.capacity ->
            Queue.push x t.queue;
            fill rest
        | rest -> rest
      in
      let n0 = Queue.length t.queue in
      let rest = fill xs in
      if Queue.length t.queue > n0 then begin
        Condition.broadcast t.not_empty;
        (rest, drain t.item_waiters)
      end
      else (rest, []))

let put_batch_lk t xs =
  let rec go = function
    | [] -> ()
    | xs ->
        locked_wake t (fun () ->
            while (not t.closed) && Queue.length t.queue >= t.capacity do
              Condition.wait t.not_full t.mutex
            done;
            if t.closed then raise Closed;
            let rec fill = function
              | x :: rest when Queue.length t.queue < t.capacity ->
                  Queue.push x t.queue;
                  fill rest
              | rest -> rest
            in
            let rest = fill xs in
            (rest, (Condition.broadcast t.not_empty; drain t.item_waiters)))
        |> go
  in
  go xs

let take_batch_lk t ~max ~into =
  locked_wake t (fun () ->
      if t.closed then raise Closed;
      let avail = Queue.length t.queue in
      let n = Stdlib.min max avail in
      if n = avail then Queue.transfer t.queue into
      else
        for _ = 1 to n do
          Queue.push (Queue.pop t.queue) into
        done;
      if n > 0 then begin
        Condition.broadcast t.not_full;
        (avail, drain t.space_waiters)
      end
      else (avail, []))

let on_space_lk t k =
  locked t (fun () ->
      if t.closed || Queue.length t.queue < t.capacity then false
      else begin
        Queue.push k t.space_waiters;
        true
      end)

let on_item_lk t k =
  locked t (fun () ->
      if t.closed || not (Queue.is_empty t.queue) then false
      else begin
        Queue.push k t.item_waiters;
        true
      end)

let length_lk t = locked t (fun () -> Queue.length t.queue)

let close_lk t =
  locked_wake t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Queue.clear t.queue;
        Condition.broadcast t.not_full;
        Condition.broadcast t.not_empty;
        ((), drain t.space_waiters @ drain t.item_waiters)
      end
      else ((), []))

let is_closed_lk t = locked t (fun () -> t.closed)

(* --- facade ------------------------------------------------------- *)

type 'a t = Locking of 'a locking | Spsc of 'a Spsc_ring.t

let create ~capacity =
  if capacity < 1 then invalid_arg "Mailbox.create: capacity must be >= 1";
  Locking (create_lk ~capacity)

let create_spsc ~capacity =
  if capacity < 1 then invalid_arg "Mailbox.create: capacity must be >= 1";
  Spsc (Spsc_ring.create ~capacity)

let is_spsc = function Locking _ -> false | Spsc _ -> true

let capacity = function
  | Locking t -> t.capacity
  | Spsc r -> Spsc_ring.capacity r

let put m x =
  match m with Locking t -> put_lk t x | Spsc r -> Spsc_ring.put r x

let take = function Locking t -> take_lk t | Spsc r -> Spsc_ring.take r

let try_put m x =
  match m with Locking t -> try_put_lk t x | Spsc r -> Spsc_ring.try_put r x

let try_take = function
  | Locking t -> try_take_lk t
  | Spsc r -> Spsc_ring.try_take r

let try_put_chunk m xs =
  match xs with
  | [] -> []
  | _ -> (
      match m with
      | Locking t -> try_put_chunk_lk t xs
      | Spsc r -> Spsc_ring.try_put_chunk r xs)

let put_batch m xs =
  match xs with
  | [] -> ()
  | _ -> (
      match m with
      | Locking t -> put_batch_lk t xs
      | Spsc r -> Spsc_ring.put_batch r xs)

let take_batch m ~max ~into =
  if max < 1 then invalid_arg "Mailbox.take_batch: max must be >= 1";
  match m with
  | Locking t -> take_batch_lk t ~max ~into
  | Spsc r -> Spsc_ring.take_batch r ~max ~into

let on_space m k =
  match m with
  | Locking t -> on_space_lk t k
  | Spsc r -> Spsc_ring.on_space r k

let on_item m k =
  match m with
  | Locking t -> on_item_lk t k
  | Spsc r -> Spsc_ring.on_item r k

let length = function
  | Locking t -> length_lk t
  | Spsc r -> Spsc_ring.length r

let close = function Locking t -> close_lk t | Spsc r -> Spsc_ring.close r

let is_closed = function
  | Locking t -> is_closed_lk t
  | Spsc r -> Spsc_ring.is_closed r
