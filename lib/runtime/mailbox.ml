exception Closed

type 'a t = {
  capacity : int;
  queue : 'a Queue.t;
  mutex : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Mailbox.create: capacity must be >= 1";
  {
    capacity;
    queue = Queue.create ();
    mutex = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    closed = false;
  }

let capacity t = t.capacity

(* Every operation holds the mutex inside [Fun.protect] so an exception on
   any path — including the deliberate [Closed] raise — releases the lock
   and cannot wedge peer actors. *)
let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let put t x =
  locked t (fun () ->
      while (not t.closed) && Queue.length t.queue >= t.capacity do
        Condition.wait t.not_full t.mutex
      done;
      if t.closed then raise Closed;
      Queue.push x t.queue;
      Condition.signal t.not_empty)

let take t =
  locked t (fun () ->
      while (not t.closed) && Queue.is_empty t.queue do
        Condition.wait t.not_empty t.mutex
      done;
      if t.closed then raise Closed;
      let x = Queue.pop t.queue in
      Condition.signal t.not_full;
      x)

let try_put t x =
  locked t (fun () ->
      if t.closed then raise Closed;
      let ok = Queue.length t.queue < t.capacity in
      if ok then begin
        Queue.push x t.queue;
        Condition.signal t.not_empty
      end;
      ok)

let try_take t =
  locked t (fun () ->
      if t.closed then raise Closed;
      let x =
        if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)
      in
      if x <> None then Condition.signal t.not_full;
      x)

let length t = locked t (fun () -> Queue.length t.queue)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Queue.clear t.queue;
        Condition.broadcast t.not_full;
        Condition.broadcast t.not_empty
      end)

let is_closed t = locked t (fun () -> t.closed)
