exception Closed

type 'a t = {
  capacity : int;
  queue : 'a Queue.t;
  mutex : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  (* Parked-task wakeup callbacks (scheduler resumptions). Registered by
     [on_space]/[on_item] only while the awaited condition does not hold;
     drained — and invoked outside the lock — whenever it may again. *)
  space_waiters : (unit -> unit) Queue.t;
  item_waiters : (unit -> unit) Queue.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Mailbox.create: capacity must be >= 1";
  {
    capacity;
    queue = Queue.create ();
    mutex = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    space_waiters = Queue.create ();
    item_waiters = Queue.create ();
    closed = false;
  }

let capacity t = t.capacity

(* Every operation holds the mutex inside [Fun.protect] so an exception on
   any path — including the deliberate [Closed] raise — releases the lock
   and cannot wedge peer actors. *)
let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let drain q =
  let ws = List.of_seq (Queue.to_seq q) in
  Queue.clear q;
  ws

(* Like [locked], but [f] additionally returns wakeup callbacks collected
   under the lock; they run after the unlock so a resumed task can touch
   the mailbox immediately without self-deadlock. Paths that raise collect
   no wakeups (close already woke everyone). *)
let locked_wake t f =
  let result, wakeups = locked t f in
  List.iter (fun w -> w ()) wakeups;
  result

let signal_item t =
  Condition.signal t.not_empty;
  drain t.item_waiters

let signal_space t =
  Condition.signal t.not_full;
  drain t.space_waiters

let put t x =
  locked_wake t (fun () ->
      while (not t.closed) && Queue.length t.queue >= t.capacity do
        Condition.wait t.not_full t.mutex
      done;
      if t.closed then raise Closed;
      Queue.push x t.queue;
      ((), signal_item t))

let take t =
  locked_wake t (fun () ->
      while (not t.closed) && Queue.is_empty t.queue do
        Condition.wait t.not_empty t.mutex
      done;
      if t.closed then raise Closed;
      let x = Queue.pop t.queue in
      (x, signal_space t))

let try_put t x =
  locked_wake t (fun () ->
      if t.closed then raise Closed;
      let ok = Queue.length t.queue < t.capacity in
      if ok then begin
        Queue.push x t.queue;
        (ok, signal_item t)
      end
      else (ok, []))

let try_take t =
  locked_wake t (fun () ->
      if t.closed then raise Closed;
      if Queue.is_empty t.queue then (None, [])
      else
        let x = Queue.pop t.queue in
        (Some x, signal_space t))

let take_batch t ~max =
  if max < 1 then invalid_arg "Mailbox.take_batch: max must be >= 1";
  locked_wake t (fun () ->
      if t.closed then raise Closed;
      let n = Stdlib.min max (Queue.length t.queue) in
      let rec grab acc k =
        if k = 0 then List.rev acc else grab (Queue.pop t.queue :: acc) (k - 1)
      in
      let xs = grab [] n in
      if n > 0 then begin
        Condition.broadcast t.not_full;
        (xs, drain t.space_waiters)
      end
      else (xs, []))

let on_space t k =
  locked t (fun () ->
      if t.closed || Queue.length t.queue < t.capacity then false
      else begin
        Queue.push k t.space_waiters;
        true
      end)

let on_item t k =
  locked t (fun () ->
      if t.closed || not (Queue.is_empty t.queue) then false
      else begin
        Queue.push k t.item_waiters;
        true
      end)

let length t = locked t (fun () -> Queue.length t.queue)

let close t =
  locked_wake t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Queue.clear t.queue;
        Condition.broadcast t.not_full;
        Condition.broadcast t.not_empty;
        ((), drain t.space_waiters @ drain t.item_waiters)
      end
      else ((), []))

let is_closed t = locked t (fun () -> t.closed)
