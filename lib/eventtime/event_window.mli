(** Keyed event-time windows as an evented {!Ss_operators.Behavior}.

    The runtime-integrated counterpart of the standalone
    {!Ss_operators.Time_window}: elements are bucketed per key into
    slide-aligned windows as they arrive ([efn] emits nothing), and windows
    fire — one aggregate tuple per (key, window), ordered by window end —
    when the runtime's propagated watermark passes their end
    ([on_watermark]). The end-of-stream watermark [infinity] flushes every
    open window, so a finite stream loses nothing.

    Fired tuples carry [ts = window end], the window's key, tag [0] and a
    single value (the chosen aggregate). Under the [Refire] lateness policy
    a straggler behind the watermark retracts and corrects: the behavior
    remembers fired windows for [refire_horizon] seconds of event time and
    [on_late] emits the stale result again with tag {!retraction_tag}
    followed by the corrected result with tag [0]; stragglers whose windows
    are still open are simply absorbed. Beyond the horizon the straggler is
    unrecoverable and only counted.

    State (open windows and refire memory) exports/imports through the
    evented interface, so live reconfiguration migrates in-flight windows
    across replica generations without loss. *)

type agg = Sum | Count | Max | Min | Mean

val retraction_tag : int
(** Tag ([1]) marking retraction tuples emitted by the refire path. *)

val behavior :
  ?name:string ->
  ?agg:agg ->
  ?index:int ->
  ?refire_horizon:float ->
  ?output_selectivity:float ->
  length:float ->
  slide:float ->
  unit ->
  Ss_operators.Behavior.t
(** [behavior ~length ~slide ()] aggregates value [index] (default 0) per
    key over slide-aligned windows of [length] seconds every [slide]
    seconds ([slide = length] is tumbling). [agg] defaults to [Sum];
    [refire_horizon] defaults to [2 *. length]. The declared
    [output_selectivity] (default 1) is nominal — use
    {!Event_model.firing_selectivity} for a workload-aware descriptor.
    Default name: ["ewin_<agg>_w<ms>_s<ms>"].
    @raise Invalid_argument on non-positive length/slide, [slide > length]
    or a negative horizon. *)

val of_name : string -> Ss_operators.Behavior.t option
(** Resolve an XML operator class: ["ewin"] (1 s tumbling sum) or
    ["ewin_w<MS>_s<MS>"] (milliseconds). [None] when the name is not an
    event-window class or its parameters are invalid. *)
