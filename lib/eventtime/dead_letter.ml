open Ss_operators

type t = {
  m : Mutex.t;
  mutable items : Tuple.t list; (* newest first *)
  count : int Atomic.t; (* lock-free reads for live monitoring *)
}

let create () = { m = Mutex.create (); items = []; count = Atomic.make 0 }

let add t tuple =
  Mutex.lock t.m;
  t.items <- tuple :: t.items;
  Mutex.unlock t.m;
  Atomic.incr t.count

let count t = Atomic.get t.count

let items t =
  Mutex.lock t.m;
  let xs = t.items in
  Mutex.unlock t.m;
  List.rev xs

let to_log t log ~partition =
  let xs = items t in
  match xs with
  | [] -> 0
  | xs ->
      ignore
        (Ss_log.Log.append_batch log ~partition
           (List.map Ss_log.Tuple_codec.encode xs)
          : int);
      List.length xs
