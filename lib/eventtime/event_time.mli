(** Event-time run configuration, as consumed by [Executor.run ?event_time]:
    the source-side watermark generation strategy plus the lateness policy
    applied at every evented operator. *)

type config = { watermark : Watermark.gen; lateness : Lateness.policy }

val config : ?lateness:Lateness.policy -> Watermark.gen -> config
(** [lateness] defaults to {!Lateness.Drop}. *)
