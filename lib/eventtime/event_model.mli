(** Cost-model hooks linking event-time execution to Algorithm 1.

    A watermark-driven window fires one aggregate per (key, window) when
    the watermark passes the window end, so its steady-state output
    selectivity is not a property of the code but of the workload: with
    [keys] active keys, input rate [rate] and slide [slide] seconds, each
    slide interval consumes [rate *. slide] tuples and produces [keys]
    firings. This module turns those workload parameters into an
    {!Ss_topology.Operator} descriptor so {!Ss_core.Steady_state.analyze}
    can predict event-time throughput (the paper's Fig. 11 methodology,
    applied to the event-time tier). *)

val firing_selectivity : keys:int -> rate:float -> slide:float -> float
(** [keys /. (rate *. slide)]: window firings per consumed tuple.
    @raise Invalid_argument unless [keys >= 1] and [rate], [slide] are
    positive and finite. *)

val late_fraction : bound:float -> Ss_operators.Tuple.t list -> float
(** Fraction of the arrival-ordered stream whose timestamp trails the
    running maximum by more than [bound] seconds — exactly the tuples a
    [Bounded bound] watermark generator would declare late. [0.] on the
    empty list. @raise Invalid_argument on a negative bound. *)

val window_operator :
  ?name:string ->
  ?late_fraction:float ->
  keys:int ->
  rate:float ->
  slide:float ->
  service_time:float ->
  unit ->
  Ss_topology.Operator.t
(** Descriptor for an event-time window stage: partitioned-stateful over
    [keys] uniform key groups, unit input selectivity, output selectivity
    [firing_selectivity *. (1. -. late_fraction)] (late tuples are
    diverted before the behavior under [Drop]/[Side_output], scaling the
    firing rate by the on-time fraction). [late_fraction] defaults to [0.];
    [name] defaults to ["ewin"]. *)

val predicted_output_rate :
  keys:int -> rate:float -> slide:float -> ?late_fraction:float -> unit -> float
(** [rate *. firing_selectivity *. (1. -. late_fraction)]: predicted window
    firings per second when the stage is not the bottleneck. *)

val predict : Ss_topology.Topology.t -> float
(** Predicted steady-state source throughput of a topology containing
    event-time stages, via {!Ss_core.Steady_state.analyze}. *)
