(** Dead-letter store for side-output lateness.

    Tuples that arrive behind the watermark under the [Side_output] policy
    are appended here instead of being dropped: the stream's answer stays
    deterministic while no data is lost. The store is shared by every actor
    of a run (mutex-protected writes, lock-free count reads) and can be
    drained after the run — inspected in memory or persisted to a durable
    {!Ss_log.Log} partition for offline reprocessing. *)

type t

val create : unit -> t

val add : t -> Ss_operators.Tuple.t -> unit
(** Thread-safe append (called concurrently by runtime actors). *)

val count : t -> int
(** Lock-free: readable while the run is live. *)

val items : t -> Ss_operators.Tuple.t list
(** Snapshot in arrival order (oldest first). *)

val to_log : t -> Ss_log.Log.t -> partition:int -> int
(** Persist the current snapshot to a log partition (one record per tuple,
    {!Ss_log.Tuple_codec} encoding); returns the number written. *)
