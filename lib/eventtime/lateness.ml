type policy = Drop | Side_output of Dead_letter.t | Refire

type kind = [ `Drop | `Side | `Refire ]

let of_kind ?dead_letters = function
  | `Drop -> Drop
  | `Refire -> Refire
  | `Side ->
      Side_output
        (match dead_letters with Some d -> d | None -> Dead_letter.create ())

let parse_kind = function
  | "drop" -> Ok `Drop
  | "side" -> Ok `Side
  | "refire" -> Ok `Refire
  | s -> Error (Printf.sprintf "expected drop, side or refire, got %S" s)

let kind_to_string = function
  | `Drop -> "drop"
  | `Side -> "side"
  | `Refire -> "refire"

let to_string = function
  | Drop -> "drop"
  | Side_output _ -> "side"
  | Refire -> "refire"
