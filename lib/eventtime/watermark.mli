(** Pluggable source-side watermark generators.

    A watermark is the source's promise that no tuple with a smaller event
    timestamp will follow. Generators observe the event timestamps the
    source emits and decide when (and how far) to advance the watermark;
    the runtime injects the resulting values in-band behind the data and
    propagates them through every deployment shape (min across fan-in).

    Two strategies, selectable from the CLI as [periodic:MS] / [bounded:MS]:
    - {!Periodic}[ i]: watermark = max timestamp seen, emitted once per [i]
      seconds of event-time progress. Zero tolerance for disorder — any
      out-of-order tuple lands behind the watermark and is handled by the
      lateness policy. The cheapest generator for in-order streams.
    - {!Bounded}[ b]: watermark = max timestamp seen − [b] (the classic
      bounded-out-of-orderness heuristic), emitted whenever it advances by
      at least [min_advance] (default [b/2], so watermark traffic stays a
      small fraction of data traffic). Tuples delayed by at most [b]
      seconds are never late.

    Under log-backed ingest the runtime creates one generator per log
    partition (each partition reader owns one), and the min-across-inputs
    merge at the first consumer reconstructs the conservative global
    watermark — per-partition progress never over-promises. *)

type gen = Periodic of float | Bounded of float

type t
(** A generator instance: single-owner, not thread-safe (each source actor
    or partition reader owns its own). *)

val create : ?min_advance:float -> gen -> t
(** [min_advance] throttles emission: a new watermark is only announced
    when it exceeds the last one by at least this much (seconds). Defaults
    to [b /. 2.] for [Bounded b] and [0.] for [Periodic] (the interval
    already paces it).
    @raise Invalid_argument on a non-positive interval, negative bound or
    negative [min_advance]. *)

val observe : t -> float -> float option
(** [observe t ts] feeds one emitted event timestamp; returns [Some w] when
    a new watermark [w] should be announced downstream. Returned values are
    strictly increasing and always finite. *)

val current : t -> float
(** Last announced watermark; [neg_infinity] before the first. *)

val parse : string -> (gen, string) result
(** ["periodic:MS"] or ["bounded:MS"] (milliseconds), as accepted by
    [spinstreams execute --watermark]. *)

val to_string : gen -> string
(** Inverse of {!parse}. *)
