type gen = Periodic of float | Bounded of float

type t = {
  gen : gen;
  min_advance : float;
  mutable max_ts : float;
  mutable emitted : float;
}

let default_min_advance = function
  | Periodic _ -> 0.0 (* the interval itself paces emission *)
  | Bounded b -> b /. 2.0

let create ?min_advance gen =
  (match gen with
  | Periodic i when not (Float.is_finite i && i > 0.0) ->
      invalid_arg "Watermark.create: periodic interval must be positive"
  | Bounded b when not (Float.is_finite b && b >= 0.0) ->
      invalid_arg "Watermark.create: lateness bound must be non-negative"
  | Periodic _ | Bounded _ -> ());
  let min_advance =
    match min_advance with
    | Some q ->
        if not (Float.is_finite q && q >= 0.0) then
          invalid_arg "Watermark.create: min_advance must be non-negative";
        q
    | None -> default_min_advance gen
  in
  { gen; min_advance; max_ts = neg_infinity; emitted = neg_infinity }

let current t = t.emitted

let observe t ts =
  if ts > t.max_ts then t.max_ts <- ts;
  let candidate =
    match t.gen with
    | Periodic _ -> t.max_ts
    | Bounded b -> t.max_ts -. b
  in
  let due =
    match t.gen with
    | Periodic i ->
        (* First emission as soon as event time exists, then one per
           [i] seconds of event-time progress. *)
        t.emitted = neg_infinity || candidate >= t.emitted +. i
    | Bounded _ ->
        candidate > t.emitted
        && (t.emitted = neg_infinity || candidate >= t.emitted +. t.min_advance)
  in
  if due && Float.is_finite candidate then begin
    t.emitted <- candidate;
    Some candidate
  end
  else None

let parse s =
  let kind k v =
    match float_of_string_opt v with
    | Some ms when Float.is_finite ms && ms >= 0.0 -> (
        let sec = ms /. 1e3 in
        match k with
        | "periodic" when ms > 0.0 -> Ok (Periodic sec)
        | "periodic" -> Error "periodic watermark interval must be positive"
        | "bounded" -> Ok (Bounded sec)
        | _ -> Error (Printf.sprintf "unknown watermark generator %S" k))
    | _ -> Error (Printf.sprintf "invalid watermark milliseconds %S" v)
  in
  match String.index_opt s ':' with
  | Some i ->
      kind
        (String.sub s 0 i)
        (String.sub s (i + 1) (String.length s - i - 1))
  | None ->
      Error
        (Printf.sprintf
           "expected periodic:MS or bounded:MS, got %S" s)

let to_string = function
  | Periodic i -> Printf.sprintf "periodic:%g" (i *. 1e3)
  | Bounded b -> Printf.sprintf "bounded:%g" (b *. 1e3)
