type config = { watermark : Watermark.gen; lateness : Lateness.policy }

let config ?(lateness = Lateness.Drop) watermark = { watermark; lateness }
