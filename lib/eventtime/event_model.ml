open Ss_prelude
open Ss_topology

let firing_selectivity ~keys ~rate ~slide =
  if keys < 1 then invalid_arg "Event_model.firing_selectivity: keys must be >= 1";
  if not (Float.is_finite rate && rate > 0.0) then
    invalid_arg "Event_model.firing_selectivity: rate must be positive";
  if not (Float.is_finite slide && slide > 0.0) then
    invalid_arg "Event_model.firing_selectivity: slide must be positive";
  float_of_int keys /. (rate *. slide)

let late_fraction ~bound arrivals =
  if not (bound >= 0.0) then
    invalid_arg "Event_model.late_fraction: negative bound";
  let late = ref 0 and total = ref 0 and max_ts = ref neg_infinity in
  List.iter
    (fun (t : Ss_operators.Tuple.t) ->
      incr total;
      if t.Ss_operators.Tuple.ts < !max_ts -. bound then incr late;
      if t.Ss_operators.Tuple.ts > !max_ts then max_ts := t.Ss_operators.Tuple.ts)
    arrivals;
  if !total = 0 then 0.0 else float_of_int !late /. float_of_int !total

let window_operator ?(name = "ewin") ?(late_fraction = 0.0) ~keys ~rate ~slide
    ~service_time () =
  if not (late_fraction >= 0.0 && late_fraction <= 1.0) then
    invalid_arg "Event_model.window_operator: late fraction not in [0, 1]";
  (* Late tuples never reach a window (Drop/Side_output divert them before
     the behavior runs), so both the effective consumption and the firing
     output scale by the on-time fraction. *)
  let on_time = 1.0 -. late_fraction in
  let output_selectivity =
    firing_selectivity ~keys ~rate ~slide *. on_time
  in
  Operator.make
    ~kind:(Operator.Partitioned_stateful (Discrete.uniform keys))
    ~input_selectivity:1.0 ~output_selectivity ~service_time name

let predicted_output_rate ~keys ~rate ~slide ?(late_fraction = 0.0) () =
  if not (late_fraction >= 0.0 && late_fraction <= 1.0) then
    invalid_arg "Event_model.predicted_output_rate: late fraction not in [0, 1]";
  rate *. firing_selectivity ~keys ~rate ~slide *. (1.0 -. late_fraction)

let predict topology = (Ss_core.Steady_state.analyze topology).Ss_core.Steady_state.throughput
