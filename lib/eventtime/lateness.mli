(** Lateness policies: what the runtime does with a tuple that arrives
    behind the watermark at an event-time operator.

    - [Drop]: count it and discard (the classic default — what
      {!Ss_operators.Time_window} used to hard-code).
    - [Side_output dl]: count it and divert it to the {!Dead_letter} store
      [dl]; nothing is lost, the main stream's results stay watermark-pure.
    - [Refire]: hand it to the behavior's
      {!Ss_operators.Behavior.evented.on_late} hook, which may emit a
      retraction of the previously fired result plus a corrected one.

    Every late tuple is counted per vertex (surfaced in
    [Executor.metrics.late] and, with telemetry on, the
    [ss_late_tuples_total] exporter family) regardless of policy. *)

type policy = Drop | Side_output of Dead_letter.t | Refire

type kind = [ `Drop | `Side | `Refire ]
(** Store-free tag, as parsed from the CLI. *)

val of_kind : ?dead_letters:Dead_letter.t -> kind -> policy
(** [`Side] attaches [dead_letters] (a fresh store when omitted). *)

val parse_kind : string -> (kind, string) result
(** ["drop"] | ["side"] | ["refire"]. *)

val kind_to_string : kind -> string
val to_string : policy -> string
