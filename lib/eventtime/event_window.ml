open Ss_operators

type agg = Sum | Count | Max | Min | Mean

let agg_name = function
  | Sum -> "sum"
  | Count -> "count"
  | Max -> "max"
  | Min -> "min"
  | Mean -> "mean"

(* One open (or fired-and-remembered) window of one key. The accumulators
   cover every aggregate so the state flattens to a fixed-width record and
   the aggregate choice stays a pure read at firing time. *)
type win = {
  wend : float;
  mutable sum : float;
  mutable count : int;
  mutable maxv : float;
  mutable minv : float;
}

let new_win wend =
  { wend; sum = 0.0; count = 0; maxv = neg_infinity; minv = infinity }

let accumulate w v =
  w.sum <- w.sum +. v;
  w.count <- w.count + 1;
  if v > w.maxv then w.maxv <- v;
  if v < w.minv then w.minv <- v

let value agg w =
  match agg with
  | Sum -> w.sum
  | Count -> float_of_int w.count
  | Max -> w.maxv
  | Min -> w.minv
  | Mean -> if w.count = 0 then 0.0 else w.sum /. float_of_int w.count

(* Ends of the windows containing [ts]: multiples of [slide] in
   (ts, ts + length] — the same alignment as {!Ss_operators.Time_window}. *)
let window_ends ~length ~slide ts =
  let first_k = Float.floor (ts /. slide) +. 1.0 in
  let rec collect k acc =
    let e = k *. slide in
    if e > ts +. length +. 1e-12 then List.rev acc
    else collect (k +. 1.0) (e :: acc)
  in
  collect first_k []

let retraction_tag = 1

(* Flat per-key encoding: [| n_open; 5 floats per open window;
   n_fired; 5 floats per remembered window |]. *)
let encode_wins open_ fired =
  let n_open = List.length open_ and n_fired = List.length fired in
  let arr = Array.make (2 + (5 * (n_open + n_fired))) 0.0 in
  arr.(0) <- float_of_int n_open;
  let write base w =
    arr.(base) <- w.wend;
    arr.(base + 1) <- w.sum;
    arr.(base + 2) <- float_of_int w.count;
    arr.(base + 3) <- w.maxv;
    arr.(base + 4) <- w.minv
  in
  List.iteri (fun i w -> write (1 + (5 * i)) w) open_;
  arr.(1 + (5 * n_open)) <- float_of_int n_fired;
  List.iteri (fun i w -> write (2 + (5 * (n_open + i))) w) fired;
  arr

let decode_wins arr =
  let read base =
    {
      wend = arr.(base);
      sum = arr.(base + 1);
      count = int_of_float arr.(base + 2);
      maxv = arr.(base + 3);
      minv = arr.(base + 4);
    }
  in
  let n_open = int_of_float arr.(0) in
  let open_ = List.init n_open (fun i -> read (1 + (5 * i))) in
  let n_fired = int_of_float arr.(1 + (5 * n_open)) in
  let fired = List.init n_fired (fun i -> read (2 + (5 * (n_open + i)))) in
  (open_, fired)

let behavior ?name ?(agg = Sum) ?(index = 0) ?refire_horizon
    ?(output_selectivity = 1.0) ~length ~slide () =
  if not (Float.is_finite length && length > 0.0) then
    invalid_arg "Event_window.behavior: length must be positive";
  if not (Float.is_finite slide && slide > 0.0) then
    invalid_arg "Event_window.behavior: slide must be positive";
  if slide > length +. 1e-12 then
    invalid_arg "Event_window.behavior: slide must not exceed length";
  let horizon =
    match refire_horizon with
    | Some h ->
        if not (h >= 0.0) then
          invalid_arg "Event_window.behavior: negative refire horizon";
        h
    | None -> 2.0 *. length
  in
  let name =
    match name with
    | Some n -> n
    | None ->
        Printf.sprintf "ewin_%s_w%g_s%g" (agg_name agg) (length *. 1e3)
          (slide *. 1e3)
  in
  let mk () =
    (* key -> open windows (unordered); key -> fired-window memory for
       the refire path, pruned behind wm - horizon. *)
    let open_ : (int, win list ref) Hashtbl.t = Hashtbl.create 64 in
    let fired : (int, win list ref) Hashtbl.t = Hashtbl.create 64 in
    let wm = ref neg_infinity in
    (* Smallest open window end: watermarks below it fire nothing, so the
       hot path — watermarks arriving more often than windows close — is a
       float compare instead of a full per-key scan. *)
    let next_fire = ref infinity in
    let cell tbl key =
      match Hashtbl.find_opt tbl key with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add tbl key c;
          c
    in
    let win_of cell wend =
      match List.find_opt (fun w -> w.wend = wend) !cell with
      | Some w -> w
      | None ->
          let w = new_win wend in
          cell := w :: !cell;
          w
    in
    let emit key w =
      Tuple.make ~ts:w.wend ~key [| value agg w |]
    in
    let efn (t : Tuple.t) =
      let v = if index < Array.length t.Tuple.values then t.Tuple.values.(index) else 0.0 in
      let c = cell open_ t.Tuple.key in
      List.iter
        (fun e ->
          if e < !next_fire then next_fire := e;
          accumulate (win_of c e) v)
        (window_ends ~length ~slide t.Tuple.ts);
      []
    in
    let on_watermark w =
      if not (w > !wm) then []
      else begin
        wm := w;
        if w < !next_fire then []
        else begin
          let ready = ref [] in
          Hashtbl.iter
            (fun key c ->
              let fire, keep = List.partition (fun x -> x.wend <= w) !c in
              if fire <> [] then begin
                c := keep;
                let mem = cell fired key in
                List.iter (fun x -> mem := x :: !mem) fire;
                List.iter (fun x -> ready := (key, x) :: !ready) fire
              end)
            open_;
          let nf = ref infinity in
          Hashtbl.iter
            (fun _ c ->
              List.iter (fun x -> if x.wend < !nf then nf := x.wend) !c)
            open_;
          next_fire := !nf;
          (* Prune refire memory behind the horizon (everything, at the
             end-of-stream flush [w = infinity]). Firing rounds are the
             only points where the memory grows, so pruning here bounds
             it without touching the non-firing hot path. *)
          let floor = w -. horizon in
          Hashtbl.iter
            (fun _ mem -> mem := List.filter (fun x -> x.wend > floor) !mem)
            fired;
          !ready
          |> List.sort (fun (k1, w1) (k2, w2) ->
                 compare (w1.wend, k1) (w2.wend, k2))
          |> List.map (fun (key, x) -> emit key x)
        end
      end
    in
    let on_late (t : Tuple.t) =
      let v = if index < Array.length t.Tuple.values then t.Tuple.values.(index) else 0.0 in
      let key = t.Tuple.key in
      List.concat_map
        (fun e ->
          if e > !wm then begin
            (* This window has not fired yet: absorb the straggler
               normally, it will be counted at firing time. *)
            if e < !next_fire then next_fire := e;
            accumulate (win_of (cell open_ key) e) v;
            []
          end
          else if e <= !wm -. horizon then
            (* Beyond the refire horizon: unrecoverable. Enforced here
               because the memory itself is only pruned on firing
               rounds, so it may still hold the expired window. *)
            []
          else
            match Hashtbl.find_opt fired key with
            | Some mem -> (
                match List.find_opt (fun x -> x.wend = e) !mem with
                | Some x ->
                    (* Retract the stale result, apply the straggler,
                       re-fire the corrected one. *)
                    let retraction =
                      Tuple.make ~ts:x.wend ~key ~tag:retraction_tag
                        [| value agg x |]
                    in
                    accumulate x v;
                    [ retraction; emit key x ]
                | None -> [] (* beyond the refire horizon: unrecoverable *))
            | None -> [])
        (window_ends ~length ~slide t.Tuple.ts)
    in
    let eexport () =
      let acc = ref [] in
      let keys = Hashtbl.create 64 in
      Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) open_;
      Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) fired;
      Hashtbl.iter
        (fun k () ->
          let o = match Hashtbl.find_opt open_ k with Some c -> !c | None -> [] in
          let f = match Hashtbl.find_opt fired k with Some c -> !c | None -> [] in
          if o <> [] || f <> [] then acc := (k, encode_wins o f) :: !acc)
        keys;
      !acc
    in
    let eimport st =
      List.iter
        (fun (k, arr) ->
          let o, f = decode_wins arr in
          List.iter (fun x -> if x.wend < !next_fire then next_fire := x.wend) o;
          if o <> [] then Hashtbl.replace open_ k (ref o);
          if f <> [] then Hashtbl.replace fired k (ref f))
        st
    in
    { Behavior.efn; on_watermark; on_late; eexport; eimport }
  in
  Behavior.make_evented ~state_kind:Behavior.Partitioned_op
    ~input_selectivity:1.0 ~output_selectivity ~name mk

let of_name name =
  let build length_ms slide_ms =
    if length_ms > 0.0 && slide_ms > 0.0 && slide_ms <= length_ms then
      Some
        (behavior ~name ~length:(length_ms /. 1e3) ~slide:(slide_ms /. 1e3) ())
    else None
  in
  if name = "ewin" then
    Some (behavior ~name ~length:1.0 ~slide:1.0 ())
  else
    (* Split by hand rather than Scanf: %f treats '_' as a digit separator,
       so "ewin_w1000_s500" would swallow the "_s" delimiter. The numeric
       parts are parsed strictly — digits with at most one dot — because
       [float_of_string_opt] accepts far more than a window name should:
       underscores ("1_0"), hex ("0x1A"), exponents ("1e3"), signs, "nan"
       and "infinity" would all round-trip into misleading names. *)
    let parse_ms s =
      let n = String.length s in
      let ok = ref (n > 0) in
      let dot = ref false in
      let digits = ref 0 in
      String.iter
        (fun c ->
          match c with
          | '0' .. '9' -> incr digits
          | '.' -> if !dot then ok := false else dot := true
          | _ -> ok := false)
        s;
      if !ok && !digits > 0 then float_of_string_opt s else None
    in
    let prefix = "ewin_w" in
    let plen = String.length prefix in
    if
      String.length name <= plen
      || String.sub name 0 plen <> prefix
    then None
    else
      match
        String.split_on_char '_'
          (String.sub name plen (String.length name - plen))
      with
      | [ w; s ] when String.length s > 1 && s.[0] = 's' -> (
          match
            (parse_ms w, parse_ms (String.sub s 1 (String.length s - 1)))
          with
          | Some length_ms, Some slide_ms -> build length_ms slide_ms
          | _ -> None)
      | _ -> None
