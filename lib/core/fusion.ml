open Ss_topology

type outcome = {
  topology : Topology.t;
  fused_vertex : int;
  fused_service_time : float;
  before : Steady_state.t;
  after : Steady_state.t;
  creates_bottleneck : bool;
  throughput_ratio : float;
}

let ( let* ) = Result.bind

(* Per-member, per-tuple overhead the compiled closed-loop tier removes
   relative to the interpreted meta-operator walk: closure-table dispatch,
   the intermediate result list and the per-member counter traffic.
   Calibrated against BENCH_fusion.json's per-member compiled-vs-interpreted
   delta on the fusable-chain benchmark (tens of nanoseconds per member on
   current hardware); deliberately conservative so fusion decisions only
   ever improve under the compiled model. *)
let default_dispatch_overhead = 25e-9

(* Stateful members keep their state-structure traffic (hash probes,
   window queues) when compiled — only part of the walk's bookkeeping
   disappears — so they earn a reduced fraction of the dispatch discount.
   Calibrated against the stateful-chain section of BENCH_fusion.json. *)
let default_stateful_discount = 0.6

let member_time ~execution ~dispatch_overhead ~stateful_discount
    (op : Operator.t) =
  match execution with
  | `Interpreted -> op.Operator.service_time
  | `Compiled ->
      let removed =
        match op.Operator.kind with
        | Operator.Stateless -> dispatch_overhead
        | Operator.Stateful | Operator.Partitioned_stateful _ ->
            stateful_discount *. dispatch_overhead
      in
      (* The discount can never halve a member: the spin/work itself is
         untouched by compilation, only the walk's bookkeeping goes. *)
      Float.max
        (op.Operator.service_time -. removed)
        (0.5 *. op.Operator.service_time)

let service_time ?(execution = `Interpreted)
    ?(dispatch_overhead = default_dispatch_overhead)
    ?(stateful_discount = default_stateful_discount) topology vertices =
  let* front = Topology.front_end_of topology vertices in
  let in_set = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace in_set v ()) vertices;
  let memo = Hashtbl.create 8 in
  (* fr(i) = T_i + sel(i) * sum over internal edges of p(i,j) * fr(j):
     the expected work triggered by one item entering vertex i. Under
     [`Compiled], T_i is discounted by the dispatch overhead the closed
     loop eliminates, so the fused chain models cheaper than the sum of
     its parts (Definition 2 under the compiled tier). *)
  let rec fr v =
    match Hashtbl.find_opt memo v with
    | Some t -> t
    | None ->
        let op = Topology.operator topology v in
        let downstream =
          List.fold_left
            (fun acc (w, p) ->
              if Hashtbl.mem in_set w then acc +. (p *. fr w) else acc)
            0.0
            (Topology.succs topology v)
        in
        let total =
          member_time ~execution ~dispatch_overhead ~stateful_discount op
          +. (Operator.selectivity_factor op *. downstream)
        in
        Hashtbl.replace memo v total;
        total
  in
  Ok (fr front)

let default_name topology vertices =
  String.concat "+"
    (List.map
       (fun v -> (Topology.operator topology v).Operator.name)
       (List.sort compare vertices))

let apply ?name ?(execution = `Interpreted) ?dispatch_overhead
    ?stateful_discount topology vertices =
  let name = Option.value name ~default:(default_name topology vertices) in
  let* fused, fused_vertex = Topology.contract topology ~keep_name:name vertices in
  (* [contract] prices the meta-operator at the interpreted recurrence;
     under the compiled tier, reprice it at the discounted closed-loop
     cost before analyzing the fused version. *)
  let* fused =
    match execution with
    | `Interpreted -> Ok fused
    | `Compiled ->
        let* compiled_time =
          service_time ~execution ?dispatch_overhead ?stateful_discount
            topology vertices
        in
        Ok
          (Topology.with_operator fused fused_vertex
             (Operator.with_service_time
                (Topology.operator fused fused_vertex)
                compiled_time))
  in
  let fused_service_time =
    (Topology.operator fused fused_vertex).Operator.service_time
  in
  let before = Steady_state.analyze topology in
  let after = Steady_state.analyze fused in
  let fused_metrics = after.Steady_state.metrics.(fused_vertex) in
  Ok
    {
      topology = fused;
      fused_vertex;
      fused_service_time;
      before;
      after;
      creates_bottleneck = fused_metrics.Steady_state.is_bottleneck;
      throughput_ratio =
        (if before.Steady_state.throughput > 0.0 then
           after.Steady_state.throughput /. before.Steady_state.throughput
         else 1.0);
    }

(* Connected-subset enumeration, grown from singletons through graph
   adjacency; bounded by [max_size] and an overall cap. *)
let candidates ?(max_size = 4) topology =
  let analysis = Steady_state.analyze topology in
  let src = Topology.source topology in
  let neighbors v =
    List.map fst (Topology.succs topology v)
    @ List.map fst (Topology.preds topology v)
  in
  let seen = Hashtbl.create 64 in
  let legal = ref [] in
  let cap = ref 20_000 in
  let is_legal vertices =
    match Topology.front_end_of topology vertices with
    | Error _ -> false
    | Ok _ -> (
        match Topology.contract topology ~keep_name:"__candidate__" vertices with
        | Ok _ -> true
        | Error _ -> false)
  in
  let rec grow set =
    if !cap > 0 then begin
      let key = List.sort compare set in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        decr cap;
        if List.length key >= 2 && is_legal key then legal := key :: !legal;
        if List.length key < max_size then
          List.iter
            (fun v ->
              List.iter
                (fun w ->
                  if w <> src && not (List.mem w set) then grow (w :: set))
                (neighbors v))
            set
      end
    end
  in
  List.iter
    (fun v -> if v <> src then grow [ v ])
    (List.init (Topology.size topology) Fun.id);
  let mean_utilization vertices =
    let total =
      List.fold_left
        (fun acc v ->
          acc +. analysis.Steady_state.metrics.(v).Steady_state.utilization)
        0.0 vertices
    in
    total /. float_of_int (List.length vertices)
  in
  !legal
  |> List.map (fun vs -> (vs, mean_utilization vs))
  |> List.sort (fun (va, a) (vb, b) ->
         match compare a b with 0 -> compare va vb | c -> c)

type auto_step = {
  step_vertices : int list;
  step_name : string;
  step_service_time : float;
}

type auto_result = {
  final : Topology.t;
  steps : auto_step list;
  initial_analysis : Steady_state.t;
  final_analysis : Steady_state.t;
  operators_saved : int;
}

let auto ?max_size ?(utilization_cap = 0.9) ?execution ?dispatch_overhead
    ?stateful_discount topology =
  let initial_analysis = Steady_state.analyze topology in
  let rec loop current steps counter =
    let candidate =
      List.find_map
        (fun (vertices, _) ->
          let name = Printf.sprintf "auto_fused_%d" counter in
          match
            apply ~name ?execution ?dispatch_overhead ?stateful_discount
              current vertices
          with
          | Error _ -> None
          | Ok outcome ->
              let fused_utilization =
                outcome.after.Steady_state.metrics.(outcome.fused_vertex)
                  .Steady_state.utilization
              in
              if
                outcome.throughput_ratio >= 1.0 -. 1e-9
                && (not outcome.creates_bottleneck)
                && fused_utilization <= utilization_cap
              then Some (vertices, name, outcome)
              else None)
        (candidates ?max_size current)
    in
    match candidate with
    | None -> (current, List.rev steps)
    | Some (vertices, name, outcome) ->
        let step =
          {
            step_vertices = vertices;
            step_name = name;
            step_service_time = outcome.fused_service_time;
          }
        in
        loop outcome.topology (step :: steps) (counter + 1)
  in
  let final, steps = loop topology [] 1 in
  {
    final;
    steps;
    initial_analysis;
    final_analysis = Steady_state.analyze final;
    operators_saved = Topology.size topology - Topology.size final;
  }
