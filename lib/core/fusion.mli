(** Operator fusion — the paper's §3.3 and Algorithm 3.

    Fusion replaces a sub-graph having a single front-end vertex with one
    sequential meta-operator that applies the member operators' logic along
    the path each item would have traveled. The service time of the
    meta-operator is the expected aggregate service time over those paths
    (Definition 2 weights each path by its probability).

    Note: the paper's Algorithm 3 pseudocode omits adding the visited
    vertex's own service time; the recurrence implemented here,
    [fr(i) = T_i + sum_j p(i,j) * fr(j)] over the sub-graph's edges, is the
    one consistent with Definition 2 and with the worked example of
    Fig. 11 / Tables 1–2 (it reproduces T_F = 2.80 ms and 4.42 ms). *)

type outcome = {
  topology : Ss_topology.Topology.t;  (** Topology after contraction. *)
  fused_vertex : int;  (** Id of the meta-operator in [topology]. *)
  fused_service_time : float;  (** Seconds per item entering the front-end. *)
  before : Steady_state.t;  (** Analysis of the original topology. *)
  after : Steady_state.t;  (** Analysis of the fused topology. *)
  creates_bottleneck : bool;
      (** True when the meta-operator saturates in [after] (the alert of
          §5.4). *)
  throughput_ratio : float;
      (** [after.throughput /. before.throughput]; < 1 means the fusion
          impairs performance. *)
}

val default_dispatch_overhead : float
(** Default per-member, per-tuple overhead (seconds) the compiled
    closed-loop tier is modeled to remove relative to the interpreted
    meta-operator walk — closure dispatch, intermediate lists, counter
    traffic. Calibrated against the fusion benchmark's per-member
    compiled-vs-interpreted delta ([BENCH_fusion.json]); conservative by
    design. *)

val default_stateful_discount : float
(** Default fraction of [dispatch_overhead] a stateful or
    partitioned-stateful member is modeled to shed under the compiled
    tier. Stateful members keep their state-structure traffic (hash
    probes, window queues) when inlined, so they earn less of the
    discount than stateless ones; calibrated against the stateful-chain
    section of [BENCH_fusion.json]. *)

val service_time :
  ?execution:[ `Interpreted | `Compiled ] ->
  ?dispatch_overhead:float ->
  ?stateful_discount:float ->
  Ss_topology.Topology.t ->
  int list ->
  (float, string) result
(** [service_time t vertices] is Algorithm 3 on the sub-graph induced by
    [vertices]: the expected per-item service time of the fused operator,
    memoized over the DAG (selectivity of the members is taken into
    account by weighting each vertex by its expected visits).

    [execution] (default [`Interpreted]) selects the cost model of the
    runtime tier executing the group: under [`Compiled] every member's
    service time is discounted by [dispatch_overhead] (default
    {!default_dispatch_overhead}, floored at half the member's time), so
    a compiled fused chain prices {e below} the sum of its parts —
    Definition 2 under the closed-loop tier. Stateful and
    partitioned-stateful members receive only
    [stateful_discount *. dispatch_overhead] (default
    {!default_stateful_discount}): inlining removes their walk
    bookkeeping but not their state-structure traffic. Fails with the
    sub-graph legality errors of
    {!Ss_topology.Topology.front_end_of}. *)

val apply :
  ?name:string ->
  ?execution:[ `Interpreted | `Compiled ] ->
  ?dispatch_overhead:float ->
  ?stateful_discount:float ->
  Ss_topology.Topology.t ->
  int list ->
  (outcome, string) result
(** [apply t vertices] validates the sub-graph, contracts it (including the
    acyclicity re-check of §3.3) and predicts the outcome by running the
    steady-state analysis on both versions. [name] defaults to the
    concatenation of the fused operator names. [execution] (default
    [`Interpreted]) prices the meta-operator as in {!service_time}: under
    [`Compiled] the contracted operator's service time is the discounted
    closed-loop cost, so any fusion accepted under the interpreted model
    stays accepted — it can only look better. *)

val candidates :
  ?max_size:int -> Ss_topology.Topology.t -> (int list * float) list
(** Sub-graphs that are legal fusion targets (single front-end, contraction
    keeps the graph acyclic, sizes 2 to [max_size], default 4), ranked by
    increasing mean utilization factor under the current steady state — the
    most underutilized regions first, as the SpinStreams GUI proposes
    (§4.1). Each entry carries its mean utilization. *)

(** {1 Automated fusion}

    The paper leaves sub-graph selection to the user and names automation as
    future work (§7). {!auto} implements a conservative greedy strategy:
    repeatedly fuse the most underutilized legal candidate whose predicted
    outcome neither throttles the topology nor pushes the meta-operator past
    a utilization cap, until no candidate qualifies. *)

type auto_step = {
  step_vertices : int list;
      (** Vertices fused at this step, numbered in the topology {e as it was
          at that step} (fusion renumbers vertices). *)
  step_name : string;  (** Name given to the meta-operator. *)
  step_service_time : float;
}

type auto_result = {
  final : Ss_topology.Topology.t;
  steps : auto_step list;  (** In application order. *)
  initial_analysis : Steady_state.t;
  final_analysis : Steady_state.t;
  operators_saved : int;
      (** Vertex-count reduction achieved without losing throughput. *)
}

val auto :
  ?max_size:int ->
  ?utilization_cap:float ->
  ?execution:[ `Interpreted | `Compiled ] ->
  ?dispatch_overhead:float ->
  ?stateful_discount:float ->
  Ss_topology.Topology.t ->
  auto_result
(** [auto t] greedily coarsens [t]. A candidate is adopted only when the
    predicted throughput is preserved (within 1e-9 relative) and the fused
    operator's utilization stays at or below [utilization_cap] (default 0.9,
    leaving headroom for workload variations). [max_size] bounds each fused
    group's size as in {!candidates}; [execution] and [dispatch_overhead]
    price each candidate as in {!apply}. The final throughput therefore
    always equals the initial one. *)
