(** Discrete-event simulation of streaming topologies as queueing networks
    with finite buffers and Blocking-After-Service semantics.

    This is the repository's stand-in for the paper's Akka deployment: the
    paper configured Akka with bounded blocking mailboxes and one thread per
    actor, which is exactly the network simulated here. Every "measured"
    number in the experiment reproductions comes from this engine.

    Structure: each topology vertex becomes one station; a vertex with [n]
    replicas becomes an {e emitter} station, [n] worker stations and a
    {e collector} station (paper §4.2). Stations hold a bounded FIFO input
    buffer. A station whose output finds the destination buffer full blocks
    — it performs no further service — until the destination frees a slot
    and wakes it, in FIFO order (BAS, paper §3). The source has an infinite
    supply and is throttled only by backpressure.

    Routing: edge probabilities are sampled per item; stateless replica
    groups use round-robin; partitioned-stateful groups route by a key drawn
    from the operator's key distribution through the same greedy key-group
    assignment the cost model uses ({!Ss_core.Key_partitioning.groups_for}),
    so measured skew matches predicted skew. Selectivity is simulated with a
    deterministic credit counter whose long-run rate equals
    [output_selectivity / input_selectivity] results per consumed item. *)

type config = {
  buffer_capacity : int;  (** Slots per station input buffer (default 16). *)
  emitter_service_time : float;
      (** Seconds per item spent by emitter stations (default 2e-6; the
          paper measured "a few microseconds at most"). *)
  collector_service_time : float;  (** Same for collectors (default 2e-6). *)
  warmup : float;
      (** Simulated seconds discarded before measuring (default 3). *)
  measure : float;  (** Simulated seconds measured (default 15). *)
  seed : int;  (** PRNG seed; equal seeds give identical runs. *)
  track_latency : bool;
      (** Track each item's age from source emission and histogram it at
          worker-service start (default [false]; small constant overhead
          per delivered item when on). *)
}

val default_config : config

type vertex_stats = {
  arrival_rate : float;
      (** Items entering the vertex (its emitter, when replicated) per
          simulated second during the measurement window. *)
  departure_rate : float;
      (** Results produced by the vertex (its collector, when replicated)
          per simulated second. *)
  busy_fraction : float;
      (** Fraction of the window the busiest worker replica spent serving
          items: an estimate of the utilization factor. *)
  mean_queue_length : float;
      (** Time-averaged occupancy of the vertex's input buffer (its
          emitter's, when replicated) during the measurement window. *)
  mean_waiting_time : float;
      (** Little's-law estimate of the buffering delay in seconds:
          [mean_queue_length / arrival_rate]. *)
}

type result = {
  stats : vertex_stats array;  (** Indexed by topology vertex. *)
  throughput : float;
      (** Departure rate of the source: items ingested per second. *)
  simulated_time : float;  (** Total simulated seconds (warmup + measure). *)
  events : int;  (** Number of completion events processed. *)
  latency : Ss_telemetry.Histogram.t array option;
      (** With [config.track_latency]: per-vertex {e predicted} latency
          histograms — each item's age since source emission, sampled when a
          worker replica of the vertex takes it into service (the same
          measurement point as the actor runtime's telemetry, so predicted
          and measured distributions compare directly). Post-warmup window
          only; empty for the source. [None] otherwise. *)
}

val run : ?config:config -> Ss_topology.Topology.t -> result
(** Simulate the topology. Deterministic for a fixed config (seed included).
    @raise Invalid_argument if the source operator is replicated. *)

val replay :
  ?fused:int list list ->
  ?seed:int ->
  tuples:int ->
  Ss_topology.Topology.t ->
  int array * int array
(** [replay ~tuples topology] predicts the exact per-vertex
    [(consumed, produced)] counts the actor runtime
    ({!Ss_runtime.Executor.run}) reports when driving [tuples] tuples
    through the topology with {e identity} behaviors (one result per
    input) and the same [seed] — independent of the scheduler mode,
    because routing draws depend only on per-vertex tuple ordinals.
    Mirrors the executor's per-vertex rng seeding and the meta-operator's
    depth-first draw order for [fused] groups (which must each be fed by a
    single deterministic-order producer for the shared-rng draw sequence
    to be reproducible). Custom routers, non-identity behaviors and
    [ordered] fission markers are outside its scope (ordered fission does
    not change counts).
    @raise Invalid_argument on overlapping fused groups. *)
