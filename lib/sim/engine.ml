open Ss_prelude
open Ss_topology

module Histogram = Ss_telemetry.Histogram

type config = {
  buffer_capacity : int;
  emitter_service_time : float;
  collector_service_time : float;
  warmup : float;
  measure : float;
  seed : int;
  track_latency : bool;
}

let default_config =
  {
    buffer_capacity = 16;
    emitter_service_time = 2e-6;
    collector_service_time = 2e-6;
    warmup = 3.0;
    measure = 15.0;
    seed = 42;
    track_latency = false;
  }

type vertex_stats = {
  arrival_rate : float;
  departure_rate : float;
  busy_fraction : float;
  mean_queue_length : float;
  mean_waiting_time : float;
}

type result = {
  stats : vertex_stats array;
  throughput : float;
  simulated_time : float;
  events : int;
  latency : Histogram.t array option;
}

(* Destination choice performed when a station emits an item. *)
type route =
  | To_none  (* sink: results leave the system *)
  | Probabilistic of Discrete.t * int array  (* distribution over stations *)
  | Round_robin of int array
  | By_key of Discrete.t * int array * int array
      (* key distribution, key-group -> replica, replica -> station *)

type station = {
  id : int;
  vertex : int;  (* owning topology vertex *)
  is_source : bool;
  is_worker : bool;  (* a serving station: latency is sampled here *)
  dist : Dist.t;
  credit_per_item : float;  (* results produced per item consumed *)
  route : route;
  capacity : int;
  (* Items are indistinguishable for rate purposes: the bounded FIFO input
     buffer reduces to a counter — except for latency tracking, where the
     [births] queue mirrors the counter with each queued item's source
     emission time. *)
  mutable queued : int;
  mutable busy : bool;
  mutable blocked : bool;
  (* Destination stations awaiting delivery, each with the carried item's
     birth time (0. when latency tracking is off). *)
  mutable pending : (int * float) list;
  births : float Queue.t;
  mutable current_birth : float;  (* birth of the item in service *)
  mutable credit : float;
  mutable rr : int;
  waiters : int Queue.t;  (* stations blocked on a full buffer here *)
  mutable service_end : float;
  mutable service_start : float;
  mutable consumed : int;
  mutable produced : int;
  mutable busy_time : float;
  (* Time-weighted integral of the buffer occupancy, for Little's-law
     waiting-time estimates. *)
  mutable queue_area : float;
  mutable queue_changed_at : float;
  (* Snapshots taken at the end of warmup. *)
  mutable consumed_mark : int;
  mutable produced_mark : int;
  mutable busy_mark : float;
  mutable queue_area_mark : float;
}

type t = {
  stations : station array;
  entry_of : int array;  (* vertex -> entry station *)
  exit_of : int array;  (* vertex -> exit station *)
  workers_of : int list array;  (* vertex -> worker stations *)
  events : (float * int * int) Heap.t;  (* time, tie-break, station *)
  rng : Rng.t;
  track : bool;  (* latency tracking on? *)
  lat : Histogram.t array;  (* per vertex: age at worker service start *)
  mutable now : float;
  mutable seq : int;
  mutable event_count : int;
}

let make_station ~id ~vertex ~is_source ~is_worker ~dist ~credit_per_item
    ~route ~capacity =
  {
    id;
    vertex;
    is_source;
    is_worker;
    dist;
    credit_per_item;
    route;
    capacity;
    queued = 0;
    busy = false;
    blocked = false;
    pending = [];
    births = Queue.create ();
    current_birth = 0.0;
    credit = 0.0;
    rr = 0;
    waiters = Queue.create ();
    service_end = 0.0;
    service_start = 0.0;
    consumed = 0;
    produced = 0;
    busy_time = 0.0;
    queue_area = 0.0;
    queue_changed_at = 0.0;
    consumed_mark = 0;
    produced_mark = 0;
    busy_mark = 0.0;
    queue_area_mark = 0.0;
  }

(* Expand the topology into stations. Vertices are processed in id order;
   entry/exit station ids are recorded so edges can be wired afterwards. *)
let build config topology =
  let n = Topology.size topology in
  let src = Topology.source topology in
  if (Topology.operator topology src).Operator.replicas <> 1 then
    invalid_arg "Engine.run: the source operator cannot be replicated";
  let stations = ref [] in
  let next_id = ref 0 in
  let entry_of = Array.make n (-1) in
  let exit_of = Array.make n (-1) in
  let workers_of = Array.make n [] in
  let fresh mk =
    let id = !next_id in
    incr next_id;
    let s = mk id in
    stations := s :: !stations;
    s
  in
  (* First pass: create stations with placeholder routes (patched below once
     every vertex's entry station is known). *)
  let placeholder = To_none in
  for v = 0 to n - 1 do
    let op = Topology.operator topology v in
    let credit = Operator.selectivity_factor op in
    if op.Operator.replicas = 1 then begin
      let s =
        fresh (fun id ->
            make_station ~id ~vertex:v ~is_source:(v = src)
              ~is_worker:(v <> src) ~dist:op.Operator.service_dist
              ~credit_per_item:credit ~route:placeholder
              ~capacity:config.buffer_capacity)
      in
      entry_of.(v) <- s.id;
      exit_of.(v) <- s.id;
      workers_of.(v) <- [ s.id ]
    end
    else begin
      let emitter =
        fresh (fun id ->
            make_station ~id ~vertex:v ~is_source:false ~is_worker:false
              ~dist:(Dist.Deterministic config.emitter_service_time)
              ~credit_per_item:1.0 ~route:placeholder
              ~capacity:config.buffer_capacity)
      in
      let workers =
        List.init op.Operator.replicas (fun _ ->
            fresh (fun id ->
                make_station ~id ~vertex:v ~is_source:false ~is_worker:true
                  ~dist:op.Operator.service_dist ~credit_per_item:credit
                  ~route:placeholder ~capacity:config.buffer_capacity))
      in
      let collector =
        fresh (fun id ->
            make_station ~id ~vertex:v ~is_source:false ~is_worker:false
              ~dist:(Dist.Deterministic config.collector_service_time)
              ~credit_per_item:1.0 ~route:placeholder
              ~capacity:config.buffer_capacity)
      in
      entry_of.(v) <- emitter.id;
      exit_of.(v) <- collector.id;
      workers_of.(v) <- List.map (fun s -> s.id) workers
    end
  done;
  let stations = Array.of_list (List.rev !stations) in
  (* Second pass: routes. *)
  for v = 0 to n - 1 do
    let op = Topology.operator topology v in
    let out = Topology.succs topology v in
    let external_route =
      match out with
      | [] -> To_none
      | edges ->
          let dests = Array.of_list (List.map (fun (w, _) -> entry_of.(w)) edges) in
          let probs = Array.of_list (List.map snd edges) in
          Probabilistic (Discrete.of_weights probs, dests)
    in
    if op.Operator.replicas = 1 then
      stations.(exit_of.(v)) <- { (stations.(exit_of.(v))) with route = external_route }
    else begin
      let workers = Array.of_list workers_of.(v) in
      let emitter_route =
        match op.Operator.kind with
        | Operator.Partitioned_stateful keys ->
            let groups =
              Ss_core.Key_partitioning.groups_for ~keys
                ~replicas:op.Operator.replicas
            in
            By_key (keys, groups, workers)
        | Operator.Stateless | Operator.Stateful -> Round_robin workers
      in
      stations.(entry_of.(v)) <-
        { (stations.(entry_of.(v))) with route = emitter_route };
      Array.iter
        (fun w ->
          stations.(w) <-
            { (stations.(w)) with route = Probabilistic (Discrete.uniform 1, [| exit_of.(v) |]) })
        workers;
      stations.(exit_of.(v)) <-
        { (stations.(exit_of.(v))) with route = external_route }
    end
  done;
  {
    stations;
    entry_of;
    exit_of;
    workers_of;
    events = Heap.create ~cmp:(fun (ta, sa, _) (tb, sb, _) ->
        match compare (ta : float) tb with 0 -> compare sa sb | c -> c);
    rng = Rng.create config.seed;
    track = config.track_latency;
    lat = Array.init n (fun _ -> Histogram.create ());
    now = 0.0;
    seq = 0;
    event_count = 0;
  }

(* Buffer occupancy changes go through here so the time-weighted occupancy
   integral stays exact. *)
let set_queued t station n =
  station.queue_area <-
    station.queue_area
    +. (float_of_int station.queued *. (t.now -. station.queue_changed_at));
  station.queue_changed_at <- t.now;
  station.queued <- n

let schedule t station duration =
  station.busy <- true;
  station.service_start <- t.now;
  station.service_end <- t.now +. duration;
  Heap.push t.events (station.service_end, t.seq, station.id);
  t.seq <- t.seq + 1

let sample_destination t station =
  match station.route with
  | To_none -> None
  | Probabilistic (dist, dests) -> Some dests.(Discrete.sample t.rng dist)
  | Round_robin dests ->
      let d = dests.(station.rr mod Array.length dests) in
      station.rr <- station.rr + 1;
      Some d
  | By_key (keys, groups, workers) ->
      let k = Discrete.sample t.rng keys in
      Some workers.(groups.(k))

(* Mutual recursion: starting a station frees a buffer slot, which wakes
   blocked senders, whose deliveries may start further stations. The graph
   is a finite DAG of stations, so the recursion is bounded. *)
(* Latency tracking: an item's birth is the simulated time its source
   service completed; it rides along through every buffer ([births] mirrors
   the occupancy counter) and pending list, and the age is sampled when a
   worker station takes the item into service — mirroring where the actor
   runtime's telemetry records it. All outputs of a service inherit the
   consumed item's birth (the credit counter makes items fungible, exactly
   like the runtime's selectivity stubs). *)
let rec try_start t station =
  if (not station.busy) && (not station.blocked) && station.pending = [] then
    if station.is_source then
      schedule t station (Dist.sample t.rng station.dist)
    else if station.queued > 0 then begin
      set_queued t station (station.queued - 1);
      if t.track then begin
        let birth = Queue.pop station.births in
        station.current_birth <- birth;
        if station.is_worker then
          Histogram.record t.lat.(station.vertex) (t.now -. birth)
      end;
      station.consumed <- station.consumed + 1;
      schedule t station (Dist.sample t.rng station.dist);
      wake_waiters t station
    end

and wake_waiters t station =
  while
    station.queued < station.capacity && not (Queue.is_empty station.waiters)
  do
    let sender = t.stations.(Queue.pop station.waiters) in
    (* The sender is blocked on the head of its pending list, which targets
       this station. *)
    (match sender.pending with
    | (dest, birth) :: rest ->
        assert (dest = station.id);
        set_queued t station (station.queued + 1);
        if t.track then Queue.push birth station.births;
        sender.pending <- rest;
        sender.blocked <- false;
        try_start t station;
        flush_pending t sender
    | [] -> assert false)
  done

and flush_pending t station =
  let rec deliver () =
    match station.pending with
    | [] -> try_start t station
    | (dest_id, birth) :: rest ->
        let dest = t.stations.(dest_id) in
        if dest.queued < dest.capacity then begin
          set_queued t dest (dest.queued + 1);
          if t.track then Queue.push birth dest.births;
          station.pending <- rest;
          try_start t dest;
          deliver ()
        end
        else begin
          Queue.push station.id dest.waiters;
          station.blocked <- true
        end
  in
  if not station.blocked then deliver ()

let on_completion t station =
  station.busy <- false;
  station.busy_time <-
    station.busy_time +. (station.service_end -. station.service_start);
  station.credit <- station.credit +. station.credit_per_item;
  let outputs = int_of_float station.credit in
  station.credit <- station.credit -. float_of_int outputs;
  let birth =
    if not t.track then 0.0
    else if station.is_source then t.now
    else station.current_birth
  in
  let rec emit k acc =
    if k = 0 then List.rev acc
    else begin
      station.produced <- station.produced + 1;
      match sample_destination t station with
      | None -> emit (k - 1) acc
      | Some dest -> emit (k - 1) ((dest, birth) :: acc)
    end
  in
  station.pending <- station.pending @ emit outputs [];
  flush_pending t station

let mark t =
  Array.iter
    (fun s ->
      (* Attribute the in-flight service proportionally to the window. *)
      let in_flight = if s.busy then t.now -. s.service_start else 0.0 in
      s.consumed_mark <- s.consumed;
      s.produced_mark <- s.produced;
      s.busy_mark <- s.busy_time +. in_flight;
      (* Flush the occupancy integral up to the mark. *)
      set_queued t s s.queued;
      s.queue_area_mark <- s.queue_area)
    t.stations;
  (* Latency histograms measure the post-warmup window only. Items born
     before the mark but served after it still count — their age is real. *)
  if t.track then Array.iter Histogram.reset t.lat

let run_until t limit =
  let continue = ref true in
  while !continue do
    match Heap.peek t.events with
    | Some (time, _, _) when time <= limit ->
        let time, _, sid = Heap.pop_exn t.events in
        t.now <- time;
        t.event_count <- t.event_count + 1;
        on_completion t t.stations.(sid)
    | Some _ | None -> continue := false
  done;
  t.now <- limit

let run ?(config = default_config) topology =
  let t = build config topology in
  Array.iter (fun s -> try_start t s) t.stations;
  run_until t config.warmup;
  mark t;
  run_until t (config.warmup +. config.measure);
  let window = config.measure in
  let per_station_busy s =
    let in_flight = if s.busy then t.now -. s.service_start else 0.0 in
    (s.busy_time +. in_flight -. s.busy_mark) /. window
  in
  (* Flush occupancy integrals up to the end of the run. *)
  Array.iter (fun s -> set_queued t s s.queued) t.stations;
  let stats =
    Array.init (Topology.size topology) (fun v ->
        let entry = t.stations.(t.entry_of.(v)) in
        let exit = t.stations.(t.exit_of.(v)) in
        let busiest =
          List.fold_left
            (fun acc w -> Float.max acc (per_station_busy t.stations.(w)))
            0.0 t.workers_of.(v)
        in
        let arrival_rate =
          float_of_int (entry.consumed - entry.consumed_mark) /. window
        in
        let mean_queue_length =
          (entry.queue_area -. entry.queue_area_mark) /. window
        in
        {
          arrival_rate;
          departure_rate =
            float_of_int (exit.produced - exit.produced_mark) /. window;
          busy_fraction = busiest;
          mean_queue_length;
          mean_waiting_time =
            (if arrival_rate > 0.0 then mean_queue_length /. arrival_rate
             else 0.0);
        })
  in
  let src = Topology.source topology in
  {
    stats;
    throughput = stats.(src).departure_rate;
    simulated_time = config.warmup +. config.measure;
    events = t.event_count;
    latency = (if config.track_latency then Some t.lat else None);
  }

(* ------------------------------------------------------------------ *)
(* Finite-stream count replay *)

(* Mirrors the executor's seeding conventions exactly; keep in sync with
   lib/runtime/executor.ml. The compiled fused tier (Fused_compile, and
   codegen's closed loops) preserves the interpreted walk's draw order —
   one sample per produced tuple at members with successors, none at
   members without — so this replay matches both execution modes. *)
let replay ?(fused = []) ?(seed = 42) ~tuples topology =
  let n = Topology.size topology in
  let src = Topology.source topology in
  let group_of = Array.make n (-1) in
  List.iteri
    (fun gi vs ->
      List.iter
        (fun v ->
          if group_of.(v) <> -1 then
            invalid_arg "Engine.replay: overlapping fused groups";
          group_of.(v) <- gi)
        vs)
    fused;
  (* Per-vertex routing rng, matching the executor: the source draws from
     [seed]; a standard vertex from [seed + 7919*(v+1)]; a replicated
     vertex's collector from [seed + 104729*(v+1)]; every member of fused
     group [gi] shares one rng seeded [seed + 15485863*(gi+1)] and draws in
     the meta-operator's depth-first processing order (Algorithm 4), which
     this walk reproduces. A {e replicated} fused group's worker [r] draws
     from [seed + 15485863*(gi+1) + 7919*r], but the executor only
     replicates linear groups (every member has at most one successor),
     whose draws are count-neutral — so this single-rng walk still
     reproduces the per-vertex counts exactly. *)
  let group_rng =
    Array.of_list
      (List.mapi (fun gi _ -> Rng.create (seed + (15485863 * (gi + 1)))) fused)
  in
  let rng_of v =
    if v = src then Rng.create seed
    else if group_of.(v) >= 0 then group_rng.(group_of.(v))
    else if (Topology.operator topology v).Operator.replicas = 1 then
      Rng.create (seed + (7919 * (v + 1)))
    else Rng.create (seed + (104729 * (v + 1)))
  in
  let choosers =
    Array.init n (fun v ->
        match Topology.succs topology v with
        | [] -> fun () -> None
        | edges ->
            let dests = Array.of_list (List.map fst edges) in
            let dist = Discrete.of_weights (Array.of_list (List.map snd edges)) in
            let rng = rng_of v in
            fun () -> Some dests.(Discrete.sample rng dist))
  in
  let consumed = Array.make n 0 in
  let produced = Array.make n 0 in
  (* Identity behaviors: one result per input, so a tuple's life is a walk
     from the source to a sink. Routing draws depend only on per-vertex
     ordinals, never on the interleaving of actors, which is what makes
     the runtime's counts reproducible here (and equal across the pool and
     domain-per-actor schedulers). *)
  let rec walk v =
    if v <> src then begin
      consumed.(v) <- consumed.(v) + 1;
      produced.(v) <- produced.(v) + 1
    end;
    match choosers.(v) () with Some dest -> walk dest | None -> ()
  in
  for _ = 1 to tuples do
    produced.(src) <- produced.(src) + 1;
    match choosers.(src) () with Some dest -> walk dest | None -> ()
  done;
  (consumed, produced)
