open Ss_topology
open Ss_core

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let number f =
    if not (Float.is_finite f) then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.12g" f

  let to_string ?(indent = false) t =
    let buf = Buffer.create 256 in
    let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
    let newline () = if indent then Buffer.add_char buf '\n' in
    let rec go depth = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (string_of_bool b)
      | Num f -> Buffer.add_string buf (number f)
      | Str s ->
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape s);
          Buffer.add_char buf '"'
      | Arr [] -> Buffer.add_string buf "[]"
      | Arr items ->
          Buffer.add_char buf '[';
          newline ();
          List.iteri
            (fun i item ->
              if i > 0 then begin
                Buffer.add_char buf ',';
                newline ()
              end;
              pad (depth + 1);
              go (depth + 1) item)
            items;
          newline ();
          pad depth;
          Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj fields ->
          Buffer.add_char buf '{';
          newline ();
          List.iteri
            (fun i (k, v) ->
              if i > 0 then begin
                Buffer.add_char buf ',';
                newline ()
              end;
              pad (depth + 1);
              Buffer.add_char buf '"';
              Buffer.add_string buf (escape k);
              Buffer.add_string buf "\": ";
              go (depth + 1) v)
            fields;
          newline ();
          pad depth;
          Buffer.add_char buf '}'
    in
    go 0 t;
    Buffer.contents buf
end

(* CSV fields are quoted only when needed; operator names are simple but a
   user-provided one could contain a comma. *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_line fields = String.concat "," (List.map csv_field fields) ^ "\n"

let kind_name (op : Operator.t) =
  Operator.kind_to_string op.Operator.kind

let steady_state_csv topology (analysis : Steady_state.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (csv_line
       [
         "vertex"; "operator"; "kind"; "replicas"; "service_ms";
         "arrival_rate"; "departure_rate"; "utilization"; "bottleneck";
       ]);
  Array.iteri
    (fun v (m : Steady_state.vertex_metrics) ->
      let op = Topology.operator topology v in
      Buffer.add_string buf
        (csv_line
           [
             string_of_int v;
             op.Operator.name;
             kind_name op;
             string_of_int op.Operator.replicas;
             Printf.sprintf "%.6f" (op.Operator.service_time *. 1e3);
             Printf.sprintf "%.3f" m.Steady_state.arrival_rate;
             Printf.sprintf "%.3f" m.Steady_state.departure_rate;
             Printf.sprintf "%.6f" m.Steady_state.utilization;
             string_of_bool m.Steady_state.is_bottleneck;
           ]))
    analysis.Steady_state.metrics;
  Buffer.contents buf

let comparison_csv topology (analysis : Steady_state.t)
    (measured : Ss_sim.Engine.result) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (csv_line
       [
         "vertex"; "operator"; "predicted_departure"; "measured_departure";
         "relative_error"; "busy_fraction";
       ]);
  Array.iteri
    (fun v (m : Steady_state.vertex_metrics) ->
      let s = measured.Ss_sim.Engine.stats.(v) in
      let err =
        if m.Steady_state.departure_rate > 0.0 then
          Ss_prelude.Stats.relative_error
            ~expected:m.Steady_state.departure_rate
            ~actual:s.Ss_sim.Engine.departure_rate
        else 0.0
      in
      Buffer.add_string buf
        (csv_line
           [
             string_of_int v;
             (Topology.operator topology v).Operator.name;
             Printf.sprintf "%.3f" m.Steady_state.departure_rate;
             Printf.sprintf "%.3f" s.Ss_sim.Engine.departure_rate;
             Printf.sprintf "%.6f" err;
             Printf.sprintf "%.6f" s.Ss_sim.Engine.busy_fraction;
           ]))
    analysis.Steady_state.metrics;
  Buffer.contents buf

let latency_csv topology (latency : Latency.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (csv_line
       [ "vertex"; "operator"; "waiting_ms"; "service_ms"; "visit_ratio"; "arrival_scv" ]);
  Array.iteri
    (fun v (l : Latency.vertex_latency) ->
      Buffer.add_string buf
        (csv_line
           [
             string_of_int v;
             (Topology.operator topology v).Operator.name;
             (if Float.is_finite l.Latency.waiting_time then
                Printf.sprintf "%.6f" (l.Latency.waiting_time *. 1e3)
              else "saturated");
             Printf.sprintf "%.6f" (l.Latency.service_time *. 1e3);
             Printf.sprintf "%.6f" l.Latency.visit_ratio;
             Printf.sprintf "%.6f" l.Latency.arrival_scv;
           ]))
    latency.Latency.per_vertex;
  Buffer.contents buf

let telemetry_json topology (metrics : Ss_runtime.Executor.metrics) =
  let open Ss_telemetry in
  let snapshot_obj h =
    if Histogram.is_empty h then Json.Null
    else
      let s = Histogram.snapshot h in
      Json.Obj
        [
          ("count", Json.Num (float_of_int s.Histogram.count));
          ("mean_s", Json.Num s.Histogram.mean);
          ("p50_s", Json.Num s.Histogram.p50);
          ("p95_s", Json.Num s.Histogram.p95);
          ("p99_s", Json.Num s.Histogram.p99);
          ("max_s", Json.Num s.Histogram.max);
        ]
  in
  let operators report =
    Array.to_list
      (Array.mapi
         (fun v consumed ->
           Json.Obj
             [
               ("id", Json.Num (float_of_int v));
               ("name", Json.Str (Topology.operator topology v).Operator.name);
               ("consumed", Json.Num (float_of_int consumed));
               ( "produced",
                 Json.Num
                   (float_of_int metrics.Ss_runtime.Executor.produced.(v)) );
               ( "blocked_s",
                 Json.Num metrics.Ss_runtime.Executor.blocked.(v) );
               ( "occupancy",
                 Json.Num metrics.Ss_runtime.Executor.occupancy.(v) );
               ("latency", snapshot_obj report.Telemetry.latency.(v));
               ("service", snapshot_obj report.Telemetry.service.(v));
               ( "late",
                 Json.Num (float_of_int report.Telemetry.late.(v)) );
               ("wm_lag", snapshot_obj report.Telemetry.wm_lag.(v));
             ])
         metrics.Ss_runtime.Executor.consumed)
  in
  let edges report =
    List.map
      (fun (u, v, c) ->
        Json.Obj
          [
            ("src", Json.Str (Topology.operator topology u).Operator.name);
            ("dst", Json.Str (Topology.operator topology v).Operator.name);
            ("tuples", Json.Num (float_of_int c));
          ])
      report.Telemetry.edges
  in
  let base =
    [
      ( "outcome",
        Json.Str
          (Format.asprintf "%a" Ss_runtime.Supervision.pp_outcome
             metrics.Ss_runtime.Executor.outcome) );
      ("elapsed_s", Json.Num metrics.Ss_runtime.Executor.elapsed);
      ("source_rate", Json.Num metrics.Ss_runtime.Executor.source_rate);
    ]
  in
  let body =
    match metrics.Ss_runtime.Executor.telemetry with
    | None -> base
    | Some report ->
        base
        @ [
            ("operators", Json.Arr (operators report));
            ("edges", Json.Arr (edges report));
          ]
  in
  Json.to_string ~indent:true (Json.Obj body)

let elastic_json topology (r : Ss_elastic.Controller.live_run) =
  let num_int i = Json.Num (float_of_int i) in
  let int_arr a = Json.Arr (List.map num_int (Array.to_list a)) in
  let change (c : Ss_elastic.Controller.change) =
    Json.Obj
      [
        ("vertex", num_int c.Ss_elastic.Controller.vertex);
        ("before", num_int c.Ss_elastic.Controller.before);
        ("after", num_int c.Ss_elastic.Controller.after);
      ]
  in
  let epoch (e : Ss_elastic.Controller.live_epoch) =
    Json.Obj
      [
        ("index", num_int e.Ss_elastic.Controller.index);
        ("duration_s", Json.Num e.Ss_elastic.Controller.duration);
        ("rate_tps", Json.Num e.Ss_elastic.Controller.rate);
        ("downtime_s", Json.Num e.Ss_elastic.Controller.downtime);
        ("workers", num_int e.Ss_elastic.Controller.workers);
        ("degrees", int_arr e.Ss_elastic.Controller.degrees);
        ( "utilization",
          Json.Arr
            (List.map
               (fun u -> Json.Num u)
               (Array.to_list e.Ss_elastic.Controller.utilization)) );
        ( "changes",
          Json.Arr (List.map change e.Ss_elastic.Controller.changes) );
      ]
  in
  let m = r.Ss_elastic.Controller.metrics in
  Json.to_string ~indent:true
    (Json.Obj
       [
         ( "operators",
           Json.Arr
             (Array.to_list
                (Array.map
                   (fun (op : Operator.t) -> Json.Str op.Operator.name)
                   (Topology.operators topology))) );
         ( "epochs",
           Json.Arr (List.map epoch r.Ss_elastic.Controller.epochs) );
         ("final_degrees", int_arr r.Ss_elastic.Controller.final_degrees);
         ( "total_downtime_s",
           Json.Num r.Ss_elastic.Controller.total_downtime );
         ( "converged_at",
           match r.Ss_elastic.Controller.converged_at with
           | Some i -> num_int i
           | None -> Json.Null );
         ( "final",
           Json.Obj
             [
               ( "outcome",
                 Json.Str
                   (Format.asprintf "%a" Ss_runtime.Supervision.pp_outcome
                      m.Ss_runtime.Executor.outcome) );
               ("elapsed_s", Json.Num m.Ss_runtime.Executor.elapsed);
               ( "source_rate_tps",
                 Json.Num m.Ss_runtime.Executor.source_rate );
             ] );
       ])

let session_json session =
  let version_entry name =
    let topology = Session.topology session ~version:name () in
    let analysis = Steady_state.analyze topology in
    Json.Obj
      [
        ("name", Json.Str name);
        ("operators", Json.Num (float_of_int (Topology.size topology)));
        ("edges", Json.Num (float_of_int (Topology.num_edges topology)));
        ( "total_replicas",
          Json.Num
            (float_of_int
               (Array.fold_left
                  (fun acc (o : Operator.t) -> acc + o.Operator.replicas)
                  0
                  (Topology.operators topology))) );
        ("throughput", Json.Num analysis.Steady_state.throughput);
        ( "bottlenecks",
          Json.Arr
            (List.map
               (fun v ->
                 Json.Str (Topology.operator topology v).Operator.name)
               (Steady_state.bottlenecks analysis)) );
      ]
  in
  Json.to_string ~indent:true
    (Json.Obj
       [
         ( "versions",
           Json.Arr (List.map version_entry (Session.versions session)) );
       ])
