(** The SpinStreams optimization workflow (paper §4.1, the GUI's model):
    an imported topology plus the stack of optimized versions prototyped
    from it. Each analysis or optimization registers a new named version;
    any version can be analyzed, simulated, exported to XML or handed to the
    code generator. *)

type t

val import : Ss_topology.Topology.t -> t
(** Start a session from an already-validated topology; the version
    ["original"] is registered. *)

val import_xml : string -> (t, string) result
(** Parse the paper's XML formalism and import. *)

val import_xml_multi : string -> (t, string) result
(** Like {!import_xml}, but a document with several sources is accepted and
    rooted with a fictitious source first
    ({!Ss_core.Multi_source.unify}) — original vertex ids shift by one. *)

val versions : t -> string list
(** Registered version names, oldest first. *)

val topology : t -> ?version:string -> unit -> Ss_topology.Topology.t
(** Default version: the most recent.
    @raise Not_found for an unknown version name. *)

val analyze : t -> ?version:string -> unit -> Ss_core.Steady_state.t
(** Steady-state prediction (Algorithm 1) of a version. *)

val latency : t -> ?version:string -> unit -> Ss_core.Latency.t
(** Analytical per-operator and end-to-end latency estimate
    ({!Ss_core.Latency}) of a version. *)

val eliminate_bottlenecks :
  t -> ?version:string -> ?max_replicas:int -> unit -> string * Ss_core.Fission.t
(** Run Algorithm 2 on a version; the parallelized topology is registered as
    a new version (named ["fission-N"] or ["fission-N-boundK"]) and
    returned with its name. *)

val fusion_candidates :
  t -> ?version:string -> ?max_size:int -> unit -> (int list * float) list
(** Legal fusion sub-graphs of a version ranked by increasing mean
    utilization (the GUI's proposal list). *)

val fuse :
  t ->
  ?version:string ->
  ?name:string ->
  int list ->
  (string * Ss_core.Fusion.outcome, string) result
(** Fuse a sub-graph of a version; on success the contracted topology is
    registered as a new version (named ["fusion-N"]). The outcome carries
    the performance prediction; when it impairs throughput the caller is
    expected to warn (the CLI does), matching the tool's alert of §5.4. *)

val auto_fuse :
  t -> ?version:string -> ?max_size:int -> ?utilization_cap:float -> unit ->
  (string * Ss_core.Fusion.auto_result) option
(** Run the automated fusion strategy ({!Ss_core.Fusion.auto}); when at
    least one group is fused, registers the coarsened topology as a new
    version ["autofusion-N"] and returns it, otherwise returns [None]. *)

val simulate :
  t -> ?version:string -> ?config:Ss_sim.Engine.config -> unit ->
  Ss_sim.Engine.result
(** Measure a version on the discrete-event simulator (the "run it on the
    SPS" step). *)

val export_xml : t -> ?version:string -> unit -> string

val generate_code :
  t ->
  ?version:string ->
  ?fused:int list list ->
  ?fusion:[ `Auto | `Interpreted | `Closed_loop ] ->
  ?tuples:int ->
  unit ->
  string
(** Render the deployable OCaml program for a version
    ({!Ss_codegen.Codegen.program}); [fusion] selects the emitted
    fused-group execution mode ([`Closed_loop] emits specialized closed
    loops for all-stub groups). *)

val execute :
  t ->
  ?version:string ->
  ?ingest:Ss_runtime.Executor.ingest ->
  ?mailbox_capacity:int ->
  ?fused:int list list ->
  ?fusion:[ `Interpreted | `Compiled ] ->
  ?ordered:int list ->
  ?seed:int ->
  ?tuples:int ->
  ?timeout:float ->
  ?scheduler:Ss_runtime.Executor.scheduler ->
  ?placement:int array ->
  ?batch:Ss_runtime.Executor.batch ->
  ?channels:Ss_runtime.Executor.channels ->
  ?instrument:Ss_runtime.Executor.instrument ->
  ?event_time:Ss_event.Event_time.config ->
  ?disorder:Ss_workload.Stream_gen.disorder ->
  unit ->
  Ss_runtime.Executor.metrics
(** Deploy a version on the supervised actor runtime
    ({!Ss_codegen.Plan.run}) and drive it with synthetic tuples — or,
    with [ingest], replay a durable {!Ss_log.Log} with at-least-once
    delivery. Never hangs on operator failure: the returned metrics carry the structured
    per-actor outcome, and [timeout] bounds the wall-clock run.
    [scheduler] picks the execution model (default: an N:M pool sized to
    the machine; [`Domain_per_actor] restores one domain per actor);
    [placement] pins each vertex's actors to a pool locality group from an
    {!Ss_placement} node assignment (see {!Ss_runtime.Executor.run});
    [batch] sets the drain policy of pooled-actor activations (default
    [`Adaptive 32]: per-mailbox occupancy-driven drain sizes); [channels]
    (default [`Auto]) backs single-producer/single-consumer edges with the
    lock-free SPSC ring and fan-in edges with the locking mailbox.
    [instrument] configures runtime instrumentation in one place —
    occupancy sampling and telemetry (latency/service histograms and
    per-edge counters in [metrics.telemetry]). [event_time] turns on
    watermark propagation and lateness handling
    ({!Ss_runtime.Executor.run}); [disorder] perturbs the synthetic
    stream's arrival order ({!Ss_workload.Stream_gen.reorder}).
    [fusion] selects the fused-group execution mode (default: deploy-time
    staging into flat closures, with interpreted fallback —
    {!Ss_runtime.Fused_compile}); [`Interpreted] forces the Algorithm 4
    walk. Per-vertex counts are identical either way. *)

val elastic :
  t ->
  ?version:string ->
  ?policy:Ss_elastic.Controller.policy ->
  ?epoch_length:float ->
  ?max_epochs:int ->
  ?settle:int ->
  ?workers:int ->
  ?reserve:int ->
  ?rate:float ->
  ?seed:int ->
  ?telemetry_sample:int ->
  unit ->
  Ss_elastic.Controller.live_run
(** Close the elasticity loop on a version: deploy it live
    ({!Ss_codegen.Plan.live}, starting from the version's declared replica
    degrees) under a stable offered load of [rate] tuples/second (default:
    the source's declared rate) and let the threshold controller
    ({!Ss_elastic.Controller.run_live}) adapt it epoch by epoch, resizing
    operators of the {e running} topology and charging the measured
    drain-and-swap downtime. [workers]/[reserve] size the pool and its
    dormant growth headroom; [telemetry_sample] (default 4, denser than
    {!execute}'s 32) sets the sampling stride the utilization estimate is
    scaled by. The returned run carries the per-epoch record and the final
    deployment metrics. *)

val measured_version :
  t -> ?version:string -> Ss_runtime.Executor.metrics -> (string, string) result
(** The measured-profile feedback loop: build the measured twin of a
    version from an {!execute} run's telemetry
    ({!Ss_telemetry.Telemetry.measured_topology}) and register it as a new
    version ["measured-N"]. Analyzing that version re-runs Algorithm 1 on
    live data. [Error] when the metrics carry no telemetry. *)

val runtime_report : t -> ?version:string -> Ss_runtime.Executor.metrics -> string
(** Human-readable report of an {!execute} run: outcome line, per-vertex
    consumed/produced counts, backpressure seconds and mean sampled
    mailbox occupancy, a late-tuple line when an event-time run counted
    any, the telemetry section (latency percentiles, mean service time and
    per-edge transfer counts) when telemetry was on, and the per-actor
    supervision statuses. *)

val report : t -> ?version:string -> unit -> string
(** Human-readable analysis report: per-operator table, bottlenecks,
    predicted throughput, and a comparison with the original version. *)
