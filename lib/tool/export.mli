(** Machine-readable exports of analyses and measurements (CSV for plotting
    pipelines, JSON for dashboards). No external dependencies: the JSON
    encoder is self-contained. *)

(** Minimal JSON document model (encoding only). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : ?indent:bool -> t -> string
  (** Renders valid JSON; strings are escaped, non-finite numbers become
      [null] (JSON has no representation for them). *)
end

val steady_state_csv :
  Ss_topology.Topology.t -> Ss_core.Steady_state.t -> string
(** Columns: vertex, operator, kind, replicas, service_ms, arrival_rate,
    departure_rate, utilization, bottleneck. *)

val comparison_csv :
  Ss_topology.Topology.t ->
  Ss_core.Steady_state.t ->
  Ss_sim.Engine.result ->
  string
(** Predicted vs measured departure rates and the relative error per
    vertex. *)

val latency_csv : Ss_topology.Topology.t -> Ss_core.Latency.t -> string

val telemetry_json :
  Ss_topology.Topology.t -> Ss_runtime.Executor.metrics -> string
(** JSON document of one runtime execution: outcome, elapsed time, source
    rate and — when the metrics carry telemetry — per-operator counters
    with latency/service snapshots (seconds) and per-edge transfer counts. *)

val elastic_json :
  Ss_topology.Topology.t -> Ss_elastic.Controller.live_run -> string
(** JSON document of a live elastic run: operator names, per-epoch records
    (measured rate, utilization, degrees, workers, measured downtime and
    resize decisions), the final degrees, total measured downtime,
    convergence epoch and the deployment's final metrics. *)

val session_json : Session.t -> string
(** Summary of a session: every version with operator/edge counts, the
    predicted throughput, and saturated operators. *)
