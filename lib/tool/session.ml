open Ss_topology
open Ss_core

type t = {
  mutable versions : (string * Topology.t) list;  (* newest first *)
  mutable counter : int;
}

let import topology = { versions = [ ("original", topology) ]; counter = 0 }

let import_xml src = Result.map import (Ss_xml.Topology_xml.of_string src)

let import_xml_multi src =
  match Ss_xml.Topology_xml.parse_raw src with
  | Error _ as e -> e
  | Ok (ops, edges) ->
      Result.map
        (fun (topology, _) -> import topology)
        (Multi_source.unify ops edges)

let versions t = List.rev_map fst t.versions

let topology t ?version () =
  match version with
  | None -> snd (List.hd t.versions)
  | Some name -> (
      match List.assoc_opt name t.versions with
      | Some topo -> topo
      | None -> raise Not_found)

let register t name topo =
  t.versions <- (name, topo) :: t.versions;
  name

let next_id t =
  t.counter <- t.counter + 1;
  t.counter

let analyze t ?version () = Steady_state.analyze (topology t ?version ())

let latency t ?version () =
  let topo = topology t ?version () in
  Latency.estimate topo (Steady_state.analyze topo)

let eliminate_bottlenecks t ?version ?max_replicas () =
  let result = Fission.optimize ?max_replicas (topology t ?version ()) in
  let name =
    match max_replicas with
    | None -> Printf.sprintf "fission-%d" (next_id t)
    | Some bound -> Printf.sprintf "fission-%d-bound%d" (next_id t) bound
  in
  (register t name result.Fission.topology, result)

let fusion_candidates t ?version ?max_size () =
  Fusion.candidates ?max_size (topology t ?version ())

let fuse t ?version ?name vertices =
  match Fusion.apply ?name (topology t ?version ()) vertices with
  | Error _ as e -> e
  | Ok outcome ->
      let version_name = Printf.sprintf "fusion-%d" (next_id t) in
      Ok (register t version_name outcome.Fusion.topology, outcome)

let auto_fuse t ?version ?max_size ?utilization_cap () =
  let result =
    Fusion.auto ?max_size ?utilization_cap (topology t ?version ())
  in
  if result.Fusion.steps = [] then None
  else
    let version_name = Printf.sprintf "autofusion-%d" (next_id t) in
    Some (register t version_name result.Fusion.final, result)

let simulate t ?version ?config () =
  Ss_sim.Engine.run ?config (topology t ?version ())

let export_xml t ?version () =
  Ss_xml.Topology_xml.to_string (topology t ?version ())

let generate_code t ?version ?fused ?fusion ?tuples () =
  Ss_codegen.Codegen.program ?fused ?fusion ?tuples (topology t ?version ())

let execute t ?version ?ingest ?mailbox_capacity ?fused ?fusion ?ordered ?seed
    ?tuples ?timeout ?scheduler ?placement ?batch ?channels ?instrument
    ?event_time ?disorder () =
  Ss_codegen.Plan.run ?ingest ?mailbox_capacity ?fused ?fusion ?ordered ?seed
    ?tuples ?timeout ?scheduler ?placement ?batch ?channels ?instrument
    ?event_time ?disorder
    (topology t ?version ())

let elastic t ?version ?policy ?epoch_length ?max_epochs ?settle ?workers
    ?reserve ?rate ?seed ?(telemetry_sample = 4) () =
  let live =
    Ss_codegen.Plan.live ?workers ?reserve ?rate ?seed
      ~instrument:
        {
          Ss_runtime.Executor.default_instrument with
          telemetry = true;
          telemetry_sample;
        }
      (topology t ?version ())
  in
  Ss_elastic.Controller.run_live ?policy ?epoch_length ?max_epochs ?settle live

let measured_version t ?version metrics =
  match metrics.Ss_runtime.Executor.telemetry with
  | None ->
      Error
        "no telemetry in these metrics: run execute with \
         ~instrument:{ default_instrument with telemetry = true }"
  | Some report ->
      let topo = topology t ?version () in
      let twin =
        Ss_telemetry.Telemetry.measured_topology topo
          ~consumed:metrics.Ss_runtime.Executor.consumed
          ~produced:metrics.Ss_runtime.Executor.produced report
      in
      Ok (register t (Printf.sprintf "measured-%d" (next_id t)) twin)

let runtime_report t ?version metrics =
  let open Ss_runtime in
  let topo = topology t ?version () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Format.asprintf "outcome: %a@." Supervision.pp_outcome
       metrics.Executor.outcome);
  Buffer.add_string buf
    (Printf.sprintf "elapsed: %.3f s; source rate: %.1f tuples/s\n"
       metrics.Executor.elapsed metrics.Executor.source_rate);
  Buffer.add_string buf
    (Printf.sprintf "%-4s %-24s %10s %10s %11s %9s\n" "id" "operator"
       "consumed" "produced" "blocked(s)" "mean occ");
  Array.iteri
    (fun v consumed ->
      Buffer.add_string buf
        (Printf.sprintf "%-4d %-24s %10d %10d %11.4f %9.2f\n" v
           (Topology.operator topo v).Operator.name consumed
           metrics.Executor.produced.(v)
           metrics.Executor.blocked.(v)
           metrics.Executor.occupancy.(v)))
    metrics.Executor.consumed;
  (* Event-time runs only: silent otherwise so processing-time reports keep
     their exact historical shape. *)
  let late_total = Array.fold_left ( + ) 0 metrics.Executor.late in
  if late_total > 0 then
    Buffer.add_string buf
      (Printf.sprintf "late tuples: %d (%s)\n" late_total
         (String.concat ", "
            (List.filter_map
               (fun (v, n) ->
                 if n = 0 then None
                 else
                   Some
                     (Printf.sprintf "%s=%d"
                        (Topology.operator topo v).Operator.name n))
               (Array.to_list (Array.mapi (fun v n -> (v, n)) metrics.Executor.late)))));
  (match metrics.Executor.telemetry with
  | None -> ()
  | Some report ->
      let open Ss_telemetry in
      Buffer.add_string buf
        (Printf.sprintf "telemetry:\n%-4s %-24s %8s %9s %9s %9s %9s %11s\n"
           "id" "operator" "n" "p50(ms)" "p95(ms)" "p99(ms)" "max(ms)"
           "service(us)");
      Array.iteri
        (fun v h ->
          if not (Histogram.is_empty h) then begin
            let s = Histogram.snapshot h in
            Buffer.add_string buf
              (Printf.sprintf
                 "%-4d %-24s %8d %9.3f %9.3f %9.3f %9.3f %11.2f\n" v
                 (Topology.operator topo v).Operator.name s.Histogram.count
                 (s.Histogram.p50 *. 1e3) (s.Histogram.p95 *. 1e3)
                 (s.Histogram.p99 *. 1e3) (s.Histogram.max *. 1e3)
                 (Histogram.mean report.Telemetry.service.(v) *. 1e6))
          end)
        report.Telemetry.latency;
      Buffer.add_string buf "edges:\n";
      List.iter
        (fun (u, v, c) ->
          Buffer.add_string buf
            (Printf.sprintf "  %s -> %s: %d tuples\n"
               (Topology.operator topo u).Operator.name
               (Topology.operator topo v).Operator.name c))
        report.Telemetry.edges);
  let pp_vertex ppf = function
    | None -> ()
    | Some v -> Format.fprintf ppf " (vertex %d)" v
  in
  Buffer.add_string buf "actors:\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Format.asprintf "  %-28s %a@."
           (Format.asprintf "%s%a:" r.Supervision.actor pp_vertex
              r.Supervision.vertex)
           Supervision.pp_status r.Supervision.status))
    metrics.Executor.actors;
  Buffer.contents buf

let report t ?version () =
  let topo = topology t ?version () in
  let analysis = Steady_state.analyze topo in
  let original = List.assoc "original" t.versions in
  let baseline = Steady_state.analyze original in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Format.asprintf "%a@." Topology.pp topo);
  Buffer.add_string buf (Format.asprintf "%a@." Steady_state.pp analysis);
  (match Steady_state.bottlenecks analysis with
  | [] -> Buffer.add_string buf "no saturated operator\n"
  | vs ->
      Buffer.add_string buf
        ("saturated operators: "
        ^ String.concat ", "
            (List.map
               (fun v -> (Topology.operator topo v).Operator.name)
               vs)
        ^ "\n"));
  (* Relative tolerance: the two throughputs come from independent float
     pipelines, so exact (in)equality both prints spurious "+0.0%" lines
     and can hide real changes that land on the same bits by luck. *)
  let materially_different a b =
    abs_float (a -. b) > 1e-9 *. Float.max (abs_float a) (abs_float b)
  in
  if materially_different analysis.Steady_state.throughput
       baseline.Steady_state.throughput
  then
    Buffer.add_string buf
      (Printf.sprintf "throughput vs original: %+.1f%%\n"
         (100.0
         *. ((analysis.Steady_state.throughput
             /. baseline.Steady_state.throughput)
            -. 1.0)));
  Buffer.contents buf
