open Ss_topology
open Ss_operators

(* Busy-wait stand-in matching the stub emitted by Codegen: same cost, same
   selectivity, no business logic. Partitioned-stateful stubs are built
   migratable (their keyed state is empty — there is nothing to move) so a
   live deployment can resize them like the generated programs' real
   partitioned operators would. *)
let stub (op : Operator.t) =
  let name = Codegen.class_of_name op.Operator.name in
  let mk_fn () =
    let credit = ref 0.0 in
    fun t ->
      let deadline = Unix.gettimeofday () +. op.Operator.service_time in
      while Unix.gettimeofday () < deadline do () done;
      credit := !credit +. Operator.selectivity_factor op;
      let k = int_of_float !credit in
      credit := !credit -. float_of_int k;
      List.init k (fun _ -> t)
  in
  match op.Operator.kind with
  | Operator.Partitioned_stateful _ ->
      Behavior.make_migratable
        ~input_selectivity:op.Operator.input_selectivity
        ~output_selectivity:op.Operator.output_selectivity ~name (fun () ->
          {
            Behavior.mfn = mk_fn ();
            export_state = (fun () -> []);
            import_state = ignore;
          })
  | Operator.Stateless | Operator.Stateful ->
      let state_kind =
        match op.Operator.kind with
        | Operator.Stateless -> Behavior.Stateless_op
        | _ -> Behavior.Stateful_op
      in
      Behavior.make ~state_kind
        ~input_selectivity:op.Operator.input_selectivity
        ~output_selectivity:op.Operator.output_selectivity ~name mk_fn

let resolve op =
  let cls = Codegen.class_of_name op.Operator.name in
  match Ss_event.Event_window.of_name cls with
  | Some behavior -> behavior
  | None -> (
      match Catalog.find cls with
      | Some behavior -> behavior
      | None -> stub op)

let registry topology v = resolve (Topology.operator topology v)

let run ?ingest ?mailbox_capacity ?fused ?fusion ?ordered ?(seed = 42)
    ?(tuples = 10_000) ?timeout ?scheduler ?placement ?batch ?channels
    ?instrument ?event_time ?(disorder = Ss_workload.Stream_gen.In_order)
    ?stream_spec topology =
  (* A log-backed run replays the ingest log; generating a synthetic
     stream would be wasted work, so the source collapses to nothing. *)
  let source =
    match ingest with
    | Some _ -> fun () -> None
    | None ->
        let rng = Ss_prelude.Rng.create seed in
        Ss_runtime.Executor.source_of_list
          (Ss_workload.Stream_gen.reorder rng disorder
             (Ss_workload.Stream_gen.tuples ?spec:stream_spec rng tuples))
  in
  Ss_runtime.Executor.run ?ingest ?mailbox_capacity ?fused ?fusion ?ordered
    ~seed
    ?timeout ?scheduler ?placement ?batch ?channels ?instrument ?event_time
    ~source ~registry:(registry topology) topology

(* Disorder an unbounded stream chunk by chunk: each block of [chunk]
   tuples is permuted independently, so the reordering horizon stays
   bounded and the stream remains lazy. *)
let reorder_seq rng disorder seq =
  match disorder with
  | Ss_workload.Stream_gen.In_order -> seq
  | _ ->
      let chunk = 1024 in
      let rec take k acc seq =
        if k = 0 then (List.rev acc, seq)
        else
          match Seq.uncons seq with
          | None -> (List.rev acc, Seq.empty)
          | Some (t, rest) -> take (k - 1) (t :: acc) rest
      in
      let rec blocks seq () =
        match take chunk [] seq with
        | [], _ -> Seq.Nil
        | block, rest ->
            Seq.Cons
              (List.to_seq (Ss_workload.Stream_gen.reorder rng disorder block),
               blocks rest)
      in
      Seq.concat (blocks seq)

let live ?mailbox_capacity ?(seed = 42) ?timeout ?workers ?reserve ?rate
    ?tuples ?instrument ?event_time
    ?(disorder = Ss_workload.Stream_gen.In_order) ?stream_spec topology =
  let rng = Ss_prelude.Rng.create seed in
  let seq =
    ref
      (reorder_seq rng disorder
         (match tuples with
         | Some n ->
             List.to_seq
               (Ss_workload.Stream_gen.tuples ?spec:stream_spec rng n)
         | None -> Ss_workload.Stream_gen.sequence ?spec:stream_spec rng))
  in
  let next () =
    match Seq.uncons !seq with
    | Some (t, rest) ->
        seq := rest;
        Some t
    | None -> None
  in
  let rate =
    match rate with
    | Some r -> r
    | None ->
        Operator.service_rate
          (Topology.operator topology (Topology.source topology))
  in
  Ss_runtime.Executor.Live.start ?mailbox_capacity ~seed ?timeout ?workers
    ?reserve ?instrument ?event_time
    ~source:(Ss_runtime.Executor.source_throttled ~rate next)
    ~registry:(registry topology) topology
