open Ss_topology
open Ss_operators

(* Busy-wait stand-in matching the stub emitted by Codegen: same cost, same
   selectivity, no business logic. *)
let stub (op : Operator.t) =
  let state_kind =
    match op.Operator.kind with
    | Operator.Stateless -> Behavior.Stateless_op
    | Operator.Partitioned_stateful _ -> Behavior.Partitioned_op
    | Operator.Stateful -> Behavior.Stateful_op
  in
  Behavior.make ~state_kind ~input_selectivity:op.Operator.input_selectivity
    ~output_selectivity:op.Operator.output_selectivity
    ~name:(Codegen.class_of_name op.Operator.name)
    (fun () ->
      let credit = ref 0.0 in
      fun t ->
        let deadline = Unix.gettimeofday () +. op.Operator.service_time in
        while Unix.gettimeofday () < deadline do () done;
        credit := !credit +. Operator.selectivity_factor op;
        let k = int_of_float !credit in
        credit := !credit -. float_of_int k;
        List.init k (fun _ -> t))

let resolve op =
  match Catalog.find (Codegen.class_of_name op.Operator.name) with
  | Some behavior -> behavior
  | None -> stub op

let registry topology v = resolve (Topology.operator topology v)

let run ?mailbox_capacity ?fused ?ordered ?(seed = 42) ?(tuples = 10_000)
    ?timeout ?scheduler ?placement ?batch ?channels ?instrument ?stream_spec
    topology =
  let rng = Ss_prelude.Rng.create seed in
  let stream = Ss_workload.Stream_gen.tuples ?spec:stream_spec rng tuples in
  Ss_runtime.Executor.run ?mailbox_capacity ?fused ?ordered ~seed ?timeout
    ?scheduler ?placement ?batch ?channels ?instrument
    ~source:(Ss_runtime.Executor.source_of_list stream)
    ~registry:(registry topology) topology
