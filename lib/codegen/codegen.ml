open Ss_prelude
open Ss_topology

(* Render a float as a valid OCaml literal that round-trips exactly. *)
let float_lit f =
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ "."

let class_of_name name =
  match String.index_opt name '#' with
  | Some i -> String.sub name 0 i
  | None -> name

let dist_expr = function
  | Dist.Deterministic x ->
      Printf.sprintf "Ss_prelude.Dist.Deterministic %s" (float_lit x)
  | Dist.Uniform (lo, hi) ->
      Printf.sprintf "Ss_prelude.Dist.Uniform (%s, %s)" (float_lit lo) (float_lit hi)
  | Dist.Exponential m ->
      Printf.sprintf "Ss_prelude.Dist.Exponential %s" (float_lit m)
  | Dist.Normal (m, s) ->
      Printf.sprintf "Ss_prelude.Dist.Normal (%s, %s)" (float_lit m) (float_lit s)
  | Dist.Erlang (k, m) ->
      Printf.sprintf "Ss_prelude.Dist.Erlang (%d, %s)" k (float_lit m)

let kind_expr = function
  | Operator.Stateless -> "Ss_topology.Operator.Stateless"
  | Operator.Stateful -> "Ss_topology.Operator.Stateful"
  | Operator.Partitioned_stateful keys ->
      let weights =
        Discrete.probs keys |> Array.to_list |> List.map float_lit
        |> String.concat "; "
      in
      Printf.sprintf
        "Ss_topology.Operator.Partitioned_stateful\n\
        \         (Ss_prelude.Discrete.of_weights [| %s |])"
        weights

let operator_expr (op : Operator.t) =
  Printf.sprintf
    "Ss_topology.Operator.make\n\
    \      ~kind:(%s)\n\
    \      ~dist:(%s)\n\
    \      ~input_selectivity:%s ~output_selectivity:%s ~replicas:%d\n\
    \      ~service_time:%s %S"
    (kind_expr op.Operator.kind)
    (dist_expr op.Operator.service_dist)
    (float_lit op.Operator.input_selectivity)
    (float_lit op.Operator.output_selectivity)
    op.Operator.replicas
    (float_lit op.Operator.service_time)
    op.Operator.name

(* Registry entry: a catalog lookup when the class is known, otherwise a
   cost-faithful stub with the declared selectivity. *)
let registry_arm v (op : Operator.t) =
  let cls = class_of_name op.Operator.name in
  match Ss_operators.Catalog.find cls with
  | Some _ ->
      Printf.sprintf "  | %d -> Ss_operators.Catalog.find_exn %S" v cls
  | None ->
      Printf.sprintf
        "  | %d ->\n\
        \      stub ~state_kind:%s ~sel_in:%s ~sel_out:%s\n\
        \        ~service_time:%s %S"
        v
        (match op.Operator.kind with
        | Operator.Stateless -> "Ss_operators.Behavior.Stateless_op"
        | Operator.Partitioned_stateful _ -> "Ss_operators.Behavior.Partitioned_op"
        | Operator.Stateful -> "Ss_operators.Behavior.Stateful_op")
        (float_lit op.Operator.input_selectivity)
        (float_lit op.Operator.output_selectivity)
        (float_lit op.Operator.service_time)
        cls

let scheduler_expr = function
  | `Domains -> "`Domain_per_actor"
  | `Pool None -> "`Pool (Stdlib.max 1 (Domain.recommended_domain_count ()))"
  | `Pool (Some w) -> Printf.sprintf "`Pool %d" w

(* The channel choice and drain policy are emitted explicitly so a
   generated program documents — and pins — how its edges are backed,
   independently of the executor's defaults at deployment time. *)
let batch_expr = function
  | `Fixed b -> Printf.sprintf "`Fixed %d" b
  | `Adaptive b -> Printf.sprintf "`Adaptive %d" b

let channels_expr = function `Auto -> "`Auto" | `Locking -> "`Locking"

(* Source-level closed loop for a fused group whose members are all stubs:
   the stub bodies (busy-wait spin plus selectivity credit) are inlined
   into one mutually recursive step set — flat mutable state, no
   intermediate list, no per-tuple closure dispatch — with routing draws
   in the exact depth-first order of the interpreted walk, so per-vertex
   counts stay bit-identical to the interpreted executor and
   [Engine.replay]. Groups containing catalog members are not emitted
   here: their behaviors live in library code the generator cannot
   inline textually, and the runtime's deploy-time staging
   ([Fused_compile.plan]) already composes them through their inline
   hooks. *)
let emit_chain buf ~gi ~members topology =
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  let in_group v = List.mem v members in
  let succs v = Topology.succs topology v in
  let topo_members =
    Array.to_list (Topology.topological_order topology) |> List.filter in_group
  in
  let uses_rng = List.exists (fun v -> succs v <> []) members in
  let uses_emit =
    List.exists
      (fun v -> List.exists (fun (w, _) -> not (in_group w)) (succs v))
      members
  in
  let front = List.hd topo_members in
  line "let chain_%d (env : Ss_runtime.Fused_compile.env) =" gi;
  line "  let consumed = env.Ss_runtime.Fused_compile.consumed in";
  line "  let produced = env.Ss_runtime.Fused_compile.produced in";
  if uses_rng then line "  let rng = env.Ss_runtime.Fused_compile.rng in";
  if uses_emit then line "  let emit = env.Ss_runtime.Fused_compile.emit in";
  List.iter
    (fun v ->
      match succs v with
      | [] | [ _ ] ->
          (* Single-successor members draw a raw [Rng.float] below — no
             table to search. *)
          ()
      | edges ->
          line "  let dist_%d = Ss_prelude.Discrete.of_weights [| %s |] in" v
            (String.concat "; " (List.map (fun (_, p) -> float_lit p) edges)))
    topo_members;
  let sel_of v =
    let op = Topology.operator topology v in
    op.Operator.output_selectivity /. op.Operator.input_selectivity
  in
  List.iter
    (fun v -> if sel_of v <> 1.0 then line "  let credit_%d = ref 0.0 in" v)
    topo_members;
  (* Route one produced tuple of [v]: count it, draw the successor (one
     draw whenever [v] has successors, single-successor members included —
     the interpreted chooser samples its one-point support too, and the
     shared group rng must stay in lockstep), then either recurse into an
     in-group member or leave through [emit]. *)
  let route_lines ~indent v =
    let pad = String.make indent ' ' in
    line "%sproduced.(%d) <- produced.(%d) + 1;" pad v v;
    let hop (w, _) =
      if in_group w then Printf.sprintf "step_%d t" w
      else Printf.sprintf "emit %d %d t" v w
    in
    match succs v with
    | [] -> ()
    | [ e ] ->
        (* One-point support: the interpreted chooser consumes one
           [Rng.float] here too, so draw it raw to stay in lockstep. *)
        line "%signore (Ss_prelude.Rng.float rng : float);" pad;
        line "%s%s" pad (hop e)
    | edges ->
        line "%s(match Ss_prelude.Discrete.sample rng dist_%d with" pad v;
        List.iteri
          (fun i e ->
            if i < List.length edges - 1 then line "%s | %d -> %s" pad i (hop e)
            else line "%s | _ -> %s)" pad (hop e))
          edges
  in
  List.iteri
    (fun i v ->
      let op = Topology.operator topology v in
      let kw = if i = 0 then "let rec" else "and" in
      let param = if succs v = [] then "_t" else "t" in
      line "  %s step_%d %s =" kw v param;
      line "    consumed.(%d) <- consumed.(%d) + 1;" v v;
      line "    let deadline = Unix.gettimeofday () +. %s in"
        (float_lit op.Operator.service_time);
      line "    while Unix.gettimeofday () < deadline do () done;";
      let sel = sel_of v in
      if sel = 1.0 then route_lines ~indent:4 v
      else begin
        line "    credit_%d := !credit_%d +. %s;" v v (float_lit sel);
        line "    let k = int_of_float !credit_%d in" v;
        line "    credit_%d := !credit_%d -. float_of_int k;" v v;
        line "    for _i = 1 to k do";
        route_lines ~indent:6 v;
        line "    done"
      end)
    topo_members;
  line "  in";
  line "  step_%d" front;
  line ""

let program ?(fused = []) ?(fusion = `Auto) ?(tuples = 100_000) ?(seed = 42)
    ?(scheduler = `Pool None) ?placement ?(batch = `Adaptive 32)
    ?(channels = `Auto) ?(telemetry = false) topology =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let src = Topology.source topology in
  (* Groups eligible for source-level closed loops: every member resolves
     to a stub, so the whole body is generator-owned text. *)
  let chain_groups =
    match fusion with
    | `Closed_loop ->
        List.mapi (fun gi g -> (gi, g)) fused
        |> List.filter (fun (_, g) ->
               List.for_all
                 (fun v ->
                   let op = Topology.operator topology v in
                   Option.is_none
                     (Ss_operators.Catalog.find
                        (class_of_name op.Operator.name)))
                 g)
    | `Auto | `Interpreted -> []
  in
  line "(* Generated by SpinStreams. Deploys the optimized topology on the";
  line "   ss_runtime actor executor; regenerate rather than edit. *)";
  line "";
  line "let topology =";
  line "  let ops = [|";
  Array.iteri
    (fun v op ->
      ignore v;
      line "    %s;" (operator_expr op))
    (Topology.operators topology);
  line "  |] in";
  line "  Ss_topology.Topology.create_exn ops";
  line "    [";
  List.iter
    (fun (u, v, p) -> line "      (%d, %d, %s);" u v (float_lit p))
    (Topology.edges topology);
  line "    ]";
  line "";
  line "(* Cost-faithful stand-in for operators outside the catalog: spins for";
  line "   the profiled service time and reproduces the declared selectivity. *)";
  line "let stub ~state_kind ~sel_in ~sel_out ~service_time name =";
  line "  Ss_operators.Behavior.make ~state_kind ~input_selectivity:sel_in";
  line "    ~output_selectivity:sel_out ~name (fun () ->";
  line "      let credit = ref 0.0 in";
  line "      fun t ->";
  line "        let deadline = Unix.gettimeofday () +. service_time in";
  line "        while Unix.gettimeofday () < deadline do () done;";
  line "        credit := !credit +. (sel_out /. sel_in);";
  line "        let k = int_of_float !credit in";
  line "        credit := !credit -. float_of_int k;";
  line "        List.init k (fun _ -> t))";
  line "";
  line "let registry = function";
  Array.iteri
    (fun v op ->
      if v <> src then Buffer.add_string buf (registry_arm v op ^ "\n"))
    (Topology.operators topology);
  line "  | v -> invalid_arg (Printf.sprintf \"no behavior for vertex %%d\" v)";
  line "";
  if chain_groups <> [] then begin
    line "(* Closed loops: each fused group below is compiled here, at";
    line "   generation time, into one flat step set — member bodies inlined,";
    line "   flat mutable state, one routing draw per produced tuple in the";
    line "   interpreted walk's depth-first order, so per-vertex counts are";
    line "   identical to the interpreted executor and [Engine.replay]. *)";
    List.iter
      (fun (gi, g) -> emit_chain buf ~gi ~members:g topology)
      chain_groups
  end;
  line "let () =";
  line "  let rng = Ss_prelude.Rng.create %d in" seed;
  line "  let stream = Ss_workload.Stream_gen.tuples rng %d in" tuples;
  line "  let metrics =";
  line "    Ss_runtime.Executor.run";
  (match fused with
  | [] -> ()
  | groups ->
      let rendered =
        groups
        |> List.map (fun g ->
               "[ " ^ String.concat "; " (List.map string_of_int g) ^ " ]")
        |> String.concat "; "
      in
      line "      ~fused:[ %s ]" rendered);
  (match fusion with
  | `Interpreted -> line "      ~fusion:`Interpreted"
  | `Auto | `Closed_loop -> ());
  if chain_groups <> [] then
    line "      ~chains:[ %s ]"
      (String.concat "; "
         (List.map
            (fun (gi, g) ->
              Printf.sprintf "([ %s ], chain_%d)"
                (String.concat "; " (List.map string_of_int g))
                gi)
            chain_groups));
  line "      ~scheduler:(%s)" (scheduler_expr scheduler);
  (match placement with
  | None -> ()
  | Some p ->
      (* Pin the placement assignment in the generated source: the
         deployed program keeps its locality plan even when re-run on a
         machine with a different core count. *)
      line "      ~placement:[| %s |]"
        (String.concat "; " (Array.to_list (Array.map string_of_int p))));
  line "      ~batch:(%s) ~channels:%s" (batch_expr batch)
    (channels_expr channels);
  if telemetry then begin
    line "      ~instrument:";
    line "        { Ss_runtime.Executor.default_instrument with telemetry = true }"
  end;
  line "      ~source:(Ss_runtime.Executor.source_of_list stream)";
  line "      ~registry topology";
  line "  in";
  line "  Format.printf \"outcome: %%a@.\" Ss_runtime.Supervision.pp_outcome";
  line "    metrics.Ss_runtime.Executor.outcome;";
  line "  Printf.printf \"elapsed: %%.3f s\\n\" metrics.Ss_runtime.Executor.elapsed;";
  line "  Printf.printf \"source rate: %%.1f tuples/s\\n\"";
  line "    metrics.Ss_runtime.Executor.source_rate;";
  line "  Array.iteri";
  line "    (fun v consumed ->";
  line "      Printf.printf \"vertex %%d: consumed %%d, produced %%d\\n\" v consumed";
  line "        metrics.Ss_runtime.Executor.produced.(v))";
  line "    metrics.Ss_runtime.Executor.consumed;";
  if telemetry then begin
    line "  (match metrics.Ss_runtime.Executor.telemetry with";
    line "  | None -> ()";
    line "  | Some report ->";
    line "      Array.iteri";
    line "        (fun v h ->";
    line "          if not (Ss_telemetry.Histogram.is_empty h) then";
    line "            Format.printf \"vertex %%d latency: %%a@.\" v";
    line "              Ss_telemetry.Histogram.pp_snapshot";
    line "              (Ss_telemetry.Histogram.snapshot h))";
    line "        report.Ss_telemetry.Telemetry.latency);";
  end;
  line "  if metrics.Ss_runtime.Executor.outcome <> Ss_runtime.Supervision.Finished";
  line "  then exit 1";
  Buffer.contents buf

let dune_stanza ~name =
  Printf.sprintf
    "(executable\n (name %s)\n (libraries ss_prelude ss_topology ss_operators \
     ss_workload ss_runtime ss_telemetry unix))\n"
    name

let write_project ~dir ~name ?fused ?fusion ?tuples ?seed ?scheduler ?placement
    ?batch ?channels ?telemetry topology =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write path contents =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents)
  in
  write
    (Filename.concat dir (name ^ ".ml"))
    (program ?fused ?fusion ?tuples ?seed ?scheduler ?placement ?batch ?channels
       ?telemetry topology);
  write (Filename.concat dir "dune") (dune_stanza ~name)
