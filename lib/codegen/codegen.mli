(** Code generation — the paper's final workflow step (§4.2): once the user
    accepts an optimized topology, SpinStreams emits the program that runs
    it on the target system. The paper targets Akka through the SS2Akka API;
    here the target is this repository's {!Ss_runtime.Executor}, and the
    emitted artifact is a standalone OCaml module.

    The generated program contains, in order: the operator descriptor table
    (including replica counts chosen by fission), the edge list, the
    behavior registry resolved from the operator catalog, the fused groups
    (executed by meta-operator actors, Algorithm 4), a synthetic source, and
    a [main] that deploys the pipeline and prints its measured rates. *)

val class_of_name : string -> string
(** Operator name with any ["#vertex"] suffix removed: the catalog class the
    registry resolves. *)

val program :
  ?fused:int list list ->
  ?fusion:[ `Auto | `Interpreted | `Closed_loop ] ->
  ?tuples:int ->
  ?seed:int ->
  ?scheduler:[ `Domains | `Pool of int option ] ->
  ?placement:int array ->
  ?batch:Ss_runtime.Executor.batch ->
  ?channels:Ss_runtime.Executor.channels ->
  ?telemetry:bool ->
  Ss_topology.Topology.t ->
  string
(** [program topology] renders the OCaml source. Operators whose class name
    (the operator name up to a ["#"] suffix) is not found in
    {!Ss_operators.Catalog} fall back to a cost-faithful busy-wait stub with
    the declared selectivity, so generated programs always compile and
    reproduce the profiled load. [tuples] (default 100_000) sizes the
    generated run; [fused] lists meta-operator groups. [scheduler] selects
    the emitted execution model: [`Pool None] (default) emits an N:M pool
    sized to the deployment machine at run time, [`Pool (Some w)] pins the
    worker count, [`Domains] emits the one-domain-per-actor model.
    [placement] (an {!Ss_placement}-style vertex->node assignment) is
    emitted as an explicit [~placement] array so the deployed program
    keeps its locality plan; omitted when [None].
    [batch] (default [`Adaptive 32]) and [channels] (default [`Auto]) are
    emitted verbatim as the generated run's drain policy and channel
    selection, so the program pins its edge-implementation choice
    explicitly. [telemetry] (default [false]) makes the generated program
    run with telemetry on and print per-vertex latency snapshots.

    [fusion] (default [`Auto]) selects how fused groups execute.
    [`Auto] leaves the choice to the executor's deploy-time staging
    ({!Ss_runtime.Fused_compile}); [`Interpreted] pins the generated run
    to the interpreted Algorithm 4 walk ([~fusion:`Interpreted]);
    [`Closed_loop] additionally emits, for every fused group whose
    members all resolve to stubs, a specialized closed loop — member
    bodies inlined into one mutually recursive step set with flat
    mutable state, no intermediate lists and one routing draw per
    produced tuple in the interpreted walk's order — passed to the run
    as [~chains], so per-vertex counts stay identical to the interpreted
    executor and {!Ss_sim.Engine.replay}. Groups with catalog members
    are left to the runtime's staging, which composes their behaviors
    through their {!Ss_operators.Behavior.inline_spec} hooks. *)

val dune_stanza : name:string -> string
(** A dune [executable] stanza for the generated module. *)

val write_project :
  dir:string ->
  name:string ->
  ?fused:int list list ->
  ?fusion:[ `Auto | `Interpreted | `Closed_loop ] ->
  ?tuples:int ->
  ?seed:int ->
  ?scheduler:[ `Domains | `Pool of int option ] ->
  ?placement:int array ->
  ?batch:Ss_runtime.Executor.batch ->
  ?channels:Ss_runtime.Executor.channels ->
  ?telemetry:bool ->
  Ss_topology.Topology.t ->
  unit
(** Write [<dir>/<name>.ml] and [<dir>/dune] so that
    [dune exec <dir>/<name>.exe] runs the generated program. Creates [dir]
    if needed. *)
