(** Direct deployment of a topology on the actor runtime, without going
    through generated source code — the programmatic twin of {!Codegen}.

    Behaviors are resolved from the operator catalog by class name (the
    operator name up to a ["#"] suffix); operators outside the catalog get a
    cost-faithful busy-wait stub reproducing their profiled service time and
    declared selectivity, exactly like the generated programs do. *)

val resolve : Ss_topology.Operator.t -> Ss_operators.Behavior.t
(** Behavior lookup for a single operator: event-time window classes
    ([ewin], [ewin_wLEN_sSLIDE] — see {!Ss_event.Event_window.of_name})
    first, then the catalog, then the cost-faithful stub. *)

val registry : Ss_topology.Topology.t -> int -> Ss_operators.Behavior.t
(** Vertex-indexed resolver for {!Ss_runtime.Executor.run}. *)

val run :
  ?ingest:Ss_runtime.Executor.ingest ->
  ?mailbox_capacity:int ->
  ?fused:int list list ->
  ?fusion:[ `Interpreted | `Compiled ] ->
  ?ordered:int list ->
  ?seed:int ->
  ?tuples:int ->
  ?timeout:float ->
  ?scheduler:Ss_runtime.Executor.scheduler ->
  ?placement:int array ->
  ?batch:Ss_runtime.Executor.batch ->
  ?channels:Ss_runtime.Executor.channels ->
  ?instrument:Ss_runtime.Executor.instrument ->
  ?event_time:Ss_event.Event_time.config ->
  ?disorder:Ss_workload.Stream_gen.disorder ->
  ?stream_spec:Ss_workload.Stream_gen.spec ->
  Ss_topology.Topology.t ->
  Ss_runtime.Executor.metrics
(** [run topology] deploys the topology on the runtime and drives it with
    [tuples] (default 10_000) synthetic tuples from
    {!Ss_workload.Stream_gen} — or, with [ingest], replays a durable
    {!Ss_log.Log} instead (at-least-once; [tuples] and [stream_spec] are
    then ignored). Options ([timeout], [scheduler],
    [placement], [batch], [channels], [instrument], [event_time] and
    [fusion] — the fused-group execution mode, default deploy-time staging
    with interpreted fallback — included) are forwarded to
    {!Ss_runtime.Executor.run}; the returned metrics carry the supervised
    per-actor outcome (and, with [instrument.telemetry], the telemetry
    report). [disorder] (default [In_order]) perturbs the synthetic
    stream's arrival order ({!Ss_workload.Stream_gen.reorder}) to exercise
    event-time handling; it does not apply to log replays. *)

val live :
  ?mailbox_capacity:int ->
  ?seed:int ->
  ?timeout:float ->
  ?workers:int ->
  ?reserve:int ->
  ?rate:float ->
  ?tuples:int ->
  ?instrument:Ss_runtime.Executor.instrument ->
  ?event_time:Ss_event.Event_time.config ->
  ?disorder:Ss_workload.Stream_gen.disorder ->
  ?stream_spec:Ss_workload.Stream_gen.spec ->
  Ss_topology.Topology.t ->
  Ss_runtime.Executor.Live.t
(** [live topology] starts a live deployment
    ({!Ss_runtime.Executor.Live.start}) of the topology with the same
    catalog-or-stub behaviors as {!run}, driven by a synthetic stream paced
    to [rate] tuples/second ({!Ss_runtime.Executor.source_throttled};
    default: the topology source's declared rate). [tuples] bounds the
    stream (default: unbounded — the stream ends when
    {!Ss_runtime.Executor.Live.stop} is called). Partitioned-stateful
    operators resolved to stubs are migratable, so an elastic controller
    can resize every replicable operator of the topology. [event_time] and
    [disorder] behave as in {!run}; on an unbounded stream the disorder is
    applied per 1024-tuple block to keep the stream lazy. *)
