(** Event-time windows with watermarks.

    The paper's evaluation uses count-based windows (see {!Window});
    real deployments also need event-time semantics: elements carry
    timestamps, may arrive out of order, and windows fire when a
    {e watermark} — the maximum timestamp seen minus an allowed lateness —
    passes their end. Windows are aligned to time 0:
    - [Tumbling length]: windows [[k·length, (k+1)·length)];
    - [Sliding (length, slide)]: one window ends at every multiple of
      [slide], covering the preceding [length] seconds (requires
      [slide <= length]).

    Elements whose every window has already fired are {e late}: they are
    dropped and counted. Fired windows are delivered in end-timestamp order
    with their contents in arrival order. *)

type kind = Tumbling of float | Sliding of float * float

type eviction = [ `Fire_oldest | `Drop_oldest ]
(** What happens to the oldest open windows when the cap is exceeded:
    [`Fire_oldest] emits them early with whatever they hold (an incomplete
    result beats unbounded buffering), [`Drop_oldest] discards them. *)

type 'a t

type 'a fired = {
  window_end : float;  (** Exclusive end of the fired window. *)
  window_start : float;
  contents : 'a list;  (** In arrival order; possibly empty never fires. *)
}

val create :
  ?allowed_lateness:float ->
  ?max_open_windows:int ->
  ?eviction:eviction ->
  kind ->
  'a t
(** [allowed_lateness] (seconds, default 0) delays the watermark behind the
    maximum seen timestamp, tolerating that much disorder.
    [max_open_windows] (default unbounded) caps the simultaneously open
    windows: each {!push} evicts the oldest windows above the cap under the
    [eviction] policy (default [`Fire_oldest]) and raises an internal
    eviction floor, so stragglers into an evicted window are counted late
    rather than silently reopening it — memory stays
    [O(max_open_windows ×] elements per window[)] however disordered the
    input.
    @raise Invalid_argument on non-positive lengths/slides, [slide > length],
    negative lateness or [max_open_windows < 1]. *)

val push : 'a t -> ts:float -> 'a -> 'a fired list
(** Insert an element with event time [ts]; returns the windows the
    advanced watermark fires — preceded by any cap evictions under
    [`Fire_oldest] — oldest first. *)

val watermark : 'a t -> float
(** Current watermark; [neg_infinity] before the first element. *)

val late_count : 'a t -> int
(** Elements dropped because they arrived entirely behind the watermark
    (or entirely below the eviction floor). *)

val evicted_count : 'a t -> int
(** Open windows evicted by the [max_open_windows] cap so far. *)

val pending_windows : 'a t -> int
(** Open (not yet fired) windows currently holding elements. *)
