(** Executable operator behaviors.

    A behavior couples a tuple-transforming function with the metadata the
    optimizer needs (state classification and nominal selectivities). The
    function may own internal state; {!fresh} allocates an independent state
    instance, which is what makes fission of partitioned-stateful operators
    possible in the runtime (each replica gets its own instance and the
    emitter routes keys consistently). *)

type fn = Tuple.t -> Tuple.t list
(** One input tuple to zero, one or many output tuples. *)

(** State classification mirroring {!Ss_topology.Operator.kind}, but without
    a key distribution: the distribution is a property of the workload, not
    of the operator code. *)
type state_kind = Stateless_op | Partitioned_op | Stateful_op

type keyed_state = (int * float array) list
(** Serialized partitioned state: one [(key, values)] entry per key the
    instance has state for. The flat float-array encoding is deliberately
    lowest-common-denominator so state can be repartitioned across replicas
    by key without the runtime knowing the behavior's internal
    representation. *)

type migratable = {
  mfn : fn;  (** The behavior function, closed over this instance's state. *)
  export_state : unit -> keyed_state;
      (** Snapshot the instance's entire keyed state. Called after the
          instance has quiesced (no concurrent [mfn] call). *)
  import_state : keyed_state -> unit;
      (** Load state for the keys this instance now owns, before any [mfn]
          call. Unknown keys replace any fresh default. *)
}

type t = {
  name : string;
  state_kind : state_kind;
  input_selectivity : float;
      (** Nominal items consumed per result at steady state. *)
  output_selectivity : float;
      (** Nominal results produced per item consumed. *)
  fresh : unit -> fn;  (** Allocate a new, independent state instance. *)
  migrate : (unit -> migratable) option;
      (** When present, instances support keyed-state handoff: live
          reconfiguration can export a retiring replica's state and import
          it into the replicas of the new generation. [None] for stateless
          behaviors (nothing to move) and for partitioned behaviors that
          opted out (resizing them live discards state). *)
}

val make :
  ?state_kind:state_kind ->
  ?input_selectivity:float ->
  ?output_selectivity:float ->
  name:string ->
  (unit -> fn) ->
  t
(** Defaults: stateless with unit selectivities, no migration support.
    @raise Invalid_argument on non-positive input selectivity or negative
    output selectivity. *)

val make_migratable :
  ?input_selectivity:float ->
  ?output_selectivity:float ->
  name:string ->
  (unit -> migratable) ->
  t
(** A partitioned-stateful behavior whose instances can export and import
    keyed state, enabling lossless live resizing. [fresh] is derived from
    the same allocator ([mfn] of a new instance). *)

val instantiate : t -> fn
(** Shorthand for [t.fresh ()]. *)

val can_migrate : t -> bool
(** Whether {!migrate} is present. *)

val selectivity_factor : t -> float
(** [output_selectivity /. input_selectivity]. *)

val to_operator :
  ?dist:Ss_prelude.Dist.t ->
  ?keys:Ss_prelude.Discrete.t ->
  service_time:float ->
  t ->
  Ss_topology.Operator.t
(** Descriptor for the optimizer: combines the behavior's classification and
    selectivities with a profiled [service_time]. Partitioned-stateful
    behaviors require [keys] (the workload's key-group distribution);
    @raise Invalid_argument if it is missing, or supplied for a
    non-partitioned behavior. *)
