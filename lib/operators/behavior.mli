(** Executable operator behaviors.

    A behavior couples a tuple-transforming function with the metadata the
    optimizer needs (state classification and nominal selectivities). The
    function may own internal state; {!fresh} allocates an independent state
    instance, which is what makes fission of partitioned-stateful operators
    possible in the runtime (each replica gets its own instance and the
    emitter routes keys consistently). *)

type fn = Tuple.t -> Tuple.t list
(** One input tuple to zero, one or many output tuples. *)

(** State classification mirroring {!Ss_topology.Operator.kind}, but without
    a key distribution: the distribution is a property of the workload, not
    of the operator code. *)
type state_kind = Stateless_op | Partitioned_op | Stateful_op

type keyed_state = (int * float array) list
(** Serialized partitioned state: one [(key, values)] entry per key the
    instance has state for. The flat float-array encoding is deliberately
    lowest-common-denominator so state can be repartitioned across replicas
    by key without the runtime knowing the behavior's internal
    representation. *)

type migratable = {
  mfn : fn;  (** The behavior function, closed over this instance's state. *)
  export_state : unit -> keyed_state;
      (** Snapshot the instance's entire keyed state. Called after the
          instance has quiesced (no concurrent [mfn] call). *)
  import_state : keyed_state -> unit;
      (** Load state for the keys this instance now owns, before any [mfn]
          call. Unknown keys replace any fresh default. *)
}

type evented = {
  efn : fn;
      (** Buffer/transform one input tuple; closed over this instance's
          state. Event-time windows typically return [] here and emit on
          {!on_watermark}. *)
  on_watermark : float -> Tuple.t list;
      (** The runtime's input watermark at this instance advanced to the
          given value: fire everything the new watermark makes complete
          (windows whose end it passed). Called with [infinity] at
          end-of-stream to flush all remaining state. Must be monotone-safe:
          a repeated or smaller watermark fires nothing. *)
  on_late : Tuple.t -> Tuple.t list;
      (** Under the [Refire] lateness policy: a tuple arrived behind the
          watermark. Return correction tuples (typically a retraction of the
          previously fired result plus the corrected result), or [] when the
          late tuple cannot be applied any more (beyond the refire
          horizon). Never called under [Drop] or [Side_output]. *)
  eexport : unit -> keyed_state;
      (** Snapshot all keyed event-time state — open windows and any refire
          memory — in the same flat encoding as {!migratable.export_state},
          so live reconfiguration can move in-flight windows across
          replicas. *)
  eimport : keyed_state -> unit;
      (** Load keyed event-time state for the keys this instance now owns,
          before any [efn] call. *)
}
(** An event-time behavior instance: watermark-driven firing, late-tuple
    handling and migratable state, all closed over one state allocation. *)

type 'a stateful_step = {
  sstep : Tuple.t -> 'a;
      (** One input to one result ([Tuple.t] for folds, [Tuple.t option]
          for windows that fire only at slide boundaries), closed over
          this instance's explicit state. *)
  sexport : unit -> keyed_state;
      (** Snapshot the instance's keyed state, same contract as
          {!migratable.export_state}: called only when the instance has
          quiesced. Behaviors built on a global (non-keyed) store encode
          it under a single well-known key. *)
  simport : keyed_state -> unit;
      (** Load state for the keys this instance now owns, before any
          {!sstep} call. *)
}
(** A stateful inline step: the closed-function-over-explicit-state form
    the fused-chain compiler threads through its flat loop, with the
    export/import pair that keeps the composed chain migratable for live
    resizing. *)

(** Introspection hook for compile-time fusion: a shape-restricted twin of
    {!fn} that a fused-chain compiler can inline without building the
    intermediate result list. [Inline_map mk] promises one output per
    input; [Inline_filter mk] promises zero or one. [Inline_fold mk] is
    the stateful one-in/one-out form (running aggregates such as keyed
    counters); [Inline_window mk] the stateful zero-or-one form (windowed
    folds that fire at slide boundaries) — both expose their state
    explicitly so a compiled chain can export and import it across a
    replica handoff. Like {!t.fresh}, each allocator returns a function
    closed over an independent state instance, and that instance must
    implement {e exactly} the same transformation as a fresh {!fn}
    instance would ([f t] standing in for [\[f t\]], [Some t' / None] for
    [\[t'\] / \[\]]) — the runtime verifies nothing and relies on this
    equivalence for its count-determinism guarantees. *)
type inline_step =
  | Inline_map of (unit -> Tuple.t -> Tuple.t)
  | Inline_filter of (unit -> Tuple.t -> Tuple.t option)
  | Inline_fold of (unit -> Tuple.t stateful_step)
  | Inline_window of (unit -> Tuple.t option stateful_step)

type t = {
  name : string;
  state_kind : state_kind;
  input_selectivity : float;
      (** Nominal items consumed per result at steady state. *)
  output_selectivity : float;
      (** Nominal results produced per item consumed. *)
  fresh : unit -> fn;  (** Allocate a new, independent state instance. *)
  migrate : (unit -> migratable) option;
      (** When present, instances support keyed-state handoff: live
          reconfiguration can export a retiring replica's state and import
          it into the replicas of the new generation. [None] for stateless
          behaviors (nothing to move) and for partitioned behaviors that
          opted out (resizing them live discards state). *)
  evented : (unit -> evented) option;
      (** When present, instances carry event-time semantics: the runtime
          delivers watermark advances to {!evented.on_watermark}, applies
          the configured lateness policy to tuples behind the watermark,
          and uses {!evented.eexport}/{!evented.eimport} for live
          reconfiguration handoff. The executor prefers this interface over
          [migrate] when both exist. *)
  inline : inline_step option;
      (** When present, the behavior can be inlined by the fused-chain
          compiler ({!Ss_runtime.Fused_compile}): one-in/one-out members
          compose into a straight-line loop with no intermediate list.
          [None] (the default) keeps the behavior compilable through the
          generic list-walking path. *)
}

val make :
  ?state_kind:state_kind ->
  ?input_selectivity:float ->
  ?output_selectivity:float ->
  ?inline:inline_step ->
  name:string ->
  (unit -> fn) ->
  t
(** Defaults: stateless with unit selectivities, no migration support.
    @raise Invalid_argument on non-positive input selectivity or negative
    output selectivity. *)

val make_migratable :
  ?input_selectivity:float ->
  ?output_selectivity:float ->
  ?inline:inline_step ->
  name:string ->
  (unit -> migratable) ->
  t
(** A partitioned-stateful behavior whose instances can export and import
    keyed state, enabling lossless live resizing. [fresh] is derived from
    the same allocator ([mfn] of a new instance). [inline] is typically an
    {!Inline_fold} twin so the behavior also composes into compiled fused
    chains without losing migratability. *)

val make_evented :
  ?state_kind:state_kind ->
  ?input_selectivity:float ->
  ?output_selectivity:float ->
  name:string ->
  (unit -> evented) ->
  t
(** An event-time behavior (default [Partitioned_op]: keyed windows fission
    by key). [fresh] is derived from the allocator ([efn] of a new
    instance), so the behavior still runs — buffering, never firing — in a
    runtime without watermark propagation. *)

val instantiate : t -> fn
(** Shorthand for [t.fresh ()]. *)

val can_migrate : t -> bool
(** Whether instances support keyed-state handoff for live resizing:
    {!migrate} or the (state-carrying) {!evented} interface is present. *)

val is_evented : t -> bool
(** Whether {!evented} is present. *)

val inline_spec : t -> inline_step option
(** The behavior's {!inline_step} hook, if it declared one. *)

val inline_migratable : t -> bool
(** Whether the behavior's inline hook carries exportable state
    ({!Inline_fold} or {!Inline_window}): a compiled fused chain
    containing it can still hand its state off across a live resize. *)

val selectivity_factor : t -> float
(** [output_selectivity /. input_selectivity]. *)

val to_operator :
  ?dist:Ss_prelude.Dist.t ->
  ?keys:Ss_prelude.Discrete.t ->
  service_time:float ->
  t ->
  Ss_topology.Operator.t
(** Descriptor for the optimizer: combines the behavior's classification and
    selectivities with a profiled [service_time]. Partitioned-stateful
    behaviors require [keys] (the workload's key-group distribution);
    @raise Invalid_argument if it is missing, or supplied for a
    non-partitioned behavior. *)
