type spec = { length : int; slide : int; index : int; per_key : bool }

let default_spec = { length = 1000; slide = 10; index = 0; per_key = false }

(* Shared skeleton: push into the (global or per-key) window; on firing,
   aggregate the windowed values into a single-value tuple. The
   [Inline_window] twin implements exactly the same transformation as the
   list-returning function ([Some t' / None] for [[t'] / []]) over its own
   independent store, plus export/import of that store so compiled fused
   chains stay migratable. *)
let fold ?(spec = default_spec) ~name aggregate =
  let state_kind =
    if spec.per_key then Behavior.Partitioned_op else Behavior.Stateful_op
  in
  (* One window store per instance, shared by the step and (for the inline
     twin) its export/import. *)
  let new_store () =
    let global = Window.create ~length:spec.length ~slide:spec.slide in
    let per_key = Hashtbl.create 64 in
    let window_for key =
      if not spec.per_key then global
      else
        match Hashtbl.find_opt per_key key with
        | Some w -> w
        | None ->
            let w = Window.create ~length:spec.length ~slide:spec.slide in
            Hashtbl.add per_key key w;
            w
    in
    (global, per_key, window_for)
  in
  let step window_for (t : Tuple.t) =
    match Window.push (window_for t.Tuple.key) (Tuple.value t spec.index) with
    | None -> None
    | Some values ->
        Some
          (Tuple.make ~ts:t.Tuple.ts ~key:t.Tuple.key ~tag:t.Tuple.tag
             [| aggregate values |])
  in
  (* Flat per-key encoding: [| pushed; contents (oldest first)... |]. The
     push total carries the slide phase, so an imported window fires
     exactly when the exporter's would have. A global (non-keyed) store
     exports under key 0; replication never repartitions it (stateful
     operators do not fission), so the key is inert. *)
  let encode w =
    let contents, pushed = Window.dump w in
    Array.of_list (float_of_int pushed :: contents)
  in
  let decode w arr =
    Window.load w
      (List.tl (Array.to_list arr))
      ~pushed:(int_of_float arr.(0))
  in
  let fresh () =
    let _, _, window_for = new_store () in
    fun (t : Tuple.t) ->
      match step window_for t with Some out -> [ out ] | None -> []
  in
  let inline =
    Behavior.Inline_window
      (fun () ->
        let global, per_key, window_for = new_store () in
        {
          Behavior.sstep = (fun t -> step window_for t);
          sexport =
            (fun () ->
              if spec.per_key then
                Hashtbl.fold (fun k w acc -> (k, encode w) :: acc) per_key []
              else if Window.pushed global = 0 then []
              else [ (0, encode global) ]);
          simport =
            List.iter (fun (k, arr) ->
                if Array.length arr >= 1 then
                  decode (if spec.per_key then window_for k else global) arr);
        })
  in
  Behavior.make ~state_kind ~inline
    ~input_selectivity:(float_of_int spec.slide)
    ~name:
      (Printf.sprintf "%s_w%d_s%d%s" name spec.length spec.slide
         (if spec.per_key then "_bykey" else ""))
    fresh

let sum ?spec () = fold ?spec ~name:"sum" (List.fold_left ( +. ) 0.0)

let max_agg ?spec () =
  fold ?spec ~name:"max" (fun vs -> List.fold_left Float.max neg_infinity vs)

let min_agg ?spec () =
  fold ?spec ~name:"min" (fun vs -> List.fold_left Float.min infinity vs)

let mean ?spec () =
  fold ?spec ~name:"mean" (fun vs ->
      List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs))

let weighted_moving_average ?spec () =
  fold ?spec ~name:"wma" (fun vs ->
      (* Oldest first: weight i+1 for the i-th element. *)
      let num, den =
        List.fold_left
          (fun (num, den, i) v -> (num +. (v *. float_of_int i), den +. float_of_int i, i + 1))
          (0.0, 0.0, 1) vs
        |> fun (num, den, _) -> (num, den)
      in
      num /. den)

let quantile ?spec ~q () =
  if q < 0.0 || q > 1.0 then invalid_arg "Window_ops.quantile: q out of range";
  fold ?spec
    ~name:(Printf.sprintf "quantile_%g" q)
    (fun vs ->
      let a = Array.of_list vs in
      Array.sort compare a;
      let n = Array.length a in
      let rank = q *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      if lo = hi then a.(lo)
      else
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo))))
