type 'a t = {
  win_length : int;
  win_slide : int;
  buffer : 'a Queue.t;
  mutable total : int;
}

let create ~length ~slide =
  if length < 1 then invalid_arg "Window.create: length must be >= 1";
  if slide < 1 then invalid_arg "Window.create: slide must be >= 1";
  { win_length = length; win_slide = slide; buffer = Queue.create (); total = 0 }

let length t = t.win_length
let slide t = t.win_slide
let size t = Queue.length t.buffer
let pushed t = t.total
let contents t = List.of_seq (Queue.to_seq t.buffer)

let push t x =
  Queue.push x t.buffer;
  if Queue.length t.buffer > t.win_length then ignore (Queue.pop t.buffer);
  t.total <- t.total + 1;
  let fires =
    t.total >= t.win_length && (t.total - t.win_length) mod t.win_slide = 0
  in
  if fires then Some (contents t) else None

let reset t =
  Queue.clear t.buffer;
  t.total <- 0

(* Snapshot/restore for state handoff: the retained elements (oldest
   first) plus the push total, which carries the slide phase — restoring
   both reproduces the exact firing schedule of the original window. *)
let dump t = (contents t, t.total)

let load t xs ~pushed =
  if pushed < 0 then invalid_arg "Window.load: pushed must be >= 0";
  Queue.clear t.buffer;
  List.iter
    (fun x ->
      Queue.push x t.buffer;
      if Queue.length t.buffer > t.win_length then ignore (Queue.pop t.buffer))
    xs;
  t.total <- pushed
