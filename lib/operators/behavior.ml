type fn = Tuple.t -> Tuple.t list
type state_kind = Stateless_op | Partitioned_op | Stateful_op
type keyed_state = (int * float array) list

type migratable = {
  mfn : fn;
  export_state : unit -> keyed_state;
  import_state : keyed_state -> unit;
}

type evented = {
  efn : fn;
  on_watermark : float -> Tuple.t list;
  on_late : Tuple.t -> Tuple.t list;
  eexport : unit -> keyed_state;
  eimport : keyed_state -> unit;
}

type 'a stateful_step = {
  sstep : Tuple.t -> 'a;
  sexport : unit -> keyed_state;
  simport : keyed_state -> unit;
}

type inline_step =
  | Inline_map of (unit -> Tuple.t -> Tuple.t)
  | Inline_filter of (unit -> Tuple.t -> Tuple.t option)
  | Inline_fold of (unit -> Tuple.t stateful_step)
  | Inline_window of (unit -> Tuple.t option stateful_step)

type t = {
  name : string;
  state_kind : state_kind;
  input_selectivity : float;
  output_selectivity : float;
  fresh : unit -> fn;
  migrate : (unit -> migratable) option;
  evented : (unit -> evented) option;
  inline : inline_step option;
}

let make ?(state_kind = Stateless_op) ?(input_selectivity = 1.0)
    ?(output_selectivity = 1.0) ?inline ~name fresh =
  if input_selectivity <= 0.0 then
    invalid_arg "Behavior.make: input_selectivity must be positive";
  if output_selectivity < 0.0 then
    invalid_arg "Behavior.make: output_selectivity must be non-negative";
  {
    name;
    state_kind;
    input_selectivity;
    output_selectivity;
    fresh;
    migrate = None;
    evented = None;
    inline;
  }

let make_migratable ?input_selectivity ?output_selectivity ?inline ~name mk =
  let base =
    make ~state_kind:Partitioned_op ?input_selectivity ?output_selectivity
      ?inline ~name (fun () -> (mk ()).mfn)
  in
  { base with migrate = Some mk }

let make_evented ?(state_kind = Partitioned_op) ?input_selectivity
    ?output_selectivity ~name mk =
  let base =
    make ~state_kind ?input_selectivity ?output_selectivity ~name (fun () ->
        (mk ()).efn)
  in
  { base with evented = Some mk }

let instantiate t = t.fresh ()
let can_migrate t = Option.is_some t.migrate || Option.is_some t.evented
let is_evented t = Option.is_some t.evented
let inline_spec t = t.inline

let inline_migratable t =
  match t.inline with
  | Some (Inline_fold _ | Inline_window _) -> true
  | Some (Inline_map _ | Inline_filter _) | None -> false
let selectivity_factor t = t.output_selectivity /. t.input_selectivity

let to_operator ?dist ?keys ~service_time t =
  let kind =
    match (t.state_kind, keys) with
    | Stateless_op, None -> Ss_topology.Operator.Stateless
    | Stateful_op, None -> Ss_topology.Operator.Stateful
    | Partitioned_op, Some keys ->
        Ss_topology.Operator.Partitioned_stateful keys
    | Partitioned_op, None ->
        invalid_arg
          "Behavior.to_operator: a partitioned-stateful behavior needs a key \
           distribution"
    | (Stateless_op | Stateful_op), Some _ ->
        invalid_arg
          "Behavior.to_operator: key distribution supplied for a \
           non-partitioned behavior"
  in
  Ss_topology.Operator.make ~kind ?dist
    ~input_selectivity:t.input_selectivity
    ~output_selectivity:t.output_selectivity ~service_time t.name
