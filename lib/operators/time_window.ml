type kind = Tumbling of float | Sliding of float * float
type eviction = [ `Fire_oldest | `Drop_oldest ]

type 'a fired = {
  window_end : float;
  window_start : float;
  contents : 'a list;
}

type 'a t = {
  length : float;
  slide : float;
  lateness : float;
  max_open : int option;
  eviction : eviction;
  (* window end -> reversed contents *)
  buckets : (float, 'a list) Hashtbl.t;
  mutable wm : float;
  (* Window ends at or below [floor] were evicted: elements landing there
     afterwards are late even though the watermark never passed them. *)
  mutable floor : float;
  mutable late : int;
  mutable evicted : int;
}

let create ?(allowed_lateness = 0.0) ?max_open_windows
    ?(eviction = `Fire_oldest) kind =
  let length, slide =
    match kind with
    | Tumbling l -> (l, l)
    | Sliding (l, s) -> (l, s)
  in
  if length <= 0.0 then invalid_arg "Time_window.create: length must be positive";
  if slide <= 0.0 then invalid_arg "Time_window.create: slide must be positive";
  if slide > length then
    invalid_arg "Time_window.create: slide must not exceed length";
  if allowed_lateness < 0.0 then
    invalid_arg "Time_window.create: negative lateness";
  (match max_open_windows with
  | Some k when k < 1 ->
      invalid_arg "Time_window.create: max_open_windows must be >= 1"
  | _ -> ());
  {
    length;
    slide;
    lateness = allowed_lateness;
    max_open = max_open_windows;
    eviction;
    buckets = Hashtbl.create 16;
    wm = neg_infinity;
    floor = neg_infinity;
    late = 0;
    evicted = 0;
  }

let watermark t = t.wm
let late_count t = t.late
let evicted_count t = t.evicted
let pending_windows t = Hashtbl.length t.buckets

(* Ends of the windows containing timestamp [ts]: multiples of slide in
   (ts, ts + length]. *)
let window_ends t ts =
  let first_k = Float.floor (ts /. t.slide) +. 1.0 in
  let rec collect k acc =
    let e = k *. t.slide in
    if e > ts +. t.length +. 1e-12 then List.rev acc
    else collect (k +. 1.0) (e :: acc)
  in
  collect first_k []

let take_bucket t e =
  let contents = List.rev (Hashtbl.find t.buckets e) in
  Hashtbl.remove t.buckets e;
  { window_end = e; window_start = e -. t.length; contents }

(* Enforce the open-window cap by evicting the oldest (smallest-end)
   windows. [`Fire_oldest] emits them early — a deliberately incomplete
   result beats unbounded buffering; [`Drop_oldest] discards them. Either
   way the eviction floor rises so stragglers into an evicted window count
   as late instead of silently reopening it. *)
let evict t =
  match t.max_open with
  | None -> []
  | Some cap ->
      let over = Hashtbl.length t.buckets - cap in
      if over <= 0 then []
      else begin
        let ends =
          Hashtbl.fold (fun e _ acc -> e :: acc) t.buckets []
          |> List.sort compare
        in
        let victims = List.filteri (fun i _ -> i < over) ends in
        t.evicted <- t.evicted + over;
        let fired =
          List.map
            (fun e ->
              let f = take_bucket t e in
              t.floor <- Float.max t.floor e;
              f)
            victims
        in
        match t.eviction with `Fire_oldest -> fired | `Drop_oldest -> []
      end

let push t ~ts x =
  t.wm <- Float.max t.wm (ts -. t.lateness);
  let ends =
    List.filter (fun e -> e > t.wm && e > t.floor) (window_ends t ts)
  in
  if ends = [] then t.late <- t.late + 1
  else
    List.iter
      (fun e ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt t.buckets e) in
        Hashtbl.replace t.buckets e (x :: prev))
      ends;
  let evicted = evict t in
  (* Fire every buffered window whose end the watermark has passed. *)
  let ready =
    Hashtbl.fold (fun e _ acc -> if e <= t.wm then e :: acc else acc) t.buckets []
    |> List.sort compare
  in
  let fired = List.map (take_bucket t) ready in
  (* Evictions precede regular firings and both are end-ordered within
     themselves; an evicted window always ends below any watermark-fired
     one (it was the oldest open), so the concatenation stays ordered. *)
  evicted @ fired
