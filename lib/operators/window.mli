(** Count-based sliding windows (paper §3.4 and the evaluation's stateful
    operators).

    A window of length [w] sliding by [s] fires for the first time once [w]
    elements have been pushed, and then after every further [s] pushes. When
    it fires it exposes the last [w] elements, oldest first. The steady-state
    input selectivity of an operator built on such a window is [s]. *)

type 'a t

val create : length:int -> slide:int -> 'a t
(** @raise Invalid_argument unless [length >= 1] and [slide >= 1]. *)

val length : 'a t -> int
val slide : 'a t -> int

val push : 'a t -> 'a -> 'a list option
(** Insert an element; returns [Some contents] (oldest first, exactly
    [length] elements) when the window fires. *)

val contents : 'a t -> 'a list
(** Current retained elements, oldest first (fewer than [length] while the
    window is still filling). *)

val size : 'a t -> int
val pushed : 'a t -> int
(** Total number of elements pushed so far. *)

val reset : 'a t -> unit

val dump : 'a t -> 'a list * int
(** [(contents, pushed)]: the retained elements (oldest first) and the
    total push count. Together they capture the full firing schedule, so a
    window restored with {!load} fires exactly when the original would. *)

val load : 'a t -> 'a list -> pushed:int -> unit
(** Replace the window's state with a {!dump} snapshot.
    @raise Invalid_argument if [pushed < 0]. *)
