(* Each op declares the shape-restricted [inline] twin of its behavior
   function where one exists (one-in/one-out maps, zero-or-one filters), so
   the fused-chain compiler can compose the bodies without building the
   intermediate singleton lists. The twin must stay semantically identical
   to the list-returning function next to it. *)

let stateless ?output_selectivity ?inline ~name fn =
  Behavior.make ?output_selectivity ?inline ~name (fun () -> fn)

let map ~name f =
  stateless ~inline:(Behavior.Inline_map (fun () -> f)) ~name (fun t -> [ f t ])

let identity = map ~name:"identity" (fun t -> t)

let scale ~factor =
  map ~name:(Printf.sprintf "scale_%g" factor) (fun t ->
      Tuple.with_values t (Array.map (fun v -> v *. factor) t.Tuple.values))

let offset ~delta =
  map ~name:(Printf.sprintf "offset_%g" delta) (fun t ->
      Tuple.with_values t (Array.map (fun v -> v +. delta) t.Tuple.values))

let compute ~iterations =
  map ~name:(Printf.sprintf "compute_%d" iterations) (fun t ->
      let acc = ref (Tuple.value t 0) in
      for i = 1 to iterations do
        acc := !acc +. (sin (float_of_int i) *. cos !acc)
      done;
      let values = Array.copy t.Tuple.values in
      if Array.length values > 0 then values.(0) <- !acc;
      Tuple.with_values t values)

let threshold_filter ~index ~threshold =
  let keep t = Tuple.value t index >= threshold in
  stateless
    ~inline:(Behavior.Inline_filter (fun () t -> if keep t then Some t else None))
    ~name:(Printf.sprintf "filter_v%d_ge_%g" index threshold)
    (fun t -> if keep t then [ t ] else [])

let sampler ~keep_one_in =
  if keep_one_in < 1 then invalid_arg "Stateless_ops.sampler: keep_one_in < 1";
  Behavior.make
    ~output_selectivity:(1.0 /. float_of_int keep_one_in)
    ~inline:
      (Behavior.Inline_filter
         (fun () ->
           let count = ref 0 in
           fun t ->
             incr count;
             if !count mod keep_one_in = 0 then Some t else None))
    ~name:(Printf.sprintf "sample_1_in_%d" keep_one_in)
    (fun () ->
      let count = ref 0 in
      fun t ->
        incr count;
        if !count mod keep_one_in = 0 then [ t ] else [])

let flat_split ~parts =
  if parts < 1 then invalid_arg "Stateless_ops.flat_split: parts < 1";
  Behavior.make
    ~output_selectivity:(float_of_int parts)
    ~name:(Printf.sprintf "split_%d" parts)
    (fun () t ->
      List.init parts (fun part ->
          let values =
            t.Tuple.values |> Array.to_list
            |> List.filteri (fun i _ -> i mod parts = part)
            |> Array.of_list
          in
          Tuple.with_values t values))

let project ~keep =
  map ~name:(Printf.sprintf "project_%d" keep) (fun t ->
      let n = min keep (Array.length t.Tuple.values) in
      Tuple.with_values t (Array.sub t.Tuple.values 0 (max n 0)))

let rekey ~buckets =
  if buckets < 1 then invalid_arg "Stateless_ops.rekey: buckets < 1";
  map ~name:(Printf.sprintf "rekey_%d" buckets) (fun t ->
      let h =
        Array.fold_left
          (fun acc v -> (acc * 31) + int_of_float (Float.abs v *. 1e3))
          17 t.Tuple.values
      in
      Tuple.with_key t (abs h mod buckets))

let enrich ~table =
  map ~name:"enrich" (fun t ->
      let values = Array.append t.Tuple.values [| table t.Tuple.key |] in
      Tuple.with_values t values)
