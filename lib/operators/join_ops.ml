let band_join ?(length = 200) ?(index = 0) ~band () =
  if band < 0.0 then invalid_arg "Join_ops.band_join: band < 0";
  Behavior.make ~state_kind:Behavior.Stateful_op
    ~name:(Printf.sprintf "bandjoin_w%d_b%g" length band)
    (fun () ->
      (* One sliding window per side; sliding is per-insertion (slide 1) so
         the windows always hold the last [length] tuples of each side. *)
      let left = Window.create ~length ~slide:1 in
      let right = Window.create ~length ~slide:1 in
      fun (t : Tuple.t) ->
        let own, other = if t.Tuple.tag = 0 then (left, right) else (right, left) in
        let probe_value = Tuple.value t index in
        let matches =
          List.filter_map
            (fun (candidate : Tuple.t) ->
              let v = Tuple.value candidate index in
              if Float.abs (probe_value -. v) <= band then
                Some
                  (Tuple.make ~ts:t.Tuple.ts ~key:t.Tuple.key ~tag:t.Tuple.tag
                     [| probe_value; v |])
              else None)
            (Window.contents other)
        in
        ignore (Window.push own t);
        matches)

let count_by_key () =
  (* Migratable: the per-key running count round-trips through the keyed
     state encoding as a singleton vector, so live resizing preserves
     counts across the replica handoff. The [Inline_fold] twin is the same
     update over its own table, in the one-in/one-out shape the fused-chain
     compiler threads through its loop. *)
  let bump counts (t : Tuple.t) =
    let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counts t.Tuple.key) in
    Hashtbl.replace counts t.Tuple.key c;
    Tuple.make ~ts:t.Tuple.ts ~key:t.Tuple.key ~tag:t.Tuple.tag
      [| float_of_int c |]
  in
  let export counts () =
    Hashtbl.fold (fun k c acc -> (k, [| float_of_int c |]) :: acc) counts []
  in
  let import counts =
    List.iter (fun (k, v) ->
        if Array.length v > 0 then Hashtbl.replace counts k (int_of_float v.(0)))
  in
  let inline =
    Behavior.Inline_fold
      (fun () ->
        let counts = Hashtbl.create 64 in
        {
          Behavior.sstep = bump counts;
          sexport = export counts;
          simport = import counts;
        })
  in
  Behavior.make_migratable ~inline ~name:"count_by_key" (fun () ->
      let counts = Hashtbl.create 64 in
      {
        Behavior.mfn = (fun t -> [ bump counts t ]);
        export_state = export counts;
        import_state = import counts;
      })

let dedup ?(memory = 1024) () =
  (* The instance keeps hidden bounded state but does not migrate, so the
     inline twin is a plain (stateful) filter: compiled chains inline it,
     but a group containing it stays pinned like the interpreted operator
     (no exportable state, no live-resize handoff). *)
  let pass seen order (t : Tuple.t) =
    if Hashtbl.mem seen t.Tuple.key then None
    else begin
      Hashtbl.replace seen t.Tuple.key ();
      Queue.push t.Tuple.key order;
      if Queue.length order > memory then Hashtbl.remove seen (Queue.pop order);
      Some t
    end
  in
  let inline =
    Behavior.Inline_filter
      (fun () ->
        let seen = Hashtbl.create 64 in
        let order = Queue.create () in
        pass seen order)
  in
  Behavior.make ~state_kind:Behavior.Partitioned_op ~inline
    ~name:(Printf.sprintf "dedup_%d" memory)
    (fun () ->
      let seen = Hashtbl.create 64 in
      let order = Queue.create () in
      fun t -> match pass seen order t with Some t -> [ t ] | None -> [])
