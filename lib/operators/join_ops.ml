let band_join ?(length = 200) ?(index = 0) ~band () =
  if band < 0.0 then invalid_arg "Join_ops.band_join: band < 0";
  Behavior.make ~state_kind:Behavior.Stateful_op
    ~name:(Printf.sprintf "bandjoin_w%d_b%g" length band)
    (fun () ->
      (* One sliding window per side; sliding is per-insertion (slide 1) so
         the windows always hold the last [length] tuples of each side. *)
      let left = Window.create ~length ~slide:1 in
      let right = Window.create ~length ~slide:1 in
      fun (t : Tuple.t) ->
        let own, other = if t.Tuple.tag = 0 then (left, right) else (right, left) in
        let probe_value = Tuple.value t index in
        let matches =
          List.filter_map
            (fun (candidate : Tuple.t) ->
              let v = Tuple.value candidate index in
              if Float.abs (probe_value -. v) <= band then
                Some
                  (Tuple.make ~ts:t.Tuple.ts ~key:t.Tuple.key ~tag:t.Tuple.tag
                     [| probe_value; v |])
              else None)
            (Window.contents other)
        in
        ignore (Window.push own t);
        matches)

let count_by_key () =
  (* Migratable: the per-key running count round-trips through the keyed
     state encoding as a singleton vector, so live resizing preserves
     counts across the replica handoff. *)
  Behavior.make_migratable ~name:"count_by_key" (fun () ->
      let counts = Hashtbl.create 64 in
      {
        Behavior.mfn =
          (fun (t : Tuple.t) ->
            let c =
              1 + Option.value ~default:0 (Hashtbl.find_opt counts t.Tuple.key)
            in
            Hashtbl.replace counts t.Tuple.key c;
            [
              Tuple.make ~ts:t.Tuple.ts ~key:t.Tuple.key ~tag:t.Tuple.tag
                [| float_of_int c |];
            ]);
        export_state =
          (fun () ->
            Hashtbl.fold
              (fun k c acc -> (k, [| float_of_int c |]) :: acc)
              counts []);
        import_state =
          List.iter (fun (k, v) ->
              if Array.length v > 0 then
                Hashtbl.replace counts k (int_of_float v.(0)));
      })

let dedup ?(memory = 1024) () =
  Behavior.make ~state_kind:Behavior.Partitioned_op
    ~name:(Printf.sprintf "dedup_%d" memory)
    (fun () ->
      let seen = Hashtbl.create 64 in
      let order = Queue.create () in
      fun (t : Tuple.t) ->
        if Hashtbl.mem seen t.Tuple.key then []
        else begin
          Hashtbl.replace seen t.Tuple.key ();
          Queue.push t.Tuple.key order;
          if Queue.length order > memory then
            Hashtbl.remove seen (Queue.pop order);
          [ t ]
        end)
