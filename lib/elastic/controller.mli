(** A dynamic-adaptation baseline: threshold-based elasticity in the style
    of Dhalion/elastic-scaling systems (paper §1 and §6).

    The paper argues that run-time elasticity, while indispensable for
    variable workloads, pays a real price on a {e stable} workload — repeated
    reconfigurations with state-migration downtime before converging to the
    configuration SpinStreams computes statically. This module makes that
    argument measurable: a reactive controller observes per-operator
    utilization over fixed epochs (simulated on {!Ss_sim.Engine}) and
    resizes replica counts between epochs, paying a configurable downtime
    for every reconfiguration.

    Policy (per epoch, per replicable non-source operator): when the busiest
    replica's utilization exceeds [scale_up_threshold], the degree becomes
    [ceil (n * utilization / target_utilization)]; when it falls below
    [scale_down_threshold] and [n > 1], the degree shrinks by the same
    proportional rule. Stateful operators are never resized. *)

type policy = {
  target_utilization : float;  (** Default 0.7. *)
  scale_up_threshold : float;  (** Default 0.9. *)
  scale_down_threshold : float;  (** Default 0.3. *)
  max_replicas_per_operator : int;  (** Default 64. *)
}

val default_policy : policy

type change = { vertex : int; before : int; after : int }

type epoch = {
  index : int;  (** 0-based. *)
  configuration : Ss_topology.Topology.t;
      (** Topology (replica counts) in force during this epoch. *)
  throughput : float;  (** Measured during the epoch. *)
  effective_throughput : float;
      (** Throughput after charging the reconfiguration downtime that
          preceded the epoch. *)
  changes : change list;
      (** Resizing decisions taken {e at the end} of this epoch. *)
}

type run = {
  epochs : epoch list;
  converged_at : int option;
      (** First epoch from which no further change happens. *)
  final : Ss_topology.Topology.t;
  items_processed : float;
      (** Sum over epochs of effective throughput x epoch length. *)
  horizon : float;  (** Total wall-clock modeled: epochs x epoch length. *)
}

val run :
  ?policy:policy ->
  ?epoch_length:float ->
  ?reconfiguration_downtime:float ->
  ?max_epochs:int ->
  ?seed:int ->
  Ss_topology.Topology.t ->
  run
(** [run topology] starts from the given replica counts (typically all 1)
    and adapts for [max_epochs] (default 20) epochs of [epoch_length]
    (default 10) simulated seconds, charging [reconfiguration_downtime]
    (default 2) seconds of stalled processing after every epoch whose
    controller produced at least one change. *)

val pp : Format.formatter -> run -> unit

(** {2 Live elasticity}

    The same threshold policy, closed over a {e running}
    {!Ss_runtime.Executor.Live} deployment instead of the simulator:
    utilization comes from live telemetry windows, reconfigurations are
    drain-and-swap operations against the running actors, and the downtime
    charged per epoch is the {e measured} wall-clock cost of those swaps —
    the end-to-end realization of the elasticity-vs-static argument. *)

type live_epoch = {
  index : int;  (** 0-based. *)
  duration : float;  (** Measured epoch wall-clock, seconds. *)
  rate : float;  (** Source tuples per second during the epoch. *)
  downtime : float;
      (** Measured reconfiguration downtime accumulated across this epoch
          (including the swaps applied at its end), seconds. *)
  utilization : float array;
      (** Per vertex: estimated busy fraction over the epoch —
          sampled-service-time sum scaled by the telemetry stride, divided
          by [duration x degree]. Always finite; can exceed 1 under
          sampling noise. *)
  degrees : int array;  (** Applied parallelism degrees during the epoch. *)
  workers : int;  (** Active pool workers at the end of the epoch. *)
  changes : change list;
      (** Resizes decided (and applied) at the end of this epoch. *)
}

type live_run = {
  epochs : live_epoch list;
  final_degrees : int array;
  total_downtime : float;
      (** Sum of measured per-swap downtime, seconds. *)
  converged_at : int option;
      (** First epoch from which no further change happened. *)
  metrics : Ss_runtime.Executor.metrics;
      (** Final metrics of the deployment ({!Ss_runtime.Executor.Live.stop}
          is called when the loop ends). *)
}

val decide_measured :
  policy ->
  elastic:bool array ->
  degrees:int array ->
  utilization:float array ->
  change list
(** The threshold rule on measured utilization: vertices with
    [elastic.(v) = false] are never resized; non-finite utilization reads
    as 0 (idle). Exposed for tests. *)

val run_live :
  ?policy:policy ->
  ?epoch_length:float ->
  ?max_epochs:int ->
  ?settle:int ->
  ?apply_timeout:float ->
  Ss_runtime.Executor.Live.t ->
  live_run
(** [run_live live] drives the deployment for up to [max_epochs] (default
    10) epochs of [epoch_length] (default 0.5) wall-clock seconds: each
    epoch it diffs the live telemetry aggregate
    ({!Ss_telemetry.Telemetry.delta}), estimates per-vertex utilization,
    applies the threshold policy via {!Ss_runtime.Executor.Live.resize},
    and grows or shrinks the worker pool along with the total degree. The
    loop exits early after [settle] (default 2) consecutive change-free
    epochs, then stops the deployment and returns its final metrics.
    [apply_timeout] (default 5) bounds the wait for an asynchronous swap to
    be applied. The controller never resizes the source.
    @raise Invalid_argument on non-positive [epoch_length], [max_epochs] or
    [settle], or if the deployment was started with telemetry disabled. *)

val pp_live : Format.formatter -> live_run -> unit
