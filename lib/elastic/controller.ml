open Ss_topology

type policy = {
  target_utilization : float;
  scale_up_threshold : float;
  scale_down_threshold : float;
  max_replicas_per_operator : int;
}

let default_policy =
  {
    target_utilization = 0.7;
    scale_up_threshold = 0.9;
    scale_down_threshold = 0.3;
    max_replicas_per_operator = 64;
  }

type change = { vertex : int; before : int; after : int }

type epoch = {
  index : int;
  configuration : Topology.t;
  throughput : float;
  effective_throughput : float;
  changes : change list;
}

type run = {
  epochs : epoch list;
  converged_at : int option;
  final : Topology.t;
  items_processed : float;
  horizon : float;
}

(* Proportional resizing toward the target utilization (the rule used by
   threshold-based elastic scalers). *)
let decide policy topology (measured : Ss_sim.Engine.result) =
  let src = Topology.source topology in
  List.filter_map
    (fun v ->
      let op = Topology.operator topology v in
      if v = src || not (Operator.can_replicate op) then None
      else
        let utilization = measured.Ss_sim.Engine.stats.(v).Ss_sim.Engine.busy_fraction in
        let n = op.Operator.replicas in
        let resized =
          int_of_float
            (Float.ceil (float_of_int n *. utilization /. policy.target_utilization))
        in
        let n' =
          if utilization > policy.scale_up_threshold then
            min policy.max_replicas_per_operator (max (n + 1) resized)
          else if utilization < policy.scale_down_threshold && n > 1 then
            max 1 resized
          else n
        in
        if n' <> n then Some { vertex = v; before = n; after = n' } else None)
    (List.init (Topology.size topology) Fun.id)

let apply_changes topology changes =
  Topology.map_operators topology (fun v op ->
      match List.find_opt (fun c -> c.vertex = v) changes with
      | Some c -> Operator.with_replicas op c.after
      | None -> op)

let run ?(policy = default_policy) ?(epoch_length = 10.0)
    ?(reconfiguration_downtime = 2.0) ?(max_epochs = 20) ?(seed = 42) topology =
  if epoch_length <= reconfiguration_downtime then
    invalid_arg "Controller.run: epoch must outlast the reconfiguration downtime";
  let rec go index configuration pending_downtime acc =
    if index >= max_epochs then List.rev acc
    else begin
      let config =
        {
          Ss_sim.Engine.default_config with
          Ss_sim.Engine.warmup = epoch_length /. 5.0;
          measure = epoch_length;
          seed = seed + index;
        }
      in
      let measured = Ss_sim.Engine.run ~config configuration in
      let throughput = measured.Ss_sim.Engine.throughput in
      let effective_throughput =
        throughput *. (epoch_length -. pending_downtime) /. epoch_length
      in
      let changes = decide policy configuration measured in
      let epoch =
        { index; configuration; throughput; effective_throughput; changes }
      in
      let next_configuration =
        if changes = [] then configuration
        else apply_changes configuration changes
      in
      let next_downtime =
        if changes = [] then 0.0 else reconfiguration_downtime
      in
      go (index + 1) next_configuration next_downtime (epoch :: acc)
    end
  in
  let epochs = go 0 topology 0.0 [] in
  let converged_at =
    (* First epoch from which every later epoch (itself included) is
       change-free. *)
    let rec scan best = function
      | [] -> best
      | e :: rest ->
          if e.changes = [] then
            scan (match best with None -> Some e.index | some -> some) rest
          else scan None rest
    in
    scan None epochs
  in
  let final =
    match List.rev epochs with
    | last :: _ ->
        if last.changes = [] then last.configuration
        else apply_changes last.configuration last.changes
    | [] -> topology
  in
  {
    epochs;
    converged_at;
    final;
    items_processed =
      List.fold_left
        (fun acc e -> acc +. (e.effective_throughput *. epoch_length))
        0.0 epochs;
    horizon = float_of_int (List.length epochs) *. epoch_length;
  }

(* ------------------------------------------------------------------ *)
(* Live control loop: same threshold policy, but measurements come from a
   running Executor.Live deployment and reconfigurations are applied to it
   between epochs, so the downtime charged is the measured wall-clock cost
   of the drain-and-swap rather than a modeled constant. *)

module Live = Ss_runtime.Executor.Live

type live_epoch = {
  index : int;
  duration : float;
  rate : float;
  downtime : float;
  utilization : float array;
  degrees : int array;
  workers : int;
  changes : change list;
}

type live_run = {
  epochs : live_epoch list;
  final_degrees : int array;
  total_downtime : float;
  converged_at : int option;
  metrics : Ss_runtime.Executor.metrics;
}

let decide_measured policy ~elastic ~degrees ~utilization =
  List.filter_map
    (fun v ->
      if not elastic.(v) then None
      else
        let u =
          if Float.is_finite utilization.(v) then utilization.(v) else 0.0
        in
        let d = degrees.(v) in
        let resized =
          int_of_float
            (Float.ceil (float_of_int d *. u /. policy.target_utilization))
        in
        let d' =
          if u > policy.scale_up_threshold then
            min policy.max_replicas_per_operator (max (d + 1) resized)
          else if u < policy.scale_down_threshold && d > 1 then max 1 resized
          else d
        in
        if d' <> d then Some { vertex = v; before = d; after = d' } else None)
    (List.init (Array.length degrees) Fun.id)

let utilization_of ~sample ~duration ~degrees
    (window : Ss_telemetry.Telemetry.report) =
  Array.mapi
    (fun v h ->
      (* Only every [sample]-th invocation is timed, so the recorded sum
         underestimates total busy time by that factor. *)
      let busy = Ss_telemetry.Histogram.sum h *. float_of_int sample in
      let cap = duration *. float_of_int (max 1 degrees.(v)) in
      let u = if cap > 0.0 then busy /. cap else 0.0 in
      if Float.is_finite u then u else 0.0)
    window.Ss_telemetry.Telemetry.service

let run_live ?(policy = default_policy) ?(epoch_length = 0.5)
    ?(max_epochs = 10) ?(settle = 2) ?(apply_timeout = 5.0) live =
  if epoch_length <= 0.0 then
    invalid_arg "Controller.run_live: epoch_length must be positive";
  if max_epochs < 1 then
    invalid_arg "Controller.run_live: max_epochs must be >= 1";
  if settle < 1 then invalid_arg "Controller.run_live: settle must be >= 1";
  let telemetry () =
    match Live.telemetry live with
    | Some r -> r
    | None ->
        invalid_arg
          "Controller.run_live: the deployment was started without telemetry"
  in
  let topo = Live.topology live in
  let src = Topology.source topo in
  let elastic = Live.elastic live in
  elastic.(src) <- false;
  let sample = Live.telemetry_sample live in
  let rec go index prev_report prev_produced prev_downtime settled acc =
    if index >= max_epochs || settled >= settle then List.rev acc
    else begin
      let t0 = Unix.gettimeofday () in
      Unix.sleepf epoch_length;
      let report = telemetry () in
      let duration = Unix.gettimeofday () -. t0 in
      let produced = Live.produced live in
      let degrees = Live.degrees live in
      let window = Ss_telemetry.Telemetry.delta ~since:prev_report report in
      let rate = float_of_int (produced.(src) - prev_produced) /. duration in
      let utilization = utilization_of ~sample ~duration ~degrees window in
      let changes = decide_measured policy ~elastic ~degrees ~utilization in
      List.iter
        (fun c -> ignore (Live.resize live ~vertex:c.vertex c.after))
        changes;
      (* Grow (or give back) pool capacity along with the operator degrees,
         drawing on the dormant reserve. *)
      let dw = List.fold_left (fun a c -> a + c.after - c.before) 0 changes in
      if dw > 0 then ignore (Live.add_workers live dw)
      else if dw < 0 then ignore (Live.retire_workers live (-dw));
      (* The swap is asynchronous (the emitter applies it between bursts):
         wait for it so the next epoch measures the new configuration. *)
      if changes <> [] then begin
        let deadline = Unix.gettimeofday () +. apply_timeout in
        let applied () =
          let d = Live.degrees live in
          List.for_all (fun c -> d.(c.vertex) = c.after) changes
        in
        while (not (applied ())) && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.001
        done
      end;
      let downtime_now = Live.total_downtime live in
      let e =
        {
          index;
          duration;
          rate;
          downtime = downtime_now -. prev_downtime;
          utilization;
          degrees;
          workers = Live.active_workers live;
          changes;
        }
      in
      let settled' = if changes = [] then settled + 1 else 0 in
      go (index + 1) report produced.(src) downtime_now settled' (e :: acc)
    end
  in
  let initial_report = telemetry () in
  let initial_produced = (Live.produced live).(Topology.source topo) in
  let epochs =
    go 0 initial_report initial_produced (Live.total_downtime live) 0 []
  in
  let final_degrees = Live.degrees live in
  let total_downtime = Live.total_downtime live in
  let converged_at =
    let rec scan best = function
      | [] -> best
      | e :: rest ->
          if e.changes = [] then
            scan (match best with None -> Some e.index | some -> some) rest
          else scan None rest
    in
    scan None epochs
  in
  let metrics = Live.stop live in
  { epochs; final_degrees; total_downtime; converged_at; metrics }

let pp_live ppf t =
  Format.fprintf ppf "@[<v>live elastic run (%d epochs):@,"
    (List.length t.epochs);
  List.iter
    (fun e ->
      Format.fprintf ppf
        "  epoch %2d: %8.1f t/s, %2d workers, downtime %6.2f ms%s@," e.index
        e.rate e.workers (e.downtime *. 1000.0)
        (if e.changes = [] then ""
         else
           " resize "
           ^ String.concat ", "
               (List.map
                  (fun c ->
                    Printf.sprintf "v%d:%d->%d" c.vertex c.before c.after)
                  e.changes)))
    t.epochs;
  (match t.converged_at with
  | Some i -> Format.fprintf ppf "converged at epoch %d@," i
  | None -> Format.fprintf ppf "did not converge within the horizon@,");
  Format.fprintf ppf "final degrees: %s@,"
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.final_degrees)));
  Format.fprintf ppf "total measured downtime: %.2f ms@]"
    (t.total_downtime *. 1000.0)

let pp ppf (t : run) =
  Format.fprintf ppf "@[<v>elastic run (%d epochs, horizon %.0fs):@,"
    (List.length t.epochs) t.horizon;
  List.iter
    (fun (e : epoch) ->
      Format.fprintf ppf
        "  epoch %2d: %8.1f t/s (effective %8.1f)%s@," e.index e.throughput
        e.effective_throughput
        (if e.changes = [] then ""
         else
           " resize "
           ^ String.concat ", "
               (List.map
                  (fun c -> Printf.sprintf "v%d:%d->%d" c.vertex c.before c.after)
                  e.changes)))
    t.epochs;
  (match t.converged_at with
  | Some i -> Format.fprintf ppf "converged at epoch %d@," i
  | None -> Format.fprintf ppf "did not converge within the horizon@,");
  Format.fprintf ppf "items processed: %.0f@]" t.items_processed
