open Ss_prelude

type spec = {
  arity : int;
  keys : Discrete.t;
  tags : int;
  value_dist : Dist.t;
  rate : float;
}

let default_spec =
  {
    arity = 2;
    keys = Discrete.uniform 64;
    tags = 1;
    value_dist = Dist.Uniform (0.0, 1.0);
    rate = 1000.0;
  }

let draw spec rng i =
  let ts = float_of_int i /. spec.rate in
  let key = Discrete.sample rng spec.keys in
  let tag = if spec.tags <= 1 then 0 else Rng.int rng spec.tags in
  let values =
    Array.init spec.arity (fun _ -> Dist.sample rng spec.value_dist)
  in
  Ss_operators.Tuple.make ~ts ~key ~tag values

let tuples ?(spec = default_spec) rng n = List.init n (draw spec rng)

let sequence ?(spec = default_spec) rng =
  let rec from i () = Seq.Cons (draw spec rng i, from (i + 1)) in
  from 0

(* --- disordered arrival ------------------------------------------- *)

type disorder =
  | In_order
  | Zipf_delay of { alpha : float; max_delay : int }
  | Bursty of { burst : int; period : int }

let parse_disorder s =
  match String.split_on_char ':' (String.lowercase_ascii s) with
  | [ "none" ] | [ "in_order" ] -> Ok In_order
  | [ "zipf"; a; d ] -> (
      match (float_of_string_opt a, int_of_string_opt d) with
      | Some alpha, Some max_delay when alpha >= 0.0 && max_delay >= 0 ->
          Ok (Zipf_delay { alpha; max_delay })
      | _ -> Error (Printf.sprintf "invalid zipf disorder %S" s))
  | [ "bursty"; b; p ] -> (
      match (int_of_string_opt b, int_of_string_opt p) with
      | Some burst, Some period when burst >= 1 && period >= 1 ->
          Ok (Bursty { burst; period })
      | _ -> Error (Printf.sprintf "invalid bursty disorder %S" s))
  | _ ->
      Error
        (Printf.sprintf
           "unknown disorder %S (expected none, zipf:ALPHA:MAX or \
            bursty:BURST:PERIOD)"
           s)

let disorder_to_string = function
  | In_order -> "none"
  | Zipf_delay { alpha; max_delay } ->
      Printf.sprintf "zipf:%g:%d" alpha max_delay
  | Bursty { burst; period } -> Printf.sprintf "bursty:%d:%d" burst period

(* Per-tuple arrival delay in positions; position [i + delay i] sorted
   stably reconstructs the arrival order. Stability keeps equal arrival
   positions in emission order, so [In_order] (all delays 0) is the
   identity and the whole permutation is a pure function of the seed. *)
let reorder rng disorder ts =
  match disorder with
  | In_order -> ts
  | _ ->
      let delay =
        match disorder with
        | In_order -> fun _ -> 0
        | Zipf_delay { alpha; max_delay } ->
            if max_delay = 0 then fun _ -> 0
            else begin
              (* Rank 0 (no delay) is the most likely outcome; the tail
                 thins polynomially, so most tuples arrive in order while
                 a heavy minority straggles far behind. *)
              let law = Discrete.zipf ~alpha (max_delay + 1) in
              fun _ -> Discrete.sample rng law
            end
        | Bursty { burst; period } ->
            (* Every [period]-th stretch: its first [burst] tuples are held
               back and released together once the next [burst] tuples have
               passed them — a queue hiccup with clustered stragglers. *)
            fun i ->
              if i mod period < burst then (2 * burst) - (i mod period) else 0
      in
      let arr =
        List.mapi (fun i t -> (i + delay i, i, t)) ts |> Array.of_list
      in
      Array.sort
        (fun (a, i, _) (b, j, _) ->
          if a <> b then compare a b else compare i j)
        arr;
      Array.to_list arr |> List.map (fun (_, _, t) -> t)

let disorder_fraction ts =
  let late = ref 0 and total = ref 0 and max_ts = ref neg_infinity in
  List.iter
    (fun (t : Ss_operators.Tuple.t) ->
      incr total;
      if t.Ss_operators.Tuple.ts < !max_ts then incr late;
      if t.Ss_operators.Tuple.ts > !max_ts then max_ts := t.Ss_operators.Tuple.ts)
    ts;
  if !total = 0 then 0.0 else float_of_int !late /. float_of_int !total
