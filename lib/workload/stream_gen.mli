(** Synthetic tuple-stream generation for profiling, the runtime examples
    and the tests. *)

open Ss_prelude

type spec = {
  arity : int;  (** Values per tuple (default 2). *)
  keys : Discrete.t;  (** Key-group frequency law (default uniform 64). *)
  tags : int;  (** Number of sub-streams; tags drawn uniformly (default 1). *)
  value_dist : Dist.t;  (** Per-value law (default uniform [\[0,1)]). *)
  rate : float;
      (** Nominal emission rate in tuples/second, used to advance the
          timestamps (default 1000). *)
}

val default_spec : spec

val tuples : ?spec:spec -> Rng.t -> int -> Ss_operators.Tuple.t list
(** [tuples rng n] draws [n] tuples with increasing timestamps. *)

val sequence : ?spec:spec -> Rng.t -> Ss_operators.Tuple.t Seq.t
(** Unbounded lazy stream (each element is drawn on demand). *)

(** Arrival-order perturbation for event-time workloads: how far each
    tuple's arrival position trails its emission position. *)
type disorder =
  | In_order  (** Identity: arrival order = timestamp order. *)
  | Zipf_delay of { alpha : float; max_delay : int }
      (** Each tuple is delayed by a Zipf-distributed number of positions
          in [\[0, max_delay\]] (rank 0 most likely): most tuples stay in
          order, a polynomially-thinning tail straggles far behind. *)
  | Bursty of { burst : int; period : int }
      (** Every [period] tuples, the first [burst] of the stretch are held
          back and released together after it — a periodic queue hiccup
          producing clustered reordering. *)

val reorder :
  Rng.t -> disorder -> Ss_operators.Tuple.t list -> Ss_operators.Tuple.t list
(** [reorder rng d ts] permutes the emission-ordered stream [ts] into its
    arrival order under disorder model [d]. Deterministic in the Rng seed
    (stable sort on perturbed positions), preserves multiplicity, and
    [In_order] is the identity. *)

val disorder_fraction : Ss_operators.Tuple.t list -> float
(** Fraction of tuples arriving with a timestamp strictly below the
    running maximum — the out-of-order rate an event-time operator
    actually experiences. [0.] on the empty list. *)

val parse_disorder : string -> (disorder, string) result
(** Parse ["none"], ["zipf:ALPHA:MAX"] or ["bursty:BURST:PERIOD"] (the CLI
    syntax). *)

val disorder_to_string : disorder -> string
(** Inverse of {!parse_disorder}. *)
