exception Corrupt of string

type fsync = Never | Every of int | Interval of float

type config = {
  partitions : int;
  segment_bytes : int;
  fsync : fsync;
  index_interval : int;
}

let default_config =
  {
    partitions = 4;
    segment_bytes = 4 * 1024 * 1024;
    fsync = Every 256;
    index_interval = 64;
  }

(* One segment file. [index] is the sparse offset index — [(offset, byte
   position)] for every [index_interval]-th record, newest entry first —
   rebuilt from the frame scan on open and extended on append. All fields
   mutate only under the owning partition's lock; readers snapshot what
   they need while holding it. *)
type segment = {
  base : int;
  path : string;
  mutable records : int;
  mutable size : int;
  mutable index : (int * int) list;
}

type partition = {
  pid : int;
  mutable sealed : segment list; (* oldest first *)
  mutable active : segment;
  mutable fd : Unix.file_descr; (* append descriptor of [active] *)
  mutable next : int; (* next offset to assign *)
  mutable dirty : int; (* records appended since the last fsync *)
  mutable last_sync : float;
  lock : Mutex.t;
}

type t = {
  dir : string;
  cfg : config;
  parts : partition array;
  mutable torn : int;
  mutable closed : bool;
}

let dir t = t.dir
let partitions t = Array.length t.parts

let ensure_open t op =
  if t.closed then invalid_arg (Printf.sprintf "Log.%s: log is closed" op)

let segment_path pdir base = Filename.concat pdir (Printf.sprintf "%020d.seg" base)

let with_lock p f =
  Mutex.lock p.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock p.lock) f

let read_whole_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      let b = Bytes.create size in
      let got = ref 0 in
      let eof = ref false in
      while !got < size && not !eof do
        let n = Unix.read fd b !got (size - !got) in
        if n = 0 then eof := true else got := !got + n
      done;
      (b, !got))

(* Rebuild a segment's in-memory state from its frames. Returns the
   segment and whether a torn tail was truncated away. [last] says this is
   the partition's final segment — the only place where invalid trailing
   bytes are a legitimate crash artifact rather than corruption. *)
let recover_segment ~cfg ~last ~base path =
  let b, len = read_whole_file path in
  let scan = Log_io.scan_frames b len in
  if scan.Log_io.scan_torn then begin
    if not last then
      raise
        (Corrupt
           (Printf.sprintf "%s: invalid bytes at %d in a non-final segment"
              path scan.Log_io.scan_valid));
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.ftruncate fd scan.Log_io.scan_valid;
        Unix.fsync fd)
  end;
  let index = ref [] in
  Array.iteri
    (fun i pos ->
      if i mod cfg.index_interval = 0 then index := (base + i, pos) :: !index)
    scan.Log_io.scan_positions;
  ( {
      base;
      path;
      records = scan.Log_io.scan_records;
      size = scan.Log_io.scan_valid;
      index = !index;
    },
    scan.Log_io.scan_torn )

let open_partition ~cfg ~pdir pid =
  Log_io.mkdir_p pdir;
  let bases =
    Sys.readdir pdir |> Array.to_list
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".seg" then
             int_of_string_opt (Filename.chop_suffix f ".seg")
           else None)
    |> List.sort compare
  in
  let torn = ref 0 in
  let segments =
    match bases with
    | [] ->
        let path = segment_path pdir 0 in
        Unix.close (Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644);
        [ { base = 0; path; records = 0; size = 0; index = [] } ]
    | bases ->
        let count = List.length bases in
        List.mapi
          (fun i base ->
            let seg, was_torn =
              recover_segment ~cfg ~last:(i = count - 1) ~base
                (segment_path pdir base)
            in
            if was_torn then incr torn;
            seg)
          bases
  in
  (* Offsets must be dense across segments: each base is the previous
     base plus its record count. A gap means a lost or foreign file. *)
  let rec check = function
    | a :: (b :: _ as rest) ->
        if b.base <> a.base + a.records then
          raise
            (Corrupt
               (Printf.sprintf
                  "%s: segment %d follows %d which holds %d records" pdir
                  b.base a.base a.records));
        check rest
    | _ -> ()
  in
  check segments;
  let rec split acc = function
    | [ last ] -> (List.rev acc, last)
    | x :: rest -> split (x :: acc) rest
    | [] -> assert false
  in
  let sealed, active = split [] segments in
  let fd = Unix.openfile active.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  ( {
      pid;
      sealed;
      active;
      fd;
      next = active.base + active.records;
      dirty = 0;
      last_sync = Unix.gettimeofday ();
      lock = Mutex.create ();
    },
    !torn )

let meta_path dir = Filename.concat dir "meta"

let create ?(config = default_config) dir =
  if config.partitions < 1 then invalid_arg "Log.create: partitions must be >= 1";
  if config.segment_bytes < 64 then
    invalid_arg "Log.create: segment_bytes must be >= 64";
  if config.index_interval < 1 then
    invalid_arg "Log.create: index_interval must be >= 1";
  (match config.fsync with
  | Every n when n < 1 -> invalid_arg "Log.create: Every n requires n >= 1"
  | Interval s when not (Float.is_finite s && s > 0.0) ->
      invalid_arg "Log.create: Interval s requires a positive duration"
  | _ -> ());
  Log_io.mkdir_p dir;
  Log_io.mkdir_p (Filename.concat dir "groups");
  let npartitions =
    if Sys.file_exists (meta_path dir) then begin
      let ic = open_in (meta_path dir) in
      let line = Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input_line ic) in
      match String.split_on_char '=' (String.trim line) with
      | [ "partitions"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 1 -> n
          | _ -> raise (Corrupt (meta_path dir ^ ": bad partition count")))
      | _ -> raise (Corrupt (meta_path dir ^ ": unrecognized meta file"))
    end
    else begin
      Log_io.atomic_write_file (meta_path dir)
        (Printf.sprintf "partitions=%d\n" config.partitions);
      config.partitions
    end
  in
  let torn = ref 0 in
  let parts =
    Array.init npartitions (fun p ->
        let part, t =
          open_partition ~cfg:config
            ~pdir:(Filename.concat dir (Printf.sprintf "p%d" p))
            p
        in
        torn := !torn + t;
        part)
  in
  { dir; cfg = config; parts; torn = !torn; closed = false }

let torn_tails_recovered t = t.torn

let part t p =
  if p < 0 || p >= Array.length t.parts then
    invalid_arg (Printf.sprintf "Log: unknown partition %d" p);
  t.parts.(p)

let partition_of_key t key =
  let n = Array.length t.parts in
  ((key mod n) + n) mod n

let end_offset t ~partition = (part t partition).next

let size_bytes t =
  Array.fold_left
    (fun acc p ->
      acc + p.active.size
      + List.fold_left (fun a s -> a + s.size) 0 p.sealed)
    0 t.parts

(* --- appends ------------------------------------------------------- *)

let write_all fd b len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd b !written (len - !written)
  done

let fsync_locked p =
  if p.dirty > 0 then begin
    Unix.fsync p.fd;
    p.dirty <- 0;
    p.last_sync <- Unix.gettimeofday ()
  end

let policy_fsync ~cfg p =
  match cfg.fsync with
  | Never -> ()
  | Every n -> if p.dirty >= n then fsync_locked p
  | Interval s ->
      if Unix.gettimeofday () -. p.last_sync >= s then fsync_locked p

(* Seal the active segment and start a fresh one at the current offset.
   The sealed file is fsynced so recovery never finds a torn tail in a
   non-final segment. *)
let roll_locked ~pdir p =
  Unix.fsync p.fd;
  p.dirty <- 0;
  Unix.close p.fd;
  p.sealed <- p.sealed @ [ p.active ];
  let path = segment_path pdir p.next in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  p.active <- { base = p.next; path; records = 0; size = 0; index = [] };
  p.fd <- fd

let append_batch t ~partition payloads =
  ensure_open t "append";
  match payloads with
  | [] -> invalid_arg "Log.append_batch: empty batch"
  | payloads ->
      let p = part t partition in
      let pdir = Filename.concat t.dir (Printf.sprintf "p%d" partition) in
      with_lock p (fun () ->
          if p.active.size >= t.cfg.segment_bytes then roll_locked ~pdir p;
          let first = p.next in
          let buf = Buffer.create 4096 in
          List.iter
            (fun payload ->
              let off = p.next and pos = p.active.size + Buffer.length buf in
              if (off - p.active.base) mod t.cfg.index_interval = 0 then
                p.active.index <- (off, pos) :: p.active.index;
              Log_io.frame buf payload;
              p.next <- p.next + 1)
            payloads;
          let b = Buffer.to_bytes buf in
          write_all p.fd b (Bytes.length b);
          p.active.size <- p.active.size + Bytes.length b;
          p.active.records <- p.active.records + List.length payloads;
          p.dirty <- p.dirty + List.length payloads;
          policy_fsync ~cfg:t.cfg p;
          first)

let append_to t ~partition payload = append_batch t ~partition [ payload ]

let append t ?(key = 0) payload =
  let partition = partition_of_key t key in
  (partition, append_to t ~partition payload)

let sync t =
  ensure_open t "sync";
  Array.iter (fun p -> with_lock p (fun () -> fsync_locked p)) t.parts

let close t =
  if not t.closed then begin
    Array.iter
      (fun p ->
        with_lock p (fun () ->
            fsync_locked p;
            Unix.close p.fd))
      t.parts;
    t.closed <- true
  end

(* --- reads --------------------------------------------------------- *)

(* Snapshot (under the partition lock) everything a read needs, then do
   the file I/O lock-free on a private descriptor: segment sizes only
   grow and bytes below the snapshot size are immutable, so the read sees
   a consistent record-aligned prefix even while appends continue. *)
type read_plan = {
  rp_path : string;
  rp_start_off : int; (* offset of the record at [rp_start_pos] *)
  rp_start_pos : int;
  rp_limit : int; (* bytes of valid segment prefix *)
  rp_seg_end : int; (* first offset past the segment's snapshot *)
}

let plan_read t ~partition ~from =
  let p = part t partition in
  with_lock p (fun () ->
      if from >= p.next then None
      else
        let seg =
          if from >= p.active.base then p.active
          else
            List.find
              (fun s -> from >= s.base && from < s.base + s.records)
              p.sealed
        in
        let start_off, start_pos =
          (* Newest-first sparse index: the first entry at or below [from]
             is the closest; fall back to the segment start. *)
          match List.find_opt (fun (off, _) -> off <= from) seg.index with
          | Some e -> e
          | None -> (seg.base, 0)
        in
        Some
          {
            rp_path = seg.path;
            rp_start_off = start_off;
            rp_start_pos = start_pos;
            rp_limit = seg.size;
            rp_seg_end = seg.base + seg.records;
          })

let read t ~partition ~from ?(max_records = 256) () =
  ensure_open t "read";
  if from < 0 then invalid_arg "Log.read: from must be >= 0";
  if max_records < 1 then invalid_arg "Log.read: max_records must be >= 1";
  match plan_read t ~partition ~from with
  | None -> []
  | Some rp ->
      let want = min max_records (rp.rp_seg_end - from) in
      let fd = Unix.openfile rp.rp_path [ Unix.O_RDONLY ] 0 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          ignore (Unix.lseek fd rp.rp_start_pos Unix.SEEK_SET : int);
          let limit = rp.rp_limit - rp.rp_start_pos in
          (* Chunked read: start small and grow until the wanted records
             are in core — replay then costs O(bytes) instead of
             re-reading the whole segment per batch. *)
          let parse chunk =
            let b = Bytes.create chunk in
            let got = ref 0 in
            let eof = ref false in
            while !got < chunk && not !eof do
              let n = Unix.read fd b !got (chunk - !got) in
              if n = 0 then eof := true else got := !got + n
            done;
            let acc = ref [] in
            let taken = ref 0 in
            let off = ref rp.rp_start_off in
            let pos = ref 0 in
            let continue = ref true in
            while !continue && !taken < want do
              match Log_io.read_frame b ~pos:!pos ~len:!got with
              | None -> continue := false (* need a bigger chunk *)
              | Some (next_pos, payload) ->
                  if !off >= from then begin
                    acc := (!off, payload) :: !acc;
                    incr taken
                  end;
                  incr off;
                  pos := next_pos
            done;
            if !taken >= want then Some (List.rev !acc) else None
          in
          let rec go chunk =
            let chunk = min chunk limit in
            match parse chunk with
            | Some records -> records
            | None when chunk >= limit ->
                (* The snapshot is record-aligned, so this cannot happen:
                   [want] records fit in [limit] bytes by construction. *)
                assert false
            | None ->
                ignore (Unix.lseek fd rp.rp_start_pos Unix.SEEK_SET : int);
                go (chunk * 4)
          in
          go (min 65536 limit))

(* --- consumer groups ----------------------------------------------- *)

let group_dir t group = Filename.concat (Filename.concat t.dir "groups") group

let offset_path t group partition =
  Filename.concat (group_dir t group) (Printf.sprintf "p%d.offset" partition)

let committed t ~group ~partition =
  ensure_open t "committed";
  ignore (part t partition : partition);
  let path = offset_path t group partition in
  if not (Sys.file_exists path) then 0
  else
    let ic = open_in path in
    let line =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> try input_line ic with End_of_file -> "")
    in
    (* A malformed position replays from the start — the safe direction
       for at-least-once delivery. Unreachable in practice: commits are
       atomic whole-file writes. *)
    match int_of_string_opt (String.trim line) with
    | Some n when n >= 0 -> n
    | _ -> 0

let commit t ~group ~partition next =
  ensure_open t "commit";
  ignore (part t partition : partition);
  if next < 0 then invalid_arg "Log.commit: offset must be >= 0";
  Log_io.mkdir_p (group_dir t group);
  Log_io.atomic_write_file
    (offset_path t group partition)
    (string_of_int next ^ "\n")

let groups t =
  ensure_open t "groups";
  let gdir = Filename.concat t.dir "groups" in
  if not (Sys.file_exists gdir) then []
  else
    Sys.readdir gdir |> Array.to_list
    |> List.filter (fun g -> Sys.is_directory (Filename.concat gdir g))
    |> List.sort compare
