(** Binary serialization of stream tuples for log payloads. The format is
    fixed-width little-endian — [ts:f64][key:i64][tag:i64][arity:u16]
    [values:f64 × arity] — so a record's size is [26 + 8 × arity] bytes
    and decoding allocates only the tuple itself. *)

exception Malformed of string
(** Raised by {!decode} on a payload that is not a well-formed tuple
    (wrong size for its declared arity, or too short for the header). *)

val encoded_size : Ss_operators.Tuple.t -> int
val encode : Ss_operators.Tuple.t -> Bytes.t

val decode : Bytes.t -> Ss_operators.Tuple.t
(** @raise Malformed when the payload cannot be a tuple. *)
