(** Low-level durability helpers shared by the log implementation (and by
    anything else that writes files a crash must not corrupt): CRC-32
    checksums, crash-atomic whole-file writes, and the length-prefixed
    CRC-framed record format used by segment files. *)

val crc32 : ?crc:int -> Bytes.t -> int -> int -> int
(** [crc32 ?crc b off len] is the CRC-32 (IEEE 802.3 polynomial) of
    [Bytes.sub b off len], optionally continuing from a previous
    checksum. The result fits 32 bits. *)

val atomic_write_file : string -> string -> unit
(** [atomic_write_file path contents] writes [contents] to a temporary
    file in [path]'s directory, fsyncs it, and renames it over [path] —
    so a reader (or a crash at any point) sees either the old complete
    file or the new complete file, never a truncated prefix. *)

val mkdir_p : string -> unit
(** Create a directory and any missing parents (existing ones are fine). *)

(** {2 Record framing}

    A record on disk is [\[len:u32le\]\[crc:u32le\]\[payload\]] where [crc]
    covers the payload only. The framing functions below are what the
    segment reader/writer and the torn-tail scan share. *)

val frame_overhead : int
(** Bytes of header per record (8). *)

val frame : Buffer.t -> Bytes.t -> unit
(** Append one framed record to a buffer. *)

type scan = {
  scan_valid : int;  (** Byte length of the valid record prefix. *)
  scan_records : int;  (** Records in that prefix. *)
  scan_positions : int array;
      (** Byte position of every record in the prefix, in order (so the
          caller can build a sparse index without rescanning). *)
  scan_torn : bool;
      (** Whether bytes past [scan_valid] were present but invalid — a
          torn tail (short frame, impossible length, or CRC mismatch). *)
}

val scan_frames : Bytes.t -> int -> scan
(** [scan_frames b len] walks framed records in [b.(0..len-1)] and
    returns the longest valid prefix; everything after the first invalid
    or incomplete frame is torn tail. *)

val read_frame : Bytes.t -> pos:int -> len:int -> (int * Bytes.t) option
(** [read_frame b ~pos ~len] decodes the record starting at [pos]
    (bounded by [len]): [Some (next_pos, payload)], or [None] when the
    frame is incomplete or fails its CRC. *)
