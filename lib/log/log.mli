(** A Kafka-style partitioned, replayable, append-only log — the durable
    ingestion boundary in front of topology sources (DDIA ch. 11's
    log-based broker, ROADMAP item 3).

    {2 Layout}

    A log is a directory. Each partition [p] is a subdirectory [p<p>/]
    holding {e segment} files named by the offset of their first record
    ([%020d.seg]); records are length-prefixed and CRC-framed
    ({!Log_io.frame}). Consumer-group positions live under
    [groups/<group>/p<p>.offset], one decimal next-offset per file,
    written atomically (temp file + rename) so a crash mid-commit leaves
    the previous position intact.

    {2 Recovery}

    Opening an existing log scans every segment: the record count and the
    sparse offset index are rebuilt from the frames, and a {e torn tail}
    (a partially written or corrupted final record, the signature of a
    crash mid-append) is truncated back to the last valid record
    boundary. Invalid bytes anywhere {e before} the final segment's tail
    are corruption rather than a crash artifact and raise {!Corrupt}.

    {2 Durability}

    Appends are buffered by the OS; the {!fsync} policy decides when the
    log forces them to stable storage — the classic durability/throughput
    trade: [Every 1] survives any crash at per-record fsync cost,
    [Every n] group-commits (amortizing one fsync over [n] records),
    [Interval s] bounds the data-loss window by time, [Never] leaves it
    to the OS. {!sync} and {!close} force outstanding appends regardless
    of policy.

    Thread-safety: appends to one partition are serialized by a
    per-partition lock; reads use positional I/O on private descriptors
    and may run concurrently with appends and each other. *)

type t

exception Corrupt of string
(** Invalid bytes before the final segment's tail — not recoverable by
    truncation. *)

type fsync =
  | Never  (** Leave flushing to the OS (fastest, weakest). *)
  | Every of int  (** Group commit: fsync after every [n] records. *)
  | Interval of float  (** Fsync when [s] seconds passed since the last. *)

type config = {
  partitions : int;  (** Partition count at creation (default 4). *)
  segment_bytes : int;
      (** Roll to a new segment past this size (default 4 MiB). *)
  fsync : fsync;  (** Durability policy (default [Every 256]). *)
  index_interval : int;
      (** Sparse index density: one entry every [n] records (default 64). *)
}

val default_config : config

val create : ?config:config -> string -> t
(** [create dir] opens the log at [dir], creating it (with
    [config.partitions] partitions) when absent, and recovering —
    rebuilding indexes and truncating torn tails — when present. An
    existing log's partition count comes from its [meta] file and wins
    over [config.partitions].
    @raise Corrupt on unrecoverable segment corruption.
    @raise Invalid_argument on a non-positive partition count, segment
    size, index interval, or [Every]/[Interval] argument. *)

val close : t -> unit
(** Flush and fsync all partitions and release descriptors. Using [t]
    afterwards raises. *)

val dir : t -> string
val partitions : t -> int

val partition_of_key : t -> int -> int
(** Stable key -> partition routing ([key mod partitions], negatives
    folded). *)

val append : t -> ?key:int -> Bytes.t -> int * int
(** [append t ~key payload] appends one record to the partition chosen by
    [key] (default 0) and returns [(partition, offset)]. Offsets are
    dense per partition, starting at 0. *)

val append_to : t -> partition:int -> Bytes.t -> int
(** Append to an explicit partition; returns the record's offset. *)

val append_batch : t -> partition:int -> Bytes.t list -> int
(** Append a batch in one write syscall (plus at most one policy-driven
    fsync); returns the offset of the first record. The batch is
    contiguous: record [i] gets offset [result + i]. *)

val sync : t -> unit
(** Force an fsync of every partition with unsynced appends. *)

val end_offset : t -> partition:int -> int
(** The next offset to be assigned (= records in the partition). *)

val size_bytes : t -> int
(** Total segment bytes across partitions (frames included). *)

val torn_tails_recovered : t -> int
(** Partitions whose final segment was truncated during {!create} — 0 on
    a cleanly closed log. *)

val read :
  t -> partition:int -> from:int -> ?max_records:int -> unit -> (int * Bytes.t) list
(** [read t ~partition ~from ()] returns up to [max_records] (default
    256) records starting at offset [from], as [(offset, payload)] pairs
    in offset order — [\[\]] exactly when [from >= end_offset]. The
    sparse index bounds the scan to at most [index_interval] records
    before the first hit. Reads never block appends.
    @raise Invalid_argument on a negative [from] or an unknown
    partition. *)

(** {2 Consumer groups} *)

val committed : t -> group:string -> partition:int -> int
(** The group's durably committed position — the next offset to consume;
    0 for a group that never committed. *)

val commit : t -> group:string -> partition:int -> int -> unit
(** [commit t ~group ~partition next] durably (atomically, fsynced)
    records [next] as the group's position. Monotonicity is the caller's
    concern; committing a smaller offset rewinds the group. *)

val groups : t -> string list
(** Group names that have committed at least once, sorted. *)
