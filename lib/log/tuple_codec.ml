open Ss_operators

exception Malformed of string

let header = 26 (* ts:8 + key:8 + tag:8 + arity:2 *)
let encoded_size (t : Tuple.t) = header + (8 * Array.length t.Tuple.values)

let encode (t : Tuple.t) =
  let arity = Array.length t.Tuple.values in
  if arity > 0xffff then invalid_arg "Tuple_codec.encode: arity above 65535";
  let b = Bytes.create (header + (8 * arity)) in
  Bytes.set_int64_le b 0 (Int64.bits_of_float t.Tuple.ts);
  Bytes.set_int64_le b 8 (Int64.of_int t.Tuple.key);
  Bytes.set_int64_le b 16 (Int64.of_int t.Tuple.tag);
  Bytes.set_uint16_le b 24 arity;
  Array.iteri
    (fun i v -> Bytes.set_int64_le b (header + (8 * i)) (Int64.bits_of_float v))
    t.Tuple.values;
  b

let decode b =
  let len = Bytes.length b in
  if len < header then
    raise (Malformed (Printf.sprintf "payload of %d bytes is below the header" len));
  let arity = Bytes.get_uint16_le b 24 in
  if len <> header + (8 * arity) then
    raise
      (Malformed
         (Printf.sprintf "payload of %d bytes does not match arity %d" len arity));
  {
    Tuple.ts = Int64.float_of_bits (Bytes.get_int64_le b 0);
    key = Int64.to_int (Bytes.get_int64_le b 8);
    tag = Int64.to_int (Bytes.get_int64_le b 16);
    values =
      Array.init arity (fun i ->
          Int64.float_of_bits (Bytes.get_int64_le b (header + (8 * i))));
  }
