(* CRC-32 (IEEE 802.3, reflected 0xedb88320) over bytes. Table-driven;
   everything stays within OCaml's 63-bit ints and the result is masked to
   32 bits. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(crc = 0) b off len =
  let table = Lazy.force crc_table in
  let c = ref (crc lxor 0xffffffff) in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xff)
         lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff land 0xffffffff

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Write-to-temp-then-rename: the rename is atomic on POSIX filesystems, so
   concurrent readers (and post-crash reopens) never observe a partially
   written file. The temp file is fsynced before the rename so the rename
   cannot outrun its contents on power loss. *)
let atomic_write_file path contents =
  let dir = Filename.dirname path in
  let tmp =
    Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path) ".tmp"
  in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () -> if not !ok then try Sys.remove tmp with _ -> ())
    (fun () ->
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let b = Bytes.unsafe_of_string contents in
          let n = Bytes.length b in
          let written = ref 0 in
          while !written < n do
            written := !written + Unix.write fd b !written (n - !written)
          done;
          Unix.fsync fd);
      Sys.rename tmp path;
      ok := true)

(* ------------------------------------------------------------------ *)
(* Record framing: [len:u32le][crc:u32le][payload]. *)

let frame_overhead = 8

(* Payloads above this are rejected by the scanner as impossible — a
   corrupted length field must not make the scanner allocate gigabytes. *)
let max_payload = 64 * 1024 * 1024

let frame buf payload =
  let len = Bytes.length payload in
  let hdr = Bytes.create frame_overhead in
  Bytes.set_int32_le hdr 0 (Int32.of_int len);
  Bytes.set_int32_le hdr 4 (Int32.of_int (crc32 payload 0 len));
  Buffer.add_bytes buf hdr;
  Buffer.add_bytes buf payload

type scan = {
  scan_valid : int;
  scan_records : int;
  scan_positions : int array;
  scan_torn : bool;
}

let header_at b pos =
  let len = Int32.to_int (Bytes.get_int32_le b pos) land 0xffffffff in
  let crc = Int32.to_int (Bytes.get_int32_le b (pos + 4)) land 0xffffffff in
  (len, crc)

let read_frame b ~pos ~len =
  if pos + frame_overhead > len then None
  else
    let plen, crc = header_at b pos in
    if plen > max_payload || pos + frame_overhead + plen > len then None
    else if crc32 b (pos + frame_overhead) plen <> crc then None
    else Some (pos + frame_overhead + plen, Bytes.sub b (pos + frame_overhead) plen)

let scan_frames b len =
  let positions = ref [] in
  let records = ref 0 in
  let pos = ref 0 in
  let stop = ref false in
  while not !stop do
    if !pos + frame_overhead > len then stop := true
    else begin
      let plen, crc = header_at b !pos in
      if plen > max_payload || !pos + frame_overhead + plen > len then
        stop := true
      else if crc32 b (!pos + frame_overhead) plen <> crc then stop := true
      else begin
        positions := !pos :: !positions;
        incr records;
        pos := !pos + frame_overhead + plen
      end
    end
  done;
  {
    scan_valid = !pos;
    scan_records = !records;
    scan_positions = Array.of_list (List.rev !positions);
    scan_torn = !pos < len;
  }
