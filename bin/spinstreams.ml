(* SpinStreams command-line tool: the paper's GUI workflow (import an XML
   topology, analyze, optimize, fuse, generate code) as subcommands. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic whole-file write (temp file + rename): a crash or a concurrent
   reader never observes a half-written export. *)
let write_file path contents = Ss_log.Log_io.atomic_write_file path contents

let load_session path =
  match Ss_tool.Session.import_xml (read_file path) with
  | Ok s -> Ok s
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let or_die = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("spinstreams: " ^ e);
      exit 1

(* ------------------------------------------------------------------ *)
(* Common arguments *)

let topology_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TOPOLOGY.xml" ~doc:"Topology description (XML formalism).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the result to $(docv).")

let vertices_arg =
  let parse s =
    try Ok (List.map int_of_string (String.split_on_char ',' s))
    with Failure _ -> Error (`Msg "expected a comma-separated vertex list")
  in
  Arg.conv (parse, fun ppf vs ->
      Format.pp_print_string ppf (String.concat "," (List.map string_of_int vs)))

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

(* Strictly positive integer, rejected at parse time like the --groups and
   --batch converters (a bad value never reaches the runtime). *)
let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (`Msg "expected a positive integer")
  in
  Arg.conv (parse, Format.pp_print_int)

(* ------------------------------------------------------------------ *)
(* analyze *)

let analyze_cmd =
  let multi =
    Arg.(
      value & flag
      & info [ "multi-source" ]
          ~doc:"Accept documents with several sources; a fictitious root is \
                added and all sources throttle proportionally under \
                backpressure.")
  in
  let run path multi =
    let session =
      if multi then
        or_die
          (Result.map_error
             (Printf.sprintf "%s: %s" path)
             (Ss_tool.Session.import_xml_multi (read_file path)))
      else or_die (load_session path)
    in
    print_string (Ss_tool.Session.report session ())
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Predict the steady-state throughput under backpressure (Algorithm 1).")
    Term.(const run $ topology_arg $ multi)

(* ------------------------------------------------------------------ *)
(* optimize *)

let optimize_cmd =
  let max_replicas =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-replicas" ] ~docv:"N"
          ~doc:"Hold-off replication: bound the total number of replicas.")
  in
  let run path max_replicas output =
    let session = or_die (load_session path) in
    let version, result =
      Ss_tool.Session.eliminate_bottlenecks session ?max_replicas ()
    in
    Format.printf "%a@." Ss_core.Fission.pp result;
    (match result.Ss_core.Fission.residual_bottlenecks with
    | [] -> ()
    | _ ->
        print_endline
          "warning: some bottlenecks cannot be removed by fission (stateful \
           or skew-limited operators)");
    match output with
    | None -> ()
    | Some out ->
        write_file out (Ss_tool.Session.export_xml session ~version ());
        Printf.printf "optimized topology written to %s\n" out
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Eliminate bottlenecks by operator fission (Algorithm 2).")
    Term.(const run $ topology_arg $ max_replicas $ output_arg)

(* ------------------------------------------------------------------ *)
(* candidates *)

let candidates_cmd =
  let max_size =
    Arg.(
      value & opt int 4
      & info [ "max-size" ] ~docv:"K" ~doc:"Largest sub-graph size to propose.")
  in
  let run path max_size =
    let session = or_die (load_session path) in
    let topo = Ss_tool.Session.topology session () in
    let cands = Ss_tool.Session.fusion_candidates session ~max_size () in
    if cands = [] then print_endline "no legal fusion candidate"
    else begin
      Printf.printf "%-28s %-12s\n" "sub-graph" "mean rho";
      List.iter
        (fun (vs, util) ->
          let names =
            List.map
              (fun v ->
                (Ss_topology.Topology.operator topo v).Ss_topology.Operator.name)
              vs
          in
          Printf.printf "%-28s %-12.3f (%s)\n"
            (String.concat "," (List.map string_of_int vs))
            util
            (String.concat "+" names))
        cands
    end
  in
  Cmd.v
    (Cmd.info "candidates"
       ~doc:"Rank legal fusion sub-graphs by mean utilization (most \
             underutilized first).")
    Term.(const run $ topology_arg $ max_size)

(* ------------------------------------------------------------------ *)
(* fuse *)

let fuse_cmd =
  let subgraph =
    Arg.(
      required
      & opt (some vertices_arg) None
      & info [ "s"; "subgraph" ] ~docv:"V1,V2,..."
          ~doc:"Vertices of the sub-graph to fuse.")
  in
  let run path vertices output =
    let session = or_die (load_session path) in
    let version, outcome = or_die (Ss_tool.Session.fuse session vertices) in
    Printf.printf "fused service time: %.4f ms\n"
      (outcome.Ss_core.Fusion.fused_service_time *. 1e3);
    Printf.printf "predicted throughput: %.1f -> %.1f tuples/s (%+.1f%%)\n"
      outcome.Ss_core.Fusion.before.Ss_core.Steady_state.throughput
      outcome.Ss_core.Fusion.after.Ss_core.Steady_state.throughput
      (100.0 *. (outcome.Ss_core.Fusion.throughput_ratio -. 1.0));
    if outcome.Ss_core.Fusion.creates_bottleneck then
      print_endline
        "alert: the fusion introduces a bottleneck and impairs performance";
    (match output with
    | None -> ()
    | Some out ->
        write_file out (Ss_tool.Session.export_xml session ~version ());
        Printf.printf "fused topology written to %s\n" out)
  in
  Cmd.v
    (Cmd.info "fuse"
       ~doc:"Fuse a sub-graph into a meta-operator and predict the outcome \
             (Algorithm 3).")
    Term.(const run $ topology_arg $ subgraph $ output_arg)

(* ------------------------------------------------------------------ *)
(* latency *)

let latency_cmd =
  let run path =
    let session = or_die (load_session path) in
    Format.printf "%a@." Ss_core.Latency.pp (Ss_tool.Session.latency session ())
  in
  Cmd.v
    (Cmd.info "latency"
       ~doc:"Estimate per-operator queueing delays and the end-to-end \
             latency (GI/G/1 approximations over the steady state).")
    Term.(const run $ topology_arg)

(* ------------------------------------------------------------------ *)
(* autofuse *)

let autofuse_cmd =
  let max_size =
    Arg.(
      value & opt int 4
      & info [ "max-size" ] ~docv:"K" ~doc:"Largest sub-graph size per fusion step.")
  in
  let cap =
    Arg.(
      value & opt float 0.9
      & info [ "utilization-cap" ] ~docv:"RHO"
          ~doc:"Keep every fused operator at or below this utilization.")
  in
  let run path max_size cap output =
    let session = or_die (load_session path) in
    match
      Ss_tool.Session.auto_fuse session ~max_size ~utilization_cap:cap ()
    with
    | None -> print_endline "no fusion preserves throughput; topology unchanged"
    | Some (version, result) ->
        List.iter
          (fun step ->
            Printf.printf "fused %s -> %s (%.3f ms)\n"
              (String.concat ","
                 (List.map string_of_int step.Ss_core.Fusion.step_vertices))
              step.Ss_core.Fusion.step_name
              (step.Ss_core.Fusion.step_service_time *. 1e3))
          result.Ss_core.Fusion.steps;
        Printf.printf
          "%d operators saved; throughput preserved at %.1f tuples/s\n"
          result.Ss_core.Fusion.operators_saved
          result.Ss_core.Fusion.final_analysis.Ss_core.Steady_state.throughput;
        (match output with
        | None -> ()
        | Some out ->
            write_file out (Ss_tool.Session.export_xml session ~version ());
            Printf.printf "coarsened topology written to %s\n" out)
  in
  Cmd.v
    (Cmd.info "autofuse"
       ~doc:"Automatically fuse underutilized sub-graphs while preserving \
             the predicted throughput.")
    Term.(const run $ topology_arg $ max_size $ cap $ output_arg)

(* ------------------------------------------------------------------ *)
(* simulate *)

let simulate_cmd =
  let measure =
    Arg.(
      value & opt float 15.0
      & info [ "measure" ] ~docv:"SECONDS" ~doc:"Simulated measurement window.")
  in
  let buffer =
    Arg.(
      value & opt int 16
      & info [ "buffer" ] ~docv:"SLOTS" ~doc:"Mailbox capacity per operator.")
  in
  let run path measure buffer seed =
    let session = or_die (load_session path) in
    let config =
      {
        Ss_sim.Engine.default_config with
        Ss_sim.Engine.measure;
        buffer_capacity = buffer;
        seed;
      }
    in
    let predicted = Ss_tool.Session.analyze session () in
    let result = Ss_tool.Session.simulate session ~config () in
    Printf.printf "predicted throughput: %.1f tuples/s\n"
      predicted.Ss_core.Steady_state.throughput;
    Printf.printf "measured throughput:  %.1f tuples/s (%d events, %.1fs simulated)\n"
      result.Ss_sim.Engine.throughput result.Ss_sim.Engine.events
      result.Ss_sim.Engine.simulated_time;
    Printf.printf "relative error: %.2f%%\n"
      (100.0
      *. Ss_prelude.Stats.relative_error
           ~expected:predicted.Ss_core.Steady_state.throughput
           ~actual:result.Ss_sim.Engine.throughput);
    Printf.printf "\n%-4s %-24s %12s %12s %8s\n" "id" "operator" "pred d/s"
      "meas d/s" "busy";
    Array.iteri
      (fun v stats ->
        Printf.printf "%-4d %-24s %12.1f %12.1f %8.2f\n" v
          predicted.Ss_core.Steady_state.metrics.(v).Ss_core.Steady_state.name
          predicted.Ss_core.Steady_state.metrics.(v)
            .Ss_core.Steady_state.departure_rate
          stats.Ss_sim.Engine.departure_rate stats.Ss_sim.Engine.busy_fraction)
      result.Ss_sim.Engine.stats
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Measure the topology on the discrete-event simulator and compare \
             with the model.")
    Term.(const run $ topology_arg $ measure $ buffer $ seed_arg)

(* ------------------------------------------------------------------ *)
(* random *)

let random_cmd =
  let count =
    Arg.(value & opt int 1 & info [ "n"; "count" ] ~docv:"N" ~doc:"Topologies to generate.")
  in
  let run count seed output =
    let rng = Ss_prelude.Rng.create seed in
    for i = 1 to count do
      let topo =
        Ss_workload.Random_topology.generate (Ss_prelude.Rng.split rng)
      in
      let xml = Ss_xml.Topology_xml.to_string topo in
      match output with
      | None -> print_string xml
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let path = Filename.concat dir (Printf.sprintf "topology_%02d.xml" i) in
          write_file path xml;
          Printf.printf "%s (%d operators, %d edges)\n" path
            (Ss_topology.Topology.size topo)
            (Ss_topology.Topology.num_edges topo)
    done
  in
  Cmd.v
    (Cmd.info "random"
       ~doc:"Generate random benchmark topologies (the paper's Algorithm 5).")
    Term.(const run $ count $ seed_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* codegen *)

let codegen_cmd =
  let fused =
    Arg.(
      value
      & opt_all vertices_arg []
      & info [ "fused" ] ~docv:"V1,V2,..."
          ~doc:"Execute this sub-graph as one meta-operator (repeatable).")
  in
  let tuples =
    Arg.(value & opt int 100_000 & info [ "tuples" ] ~docv:"N" ~doc:"Stream length of the generated run.")
  in
  let mod_name =
    Arg.(value & opt string "pipeline" & info [ "name" ] ~docv:"NAME" ~doc:"Module name of the generated executable.")
  in
  let fusion =
    Arg.(
      value
      & opt
          (enum
             [
               ("auto", `Auto);
               ("interpreted", `Interpreted);
               ("closed-loop", `Closed_loop);
             ])
          `Auto
      & info [ "fusion" ] ~docv:"MODE"
          ~doc:
            "Fused-group execution of the generated run: $(b,auto) (default) \
             leaves the choice to the executor's deploy-time staging, \
             $(b,interpreted) pins the Algorithm 4 walk, $(b,closed-loop) \
             additionally emits specialized closed loops for all-stub \
             groups. Counts are identical in every mode.")
  in
  let run path fused fusion tuples name output =
    let session = or_die (load_session path) in
    match output with
    | None ->
        print_string
          (Ss_tool.Session.generate_code session ~fused ~fusion ~tuples ())
    | Some dir ->
        Ss_codegen.Codegen.write_project ~dir ~name ~fused ~fusion ~tuples
          (Ss_tool.Session.topology session ());
        Printf.printf "generated %s/%s.ml and %s/dune\n" dir name dir
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Generate the OCaml program deploying the topology on the actor \
             runtime (the paper's SS2Akka step).")
    Term.(
      const run $ topology_arg $ fused $ fusion $ tuples $ mod_name
      $ output_arg)

(* ------------------------------------------------------------------ *)
(* execute *)

let execute_cmd =
  let fused =
    Arg.(
      value
      & opt_all vertices_arg []
      & info [ "fused" ] ~docv:"V1,V2,..."
          ~doc:"Execute this sub-graph as one meta-operator (repeatable).")
  in
  let tuples =
    Arg.(
      value & opt int 10_000
      & info [ "tuples" ] ~docv:"N" ~doc:"Stream length of the run.")
  in
  let buffer =
    Arg.(
      value & opt int 64
      & info [ "buffer" ] ~docv:"SLOTS" ~doc:"Mailbox capacity per actor.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Abort the run after $(docv) of wall-clock time; the report \
                then shows the per-actor cancellation statuses.")
  in
  let scheduler =
    Arg.(
      value
      & opt (enum [ ("pool", `Pool); ("domains", `Domains) ]) `Pool
      & info [ "scheduler" ] ~docv:"MODE"
          ~doc:"Execution model: $(b,pool) (default) multiplexes all actors \
                over a fixed worker pool (N:M work-stealing scheduler); \
                $(b,domains) spawns one domain per actor (limited to ~110 \
                actors).")
  in
  let workers =
    Arg.(
      value
      & opt (some pos_int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains of the pool scheduler, a positive integer \
                (default: the machine's recommended domain count). Ignored \
                with --scheduler=domains.")
  in
  let groups =
    (* "off" -> one locality group (historical behavior); "auto" -> one
       group per ~4 workers; an integer -> that many groups (capped to
       the worker count). *)
    let parse s =
      match s with
      | "off" -> Ok `Off
      | "auto" -> Ok `Auto
      | _ -> (
          match int_of_string_opt s with
          | Some g when g >= 1 -> Ok (`N g)
          | _ -> Error (`Msg "expected off, auto, or a positive integer"))
    in
    let print ppf = function
      | `Off -> Format.fprintf ppf "off"
      | `Auto -> Format.fprintf ppf "auto"
      | `N g -> Format.fprintf ppf "%d" g
    in
    Arg.(
      value
      & opt (conv (parse, print)) `Off
      & info [ "groups" ] ~docv:"off|auto|N"
          ~doc:"Partition the pool's workers into locality groups and pin \
                each vertex to a group via the communication-aware \
                placement (vertices that exchange the most tuples share a \
                group; wakeups stay group-local and stealing prefers \
                same-group victims). $(b,off) (default) keeps one group; \
                $(b,auto) makes one group per ~4 workers; an integer \
                forces that many groups (capped to the worker count). \
                Ignored with --scheduler=domains.")
  in
  let batch =
    (* "auto" / "auto:MAX" -> adaptive per-mailbox drains; an integer ->
       the historical fixed drain cap. *)
    let parse s =
      match s with
      | "auto" -> Ok (`Adaptive 32)
      | _ -> (
          match String.index_opt s ':' with
          | Some i
            when String.sub s 0 i = "auto" ->
              let rest = String.sub s (i + 1) (String.length s - i - 1) in
              (match int_of_string_opt rest with
              | Some m when m >= 1 -> Ok (`Adaptive m)
              | _ -> Error (`Msg "expected auto:MAX with MAX >= 1"))
          | _ -> (
              match int_of_string_opt s with
              | Some b when b >= 1 -> Ok (`Fixed b)
              | _ -> Error (`Msg "expected a positive integer, auto, or auto:MAX")))
    in
    let print ppf = function
      | `Fixed b -> Format.fprintf ppf "%d" b
      | `Adaptive 32 -> Format.fprintf ppf "auto"
      | `Adaptive m -> Format.fprintf ppf "auto:%d" m
    in
    Arg.(
      value
      & opt (conv (parse, print)) (`Adaptive 32)
      & info [ "batch" ] ~docv:"N|auto"
          ~doc:"Messages a pooled actor drains per mailbox activation: a \
                fixed cap $(b,N), or $(b,auto) (default) to size each \
                mailbox's drain from an EWMA of its observed occupancy \
                within [1, 32] ($(b,auto:MAX) adjusts the ceiling).")
  in
  let channels =
    Arg.(
      value
      & opt (enum [ ("auto", `Auto); ("locking", `Locking) ]) `Auto
      & info [ "channels" ] ~docv:"MODE"
          ~doc:"Mailbox implementation: $(b,auto) (default) backs \
                single-producer/single-consumer edges with a lock-free \
                SPSC ring and fan-in edges with the locking mailbox; \
                $(b,locking) forces the locking mailbox everywhere.")
  in
  let telemetry =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:"Record latency histograms, per-operator service times and \
                per-edge transfer counts during the run, and print them in \
                the report.")
  in
  let event_time =
    Arg.(
      value & flag
      & info [ "event-time" ]
          ~doc:"Run with event-time semantics: sources generate watermarks \
                (--watermark), the runtime propagates them in-band through \
                every deployment shape (min across fan-in), event-time \
                window operators fire on watermark passage, and tuples \
                arriving behind the watermark are handled by --lateness.")
  in
  let watermark =
    let parse s =
      Result.map_error (fun e -> `Msg e) (Ss_event.Watermark.parse s)
    in
    let print ppf g = Format.pp_print_string ppf (Ss_event.Watermark.to_string g)
    in
    Arg.(
      value
      & opt (conv (parse, print)) (Ss_event.Watermark.Bounded 0.1)
      & info [ "watermark" ] ~docv:"periodic:MS|bounded:MS"
          ~doc:"Source watermark generator (with --event-time): \
                $(b,periodic:MS) emits the max seen timestamp every MS of \
                event-time progress (zero disorder tolerance); \
                $(b,bounded:MS) (default bounded:100) subtracts an MS \
                out-of-orderness bound, so tuples delayed by at most that \
                much are never late.")
  in
  let lateness =
    let parse s =
      Result.map_error (fun e -> `Msg e) (Ss_event.Lateness.parse_kind s)
    in
    let print ppf k =
      Format.pp_print_string ppf (Ss_event.Lateness.kind_to_string k)
    in
    Arg.(
      value
      & opt (conv (parse, print)) `Drop
      & info [ "lateness" ] ~docv:"drop|side|refire"
          ~doc:"Late-tuple policy (with --event-time): $(b,drop) counts and \
                discards (default); $(b,side) diverts them to a dead-letter \
                store reported after the run; $(b,refire) hands them to the \
                operator's on-late hook, emitting retraction markers plus \
                corrected results.")
  in
  let disorder =
    let parse s =
      Result.map_error (fun e -> `Msg e)
        (Ss_workload.Stream_gen.parse_disorder s)
    in
    let print ppf d =
      Format.pp_print_string ppf (Ss_workload.Stream_gen.disorder_to_string d)
    in
    Arg.(
      value
      & opt (conv (parse, print)) Ss_workload.Stream_gen.In_order
      & info [ "disorder" ] ~docv:"none|zipf:ALPHA:MAX|bursty:BURST:PERIOD"
          ~doc:"Perturb the synthetic stream's arrival order: \
                $(b,zipf:ALPHA:MAX) delays each tuple by a Zipf-distributed \
                number of positions in [0,MAX]; $(b,bursty:BURST:PERIOD) \
                holds back the first BURST tuples of every PERIOD and \
                releases them together. Deterministic in --seed.")
  in
  let prom_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom-out" ] ~docv:"FILE"
          ~doc:"Write the telemetry as Prometheus text exposition to \
                $(docv) (implies --telemetry).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:"Write the run metrics (telemetry included when on) as JSON \
                to $(docv).")
  in
  let fusion =
    Arg.(
      value
      & opt
          (enum [ ("compiled", `Compiled); ("interpreted", `Interpreted) ])
          `Compiled
      & info [ "fusion" ] ~docv:"MODE"
          ~doc:
            "Fused-group execution: $(b,compiled) (default) stages eligible \
             groups into flat closures at deploy time — including stateful \
             members, fission replicas, and telemetry-instrumented runs — \
             falling back per group to the interpreted walk where staging \
             does not apply (event time, router overrides); \
             $(b,interpreted) forces the Algorithm 4 walk everywhere. \
             Counts are identical either way.")
  in
  let run path fused fusion tuples buffer timeout scheduler workers groups seed
      batch channels telemetry event_time watermark lateness disorder prom_out
      json_out =
    (match timeout with
    | Some limit when limit <= 0.0 ->
        or_die (Error "--timeout must be positive")
    | _ -> ());
    let scheduler =
      match (scheduler, workers) with
      | `Domains, _ -> `Domain_per_actor
      | `Pool, Some w -> `Pool w
      | `Pool, None -> `Pool (Stdlib.max 1 (Domain.recommended_domain_count ()))
    in
    let telemetry = telemetry || prom_out <> None in
    let instrument =
      { Ss_runtime.Executor.default_instrument with telemetry }
    in
    let session = or_die (load_session path) in
    let placement =
      match groups with
      | `Off -> None
      | (`Auto | `N _) as spec -> (
          match scheduler with
          | `Domain_per_actor ->
              Printf.eprintf
                "note: --groups is ignored with --scheduler=domains\n";
              None
          | `Pool w | `Locked_pool w ->
          let g =
            match spec with
            | `Auto -> Stdlib.max 1 (w / 4)
            | `N g -> Stdlib.min g w
          in
          if g <= 1 then None
          else begin
            let topology = Ss_tool.Session.topology session () in
            let cluster =
              Ss_placement.Cluster.homogeneous ~nodes:g
                ~cores:(Stdlib.max 1 (w / g)) ()
            in
            let assignment =
              Ss_placement.Placement.communication_aware cluster topology
            in
            Printf.printf "locality groups: %d (vertex -> group: %s)\n" g
              (String.concat " "
                 (Array.to_list (Array.map string_of_int assignment)));
            Some assignment
          end)
    in
    let dead_letters = Ss_event.Dead_letter.create () in
    let event_time_config =
      if not event_time then None
      else
        Some
          (Ss_event.Event_time.config
             ~lateness:(Ss_event.Lateness.of_kind ~dead_letters lateness)
             watermark)
    in
    let metrics =
      Ss_tool.Session.execute session ~fused ~fusion ~tuples
        ~mailbox_capacity:buffer ?timeout ~scheduler ?placement ~seed ~batch
        ~channels ~instrument ?event_time:event_time_config ~disorder ()
    in
    print_string (Ss_tool.Session.runtime_report session metrics);
    if event_time && lateness = `Side then
      Printf.printf "dead-letter store: %d late tuple(s) captured\n"
        (Ss_event.Dead_letter.count dead_letters);
    let topology = Ss_tool.Session.topology session () in
    (match (prom_out, metrics.Ss_runtime.Executor.telemetry) with
    | Some out, Some report ->
        write_file out (Ss_telemetry.Telemetry.to_prometheus topology report);
        Printf.printf "telemetry written to %s\n" out
    | _ -> ());
    (match json_out with
    | None -> ()
    | Some out ->
        write_file out (Ss_tool.Export.telemetry_json topology metrics ^ "\n");
        Printf.printf "metrics written to %s\n" out);
    match metrics.Ss_runtime.Executor.outcome with
    | Ss_runtime.Supervision.Finished -> ()
    | Ss_runtime.Supervision.Actor_failed _
    | Ss_runtime.Supervision.Timed_out _ ->
        exit 1
  in
  Cmd.v
    (Cmd.info "execute"
       ~doc:"Deploy the topology on the supervised actor runtime, drive it \
             with synthetic tuples and report per-actor metrics (consumed, \
             produced, backpressure, mailbox occupancy, completion status; \
             with --telemetry also latency percentiles, measured service \
             times and per-edge rates). Exits non-zero when an actor fails \
             or the timeout fires.")
    Term.(
      const run $ topology_arg $ fused $ fusion $ tuples $ buffer $ timeout
      $ scheduler $ workers $ groups $ seed_arg $ batch $ channels $ telemetry
      $ event_time $ watermark $ lateness $ disorder $ prom_out $ json_out)

(* ------------------------------------------------------------------ *)
(* elastic *)

let elastic_cmd =
  let epochs =
    Arg.(
      value & opt pos_int 10
      & info [ "epochs" ] ~docv:"N"
          ~doc:"Maximum controller epochs (default 10).")
  in
  let epoch_length =
    Arg.(
      value & opt float 0.5
      & info [ "epoch-length" ] ~docv:"SECONDS"
          ~doc:"Wall-clock length of each controller epoch (default 0.5).")
  in
  let settle =
    Arg.(
      value & opt pos_int 2
      & info [ "settle" ] ~docv:"N"
          ~doc:"Stop after $(docv) consecutive change-free epochs (default \
                2).")
  in
  let workers =
    Arg.(
      value
      & opt (some pos_int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:"Initial worker domains of the pool, a positive integer \
                (default: the machine's recommended domain count).")
  in
  let reserve =
    Arg.(
      value & opt pos_int 8
      & info [ "reserve" ] ~docv:"N"
          ~doc:"Dormant reserve worker slots the controller can activate \
                when it grows operator degrees (default 8).")
  in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"TUPLES/S"
          ~doc:"Offered load: the synthetic source is paced to this rate \
                (default: the topology source's declared rate).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:"Write the per-epoch record and final metrics as JSON to \
                $(docv).")
  in
  let run path epochs epoch_length settle workers reserve rate seed json_out =
    (match epoch_length with
    | l when l <= 0.0 -> or_die (Error "--epoch-length must be positive")
    | _ -> ());
    (match rate with
    | Some r when r <= 0.0 -> or_die (Error "--rate must be positive")
    | _ -> ());
    let session = or_die (load_session path) in
    let r =
      Ss_tool.Session.elastic session ~max_epochs:epochs ~epoch_length ~settle
        ?workers ~reserve ?rate ~seed ()
    in
    Format.printf "%a@." Ss_elastic.Controller.pp_live r;
    print_string (Ss_tool.Session.runtime_report session r.Ss_elastic.Controller.metrics);
    (match json_out with
    | None -> ()
    | Some out ->
        let topology = Ss_tool.Session.topology session () in
        write_file out (Ss_tool.Export.elastic_json topology r ^ "\n");
        Printf.printf "elastic run written to %s\n" out);
    match r.Ss_elastic.Controller.metrics.Ss_runtime.Executor.outcome with
    | Ss_runtime.Supervision.Finished -> ()
    | Ss_runtime.Supervision.Actor_failed _
    | Ss_runtime.Supervision.Timed_out _ ->
        exit 1
  in
  Cmd.v
    (Cmd.info "elastic"
       ~doc:"Run the closed elasticity loop: deploy the topology live \
             (starting from its declared replica degrees, typically all 1), \
             pace a stable synthetic load, and let the threshold controller \
             resize operators of the running topology between epochs — \
             reporting per-epoch measured throughput, utilization and \
             reconfiguration downtime. The counterpoint to the static plan \
             of $(b,optimize): same workload, adaptation paid at runtime.")
    Term.(
      const run $ topology_arg $ epochs $ epoch_length $ settle $ workers
      $ reserve $ rate $ seed_arg $ json_out)

(* ------------------------------------------------------------------ *)
(* ingest *)

let ingest_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Log directory (created when absent, recovered when present).")
  in
  let tuples =
    Arg.(
      value & opt int 10_000
      & info [ "tuples" ] ~docv:"N"
          ~doc:"Synthetic tuples to append to the log before executing; 0 \
                appends nothing (replay an existing log).")
  in
  let partitions =
    Arg.(
      value & opt pos_int 4
      & info [ "partitions" ] ~docv:"N"
          ~doc:"Partitions at log creation (an existing log keeps its own \
                count).")
  in
  let fsync =
    (* never | every:N | interval:MS *)
    let parse s =
      match s with
      | "never" -> Ok Ss_log.Log.Never
      | _ -> (
          match String.index_opt s ':' with
          | Some i -> (
              let kind = String.sub s 0 i in
              let rest = String.sub s (i + 1) (String.length s - i - 1) in
              match (kind, int_of_string_opt rest) with
              | "every", Some n when n >= 1 -> Ok (Ss_log.Log.Every n)
              | "interval", Some ms when ms >= 1 ->
                  Ok (Ss_log.Log.Interval (float_of_int ms /. 1000.0))
              | _ -> Error (`Msg "expected never, every:N, or interval:MS"))
          | None -> Error (`Msg "expected never, every:N, or interval:MS"))
    in
    let print ppf = function
      | Ss_log.Log.Never -> Format.fprintf ppf "never"
      | Ss_log.Log.Every n -> Format.fprintf ppf "every:%d" n
      | Ss_log.Log.Interval s -> Format.fprintf ppf "interval:%.0f" (s *. 1000.0)
    in
    Arg.(
      value
      & opt (conv (parse, print)) (Ss_log.Log.Every 256)
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:"Durability policy for appends: $(b,never) leaves flushing \
                to the OS, $(b,every:N) group-commits (one fsync per N \
                records; every:1 is per-record durability), \
                $(b,interval:MS) bounds the loss window by time. Default \
                every:256.")
  in
  let segment_bytes =
    Arg.(
      value
      & opt pos_int (4 * 1024 * 1024)
      & info [ "segment-bytes" ] ~docv:"BYTES"
          ~doc:"Roll to a new segment file past this size (default 4MiB).")
  in
  let execute =
    Arg.(
      value & flag
      & info [ "execute" ]
          ~doc:"After ingesting, execute the topology from the log: one \
                reader per partition, offsets committed downstream of \
                processing (at-least-once). A re-run after a crash resumes \
                from the committed offsets.")
  in
  let group =
    Arg.(
      value & opt string "default"
      & info [ "group" ] ~docv:"NAME" ~doc:"Consumer group of the execution.")
  in
  let commit_every =
    Arg.(
      value & opt pos_int 512
      & info [ "commit-every" ] ~docv:"N"
          ~doc:"Commit each partition's watermark every $(docv) records \
                (default 512); smaller narrows the redelivery window.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Abort the execution after $(docv) of wall-clock time; \
                committed offsets stand, so a re-run resumes from them.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:"Write the ingest/offset summary as JSON to $(docv).")
  in
  let run path dir tuples partitions fsync segment_bytes execute group
      commit_every timeout seed json_out =
    if tuples < 0 then or_die (Error "--tuples must be >= 0");
    (match timeout with
    | Some limit when limit <= 0.0 ->
        or_die (Error "--timeout must be positive")
    | _ -> ());
    let config =
      { Ss_log.Log.default_config with partitions; segment_bytes; fsync }
    in
    let log = Ss_log.Log.create ~config dir in
    if Ss_log.Log.torn_tails_recovered log > 0 then
      Printf.printf "recovered %d torn partition tail(s)\n"
        (Ss_log.Log.torn_tails_recovered log);
    let ingest_elapsed =
      if tuples = 0 then 0.0
      else begin
        let rng = Ss_prelude.Rng.create seed in
        let stream = Ss_workload.Stream_gen.tuples rng tuples in
        let t0 = Unix.gettimeofday () in
        List.iter
          (fun t ->
            ignore
              (Ss_log.Log.append log ~key:t.Ss_operators.Tuple.key
                 (Ss_log.Tuple_codec.encode t)
                : int * int))
          stream;
        Ss_log.Log.sync log;
        Unix.gettimeofday () -. t0
      end
    in
    let mb = float_of_int (Ss_log.Log.size_bytes log) /. 1048576.0 in
    if tuples > 0 then
      Printf.printf "ingested %d tuples, %.1f MiB total in %.3fs (%.1f MB/s)\n"
        tuples mb ingest_elapsed
        (mb /. Float.max ingest_elapsed 1e-9);
    let outcome =
      if not execute then None
      else begin
        let session = or_die (load_session path) in
        let ing = Ss_runtime.Executor.ingest ~group ~commit_every log in
        let metrics =
          Ss_tool.Session.execute session ~ingest:ing ?timeout ~seed ()
        in
        print_string (Ss_tool.Session.runtime_report session metrics);
        Some metrics.Ss_runtime.Executor.outcome
      end
    in
    let offsets =
      List.init (Ss_log.Log.partitions log) (fun p ->
          ( p,
            Ss_log.Log.committed log ~group ~partition:p,
            Ss_log.Log.end_offset log ~partition:p ))
    in
    List.iter
      (fun (p, committed, stop) ->
        Printf.printf "p%d: committed %d / end %d\n" p committed stop)
      offsets;
    (match json_out with
    | None -> ()
    | Some out ->
        let parts =
          String.concat ","
            (List.map
               (fun (p, committed, stop) ->
                 Printf.sprintf
                   "{\"partition\":%d,\"committed\":%d,\"end\":%d}" p committed
                   stop)
               offsets)
        in
        write_file out
          (Printf.sprintf
             "{\"tuples\":%d,\"size_bytes\":%d,\"ingest_seconds\":%.6f,\
              \"executed\":%b,\"group\":%S,\"partitions\":[%s]}\n"
             tuples (Ss_log.Log.size_bytes log) ingest_elapsed execute group
             parts);
        Printf.printf "summary written to %s\n" out);
    Ss_log.Log.close log;
    match outcome with
    | None | Some Ss_runtime.Supervision.Finished -> ()
    | Some
        ( Ss_runtime.Supervision.Actor_failed _
        | Ss_runtime.Supervision.Timed_out _ ) ->
        exit 1
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:"Write a synthetic workload into a durable partitioned log \
             (CRC-framed segments, configurable fsync policy) and \
             optionally execute the topology from it with at-least-once \
             delivery: per-partition readers, offsets committed only after \
             a record's derivation tree fully drains. Prints per-partition \
             committed/end offsets so scripts can verify recovery.")
    Term.(
      const run $ topology_arg $ dir $ tuples $ partitions $ fsync
      $ segment_bytes $ execute $ group $ commit_every $ timeout $ seed_arg
      $ json_out)

(* ------------------------------------------------------------------ *)
(* place *)

let place_cmd =
  let nodes = Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster nodes.") in
  let cores = Arg.(value & opt int 4 & info [ "cores" ] ~docv:"C" ~doc:"Cores per node.") in
  let strategy =
    Arg.(
      value
      & opt (enum [ ("round-robin", `Rr); ("load", `Load); ("comm", `Comm) ]) `Comm
      & info [ "strategy" ] ~docv:"S"
          ~doc:"Placement strategy: round-robin, load or comm (default).")
  in
  let overhead =
    Arg.(
      value & opt float 20e-6
      & info [ "send-overhead" ] ~docv:"SECONDS"
          ~doc:"Sender CPU cost per item crossing node boundaries.")
  in
  let latency =
    Arg.(
      value & opt float 200e-6
      & info [ "link-latency" ] ~docv:"SECONDS" ~doc:"One-way network latency.")
  in
  let run path nodes cores strategy overhead latency =
    let session = or_die (load_session path) in
    let topology = Ss_tool.Session.topology session () in
    let cluster =
      Ss_placement.Cluster.homogeneous ~send_overhead:overhead
        ~link_latency:latency ~nodes ~cores ()
    in
    let assignment =
      match strategy with
      | `Rr -> Ss_placement.Placement.round_robin cluster topology
      | `Load -> Ss_placement.Placement.load_aware cluster topology
      | `Comm -> Ss_placement.Placement.communication_aware cluster topology
    in
    Array.iteri
      (fun v m ->
        Printf.printf "%-24s -> node%d\n"
          (Ss_topology.Topology.operator topology v).Ss_topology.Operator.name m)
      assignment;
    let e = Ss_placement.Placement.evaluate cluster topology assignment in
    Format.printf "%a@." Ss_placement.Placement.pp_evaluation e
  in
  Cmd.v
    (Cmd.info "place"
       ~doc:"Map the topology onto a cluster and evaluate the placement \
             under the cost model (network overhead included).")
    Term.(const run $ topology_arg $ nodes $ cores $ strategy $ overhead $ latency)

(* ------------------------------------------------------------------ *)
(* export *)

let export_cmd =
  let format =
    Arg.(
      value
      & opt
          (enum
             [
               ("csv", `Csv); ("json", `Json); ("latency-csv", `Latency);
               ("comparison-csv", `Comparison);
             ])
          `Csv
      & info [ "format" ] ~docv:"FMT"
          ~doc:"csv (steady state), json (session summary), latency-csv, or \
                comparison-csv (predicted vs simulated).")
  in
  let run path format output seed =
    let session = or_die (load_session path) in
    let topology = Ss_tool.Session.topology session () in
    let contents =
      match format with
      | `Csv ->
          Ss_tool.Export.steady_state_csv topology (Ss_tool.Session.analyze session ())
      | `Json -> Ss_tool.Export.session_json session ^ "\n"
      | `Latency ->
          Ss_tool.Export.latency_csv topology (Ss_tool.Session.latency session ())
      | `Comparison ->
          let analysis = Ss_tool.Session.analyze session () in
          let config = { Ss_sim.Engine.default_config with Ss_sim.Engine.seed = seed } in
          Ss_tool.Export.comparison_csv topology analysis
            (Ss_tool.Session.simulate session ~config ())
    in
    match output with
    | None -> print_string contents
    | Some out ->
        write_file out contents;
        Printf.printf "written to %s\n" out
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export analyses as CSV or JSON for plotting and dashboards.")
    Term.(const run $ topology_arg $ format $ output_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* dot *)

let dot_cmd =
  let run path =
    let session = or_die (load_session path) in
    print_string (Ss_topology.Topology.to_dot (Ss_tool.Session.topology session ()))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Render the topology as Graphviz.")
    Term.(const run $ topology_arg)

(* ------------------------------------------------------------------ *)
(* profile *)

let profile_cmd =
  let samples =
    Arg.(value & opt int 5000 & info [ "samples" ] ~docv:"N" ~doc:"Tuples per operator.")
  in
  let run samples seed =
    let rng = Ss_prelude.Rng.create seed in
    Printf.printf "%-28s %14s %10s\n" "operator" "us/tuple" "out/in";
    List.iter
      (fun behavior ->
        let p = Ss_workload.Profiler.run ~samples rng behavior in
        Printf.printf "%-28s %14.2f %10.3f\n" p.Ss_workload.Profiler.behavior
          (p.Ss_workload.Profiler.mean_service_time *. 1e6)
          p.Ss_workload.Profiler.outputs_per_input)
      (Ss_operators.Catalog.all ())
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile the operator catalog on synthetic streams (service time \
             and selectivity per operator).")
    Term.(const run $ samples $ seed_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "static optimization of data stream processing topologies" in
  let info = Cmd.info "spinstreams" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            analyze_cmd;
            optimize_cmd;
            candidates_cmd;
            fuse_cmd;
            autofuse_cmd;
            latency_cmd;
            simulate_cmd;
            random_cmd;
            codegen_cmd;
            execute_cmd;
            elastic_cmd;
            ingest_cmd;
            place_cmd;
            export_cmd;
            dot_cmd;
            profile_cmd;
          ]))
